//! The waiting list (Section 4).
//!
//! A received message whose causal predecessors have not all been processed
//! is "temporarily entered a waiting list waiting for the missing messages".
//! The list also powers two protocol features:
//!
//! * each subrun request reports `waiting[q]` — the **oldest** waiting
//!   sequence number per origin — which the coordinator folds into
//!   `min_waiting` for the orphan-gap test;
//! * when the group agrees a gap is unrecoverable, every process discards
//!   the waiting messages that (transitively) depend on the lost one —
//!   [`WaitingList::discard_dependents`].
//!
//! # Indexed release
//!
//! [`WaitingList`] keeps a **reverse-dependency index**: for every mid that
//! some parked message is still blocked on, the list of blocked mids, plus a
//! per-message counter of unsatisfied dependencies. Processing a mid then
//! wakes exactly its dependents ([`WaitingList::wake`]) in O(dependents)
//! instead of rescanning every parked message and every dependency — the
//! rescan made a burst of W releases cost O(W²·D). A per-origin ordered seq
//! set answers `oldest_waiting` in O(log W) instead of a full key scan.
//!
//! [`RescanWaitingList`] preserves the original rescan implementation as an
//! executable specification: the differential property test asserts both
//! release the same messages in the same deterministic order, and the
//! hotpath microbenchmark measures one against the other.
//!
//! Index invariants (upheld by `park`/`wake`/`discard_*`):
//!
//! * `entries[w].unsatisfied` equals the number of edge occurrences across
//!   `dependents` lists pointing at `w` (one per unsatisfied dep occurrence
//!   of `w` at park time, consumed by `wake`);
//! * every watcher in a `dependents` list is a live entry (discards prune
//!   edges eagerly);
//! * `by_origin[q]` holds exactly the seqs of live entries originated by `q`.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use urcgc_types::{DataMsg, Mid, ProcessId, NO_SEQ};

/// A parked message plus how many of its dependencies are still unprocessed.
#[derive(Clone, Debug)]
struct Parked {
    msg: Arc<DataMsg>,
    unsatisfied: usize,
}

/// Messages parked until their causal predecessors are processed, indexed by
/// what they are blocked on.
#[derive(Clone, Debug, Default)]
pub struct WaitingList {
    entries: HashMap<Mid, Parked>,
    /// Unprocessed dep → mids blocked on it, one occurrence per dep-list
    /// occurrence (duplicate deps decrement the counter twice on wake).
    dependents: HashMap<Mid, Vec<Mid>>,
    /// Origin → ordered waiting seqs, for O(log) `oldest_waiting`.
    by_origin: HashMap<ProcessId, BTreeSet<u64>>,
}

impl WaitingList {
    /// An empty waiting list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of waiting messages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `mid` is currently waiting.
    pub fn contains(&self, mid: Mid) -> bool {
        self.entries.contains_key(&mid)
    }

    /// Parks `msg` unless every dependency is already processed. Returns
    /// `true` if the message is (now or already) waiting; `false` means
    /// nothing was stored and the caller should process it directly.
    /// Re-parking the same mid is idempotent (duplicate receptions are
    /// common under omission-recovery).
    pub fn park(&mut self, msg: Arc<DataMsg>, is_processed: impl Fn(Mid) -> bool) -> bool {
        if self.entries.contains_key(&msg.mid) {
            return true;
        }
        let unsatisfied = msg.deps.iter().filter(|&&d| !is_processed(d)).count();
        if unsatisfied == 0 {
            return false;
        }
        let mid = msg.mid;
        for &d in msg.deps.iter().filter(|&&d| !is_processed(d)) {
            self.dependents.entry(d).or_default().push(mid);
        }
        self.by_origin
            .entry(mid.origin)
            .or_default()
            .insert(mid.seq);
        self.entries.insert(mid, Parked { msg, unsatisfied });
        true
    }

    /// Reports that `mid` has been processed and returns the parked messages
    /// this fully unblocks, sorted by mid. The caller processes each and
    /// wakes it in turn (the urcgc engine drives this cascade wave by wave,
    /// re-sorting each wave, which reproduces the rescan release order).
    pub fn wake(&mut self, mid: Mid) -> Vec<Arc<DataMsg>> {
        let Some(watchers) = self.dependents.remove(&mid) else {
            return Vec::new();
        };
        let mut out: Vec<Arc<DataMsg>> = Vec::new();
        for w in watchers {
            let parked = self.entries.get_mut(&w).expect("watcher edges are live");
            parked.unsatisfied -= 1;
            if parked.unsatisfied == 0 {
                let parked = self.entries.remove(&w).expect("just seen");
                self.remove_origin_seq(w);
                out.push(parked.msg);
            }
        }
        out.sort_by_key(|m| m.mid);
        out
    }

    /// `waiting[q]`: the oldest (smallest-seq) waiting message originated by
    /// `q`, or [`NO_SEQ`] if none — the per-origin value sent to the
    /// coordinator each subrun.
    pub fn oldest_waiting(&self, q: ProcessId) -> u64 {
        self.by_origin
            .get(&q)
            .and_then(|seqs| seqs.first().copied())
            .unwrap_or(NO_SEQ)
    }

    /// The full `waiting` vector for a request PDU.
    pub fn waiting_vector(&self, n: usize) -> Vec<u64> {
        (0..n)
            .map(|i| self.oldest_waiting(ProcessId::from_index(i)))
            .collect()
    }

    /// Discards every waiting message that depends — directly or through
    /// other *waiting* messages — on `root`, returning the discarded mids.
    /// This implements the destruction step of orphan-sequence elimination:
    /// "it removes the messages that depend on `max_processed[q] + 1`".
    ///
    /// `root` itself is also discarded if it is waiting.
    pub fn discard_dependents(&mut self, root: Mid) -> Vec<Mid> {
        let mut doomed: BTreeSet<Mid> = BTreeSet::new();
        if self.entries.contains_key(&root) {
            doomed.insert(root);
        }
        // BFS over the reverse index. Every waiting→waiting dependency edge
        // is in the index (a dep on a still-waiting message was necessarily
        // unprocessed at park time), so this reaches the same transitive set
        // the rescan loop did.
        let mut queue: Vec<Mid> = vec![root];
        while let Some(d) = queue.pop() {
            if let Some(watchers) = self.dependents.get(&d) {
                for &w in watchers {
                    if self.entries.contains_key(&w) && doomed.insert(w) {
                        queue.push(w);
                    }
                }
            }
        }
        for &mid in &doomed {
            self.entries.remove(&mid);
            self.remove_origin_seq(mid);
        }
        // Eagerly prune edges from doomed watchers so wake() never meets a
        // dead edge and blocking_mids() never reports a dep nobody waits on.
        if !doomed.is_empty() {
            self.dependents.retain(|_, watchers| {
                watchers.retain(|w| !doomed.contains(w));
                !watchers.is_empty()
            });
        }
        doomed.into_iter().collect()
    }

    /// Discards messages from origin `q` with `seq >= from_seq` and all their
    /// waiting dependents. Convenience wrapper used when a whole suffix of a
    /// crashed origin's sequence is declared lost.
    pub fn discard_origin_suffix(&mut self, q: ProcessId, from_seq: u64) -> Vec<Mid> {
        let roots: Vec<Mid> = self
            .by_origin
            .get(&q)
            .map(|seqs| seqs.range(from_seq..).map(|&s| Mid::new(q, s)).collect())
            .unwrap_or_default();
        let mut all = Vec::new();
        for root in roots {
            all.extend(self.discard_dependents(root));
        }
        all.sort();
        all.dedup();
        all
    }

    /// Iterates over the waiting messages in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<DataMsg>> {
        self.entries.values().map(|p| &p.msg)
    }

    /// All mids a waiting message is still blocked on, deduplicated — the
    /// recovery targets the engine asks the most-updated process for.
    pub fn blocking_mids(&self, is_processed: impl Fn(Mid) -> bool) -> Vec<Mid> {
        let mut out: Vec<Mid> = self
            .dependents
            .keys()
            .copied()
            .filter(|&d| !is_processed(d) && !self.entries.contains_key(&d))
            .collect();
        out.sort();
        out
    }

    fn remove_origin_seq(&mut self, mid: Mid) {
        if let Some(seqs) = self.by_origin.get_mut(&mid.origin) {
            seqs.remove(&mid.seq);
            if seqs.is_empty() {
                self.by_origin.remove(&mid.origin);
            }
        }
    }
}

/// The original full-rescan waiting list, kept as the executable
/// specification for [`WaitingList`]: `release_ready` filters **every**
/// parked message against **every** dependency on each call. The
/// differential property test drives both under random interleavings and
/// asserts identical releases; the hotpath microbench measures the gap.
#[derive(Clone, Debug, Default)]
pub struct RescanWaitingList {
    entries: HashMap<Mid, Arc<DataMsg>>,
}

impl RescanWaitingList {
    /// An empty waiting list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of waiting messages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `mid` is currently waiting.
    pub fn contains(&self, mid: Mid) -> bool {
        self.entries.contains_key(&mid)
    }

    /// Parks `msg`. Re-inserting the same mid is idempotent.
    pub fn park(&mut self, msg: Arc<DataMsg>) {
        self.entries.entry(msg.mid).or_insert(msg);
    }

    /// Removes and returns the waiting messages whose dependencies are now
    /// all satisfied according to `is_processed`, sorted by mid. The caller
    /// marks them processed and calls again until a fixpoint.
    pub fn release_ready(&mut self, is_processed: impl Fn(Mid) -> bool) -> Vec<Arc<DataMsg>> {
        let ready: Vec<Mid> = self
            .entries
            .values()
            .filter(|m| m.deps.iter().all(|&d| is_processed(d)))
            .map(|m| m.mid)
            .collect();
        let mut out: Vec<Arc<DataMsg>> = ready
            .into_iter()
            .map(|mid| self.entries.remove(&mid).expect("just listed"))
            .collect();
        out.sort_by_key(|m| m.mid);
        out
    }

    /// `waiting[q]` by scanning all keys (the cost `WaitingList` indexes
    /// away).
    pub fn oldest_waiting(&self, q: ProcessId) -> u64 {
        self.entries
            .keys()
            .filter(|m| m.origin == q)
            .map(|m| m.seq)
            .min()
            .unwrap_or(NO_SEQ)
    }

    /// Discards every waiting message transitively dependent on `root`
    /// (including `root` itself if waiting), by repeated rescans.
    pub fn discard_dependents(&mut self, root: Mid) -> Vec<Mid> {
        let mut doomed: Vec<Mid> = Vec::new();
        if self.entries.contains_key(&root) {
            doomed.push(root);
        }
        loop {
            let mut grew = false;
            for (mid, msg) in &self.entries {
                if doomed.contains(mid) {
                    continue;
                }
                if msg.deps.iter().any(|d| *d == root || doomed.contains(d)) {
                    doomed.push(*mid);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        for mid in &doomed {
            self.entries.remove(mid);
        }
        doomed.sort();
        doomed
    }

    /// All mids a waiting message is still blocked on, deduplicated.
    pub fn blocking_mids(&self, is_processed: impl Fn(Mid) -> bool) -> Vec<Mid> {
        let mut out: Vec<Mid> = self
            .entries
            .values()
            .flat_map(|m| m.deps.iter().copied())
            .filter(|&d| !is_processed(d) && !self.entries.contains_key(&d))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Iterates over the waiting messages in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<DataMsg>> {
        self.entries.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use urcgc_types::Round;

    fn msg(p: u16, s: u64, deps: &[(u16, u64)]) -> Arc<DataMsg> {
        Arc::new(DataMsg {
            mid: Mid::new(ProcessId(p), s),
            deps: deps
                .iter()
                .map(|&(dp, ds)| Mid::new(ProcessId(dp), ds))
                .collect(),
            round: Round(0),
            payload: Bytes::new(),
        })
    }

    fn mid(p: u16, s: u64) -> Mid {
        Mid::new(ProcessId(p), s)
    }

    #[test]
    fn park_and_wake_on_satisfied_deps() {
        let mut w = WaitingList::new();
        assert!(w.park(msg(1, 1, &[(0, 1)]), |_| false));
        assert_eq!(w.len(), 1);
        assert!(w.wake(mid(9, 9)).is_empty());
        let out = w.wake(mid(0, 1));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].mid, mid(1, 1));
        assert!(w.is_empty());
    }

    #[test]
    fn park_refuses_deliverable_messages() {
        let mut w = WaitingList::new();
        assert!(!w.park(msg(1, 1, &[(0, 1)]), |d| d == mid(0, 1)));
        assert!(!w.park(msg(2, 1, &[]), |_| false));
        assert!(w.is_empty());
    }

    #[test]
    fn park_is_idempotent() {
        let mut w = WaitingList::new();
        assert!(w.park(msg(1, 1, &[(0, 1)]), |_| false));
        assert!(w.park(msg(1, 1, &[(0, 1)]), |_| false));
        assert_eq!(w.len(), 1);
        assert_eq!(w.wake(mid(0, 1)).len(), 1);
        assert!(w.wake(mid(0, 1)).is_empty());
    }

    #[test]
    fn duplicate_deps_count_once_per_occurrence() {
        let mut w = WaitingList::new();
        // Same dep listed twice: a single wake must still release it.
        assert!(w.park(msg(1, 1, &[(0, 1), (0, 1)]), |_| false));
        let out = w.wake(mid(0, 1));
        assert_eq!(out.len(), 1);
        assert!(w.is_empty());
    }

    #[test]
    fn wake_is_sorted_by_mid() {
        let mut w = WaitingList::new();
        w.park(msg(2, 1, &[(7, 7)]), |_| false);
        w.park(msg(0, 5, &[(7, 7)]), |_| false);
        w.park(msg(0, 2, &[(7, 7)]), |_| false);
        let out = w.wake(mid(7, 7));
        let mids: Vec<_> = out.iter().map(|m| m.mid).collect();
        assert_eq!(mids, vec![mid(0, 2), mid(0, 5), mid(2, 1)]);
    }

    #[test]
    fn wake_releases_only_fully_unblocked() {
        let mut w = WaitingList::new();
        w.park(msg(1, 1, &[(0, 1), (0, 2)]), |_| false);
        assert!(w.wake(mid(0, 1)).is_empty());
        assert_eq!(w.len(), 1);
        let out = w.wake(mid(0, 2));
        assert_eq!(out.len(), 1);
        assert!(w.is_empty());
    }

    #[test]
    fn oldest_waiting_per_origin() {
        let mut w = WaitingList::new();
        w.park(msg(0, 7, &[(1, 1)]), |_| false);
        w.park(msg(0, 3, &[(1, 1)]), |_| false);
        w.park(msg(2, 9, &[(1, 1)]), |_| false);
        assert_eq!(w.oldest_waiting(ProcessId(0)), 3);
        assert_eq!(w.oldest_waiting(ProcessId(1)), NO_SEQ);
        assert_eq!(w.oldest_waiting(ProcessId(2)), 9);
        assert_eq!(w.waiting_vector(3), vec![3, NO_SEQ, 9]);
        // Index stays exact after release.
        w.wake(mid(1, 1));
        assert_eq!(w.oldest_waiting(ProcessId(0)), NO_SEQ);
        assert_eq!(w.oldest_waiting(ProcessId(2)), NO_SEQ);
    }

    #[test]
    fn discard_dependents_cascades() {
        let mut w = WaitingList::new();
        // Waiting chain: 1#2 ← 1#3 ← 2#1 ; plus unrelated 3#1.
        w.park(msg(1, 2, &[(1, 1)]), |_| false);
        w.park(msg(1, 3, &[(1, 2)]), |_| false);
        w.park(msg(2, 1, &[(1, 3)]), |_| false);
        w.park(msg(3, 1, &[(0, 1)]), |_| false);
        let doomed = w.discard_dependents(mid(1, 1));
        assert_eq!(doomed, vec![mid(1, 2), mid(1, 3), mid(2, 1)]);
        assert_eq!(w.len(), 1);
        assert!(w.contains(mid(3, 1)));
        // Discarded watchers left no edges behind.
        assert_eq!(w.blocking_mids(|_| false), vec![mid(0, 1)]);
        assert_eq!(w.oldest_waiting(ProcessId(1)), NO_SEQ);
    }

    #[test]
    fn discard_root_itself_if_waiting() {
        let mut w = WaitingList::new();
        w.park(msg(1, 2, &[(1, 1)]), |_| false);
        let doomed = w.discard_dependents(mid(1, 2));
        assert_eq!(doomed, vec![mid(1, 2)]);
        assert!(w.wake(mid(1, 1)).is_empty());
    }

    #[test]
    fn discard_origin_suffix_hits_all_later_seqs() {
        let mut w = WaitingList::new();
        w.park(msg(1, 3, &[(1, 2)]), |_| false);
        w.park(msg(1, 5, &[(1, 4)]), |_| false);
        w.park(msg(2, 1, &[(1, 5)]), |_| false);
        w.park(msg(0, 1, &[(9, 9)]), |_| false);
        let doomed = w.discard_origin_suffix(ProcessId(1), 3);
        assert_eq!(doomed, vec![mid(1, 3), mid(1, 5), mid(2, 1)]);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn blocking_mids_excludes_parked_and_processed() {
        let processed = |d: Mid| d == mid(0, 1);
        let mut w = WaitingList::new();
        w.park(msg(1, 2, &[(1, 1)]), |_| false); // blocked on 1#1 (missing)
        w.park(msg(1, 3, &[(1, 2)]), |_| false); // blocked on 1#2 (parked, not missing)
        w.park(msg(2, 1, &[(0, 1), (4, 4)]), processed); // 0#1 satisfied at park
        let blocking = w.blocking_mids(processed);
        assert_eq!(blocking, vec![mid(1, 1), mid(4, 4)]);
    }

    #[test]
    fn rescan_reference_still_releases_in_mid_order() {
        let mut w = RescanWaitingList::new();
        w.park(msg(2, 1, &[]));
        w.park(msg(0, 5, &[]));
        w.park(msg(0, 2, &[]));
        let out = w.release_ready(|_| true);
        let mids: Vec<_> = out.iter().map(|m| m.mid).collect();
        assert_eq!(mids, vec![mid(0, 2), mid(0, 5), mid(2, 1)]);
        assert_eq!(w.oldest_waiting(ProcessId(0)), NO_SEQ);
    }
}
