//! The waiting list (Section 4).
//!
//! A received message whose causal predecessors have not all been processed
//! is "temporarily entered a waiting list waiting for the missing messages".
//! The list also powers two protocol features:
//!
//! * each subrun request reports `waiting[q]` — the **oldest** waiting
//!   sequence number per origin — which the coordinator folds into
//!   `min_waiting` for the orphan-gap test;
//! * when the group agrees a gap is unrecoverable, every process discards
//!   the waiting messages that (transitively) depend on the lost one —
//!   [`WaitingList::discard_dependents`].

use std::collections::HashMap;

use urcgc_types::{DataMsg, Mid, ProcessId, NO_SEQ};

/// Messages parked until their causal predecessors are processed.
#[derive(Clone, Debug, Default)]
pub struct WaitingList {
    entries: HashMap<Mid, DataMsg>,
}

impl WaitingList {
    /// An empty waiting list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of waiting messages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `mid` is currently waiting.
    pub fn contains(&self, mid: Mid) -> bool {
        self.entries.contains_key(&mid)
    }

    /// Parks `msg`. Re-inserting the same mid is idempotent (duplicate
    /// receptions are common under omission-recovery).
    pub fn park(&mut self, msg: DataMsg) {
        self.entries.entry(msg.mid).or_insert(msg);
    }

    /// Removes and returns the waiting messages whose dependencies are now
    /// all satisfied according to `is_processed`. Call repeatedly after each
    /// processing step: releasing one message can unblock others, and this
    /// method performs that fixpoint internally *only* for direct unblocking
    /// by `released` — the caller is expected to mark released messages
    /// processed and call again (the urcgc engine drives this loop).
    pub fn release_ready(&mut self, is_processed: impl Fn(Mid) -> bool) -> Vec<DataMsg> {
        let ready: Vec<Mid> = self
            .entries
            .values()
            .filter(|m| m.deps.iter().all(|&d| is_processed(d)))
            .map(|m| m.mid)
            .collect();
        let mut out: Vec<DataMsg> = ready
            .into_iter()
            .map(|mid| self.entries.remove(&mid).expect("just listed"))
            .collect();
        // Deterministic release order: by origin then seq. Within the urcgc
        // engine the real order is re-checked against the tracker anyway.
        out.sort_by_key(|m| m.mid);
        out
    }

    /// `waiting[q]`: the oldest (smallest-seq) waiting message originated by
    /// `q`, or [`NO_SEQ`] if none — the per-origin value sent to the
    /// coordinator each subrun.
    pub fn oldest_waiting(&self, q: ProcessId) -> u64 {
        self.entries
            .keys()
            .filter(|m| m.origin == q)
            .map(|m| m.seq)
            .min()
            .unwrap_or(NO_SEQ)
    }

    /// The full `waiting` vector for a request PDU.
    pub fn waiting_vector(&self, n: usize) -> Vec<u64> {
        (0..n)
            .map(|i| self.oldest_waiting(ProcessId::from_index(i)))
            .collect()
    }

    /// Discards every waiting message that depends — directly or through
    /// other *waiting* messages — on `root`, returning the discarded mids.
    /// This implements the destruction step of orphan-sequence elimination:
    /// "it removes the messages that depend on `max_processed[q] + 1`".
    ///
    /// `root` itself is also discarded if it is waiting.
    pub fn discard_dependents(&mut self, root: Mid) -> Vec<Mid> {
        let mut doomed: Vec<Mid> = Vec::new();
        if self.entries.contains_key(&root) {
            doomed.push(root);
        }
        loop {
            let mut grew = false;
            for (mid, msg) in &self.entries {
                if doomed.contains(mid) {
                    continue;
                }
                if msg.deps.iter().any(|d| *d == root || doomed.contains(d)) {
                    doomed.push(*mid);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        for mid in &doomed {
            self.entries.remove(mid);
        }
        doomed.sort();
        doomed
    }

    /// Discards messages from origin `q` with `seq >= from_seq` and all their
    /// waiting dependents. Convenience wrapper used when a whole suffix of a
    /// crashed origin's sequence is declared lost.
    pub fn discard_origin_suffix(&mut self, q: ProcessId, from_seq: u64) -> Vec<Mid> {
        let roots: Vec<Mid> = self
            .entries
            .keys()
            .filter(|m| m.origin == q && m.seq >= from_seq)
            .copied()
            .collect();
        let mut all = Vec::new();
        for root in roots {
            all.extend(self.discard_dependents(root));
        }
        all.sort();
        all.dedup();
        all
    }

    /// Iterates over the waiting messages in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &DataMsg> {
        self.entries.values()
    }

    /// All mids a waiting message is still blocked on, deduplicated — the
    /// recovery targets the engine asks the most-updated process for.
    pub fn blocking_mids(&self, is_processed: impl Fn(Mid) -> bool) -> Vec<Mid> {
        let mut out: Vec<Mid> = self
            .entries
            .values()
            .flat_map(|m| m.deps.iter().copied())
            .filter(|&d| !is_processed(d) && !self.entries.contains_key(&d))
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use urcgc_types::Round;

    fn msg(p: u16, s: u64, deps: &[(u16, u64)]) -> DataMsg {
        DataMsg {
            mid: Mid::new(ProcessId(p), s),
            deps: deps
                .iter()
                .map(|&(dp, ds)| Mid::new(ProcessId(dp), ds))
                .collect(),
            round: Round(0),
            payload: Bytes::new(),
        }
    }

    fn mid(p: u16, s: u64) -> Mid {
        Mid::new(ProcessId(p), s)
    }

    #[test]
    fn park_and_release_on_satisfied_deps() {
        let mut w = WaitingList::new();
        w.park(msg(1, 1, &[(0, 1)]));
        assert_eq!(w.len(), 1);
        let none = w.release_ready(|_| false);
        assert!(none.is_empty());
        let out = w.release_ready(|d| d == mid(0, 1));
        assert_eq!(out.len(), 1);
        assert!(w.is_empty());
    }

    #[test]
    fn park_is_idempotent() {
        let mut w = WaitingList::new();
        w.park(msg(1, 1, &[(0, 1)]));
        w.park(msg(1, 1, &[(0, 1)]));
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn release_is_sorted_by_mid() {
        let mut w = WaitingList::new();
        w.park(msg(2, 1, &[]));
        w.park(msg(0, 5, &[]));
        w.park(msg(0, 2, &[]));
        let out = w.release_ready(|_| true);
        let mids: Vec<_> = out.iter().map(|m| m.mid).collect();
        assert_eq!(mids, vec![mid(0, 2), mid(0, 5), mid(2, 1)]);
    }

    #[test]
    fn oldest_waiting_per_origin() {
        let mut w = WaitingList::new();
        w.park(msg(0, 7, &[(1, 1)]));
        w.park(msg(0, 3, &[(1, 1)]));
        w.park(msg(2, 9, &[(1, 1)]));
        assert_eq!(w.oldest_waiting(ProcessId(0)), 3);
        assert_eq!(w.oldest_waiting(ProcessId(1)), NO_SEQ);
        assert_eq!(w.oldest_waiting(ProcessId(2)), 9);
        assert_eq!(w.waiting_vector(3), vec![3, NO_SEQ, 9]);
    }

    #[test]
    fn discard_dependents_cascades() {
        let mut w = WaitingList::new();
        // Waiting chain: 1#2 ← 1#3 ← 2#1 ; plus unrelated 3#1.
        w.park(msg(1, 2, &[(1, 1)]));
        w.park(msg(1, 3, &[(1, 2)]));
        w.park(msg(2, 1, &[(1, 3)]));
        w.park(msg(3, 1, &[(0, 1)]));
        let doomed = w.discard_dependents(mid(1, 1));
        assert_eq!(doomed, vec![mid(1, 2), mid(1, 3), mid(2, 1)]);
        assert_eq!(w.len(), 1);
        assert!(w.contains(mid(3, 1)));
    }

    #[test]
    fn discard_root_itself_if_waiting() {
        let mut w = WaitingList::new();
        w.park(msg(1, 2, &[(1, 1)]));
        let doomed = w.discard_dependents(mid(1, 2));
        assert_eq!(doomed, vec![mid(1, 2)]);
    }

    #[test]
    fn discard_origin_suffix_hits_all_later_seqs() {
        let mut w = WaitingList::new();
        w.park(msg(1, 3, &[(1, 2)]));
        w.park(msg(1, 5, &[(1, 4)]));
        w.park(msg(2, 1, &[(1, 5)]));
        w.park(msg(0, 1, &[]));
        let doomed = w.discard_origin_suffix(ProcessId(1), 3);
        assert_eq!(doomed, vec![mid(1, 3), mid(1, 5), mid(2, 1)]);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn blocking_mids_excludes_parked_and_processed() {
        let mut w = WaitingList::new();
        w.park(msg(1, 2, &[(1, 1)])); // blocked on 1#1 (missing)
        w.park(msg(1, 3, &[(1, 2)])); // blocked on 1#2 (parked, not missing)
        w.park(msg(2, 1, &[(0, 1)])); // blocked on 0#1 (processed)
        let blocking = w.blocking_mids(|d| d == mid(0, 1));
        assert_eq!(blocking, vec![mid(1, 1)]);
    }
}
