//! Per-origin processing frontiers.
//!
//! A process `q` may process a received message only once it has processed
//! every message the new one causally depends on (Section 4). The tracker
//! records, per origin, which sequence numbers have been processed, in the
//! compressed form of a contiguous prefix plus an out-of-order overflow set
//! (the overflow set is only populated under the *general* causality
//! interpretation, where an origin's own messages may be concurrent).

use std::collections::BTreeSet;

use urcgc_types::{Mid, ProcessId, NO_SEQ};

/// Tracks which messages this process has processed.
#[derive(Clone, Debug)]
pub struct DeliveryTracker {
    /// Per origin: highest `s` such that all of `1..=s` are processed.
    prefix: Vec<u64>,
    /// Per origin: processed seqs beyond the contiguous prefix.
    beyond: Vec<BTreeSet<u64>>,
}

impl DeliveryTracker {
    /// A tracker for a group of `n` origins with nothing processed.
    pub fn new(n: usize) -> Self {
        DeliveryTracker {
            prefix: vec![NO_SEQ; n],
            beyond: vec![BTreeSet::new(); n],
        }
    }

    /// Group cardinality.
    pub fn n(&self) -> usize {
        self.prefix.len()
    }

    /// Whether `mid` has been processed.
    pub fn is_processed(&self, mid: Mid) -> bool {
        let i = mid.origin.index();
        if i >= self.n() || mid.seq == NO_SEQ {
            return false;
        }
        mid.seq <= self.prefix[i] || self.beyond[i].contains(&mid.seq)
    }

    /// Marks `mid` processed, compacting the prefix. Returns `false` if it
    /// was already processed.
    pub fn mark_processed(&mut self, mid: Mid) -> bool {
        let i = mid.origin.index();
        assert!(i < self.n(), "mid origin {} outside group", mid.origin);
        assert_ne!(mid.seq, NO_SEQ, "NO_SEQ is not a message");
        if self.is_processed(mid) {
            return false;
        }
        if mid.seq == self.prefix[i] + 1 {
            self.prefix[i] = mid.seq;
            // Absorb any out-of-order seqs that are now contiguous.
            while self.beyond[i].remove(&(self.prefix[i] + 1)) {
                self.prefix[i] += 1;
            }
        } else {
            self.beyond[i].insert(mid.seq);
        }
        true
    }

    /// Whether every dependency in `deps` has been processed — the paper's
    /// deliverability condition.
    pub fn deliverable(&self, deps: &[Mid]) -> bool {
        deps.iter().all(|&d| self.is_processed(d))
    }

    /// The dependencies in `deps` that are still missing.
    pub fn missing<'a>(&'a self, deps: &'a [Mid]) -> impl Iterator<Item = Mid> + 'a {
        deps.iter().copied().filter(move |&d| !self.is_processed(d))
    }

    /// `last_processed[q]` as reported in subrun requests: the contiguous
    /// processing prefix for origin `q`.
    pub fn last_processed(&self, q: ProcessId) -> u64 {
        self.prefix.get(q.index()).copied().unwrap_or(NO_SEQ)
    }

    /// The full `last_processed` vector carried by a request PDU.
    pub fn last_processed_vector(&self) -> Vec<u64> {
        self.prefix.clone()
    }

    /// Total number of messages processed.
    pub fn processed_count(&self) -> u64 {
        self.prefix.iter().sum::<u64>() + self.beyond.iter().map(|b| b.len() as u64).sum::<u64>()
    }

    /// Fast-forwards origin `q`'s prefix to at least `seq` (used when a
    /// decision orders the destruction of an unrecoverable gap: the group
    /// agrees to *skip* the lost messages and restart the sequence after
    /// them).
    pub fn skip_to(&mut self, q: ProcessId, seq: u64) {
        let i = q.index();
        if i >= self.n() {
            return;
        }
        if self.prefix[i] < seq {
            self.prefix[i] = seq;
            while self.beyond[i].remove(&(self.prefix[i] + 1)) {
                self.prefix[i] += 1;
            }
        }
        self.beyond[i].retain(|&s| s > self.prefix[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mid(p: u16, s: u64) -> Mid {
        Mid::new(ProcessId(p), s)
    }

    #[test]
    fn fresh_tracker_has_processed_nothing() {
        let t = DeliveryTracker::new(3);
        assert!(!t.is_processed(mid(0, 1)));
        assert_eq!(t.last_processed(ProcessId(0)), NO_SEQ);
        assert_eq!(t.processed_count(), 0);
    }

    #[test]
    fn prefix_advances_in_order() {
        let mut t = DeliveryTracker::new(2);
        assert!(t.mark_processed(mid(0, 1)));
        assert!(t.mark_processed(mid(0, 2)));
        assert_eq!(t.last_processed(ProcessId(0)), 2);
        assert!(!t.mark_processed(mid(0, 1)), "duplicate must report false");
    }

    #[test]
    fn out_of_order_absorbed_when_gap_fills() {
        let mut t = DeliveryTracker::new(1);
        t.mark_processed(mid(0, 3));
        t.mark_processed(mid(0, 2));
        assert_eq!(t.last_processed(ProcessId(0)), 0, "gap at 1 remains");
        assert!(t.is_processed(mid(0, 3)));
        t.mark_processed(mid(0, 1));
        assert_eq!(t.last_processed(ProcessId(0)), 3, "prefix compacts");
        assert_eq!(t.processed_count(), 3);
    }

    #[test]
    fn deliverable_checks_all_deps() {
        let mut t = DeliveryTracker::new(2);
        t.mark_processed(mid(0, 1));
        assert!(t.deliverable(&[mid(0, 1)]));
        assert!(!t.deliverable(&[mid(0, 1), mid(1, 1)]));
        assert!(t.deliverable(&[]), "no deps is trivially deliverable");
        let missing: Vec<_> = t.missing(&[mid(0, 1), mid(1, 1)]).collect();
        assert_eq!(missing, vec![mid(1, 1)]);
    }

    #[test]
    fn skip_to_jumps_gaps_and_absorbs_beyond() {
        let mut t = DeliveryTracker::new(1);
        t.mark_processed(mid(0, 5));
        t.skip_to(ProcessId(0), 4);
        assert_eq!(t.last_processed(ProcessId(0)), 5, "5 absorbed after skip");
        t.skip_to(ProcessId(0), 3);
        assert_eq!(t.last_processed(ProcessId(0)), 5, "skip never regresses");
    }

    #[test]
    fn unknown_origin_is_never_processed() {
        let t = DeliveryTracker::new(1);
        assert!(!t.is_processed(mid(9, 1)));
        assert_eq!(t.last_processed(ProcessId(9)), NO_SEQ);
    }

    #[test]
    #[should_panic(expected = "NO_SEQ")]
    fn marking_no_seq_panics() {
        let mut t = DeliveryTracker::new(1);
        t.mark_processed(mid(0, NO_SEQ));
    }

    #[test]
    fn last_processed_vector_matches_per_origin_queries() {
        let mut t = DeliveryTracker::new(3);
        t.mark_processed(mid(1, 1));
        t.mark_processed(mid(2, 1));
        t.mark_processed(mid(2, 2));
        assert_eq!(t.last_processed_vector(), vec![0, 1, 2]);
    }
}
