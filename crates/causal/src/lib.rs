#![warn(missing_docs)]

//! Causal-dependency machinery for the URCGC reproduction.
//!
//! Definition 3.1 of the paper makes causality an *application-published*
//! relation: a message carries its `mid` and the explicit list of mids it
//! causally depends on. This crate provides everything needed to work with
//! that relation:
//!
//! * [`CausalGraph`] — the DAG of published dependencies, with cycle
//!   rejection (Definition 3.1's acyclicity clause) and ancestry queries;
//! * [`DeliveryTracker`] — per-origin processing frontiers used to decide
//!   whether a received message's causes have all been processed;
//! * [`WaitingList`] — the holding pen for messages whose causes are still
//!   missing, including the cascading *discard dependents* operation used
//!   for orphan-sequence destruction (Section 4);
//! * [`Labeler`] — builds outgoing dependency lists under each of the three
//!   causality interpretations ([`CausalityMode`]);
//! * [`VectorClock`] — standard causal-history clocks, used by the CBCAST
//!   baseline and by tests as an independent oracle of causal order.
//!
//! ```
//! use urcgc_causal::{CausalGraph, DeliveryTracker};
//! use urcgc_types::{Mid, ProcessId};
//!
//! // p0#1 ← p1#1 (a reply), while p2#1 is concurrent with both.
//! let (a, b, c) = (
//!     Mid::new(ProcessId(0), 1),
//!     Mid::new(ProcessId(1), 1),
//!     Mid::new(ProcessId(2), 1),
//! );
//! let mut g = CausalGraph::new();
//! g.insert(a, &[]).unwrap();
//! g.insert(b, &[a]).unwrap();
//! g.insert(c, &[]).unwrap();
//! assert!(g.causally_precedes(a, b));
//! assert!(g.concurrent(b, c));
//!
//! // The tracker gates processing on published causes.
//! let mut t = DeliveryTracker::new(3);
//! assert!(!t.deliverable(&[a]));
//! t.mark_processed(a);
//! assert!(t.deliverable(&[a]));
//! ```

pub mod graph;
pub mod labeler;
pub mod tracker;
pub mod vclock;
pub mod waiting;

pub use graph::{CausalGraph, CycleError};
pub use labeler::Labeler;
pub use tracker::DeliveryTracker;
pub use vclock::VectorClock;
pub use waiting::{RescanWaitingList, WaitingList};

pub use urcgc_types::CausalityMode;
