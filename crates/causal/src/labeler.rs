//! Building outgoing dependency lists.
//!
//! Section 3 of the paper distinguishes three interpretations of
//! Definition 3.1; the [`Labeler`] implements all of them behind one
//! interface so the same application code runs under any
//! [`CausalityMode`]:
//!
//! * **General** — the application chooses the direct causes of every
//!   message; the labeler only validates them (they must name messages the
//!   process generated or processed, per points i/ii of Definition 3.1).
//! * **SingleRootPerProcess** (the paper's evaluation mode) — the labeler
//!   automatically chains the process's own messages into one sequence and
//!   adds the application-chosen foreign causes; a message thus depends on
//!   at most `n` others.
//! * **Temporal** — the labeler automatically depends each message on the
//!   latest known message of *every* origin (Lamport-style potential
//!   causality, as restricted CBCAST does), ignoring application choices.

use std::collections::HashSet;

use core::fmt;

use urcgc_types::{CausalityMode, Mid, ProcessId, NO_SEQ};

/// Rejected dependency lists.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LabelError {
    /// The application named a cause this process neither generated nor
    /// processed — such a relation is not "significant for p"
    /// (Definition 3.1).
    UnknownCause {
        /// The offending mid.
        cause: Mid,
    },
    /// The application named the message's own (future) mid as a cause.
    SelfCause {
        /// The offending mid.
        cause: Mid,
    },
}

impl fmt::Display for LabelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelError::UnknownCause { cause } => write!(
                f,
                "cause {cause} was neither generated nor processed by this process"
            ),
            LabelError::SelfCause { cause } => {
                write!(f, "message cannot causally depend on itself ({cause})")
            }
        }
    }
}

impl std::error::Error for LabelError {}

/// Stamps outgoing messages with mids and dependency lists.
#[derive(Clone, Debug)]
pub struct Labeler {
    me: ProcessId,
    mode: CausalityMode,
    /// Next sequence number this process will assign.
    next_seq: u64,
    /// Latest processed/generated seq per origin (potential-causality state;
    /// also serves as the known-message validator for General mode).
    latest: Vec<u64>,
    /// Out-of-order knowledge beyond the per-origin latest prefix (General
    /// mode can process an origin's concurrent messages in any order).
    known_extra: HashSet<Mid>,
}

impl Labeler {
    /// A labeler for process `me` in a group of `n`.
    pub fn new(me: ProcessId, n: usize, mode: CausalityMode) -> Self {
        assert!(me.index() < n, "labeler owner outside group");
        Labeler {
            me,
            mode,
            next_seq: 1,
            latest: vec![NO_SEQ; n],
            known_extra: HashSet::new(),
        }
    }

    /// The owning process.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// The causality mode in force.
    pub fn mode(&self) -> CausalityMode {
        self.mode
    }

    /// The mid the *next* generated message will receive.
    pub fn peek_next_mid(&self) -> Mid {
        Mid::new(self.me, self.next_seq)
    }

    /// Records that `mid` has been processed (or generated elsewhere and
    /// recovered); updates potential-causality state.
    pub fn note_processed(&mut self, mid: Mid) {
        let i = mid.origin.index();
        if i >= self.latest.len() {
            return;
        }
        if mid.seq == self.latest[i] + 1 {
            self.latest[i] = mid.seq;
            loop {
                let next = Mid::new(mid.origin, self.latest[i] + 1);
                if self.known_extra.remove(&next) {
                    self.latest[i] += 1;
                } else {
                    break;
                }
            }
        } else if mid.seq > self.latest[i] {
            self.known_extra.insert(mid);
        }
    }

    fn knows(&self, mid: Mid) -> bool {
        let i = mid.origin.index();
        i < self.latest.len() && (mid.seq <= self.latest[i] || self.known_extra.contains(&mid))
    }

    /// Assigns the next mid and builds the published dependency list from
    /// the application's `chosen` causes according to the mode. On success
    /// the labeler's own state advances (the new message becomes the
    /// process's latest own message).
    pub fn label(&mut self, chosen: &[Mid]) -> Result<(Mid, Vec<Mid>), LabelError> {
        let mid = Mid::new(self.me, self.next_seq);
        let deps = match self.mode {
            CausalityMode::General => {
                for &c in chosen {
                    if c == mid {
                        return Err(LabelError::SelfCause { cause: c });
                    }
                    if !self.knows(c) {
                        return Err(LabelError::UnknownCause { cause: c });
                    }
                }
                let mut deps = chosen.to_vec();
                deps.sort();
                deps.dedup();
                deps
            }
            CausalityMode::SingleRootPerProcess => {
                let mut deps: Vec<Mid> = Vec::new();
                // Own predecessor first: point i of Definition 3.1 under the
                // single-sequence restriction.
                if let Some(prev) = mid.predecessor() {
                    deps.push(prev);
                }
                for &c in chosen {
                    if c == mid {
                        return Err(LabelError::SelfCause { cause: c });
                    }
                    if c.origin == self.me {
                        // Own messages are already covered by the chain.
                        continue;
                    }
                    if !self.knows(c) {
                        return Err(LabelError::UnknownCause { cause: c });
                    }
                    deps.push(c);
                }
                deps.sort();
                deps.dedup();
                deps
            }
            CausalityMode::Temporal => {
                // Depend on the latest known message of every origin
                // (own predecessor included via latest[me]).
                let mut deps: Vec<Mid> = self
                    .latest
                    .iter()
                    .enumerate()
                    .filter(|(_, &s)| s != NO_SEQ)
                    .map(|(i, &s)| Mid::new(ProcessId::from_index(i), s))
                    .collect();
                deps.sort();
                deps
            }
        };
        self.next_seq += 1;
        // The sender processes its own message immediately (Section 4:
        // "broadcasts the message to the group and processes it").
        self.note_processed(mid);
        Ok((mid, deps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mid(p: u16, s: u64) -> Mid {
        Mid::new(ProcessId(p), s)
    }

    #[test]
    fn single_root_chains_own_messages() {
        let mut l = Labeler::new(ProcessId(0), 3, CausalityMode::SingleRootPerProcess);
        let (m1, d1) = l.label(&[]).unwrap();
        assert_eq!(m1, mid(0, 1));
        assert!(d1.is_empty());
        let (m2, d2) = l.label(&[]).unwrap();
        assert_eq!(m2, mid(0, 2));
        assert_eq!(d2, vec![mid(0, 1)]);
    }

    #[test]
    fn single_root_adds_foreign_causes() {
        let mut l = Labeler::new(ProcessId(0), 3, CausalityMode::SingleRootPerProcess);
        l.note_processed(mid(1, 1));
        let (_, deps) = l.label(&[mid(1, 1)]).unwrap();
        assert_eq!(deps, vec![mid(1, 1)]);
        // Own causes passed by the app are folded into the chain.
        let (_, deps) = l.label(&[mid(0, 1), mid(1, 1)]).unwrap();
        assert_eq!(deps, vec![mid(0, 1), mid(1, 1)]);
    }

    #[test]
    fn single_root_bounds_dep_count_by_n() {
        // "each message may depend on at most n other messages" (Section 3).
        let n = 5;
        let mut l = Labeler::new(ProcessId(0), n, CausalityMode::SingleRootPerProcess);
        for p in 1..n as u16 {
            for s in 1..=3 {
                l.note_processed(mid(p, s));
            }
        }
        l.label(&[]).unwrap();
        let chosen: Vec<Mid> = (1..n as u16).map(|p| mid(p, 3)).collect();
        let (_, deps) = l.label(&chosen).unwrap();
        assert!(deps.len() <= n);
    }

    #[test]
    fn general_mode_trusts_but_verifies() {
        let mut l = Labeler::new(ProcessId(0), 3, CausalityMode::General);
        l.note_processed(mid(2, 1));
        let (m1, d1) = l.label(&[mid(2, 1)]).unwrap();
        assert_eq!(d1, vec![mid(2, 1)]);
        // General mode: a second message may be concurrent with the first
        // (no automatic own-chain).
        let (_, d2) = l.label(&[]).unwrap();
        assert!(d2.is_empty());
        assert_eq!(
            l.label(&[mid(1, 5)]),
            Err(LabelError::UnknownCause { cause: mid(1, 5) }),
        );
        let _ = m1;
    }

    #[test]
    fn general_mode_rejects_self_cause() {
        let mut l = Labeler::new(ProcessId(0), 2, CausalityMode::General);
        let next = l.peek_next_mid();
        assert_eq!(l.label(&[next]), Err(LabelError::SelfCause { cause: next }),);
        // Failed label must not consume the seq.
        assert_eq!(l.peek_next_mid(), next);
    }

    #[test]
    fn temporal_mode_depends_on_everything_known() {
        let mut l = Labeler::new(ProcessId(0), 3, CausalityMode::Temporal);
        l.note_processed(mid(1, 2)); // out of order: unknown prefix
        l.note_processed(mid(1, 1));
        l.note_processed(mid(2, 1));
        let (_, deps) = l.label(&[]).unwrap();
        assert_eq!(deps, vec![mid(1, 2), mid(2, 1)]);
        // Second message now also depends on own first.
        let (_, deps) = l.label(&[mid(9, 9)]).unwrap(); // chosen ignored
        assert_eq!(deps, vec![mid(0, 1), mid(1, 2), mid(2, 1)]);
    }

    #[test]
    fn note_processed_compacts_prefix() {
        let mut l = Labeler::new(ProcessId(0), 2, CausalityMode::Temporal);
        l.note_processed(mid(1, 3));
        l.note_processed(mid(1, 1));
        l.note_processed(mid(1, 2));
        let (_, deps) = l.label(&[]).unwrap();
        assert_eq!(deps, vec![mid(1, 3)]);
    }

    #[test]
    fn deps_are_sorted_and_deduped() {
        let mut l = Labeler::new(ProcessId(0), 4, CausalityMode::General);
        l.note_processed(mid(3, 1));
        l.note_processed(mid(1, 1));
        let (_, deps) = l.label(&[mid(3, 1), mid(1, 1), mid(3, 1)]).unwrap();
        assert_eq!(deps, vec![mid(1, 1), mid(3, 1)]);
    }

    #[test]
    #[should_panic(expected = "outside group")]
    fn owner_must_be_group_member() {
        let _ = Labeler::new(ProcessId(5), 3, CausalityMode::General);
    }

    #[test]
    fn label_errors_display() {
        let e = LabelError::UnknownCause { cause: mid(1, 2) };
        assert!(e.to_string().contains("p1#2"));
        let e = LabelError::SelfCause { cause: mid(0, 1) };
        assert!(e.to_string().contains("itself"));
    }
}
