//! The published causal-dependency DAG.
//!
//! Definition 3.1 requires the relation `→p` to be acyclic and closes it
//! transitively. [`CausalGraph`] stores the *direct* dependencies each
//! message publishes and answers ancestry (transitive-closure) queries on
//! demand. It is used by tests and verification harnesses as the ground
//! truth of "msg →p msg′", and by applications running in
//! [`CausalityMode::General`](urcgc_types::CausalityMode::General) to
//! validate hand-built dependency lists before sending.

use std::collections::{HashMap, HashSet, VecDeque};

use core::fmt;

use urcgc_types::Mid;

/// Inserting a message whose dependency list would create a cycle (or a
/// self-dependency) violates Definition 3.1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleError {
    /// The message whose insertion was rejected.
    pub mid: Mid,
    /// A dependency through which the cycle closes.
    pub via: Mid,
}

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "inserting {} with dependency {} would create a causal cycle",
            self.mid, self.via
        )
    }
}

impl std::error::Error for CycleError {}

/// A DAG over mids, edges pointing from a message to its direct causes.
#[derive(Clone, Debug, Default)]
pub struct CausalGraph {
    deps: HashMap<Mid, Vec<Mid>>,
}

impl CausalGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of messages recorded.
    pub fn len(&self) -> usize {
        self.deps.len()
    }

    /// Whether no messages are recorded.
    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }

    /// Whether `mid` is recorded.
    pub fn contains(&self, mid: Mid) -> bool {
        self.deps.contains_key(&mid)
    }

    /// The direct causes `mid` published, if recorded.
    pub fn direct_deps(&self, mid: Mid) -> Option<&[Mid]> {
        self.deps.get(&mid).map(Vec::as_slice)
    }

    /// Records `mid` with its published direct causes.
    ///
    /// Dependencies on messages not (yet) recorded are allowed — messages
    /// arrive in arbitrary network order — but a dependency path from any
    /// *recorded* cause back to `mid` is rejected, as is `mid` depending on
    /// itself. Re-inserting an identical `mid` is idempotent; re-inserting
    /// with different deps keeps the original (mids are immutable once
    /// published).
    pub fn insert(&mut self, mid: Mid, deps: &[Mid]) -> Result<(), CycleError> {
        if self.deps.contains_key(&mid) {
            return Ok(());
        }
        for &d in deps {
            if d == mid {
                return Err(CycleError { mid, via: d });
            }
            if self.reaches(d, mid) {
                return Err(CycleError { mid, via: d });
            }
        }
        self.deps.insert(mid, deps.to_vec());
        Ok(())
    }

    /// Whether a dependency path leads from `from` to `to` (i.e. `to` is a
    /// causal ancestor of `from`), following only recorded edges.
    pub fn reaches(&self, from: Mid, to: Mid) -> bool {
        if from == to {
            return true;
        }
        let mut seen = HashSet::new();
        let mut queue = VecDeque::from([from]);
        while let Some(cur) = queue.pop_front() {
            if let Some(ds) = self.deps.get(&cur) {
                for &d in ds {
                    if d == to {
                        return true;
                    }
                    if seen.insert(d) {
                        queue.push_back(d);
                    }
                }
            }
        }
        false
    }

    /// Whether `a →p b` under the transitive closure of the recorded
    /// dependencies (strict: `a != b` required).
    pub fn causally_precedes(&self, a: Mid, b: Mid) -> bool {
        a != b && self.reaches(b, a)
    }

    /// All recorded causal ancestors of `mid` (not including `mid`).
    pub fn ancestors(&self, mid: Mid) -> HashSet<Mid> {
        let mut out = HashSet::new();
        let mut queue = VecDeque::from([mid]);
        while let Some(cur) = queue.pop_front() {
            if let Some(ds) = self.deps.get(&cur) {
                for &d in ds {
                    if out.insert(d) {
                        queue.push_back(d);
                    }
                }
            }
        }
        out
    }

    /// All recorded messages that causally depend (directly or transitively)
    /// on `root`, not including `root` itself. This is the set destroyed by
    /// orphan-sequence elimination.
    pub fn descendants(&self, root: Mid) -> HashSet<Mid> {
        // Dependencies point child → parent; walk the reverse relation.
        let mut out = HashSet::new();
        loop {
            let mut grew = false;
            for (&m, ds) in &self.deps {
                if out.contains(&m) || m == root {
                    continue;
                }
                if ds.iter().any(|d| *d == root || out.contains(d)) {
                    out.insert(m);
                    grew = true;
                }
            }
            if !grew {
                return out;
            }
        }
    }

    /// Removes `mid` and returns whether it was present. Edges from other
    /// messages to `mid` remain (they describe published history).
    pub fn remove(&mut self, mid: Mid) -> bool {
        self.deps.remove(&mid).is_some()
    }

    /// Whether `a` and `b` are concurrent: neither causally precedes the
    /// other. Concurrent messages may be processed in any relative order —
    /// this is the concurrency the paper's general interpretation preserves.
    pub fn concurrent(&self, a: Mid, b: Mid) -> bool {
        a != b && !self.causally_precedes(a, b) && !self.causally_precedes(b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urcgc_types::ProcessId;

    fn mid(p: u16, s: u64) -> Mid {
        Mid::new(ProcessId(p), s)
    }

    #[test]
    fn linear_chain_precedence() {
        let mut g = CausalGraph::new();
        g.insert(mid(0, 1), &[]).unwrap();
        g.insert(mid(0, 2), &[mid(0, 1)]).unwrap();
        g.insert(mid(0, 3), &[mid(0, 2)]).unwrap();
        assert!(g.causally_precedes(mid(0, 1), mid(0, 3)));
        assert!(!g.causally_precedes(mid(0, 3), mid(0, 1)));
        assert!(!g.causally_precedes(mid(0, 1), mid(0, 1)));
    }

    #[test]
    fn cross_process_dependency() {
        let mut g = CausalGraph::new();
        g.insert(mid(0, 1), &[]).unwrap();
        g.insert(mid(1, 1), &[mid(0, 1)]).unwrap();
        assert!(g.causally_precedes(mid(0, 1), mid(1, 1)));
        assert!(!g.concurrent(mid(0, 1), mid(1, 1)));
    }

    #[test]
    fn concurrent_messages_detected() {
        let mut g = CausalGraph::new();
        g.insert(mid(0, 1), &[]).unwrap();
        g.insert(mid(1, 1), &[]).unwrap();
        assert!(g.concurrent(mid(0, 1), mid(1, 1)));
    }

    #[test]
    fn self_dependency_rejected() {
        let mut g = CausalGraph::new();
        let err = g.insert(mid(0, 1), &[mid(0, 1)]).unwrap_err();
        assert_eq!(err.mid, mid(0, 1));
    }

    #[test]
    fn cycle_rejected() {
        let mut g = CausalGraph::new();
        g.insert(mid(0, 1), &[mid(1, 1)]).unwrap(); // dep on not-yet-seen ok
                                                    // Now 1#1 depending on 0#1 would close the cycle.
        let err = g.insert(mid(1, 1), &[mid(0, 1)]).unwrap_err();
        assert_eq!(err.via, mid(0, 1));
    }

    #[test]
    fn reinsert_is_idempotent_and_keeps_original() {
        let mut g = CausalGraph::new();
        g.insert(mid(0, 1), &[]).unwrap();
        g.insert(mid(0, 2), &[mid(0, 1)]).unwrap();
        g.insert(mid(0, 2), &[]).unwrap(); // ignored
        assert_eq!(g.direct_deps(mid(0, 2)).unwrap(), &[mid(0, 1)]);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn ancestors_and_descendants_are_inverse_views() {
        let mut g = CausalGraph::new();
        g.insert(mid(0, 1), &[]).unwrap();
        g.insert(mid(1, 1), &[mid(0, 1)]).unwrap();
        g.insert(mid(2, 1), &[mid(1, 1)]).unwrap();
        g.insert(mid(3, 1), &[]).unwrap(); // unrelated
        let anc = g.ancestors(mid(2, 1));
        assert_eq!(anc, [mid(0, 1), mid(1, 1)].into_iter().collect());
        let desc = g.descendants(mid(0, 1));
        assert_eq!(desc, [mid(1, 1), mid(2, 1)].into_iter().collect());
        assert!(g.descendants(mid(3, 1)).is_empty());
    }

    #[test]
    fn diamond_closure() {
        // 0#1 ← {1#1, 2#1} ← 3#1 : classic diamond.
        let mut g = CausalGraph::new();
        g.insert(mid(0, 1), &[]).unwrap();
        g.insert(mid(1, 1), &[mid(0, 1)]).unwrap();
        g.insert(mid(2, 1), &[mid(0, 1)]).unwrap();
        g.insert(mid(3, 1), &[mid(1, 1), mid(2, 1)]).unwrap();
        assert!(g.causally_precedes(mid(0, 1), mid(3, 1)));
        assert!(g.concurrent(mid(1, 1), mid(2, 1)));
        assert_eq!(g.descendants(mid(0, 1)).len(), 3);
    }

    #[test]
    fn remove_keeps_other_nodes() {
        let mut g = CausalGraph::new();
        g.insert(mid(0, 1), &[]).unwrap();
        g.insert(mid(0, 2), &[mid(0, 1)]).unwrap();
        assert!(g.remove(mid(0, 1)));
        assert!(!g.remove(mid(0, 1)));
        assert!(g.contains(mid(0, 2)));
    }

    #[test]
    fn cycle_error_displays_both_mids() {
        let e = CycleError {
            mid: mid(0, 1),
            via: mid(1, 2),
        };
        let s = e.to_string();
        assert!(s.contains("p0#1") && s.contains("p1#2"));
    }
}

impl CausalGraph {
    /// Produces a causal linearization of all recorded messages: an order
    /// in which every message appears after all of its *recorded* causes
    /// (dependencies on unrecorded mids are treated as already satisfied —
    /// they refer to history outside the batch). Deterministic: ties are
    /// broken by mid order. Useful for replaying a batch of messages (for
    /// example a recovered history range) through application state.
    pub fn linearize(&self) -> Vec<Mid> {
        let mut remaining: HashMap<Mid, usize> = self
            .deps
            .iter()
            .map(|(&m, ds)| {
                let unsatisfied = ds.iter().filter(|d| self.deps.contains_key(d)).count();
                (m, unsatisfied)
            })
            .collect();
        // Ready set kept sorted for determinism.
        let mut ready: std::collections::BTreeSet<Mid> = remaining
            .iter()
            .filter(|(_, &c)| c == 0)
            .map(|(&m, _)| m)
            .collect();
        let mut out = Vec::with_capacity(self.deps.len());
        while let Some(&next) = ready.iter().next() {
            ready.remove(&next);
            out.push(next);
            // Decrement every message that lists `next` as a cause.
            for (&m, ds) in &self.deps {
                if ds.contains(&next) {
                    if let Some(c) = remaining.get_mut(&m) {
                        *c -= 1;
                        if *c == 0 {
                            ready.insert(m);
                        }
                    }
                }
            }
        }
        debug_assert_eq!(out.len(), self.deps.len(), "graph must be acyclic");
        out
    }
}

#[cfg(test)]
mod linearize_tests {
    use super::*;
    use urcgc_types::ProcessId;

    fn mid(p: u16, s: u64) -> Mid {
        Mid::new(ProcessId(p), s)
    }

    #[test]
    fn linearization_respects_all_edges() {
        let mut g = CausalGraph::new();
        g.insert(mid(0, 1), &[]).unwrap();
        g.insert(mid(1, 1), &[mid(0, 1)]).unwrap();
        g.insert(mid(2, 1), &[mid(0, 1)]).unwrap();
        g.insert(mid(0, 2), &[mid(1, 1), mid(2, 1)]).unwrap();
        let order = g.linearize();
        assert_eq!(order.len(), 4);
        let pos = |m: Mid| order.iter().position(|&x| x == m).unwrap();
        assert!(pos(mid(0, 1)) < pos(mid(1, 1)));
        assert!(pos(mid(0, 1)) < pos(mid(2, 1)));
        assert!(pos(mid(1, 1)) < pos(mid(0, 2)));
        assert!(pos(mid(2, 1)) < pos(mid(0, 2)));
    }

    #[test]
    fn unrecorded_deps_are_treated_as_satisfied() {
        let mut g = CausalGraph::new();
        // Depends on p9#9, which is not part of the batch.
        g.insert(mid(0, 1), &[mid(9, 9)]).unwrap();
        assert_eq!(g.linearize(), vec![mid(0, 1)]);
    }

    #[test]
    fn linearization_is_deterministic() {
        let mut g = CausalGraph::new();
        for p in 0..4u16 {
            g.insert(mid(p, 1), &[]).unwrap();
        }
        assert_eq!(
            g.linearize(),
            vec![mid(0, 1), mid(1, 1), mid(2, 1), mid(3, 1)]
        );
    }
}
