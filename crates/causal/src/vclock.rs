//! Vector clocks.
//!
//! Used by the CBCAST baseline (Birman, Schiper, Stephenson 1991) — whose
//! causal delivery condition is expressed on vector timestamps — and by the
//! test suites as an *independent oracle*: vector-clock order must agree
//! with the explicit-dependency order the urcgc engine enforces whenever the
//! latter runs in temporal mode.

use core::cmp::Ordering;
use core::fmt;

use urcgc_types::ProcessId;

/// A fixed-width vector clock over a group of `n` processes.
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub struct VectorClock {
    v: Vec<u64>,
}

impl VectorClock {
    /// The zero clock for a group of `n`.
    pub fn zero(n: usize) -> Self {
        VectorClock { v: vec![0; n] }
    }

    /// Builds a clock from explicit components.
    pub fn from_components(v: Vec<u64>) -> Self {
        VectorClock { v }
    }

    /// Group cardinality.
    pub fn n(&self) -> usize {
        self.v.len()
    }

    /// Component for process `p`.
    pub fn get(&self, p: ProcessId) -> u64 {
        self.v.get(p.index()).copied().unwrap_or(0)
    }

    /// Raw components.
    pub fn components(&self) -> &[u64] {
        &self.v
    }

    /// Increments `p`'s component (local event / send at `p`).
    pub fn tick(&mut self, p: ProcessId) {
        self.v[p.index()] += 1;
    }

    /// Component-wise maximum (merge on receive).
    pub fn merge(&mut self, other: &VectorClock) {
        assert_eq!(self.n(), other.n(), "clock width mismatch");
        for (a, b) in self.v.iter_mut().zip(&other.v) {
            *a = (*a).max(*b);
        }
    }

    /// Causal comparison: `Some(Less)` iff `self → other`,
    /// `Some(Greater)` iff `other → self`, `Some(Equal)` iff identical,
    /// `None` iff concurrent.
    pub fn causal_cmp(&self, other: &VectorClock) -> Option<Ordering> {
        assert_eq!(self.n(), other.n(), "clock width mismatch");
        let mut le = true;
        let mut ge = true;
        for (a, b) in self.v.iter().zip(&other.v) {
            if a > b {
                le = false;
            }
            if a < b {
                ge = false;
            }
        }
        match (le, ge) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (false, false) => None,
        }
    }

    /// Whether `self` happened-before `other` (strictly).
    pub fn happened_before(&self, other: &VectorClock) -> bool {
        matches!(self.causal_cmp(other), Some(Ordering::Less))
    }

    /// Whether the clocks are concurrent.
    pub fn concurrent(&self, other: &VectorClock) -> bool {
        self.causal_cmp(other).is_none()
    }

    /// CBCAST deliverability: a message stamped `msg_ts` from `sender` is
    /// deliverable at a process whose clock is `self` iff
    /// `msg_ts[sender] == self[sender] + 1` and
    /// `msg_ts[k] <= self[k]` for every `k != sender`.
    pub fn cbcast_deliverable(&self, msg_ts: &VectorClock, sender: ProcessId) -> bool {
        assert_eq!(self.n(), msg_ts.n(), "clock width mismatch");
        for i in 0..self.n() {
            let p = ProcessId::from_index(i);
            if p == sender {
                if msg_ts.v[i] != self.v[i] + 1 {
                    return false;
                }
            } else if msg_ts.v[i] > self.v[i] {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, c) in self.v.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc(v: &[u64]) -> VectorClock {
        VectorClock::from_components(v.to_vec())
    }

    #[test]
    fn zero_clock_is_equal_to_itself() {
        let a = VectorClock::zero(3);
        assert_eq!(a.causal_cmp(&a), Some(Ordering::Equal));
    }

    #[test]
    fn tick_establishes_happened_before() {
        let a = VectorClock::zero(2);
        let mut b = a.clone();
        b.tick(ProcessId(0));
        assert!(a.happened_before(&b));
        assert!(!b.happened_before(&a));
    }

    #[test]
    fn divergent_ticks_are_concurrent() {
        let mut a = VectorClock::zero(2);
        let mut b = VectorClock::zero(2);
        a.tick(ProcessId(0));
        b.tick(ProcessId(1));
        assert!(a.concurrent(&b));
        assert_eq!(a.causal_cmp(&b), None);
    }

    #[test]
    fn merge_takes_componentwise_max() {
        let mut a = vc(&[3, 0, 1]);
        a.merge(&vc(&[1, 2, 1]));
        assert_eq!(a.components(), &[3, 2, 1]);
    }

    #[test]
    fn cbcast_delivery_in_order() {
        // Receiver has seen nothing; sender p0's first message (ts [1,0]) is
        // deliverable, its second (ts [2,0]) is not.
        let recv = VectorClock::zero(2);
        assert!(recv.cbcast_deliverable(&vc(&[1, 0]), ProcessId(0)));
        assert!(!recv.cbcast_deliverable(&vc(&[2, 0]), ProcessId(0)));
    }

    #[test]
    fn cbcast_delivery_waits_for_causal_context() {
        // p1's message was sent after seeing p0's first message: ts [1,1].
        // A receiver that hasn't delivered p0#1 yet must wait.
        let recv = VectorClock::zero(2);
        assert!(!recv.cbcast_deliverable(&vc(&[1, 1]), ProcessId(1)));
        let recv = vc(&[1, 0]);
        assert!(recv.cbcast_deliverable(&vc(&[1, 1]), ProcessId(1)));
    }

    #[test]
    fn get_out_of_range_is_zero() {
        let a = VectorClock::zero(2);
        assert_eq!(a.get(ProcessId(7)), 0);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mismatched_widths_panic() {
        let a = VectorClock::zero(2);
        let b = VectorClock::zero(3);
        let _ = a.causal_cmp(&b);
    }

    #[test]
    fn display_renders_components() {
        assert_eq!(vc(&[1, 0, 2]).to_string(), "⟨1,0,2⟩");
    }
}
