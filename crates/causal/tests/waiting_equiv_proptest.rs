//! Differential property tests: the indexed [`WaitingList`] is
//! observationally equivalent to the original full-rescan implementation
//! ([`RescanWaitingList`]) under random park/process interleavings.
//!
//! The engine's correctness oracle is release-*order* determinism — the
//! sweep JSON is compared bitwise across the refactor — so these tests pin
//! the strongest claim: for any valid dependency DAG and any arrival
//! permutation, both implementations release exactly the same messages in
//! exactly the same order, report the same `oldest_waiting` values, the
//! same `blocking_mids`, and discard the same transitive-dependent sets.

use std::sync::Arc;

use bytes::Bytes;
use proptest::prelude::*;
use urcgc_causal::{DeliveryTracker, RescanWaitingList, WaitingList};
use urcgc_types::{DataMsg, Mid, ProcessId, Round};

const N_ORIGINS: u16 = 4;

fn mid(p: u16, s: u64) -> Mid {
    Mid::new(ProcessId(p), s)
}

/// A random batch of messages with valid (already-generated) dependencies,
/// including occasional deps on mids that are never generated (standing in
/// for messages lost on the wire — those keep entries parked forever).
fn arb_batch(n_msgs: usize) -> impl Strategy<Value = Vec<(Mid, Vec<Mid>)>> {
    prop::collection::vec(
        (
            0u16..N_ORIGINS,
            prop::collection::vec(any::<prop::sample::Index>(), 0..3),
            any::<u8>(),
        ),
        1..n_msgs,
    )
    .prop_map(|specs| {
        let mut out: Vec<(Mid, Vec<Mid>)> = Vec::new();
        let mut next_seq = [0u64; N_ORIGINS as usize];
        for (i, (p, dep_picks, lost_roll)) in specs.into_iter().enumerate() {
            let lost_dep = lost_roll < 38; // ~15% of messages dep on a lost mid
            next_seq[p as usize] += 1;
            let m = mid(p, next_seq[p as usize]);
            let mut deps: Vec<Mid> = if out.is_empty() {
                vec![]
            } else {
                dep_picks
                    .iter()
                    .map(|ix| out[ix.index(out.len())].0)
                    .collect()
            };
            if lost_dep {
                // A dep nobody will ever send: origin 0, far-future seq.
                deps.push(mid(0, 1_000 + i as u64));
            }
            deps.sort();
            deps.dedup();
            out.push((m, deps));
        }
        out
    })
}

fn shuffled(len: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..len).collect();
    let mut state = seed;
    for i in (1..order.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    order
}

fn data(m: Mid, deps: &[Mid]) -> Arc<DataMsg> {
    Arc::new(DataMsg {
        mid: m,
        deps: deps.to_vec(),
        round: Round(0),
        payload: Bytes::new(),
    })
}

proptest! {
    /// Feed the same arrival permutation through both implementations,
    /// driving each exactly the way the engine does (indexed: wave-based
    /// wake cascade; rescan: release_ready fixpoint). The processed-mid
    /// sequences must be identical, as must every observable left behind.
    #[test]
    fn indexed_release_equals_rescan_release(
        batch in arb_batch(24),
        shuffle_seed in any::<u64>(),
    ) {
        let order = shuffled(batch.len(), shuffle_seed);

        // Indexed implementation, wave-based drain (engine's new loop).
        let mut t_new = DeliveryTracker::new(N_ORIGINS as usize);
        let mut w_new = WaitingList::new();
        let mut order_new: Vec<Mid> = Vec::new();
        for &ix in &order {
            let (m, deps) = &batch[ix];
            let msg = data(*m, deps);
            if t_new.deliverable(&msg.deps) {
                if t_new.mark_processed(msg.mid) {
                    order_new.push(msg.mid);
                }
                let mut wave = w_new.wake(msg.mid);
                while !wave.is_empty() {
                    let mut next = Vec::new();
                    for r in wave {
                        if t_new.mark_processed(r.mid) {
                            order_new.push(r.mid);
                        }
                        next.extend(w_new.wake(r.mid));
                    }
                    next.sort_by_key(|x| x.mid);
                    wave = next;
                }
            } else {
                let t = &t_new;
                prop_assert!(w_new.park(msg, |d| t.is_processed(d)));
            }
        }

        // Rescan implementation, release_ready fixpoint (engine's old loop).
        let mut t_old = DeliveryTracker::new(N_ORIGINS as usize);
        let mut w_old = RescanWaitingList::new();
        let mut order_old: Vec<Mid> = Vec::new();
        for &ix in &order {
            let (m, deps) = &batch[ix];
            let msg = data(*m, deps);
            if t_old.deliverable(&msg.deps) {
                if t_old.mark_processed(msg.mid) {
                    order_old.push(msg.mid);
                }
                loop {
                    let t = &t_old;
                    let ready = w_old.release_ready(|d| t.is_processed(d));
                    if ready.is_empty() {
                        break;
                    }
                    for r in ready {
                        if t_old.mark_processed(r.mid) {
                            order_old.push(r.mid);
                        }
                    }
                }
            } else {
                w_old.park(msg);
            }
        }

        // Same releases, same order — the determinism oracle.
        prop_assert_eq!(&order_new, &order_old);
        // Same residue: stuck messages, per-origin oldest, blocking deps.
        prop_assert_eq!(w_new.len(), w_old.len());
        let mut stuck_new: Vec<Mid> = w_new.iter().map(|m| m.mid).collect();
        let mut stuck_old: Vec<Mid> = w_old.iter().map(|m| m.mid).collect();
        stuck_new.sort();
        stuck_old.sort();
        prop_assert_eq!(stuck_new, stuck_old);
        for p in 0..N_ORIGINS {
            prop_assert_eq!(
                w_new.oldest_waiting(ProcessId(p)),
                w_old.oldest_waiting(ProcessId(p)),
                "oldest_waiting diverges for origin {}", p
            );
        }
        let tn = &t_new;
        let to = &t_old;
        prop_assert_eq!(
            w_new.blocking_mids(|d| tn.is_processed(d)),
            w_old.blocking_mids(|d| to.is_processed(d))
        );
    }

    /// Orphan destruction removes the same transitive set from both
    /// implementations, and what remains still releases identically.
    #[test]
    fn indexed_discard_equals_rescan_discard(
        batch in arb_batch(20),
        root_pick in any::<prop::sample::Index>(),
    ) {
        let mut w_new = WaitingList::new();
        let mut w_old = RescanWaitingList::new();
        for (m, deps) in &batch {
            let msg = data(*m, deps);
            // Park everything parkable; dep-free messages are deliverable
            // and the rescan list would release them on the first call, so
            // keep them out of both lists for a like-for-like discard.
            if w_new.park(Arc::clone(&msg), |_| false) {
                w_old.park(msg);
            }
        }
        let root = batch[root_pick.index(batch.len())].0;
        let doomed_new = w_new.discard_dependents(root);
        let doomed_old = w_old.discard_dependents(root);
        prop_assert_eq!(&doomed_new, &doomed_old);

        // Survivors must still agree on a full drain.
        let released_new = {
            let mut out = Vec::new();
            let mut wave: Vec<Arc<DataMsg>> = Vec::new();
            // Wake every possible dep (brute-force drain for the test).
            let mut deps: Vec<Mid> = w_new.blocking_mids(|_| false);
            deps.extend(w_new.iter().map(|m| m.mid).collect::<Vec<_>>());
            deps.sort();
            for d in deps {
                wave.extend(w_new.wake(d));
            }
            wave.sort_by_key(|m| m.mid);
            while !wave.is_empty() {
                let mut next = Vec::new();
                for r in wave {
                    out.push(r.mid);
                    next.extend(w_new.wake(r.mid));
                }
                next.sort_by_key(|x| x.mid);
                wave = next;
            }
            out
        };
        let released_old = {
            let mut out: Vec<Mid> = Vec::new();
            loop {
                let ready = w_old.release_ready(|_| true);
                if ready.is_empty() {
                    break;
                }
                out.extend(ready.iter().map(|m| m.mid));
            }
            out
        };
        // Both drains must empty the survivor sets and agree as sets (the
        // brute-force wake order differs from release_ready's single wave).
        prop_assert!(w_new.is_empty());
        prop_assert!(w_old.is_empty());
        let mut set_new = released_new;
        let mut set_old = released_old;
        set_new.sort();
        set_old.sort();
        prop_assert_eq!(set_new, set_old);
    }
}
