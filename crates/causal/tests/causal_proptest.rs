//! Property tests for the causal machinery: DAG invariants, tracker/waiting
//! interplay, and agreement between the explicit-dependency order and the
//! vector-clock oracle under temporal labeling.

use bytes::Bytes;
use proptest::prelude::*;
use urcgc_causal::{CausalGraph, DeliveryTracker, Labeler, VectorClock, WaitingList};
use urcgc_types::{CausalityMode, DataMsg, Mid, ProcessId, Round};

fn mid(p: u16, s: u64) -> Mid {
    Mid::new(ProcessId(p), s)
}

/// A random batch of messages with valid (already-inserted) dependencies.
fn arb_dag(n_msgs: usize) -> impl Strategy<Value = Vec<(Mid, Vec<Mid>)>> {
    prop::collection::vec(
        (
            0u16..4,
            prop::collection::vec(any::<prop::sample::Index>(), 0..3),
        ),
        1..n_msgs,
    )
    .prop_map(|specs| {
        let mut out: Vec<(Mid, Vec<Mid>)> = Vec::new();
        let mut next_seq = [0u64; 4];
        for (p, dep_picks) in specs {
            next_seq[p as usize] += 1;
            let m = mid(p, next_seq[p as usize]);
            let deps: Vec<Mid> = if out.is_empty() {
                vec![]
            } else {
                let mut d: Vec<Mid> = dep_picks
                    .iter()
                    .map(|ix| out[ix.index(out.len())].0)
                    .collect();
                d.sort();
                d.dedup();
                d
            };
            out.push((m, deps));
        }
        out
    })
}

proptest! {
    /// Inserting messages whose deps reference only earlier messages never
    /// produces a cycle, and ancestry is antisymmetric.
    #[test]
    fn dag_insertion_never_cycles(batch in arb_dag(24)) {
        let mut g = CausalGraph::new();
        for (m, deps) in &batch {
            g.insert(*m, deps).expect("forward-only deps cannot cycle");
        }
        for (a, _) in &batch {
            for (b, _) in &batch {
                if a != b {
                    prop_assert!(
                        !(g.causally_precedes(*a, *b) && g.causally_precedes(*b, *a)),
                        "both {a} -> {b} and {b} -> {a}"
                    );
                }
            }
        }
    }

    /// descendants() and ancestors() are inverse relations.
    #[test]
    fn descendants_inverse_of_ancestors(batch in arb_dag(16)) {
        let mut g = CausalGraph::new();
        for (m, deps) in &batch {
            g.insert(*m, deps).unwrap();
        }
        for (m, _) in &batch {
            for anc in g.ancestors(*m) {
                prop_assert!(g.descendants(anc).contains(m));
            }
        }
    }

    /// Feeding any permutation of a valid DAG through tracker + waiting
    /// list processes *everything*, and every message only after its deps.
    #[test]
    fn tracker_and_waiting_release_everything_in_causal_order(
        batch in arb_dag(20),
        shuffle_seed in any::<u64>(),
    ) {
        // Deterministic Fisher-Yates with a splitmix stream.
        let mut order: Vec<usize> = (0..batch.len()).collect();
        let mut state = shuffle_seed;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }

        let mut tracker = DeliveryTracker::new(4);
        let mut waiting = WaitingList::new();
        let mut processed_order: Vec<Mid> = Vec::new();
        for &ix in &order {
            let (m, deps) = &batch[ix];
            let msg = std::sync::Arc::new(DataMsg {
                mid: *m,
                deps: deps.clone(),
                round: Round(0),
                payload: Bytes::new(),
            });
            if tracker.deliverable(&msg.deps) {
                if tracker.mark_processed(msg.mid) {
                    processed_order.push(msg.mid);
                }
                // Wave-based cascade, exactly as the engine drives it.
                let mut wave = waiting.wake(msg.mid);
                while !wave.is_empty() {
                    let mut next = Vec::new();
                    for r in wave {
                        if tracker.mark_processed(r.mid) {
                            processed_order.push(r.mid);
                        }
                        next.extend(waiting.wake(r.mid));
                    }
                    next.sort_by_key(|x| x.mid);
                    wave = next;
                }
            } else {
                let t = &tracker;
                prop_assert!(waiting.park(msg, |d| t.is_processed(d)));
            }
        }
        prop_assert!(waiting.is_empty(), "stuck: {} waiting", waiting.len());
        prop_assert_eq!(processed_order.len(), batch.len());
        // Order check.
        let pos: std::collections::HashMap<Mid, usize> =
            processed_order.iter().enumerate().map(|(i, &m)| (m, i)).collect();
        for (m, deps) in &batch {
            for d in deps {
                prop_assert!(pos[d] < pos[m], "{m} before its cause {d}");
            }
        }
    }

    /// Under temporal labeling, explicit-dependency precedence implies
    /// vector-clock happened-before (the labeler is sound wrt the oracle).
    #[test]
    fn temporal_labels_agree_with_vector_clocks(sends in prop::collection::vec(0u16..3, 1..15)) {
        let n = 3;
        let mut labelers: Vec<Labeler> = (0..n)
            .map(|i| Labeler::new(ProcessId::from_index(i), n, CausalityMode::Temporal))
            .collect();
        let mut clocks: Vec<VectorClock> = (0..n).map(|_| VectorClock::zero(n)).collect();
        let mut graph = CausalGraph::new();
        let mut stamp: std::collections::HashMap<Mid, VectorClock> = Default::default();

        // Broadcast model: every message is immediately processed by all.
        for p in sends {
            let p = p as usize;
            let (m, deps) = labelers[p].label(&[]).unwrap();
            clocks[p].tick(ProcessId::from_index(p));
            let ts = clocks[p].clone();
            stamp.insert(m, ts.clone());
            graph.insert(m, &deps).unwrap();
            for q in 0..n {
                if q != p {
                    labelers[q].note_processed(m);
                    clocks[q].merge(&ts);
                }
            }
        }
        for (a, ts_a) in &stamp {
            for (b, ts_b) in &stamp {
                if graph.causally_precedes(*a, *b) {
                    prop_assert!(
                        ts_a.happened_before(ts_b),
                        "label order {a}->{b} not reflected by clocks"
                    );
                }
            }
        }
    }

    /// Waiting-list cascade destruction removes exactly the dependents.
    #[test]
    fn discard_dependents_is_exactly_the_descendant_set(batch in arb_dag(16)) {
        if batch.is_empty() {
            return Ok(());
        }
        let mut waiting = WaitingList::new();
        let mut graph = CausalGraph::new();
        let mut parked = std::collections::HashSet::new();
        for (m, deps) in &batch {
            graph.insert(*m, deps).unwrap();
            let stored = waiting.park(
                std::sync::Arc::new(DataMsg {
                    mid: *m,
                    deps: deps.clone(),
                    round: Round(0),
                    payload: Bytes::new(),
                }),
                |_| false,
            );
            // Only dep-free messages are refused (nothing is processed here).
            prop_assert_eq!(stored, !deps.is_empty());
            if stored {
                parked.insert(*m);
            }
        }
        let root = batch[0].0;
        let doomed: std::collections::HashSet<Mid> =
            waiting.discard_dependents(root).into_iter().collect();
        let mut expect = graph.descendants(root);
        expect.insert(root);
        expect.retain(|m| parked.contains(m));
        prop_assert_eq!(doomed, expect);
    }
}

proptest! {
    /// linearize() is a valid topological order of any random DAG.
    #[test]
    fn linearize_is_a_topological_order(batch in arb_dag(24)) {
        let mut g = CausalGraph::new();
        for (m, deps) in &batch {
            g.insert(*m, deps).unwrap();
        }
        let order = g.linearize();
        prop_assert_eq!(order.len(), batch.len());
        let pos: std::collections::HashMap<Mid, usize> =
            order.iter().enumerate().map(|(i, &m)| (m, i)).collect();
        for (m, deps) in &batch {
            for d in deps {
                prop_assert!(pos[d] < pos[m], "{m} before its cause {d}");
            }
        }
    }
}
