#![warn(missing_docs)]

//! Tokio UDP runtime: the paper's prototype, on real sockets.
//!
//! Section 7 announces "a first prototype of the algorithm … currently
//! under development over an Ethernet LAN … among a group of processes
//! being run on a set of Unix workstations". This crate is that prototype:
//! each group member is a tokio task owning a UDP socket; rounds are paced
//! by a shared wall-clock cadence (`round_duration`), which reproduces the
//! paper's synchronous-round assumption as long as the cadence comfortably
//! exceeds network latency (trivially true for localhost/LAN).
//!
//! The [`Engine`](urcgc::Engine) inside each task is byte-for-byte the same
//! state machine the simulator drives — the whole point of the sans-I/O
//! design. An optional Bernoulli packet-loss injector exercises the
//! omission-recovery path over real sockets.
//!
//! ```no_run
//! use bytes::Bytes;
//! use std::time::Duration;
//! use urcgc_runtime::{AppEvent, UdpGroup};
//! use urcgc_types::ProtocolConfig;
//!
//! # #[tokio::main(flavor = "multi_thread")]
//! # async fn main() {
//! let cfg = ProtocolConfig::new(3);
//! let mut group = UdpGroup::spawn(cfg, Duration::from_millis(5), 0.0, 1)
//!     .await
//!     .unwrap();
//! let mid = group.handle(0).submit(Bytes::from_static(b"hi"), vec![]).await.unwrap();
//! // Await delivery on another member.
//! while let Some(ev) = group.handle(1).next_event().await {
//!     if let AppEvent::Delivered(msg) = ev {
//!         assert_eq!(msg.mid, mid);
//!         break;
//!     }
//! }
//! group.shutdown().await;
//! # }
//! ```

pub mod group;

pub use group::{spawn_member, AppEvent, GroupError, GroupShutdown, ProcessHandle, UdpGroup};
