#![warn(missing_docs)]

//! Threaded UDP runtime: the paper's prototype, on real sockets.
//!
//! Section 7 announces "a first prototype of the algorithm … currently
//! under development over an Ethernet LAN … among a group of processes
//! being run on a set of Unix workstations". This crate is that prototype:
//! each group member is a trio of plain `std::thread`s around a blocking
//! `std::net::UdpSocket` — a receiver (startup barrier, loss injection), a
//! round ticker (the wall-clock replacement for the simulator's round
//! clock), and a driver that owns the engine ([`node`]). No async runtime
//! is involved, so the crate builds in the same offline environment as the
//! rest of the workspace.
//!
//! The [`Engine`](urcgc::Engine) inside each driver is byte-for-byte the
//! same state machine the simulator drives — the whole point of the
//! sans-I/O design. Around it:
//!
//! * [`frag`] fits engine frames into datagrams (MTU fragmentation and
//!   timeout-evicting reassembly, on the transport codec's wire format);
//! * [`proxy`] is a drop/duplicate/delay UDP middlebox for fault
//!   injection *between* address spaces;
//! * [`report`] defines the `urcgc-node/1` / `urcgc-cluster/1` documents
//!   the multi-process harness exchanges, feeding
//!   [`urcgc_check::check_cluster`];
//! * the `loopback-cluster` binary spawns N OS processes behind the proxy
//!   and gates the run on the checker's end-of-run oracles — the
//!   real-network CI gate;
//! * the `urcgc_node` binary runs one member as a standalone process (a
//!   minimal group chat, and the deployment skeleton).
//!
//! The API is deliberately the shape an async variant would expose —
//! `UdpGroup::spawn`, `ProcessHandle::{submit, next_event, status,
//! snapshot, kill}`, `spawn_member` — with blocking methods where the
//! earlier tokio edition had `async fn`s. Porting back onto an async
//! runtime is a transport swap, not a redesign: replace the three threads
//! with tasks and the bounded channel with a select loop; everything above
//! [`ProcessHandle`] is unchanged.
//!
//! ```no_run
//! use bytes::Bytes;
//! use std::time::Duration;
//! use urcgc_runtime::{AppEvent, UdpGroup};
//! use urcgc_types::ProtocolConfig;
//!
//! let cfg = ProtocolConfig::new(3);
//! let mut group = UdpGroup::spawn(cfg, Duration::from_millis(5), 0.0, 1).unwrap();
//! let mid = group.handle(0).submit(Bytes::from_static(b"hi"), vec![]).unwrap();
//! // Await delivery on another member.
//! while let Some(ev) = group.handle(1).next_event(Duration::from_secs(5)) {
//!     if let AppEvent::Delivered(msg) = ev {
//!         assert_eq!(msg.mid, mid);
//!         break;
//!     }
//! }
//! group.shutdown();
//! ```

pub mod frag;
pub mod group;
pub mod node;
pub mod proxy;
pub mod report;

pub use frag::{Fragmenter, Reassembler};
pub use group::UdpGroup;
pub use node::{
    spawn_member, spawn_member_on, workload_quiescent, AppEvent, GroupError, GroupShutdown,
    NetStats, NodeOptions, ProcessHandle,
};
pub use proxy::{LossyProxy, ProxyOptions, ProxyStats};
pub use report::{check_delivery_log, order_digests, ClusterReport, NodeReport};
