//! `loopback-cluster` — multi-process UDP soak behind a lossy proxy.
//!
//! The orchestrator spawns `--n` copies of itself (the hidden `node`
//! subcommand), one OS process per group member, each on its own
//! `127.0.0.1` socket. Every member is given **proxy** addresses for its
//! peers, so all inter-member traffic crosses a drop/duplicate/delay UDP
//! middlebox ([`LossyProxy`]). Members submit a message budget, report
//! workload quiescence, and — once every member has quiesced (or the
//! wall-clock budget expires) — emit a `urcgc-node/1` report. The
//! orchestrator feeds the reports to [`urcgc_check::check_cluster`] — the
//! same end-of-run oracles the adversarial explorer applies in-model —
//! and writes a `urcgc-cluster/1` document. Exit code 0 iff the oracles
//! are silent.
//!
//! This is the real-network CI gate: real sockets, real OS scheduling,
//! real loss between address spaces.
//!
//! ```text
//! loopback-cluster --n 3 --msgs 10 --drop 0.05 --dup 0.02 --delay 0.05 \
//!     --budget-secs 60 --json cluster.json
//! ```
//!
//! Child protocol (line-oriented, child stdout / child stdin):
//!
//! ```text
//! child → port <p>            after binding its socket
//! parent → peers <a0> <a1> …  proxy-routed peer list, triggers spawn
//! child → quiesced            first time the workload predicate holds
//! parent → exit               once ALL members have quiesced
//! child → report <json>       final urcgc-node/1 document, then exits
//! ```
//!
//! A member keeps serving the protocol between `quiesced` and `exit` —
//! peers may still be recovering from it — which is exactly the
//! coordination a fixed-membership group needs to shut down cleanly.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, UdpSocket};
use std::process::{Child, Command, ExitCode, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use bytes::Bytes;

use urcgc_check::{check_cluster, NodeObservation};
use urcgc_metrics::Json;
use urcgc_runtime::{
    check_delivery_log, order_digests, spawn_member_on, workload_quiescent, AppEvent,
    ClusterReport, LossyProxy, NodeOptions, NodeReport, ProxyOptions,
};
use urcgc_types::{Mid, ProcessId, ProtocolConfig};

const HELP: &str = "\
loopback-cluster — multi-process UDP soak behind a lossy proxy

USAGE:
  loopback-cluster [OPTIONS]

OPTIONS:
  --n N               group size / OS processes (default 3)
  --msgs M            messages submitted per member (default 10)
  --round-ms MS       round duration (default 5)
  --k K               failure-detection bound (default 4)
  --mtu BYTES         datagram MTU (default 1400)
  --drop P            proxy drop probability (default 0.05)
  --dup P             proxy duplication probability (default 0.02)
  --delay P           proxy delay probability (default 0.05)
  --max-delay-ms MS   proxy max hold-back (default 10)
  --seed S            fault-plan seed (default 1)
  --budget-secs S     wall-clock budget for quiescence (default 60)
  --json PATH         write the urcgc-cluster/1 document here
  --help              print this help

Exit code 0 iff every member quiesced in budget and the cluster oracles
(uniform agreement, ordering) found nothing.
";

#[derive(Clone)]
struct Args {
    n: usize,
    msgs: u64,
    round_ms: u64,
    k: u32,
    mtu: usize,
    drop_p: f64,
    dup_p: f64,
    delay_p: f64,
    max_delay_ms: u64,
    seed: u64,
    budget_secs: u64,
    json: Option<String>,
    // node-mode only
    me: usize,
}

impl Default for Args {
    fn default() -> Args {
        Args {
            n: 3,
            msgs: 10,
            round_ms: 5,
            k: 4,
            mtu: 1400,
            drop_p: 0.05,
            dup_p: 0.02,
            delay_p: 0.05,
            max_delay_ms: 10,
            seed: 1,
            budget_secs: 60,
            json: None,
            me: 0,
        }
    }
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        macro_rules! num {
            () => {
                value()?.parse().map_err(|e| format!("{flag}: {e}"))?
            };
        }
        match flag.as_str() {
            "--n" => args.n = num!(),
            "--msgs" => args.msgs = num!(),
            "--round-ms" => args.round_ms = num!(),
            "--k" => args.k = num!(),
            "--mtu" => args.mtu = num!(),
            "--drop" => args.drop_p = num!(),
            "--dup" => args.dup_p = num!(),
            "--delay" => args.delay_p = num!(),
            "--max-delay-ms" => args.max_delay_ms = num!(),
            "--seed" => args.seed = num!(),
            "--budget-secs" => args.budget_secs = num!(),
            "--me" => args.me = num!(),
            "--json" => args.json = Some(value()?.to_string()),
            "--help" | "-h" => return Err(HELP.to_string()),
            other => return Err(format!("unknown flag {other}\n\n{HELP}")),
        }
    }
    if args.n < 2 {
        return Err("--n must be at least 2".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (mode, rest) = match argv.first().map(String::as_str) {
        Some("node") => ("node", &argv[1..]),
        _ => ("orchestrate", &argv[..]),
    };
    let args = match parse_args(rest) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if mode == "node" {
        run_node(args)
    } else {
        orchestrate(args)
    }
}

// ---------------------------------------------------------------- node mode

fn run_node(args: Args) -> ExitCode {
    let start = Instant::now();
    let me = ProcessId::from_index(args.me);
    let socket = UdpSocket::bind("127.0.0.1:0").expect("bind node socket");
    let port = socket.local_addr().expect("local addr").port();
    println!("port {port}");
    std::io::stdout().flush().ok();

    // The parent answers with the (proxy-routed) peer list.
    let stdin = std::io::stdin();
    let mut first_line = String::new();
    stdin
        .lock()
        .read_line(&mut first_line)
        .expect("read peers line");
    let peers: Vec<SocketAddr> = first_line
        .trim()
        .strip_prefix("peers ")
        .expect("first stdin line must be `peers …`")
        .split_whitespace()
        .map(|a| a.parse().expect("peer address"))
        .collect();
    assert_eq!(peers.len(), args.n, "peer list width");

    // Remaining stdin lines (the `exit` command) arrive via a thread.
    let (ctl_tx, ctl_rx) = mpsc::channel::<String>();
    std::thread::spawn(move || {
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if ctl_tx.send(line).is_err() {
                break;
            }
        }
    });

    let cfg = ProtocolConfig::new(args.n).with_k(args.k);
    let opts = NodeOptions::default()
        .round_duration(Duration::from_millis(args.round_ms))
        .mtu(args.mtu);
    let (mut handle, shutdown) =
        spawn_member_on(socket, me, peers, cfg, opts).expect("spawn member");

    // Submit the whole budget up front; the engine paces one broadcast per
    // request round on its own.
    let mut submitted = 0u64;
    for k in 0..args.msgs {
        match handle.submit(Bytes::from(format!("p{} m{k}", me.0)), vec![]) {
            Ok(_) => submitted += 1,
            Err(e) => {
                eprintln!("[p{}] submit {k} failed: {e}", me.0);
                break;
            }
        }
    }

    let budget = args.msgs;
    let deadline = start + Duration::from_secs(args.budget_secs);
    let mut log: Vec<(Mid, Vec<Mid>)> = Vec::new();
    let mut discarded = 0u64;
    let mut quiesced = false;
    let mut announced = false;
    let mut last_probe = Instant::now() - Duration::from_secs(1);
    'run: loop {
        // Drain application events into the delivery log.
        while let Some(ev) = handle.next_event(Duration::from_millis(20)) {
            match ev {
                AppEvent::Delivered(msg) => log.push((msg.mid, msg.deps.clone())),
                AppEvent::Discarded(mids) => discarded += mids.len() as u64,
                AppEvent::Confirmed(_) | AppEvent::StatusChanged(_) => {}
            }
        }
        for line in ctl_rx.try_iter() {
            if line.trim() == "exit" {
                break 'run;
            }
        }
        if Instant::now() >= deadline {
            eprintln!("[p{}] budget expired before exit command", me.0);
            break 'run;
        }
        if last_probe.elapsed() >= Duration::from_millis(50) {
            last_probe = Instant::now();
            quiesced = handle
                .with_engine(move |e| workload_quiescent(e, submitted, budget))
                .unwrap_or(quiesced);
            if quiesced && !announced {
                announced = true;
                println!("quiesced");
                std::io::stdout().flush().ok();
            }
        }
    }

    // Final observation. If the driver died (suicide/left), fall back to
    // what the log tells us.
    let final_state = handle.with_engine(|e| e.snapshot()).ok();
    let (status, frontier) = match &final_state {
        Some(snap) => (snap.status.clone(), snap.frontier.clone()),
        None => ("Gone".to_string(), vec![0; args.n]),
    };
    quiesced = handle
        .with_engine(move |e| workload_quiescent(e, submitted, budget))
        .unwrap_or(quiesced);
    let mids: Vec<Mid> = log.iter().map(|(m, _)| *m).collect();
    let (ordering_ok, ordering_detail) = check_delivery_log(&log);
    let report = NodeReport {
        me: me.0,
        n: args.n,
        status,
        quiesced,
        submitted,
        delivered: log.len() as u64,
        discarded,
        frontier,
        order_digest: order_digests(args.n, &mids),
        ordering_ok,
        ordering_detail,
        net: handle.net_stats(),
        wall_secs: start.elapsed().as_secs_f64(),
    };
    println!("report {}", report.to_json().render());
    std::io::stdout().flush().ok();
    shutdown.shutdown();
    ExitCode::SUCCESS
}

// -------------------------------------------------------- orchestrator mode

enum ChildLine {
    Port(u16),
    Quiesced,
    Report(String),
    Eof,
}

fn orchestrate(args: Args) -> ExitCode {
    let start = Instant::now();
    let exe = std::env::current_exe().expect("current_exe");
    let n = args.n;
    eprintln!(
        "loopback-cluster: n={n} msgs={} drop={} dup={} delay={} seed={} budget={}s",
        args.msgs, args.drop_p, args.dup_p, args.delay_p, args.seed, args.budget_secs
    );

    // Spawn one `node` child per member; children self-destruct a little
    // after our budget even if we die without sending `exit`.
    let mut children: Vec<Child> = Vec::with_capacity(n);
    let (line_tx, line_rx) = mpsc::channel::<(usize, ChildLine)>();
    for i in 0..n {
        let mut child = Command::new(&exe)
            .arg("node")
            .args(["--me", &i.to_string()])
            .args(["--n", &n.to_string()])
            .args(["--msgs", &args.msgs.to_string()])
            .args(["--round-ms", &args.round_ms.to_string()])
            .args(["--k", &args.k.to_string()])
            .args(["--mtu", &args.mtu.to_string()])
            .args(["--seed", &(args.seed.wrapping_add(i as u64)).to_string()])
            .args(["--budget-secs", &(args.budget_secs + 20).to_string()])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn node process");
        let stdout = child.stdout.take().expect("child stdout");
        let tx = line_tx.clone();
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines() {
                let Ok(line) = line else { break };
                let msg = if let Some(p) = line.strip_prefix("port ") {
                    p.trim().parse().map(ChildLine::Port).ok()
                } else if line.trim() == "quiesced" {
                    Some(ChildLine::Quiesced)
                } else if let Some(doc) = line.strip_prefix("report ") {
                    Some(ChildLine::Report(doc.to_string()))
                } else {
                    eprintln!("[p{i}] {line}");
                    None
                };
                if let Some(msg) = msg {
                    if tx.send((i, msg)).is_err() {
                        break;
                    }
                }
            }
            let _ = tx.send((i, ChildLine::Eof));
        });
        children.push(child);
    }
    drop(line_tx);

    // Phase 1: collect every child's bound port.
    let mut ports: Vec<Option<u16>> = vec![None; n];
    let port_deadline = Instant::now() + Duration::from_secs(30);
    while ports.iter().any(Option::is_none) {
        let left = port_deadline.saturating_duration_since(Instant::now());
        match line_rx.recv_timeout(left.max(Duration::from_millis(1))) {
            Ok((i, ChildLine::Port(p))) => ports[i] = Some(p),
            Ok((i, ChildLine::Eof)) => {
                eprintln!("child p{i} exited before reporting its port");
                return fail_and_reap(children);
            }
            Ok(_) => {}
            Err(_) => {
                eprintln!("timed out waiting for child ports");
                return fail_and_reap(children);
            }
        }
    }
    let child_addrs: Vec<SocketAddr> = ports
        .iter()
        .map(|p| format!("127.0.0.1:{}", p.unwrap()).parse().unwrap())
        .collect();

    // Phase 2: raise the lossy proxy and hand every child its peer list —
    // peers routed through the proxy, itself direct (never dialed).
    let proxy = LossyProxy::spawn(
        &child_addrs,
        ProxyOptions {
            drop_p: args.drop_p,
            dup_p: args.dup_p,
            delay_p: args.delay_p,
            max_delay: Duration::from_millis(args.max_delay_ms),
            seed: args.seed,
        },
    )
    .expect("spawn proxy");
    for (i, child) in children.iter_mut().enumerate() {
        let list: Vec<String> = (0..n)
            .map(|j| {
                if j == i {
                    child_addrs[j].to_string()
                } else {
                    proxy.addrs()[j].to_string()
                }
            })
            .collect();
        let stdin = child.stdin.as_mut().expect("child stdin");
        writeln!(stdin, "peers {}", list.join(" ")).expect("send peers");
        stdin.flush().ok();
    }

    // Phase 3: wait for group-wide quiescence, then tell everyone to exit.
    // (A member must keep serving after its own quiescence — peers may
    // still be recovering from it.)
    let mut quiesced = vec![false; n];
    let mut reports: Vec<Option<NodeReport>> = vec![None; n];
    let deadline = start + Duration::from_secs(args.budget_secs);
    while !quiesced.iter().all(|&q| q) && Instant::now() < deadline {
        let left = deadline.saturating_duration_since(Instant::now());
        match line_rx.recv_timeout(left.max(Duration::from_millis(1))) {
            Ok((i, ChildLine::Quiesced)) => {
                quiesced[i] = true;
                eprintln!(
                    "p{i} quiesced ({}/{} at {:.1}s)",
                    quiesced.iter().filter(|&&q| q).count(),
                    n,
                    start.elapsed().as_secs_f64()
                );
            }
            Ok((i, ChildLine::Report(doc))) => store_report(&mut reports, i, &doc),
            Ok((i, ChildLine::Eof)) => eprintln!("child p{i} exited early"),
            Ok(_) => {}
            Err(_) => break,
        }
    }
    if !quiesced.iter().all(|&q| q) {
        eprintln!("budget expired before group quiescence; collecting reports anyway");
    }
    for child in children.iter_mut() {
        if let Some(stdin) = child.stdin.as_mut() {
            let _ = writeln!(stdin, "exit");
            let _ = stdin.flush();
        }
    }

    // Phase 4: collect reports (grace period), then reap.
    let grace = Instant::now() + Duration::from_secs(15);
    while reports.iter().any(Option::is_none) && Instant::now() < grace {
        let left = grace.saturating_duration_since(Instant::now());
        match line_rx.recv_timeout(left.max(Duration::from_millis(1))) {
            Ok((i, ChildLine::Report(doc))) => store_report(&mut reports, i, &doc),
            Ok(_) => {}
            Err(mpsc::RecvTimeoutError::Timeout) => break,
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    for mut child in children {
        let _ = child.kill();
        let _ = child.wait();
    }

    // Phase 5: the oracles. A missing report is a quiescence failure by
    // construction (the member could not even describe its final state).
    let observations: Vec<NodeObservation> = (0..n)
        .map(|i| match &reports[i] {
            Some(r) => r.to_observation(),
            None => NodeObservation {
                me: i as u16,
                status: "NoReport".to_string(),
                quiesced: false,
                submitted: 0,
                delivered: 0,
                frontier: vec![0; n],
                order_digest: vec![0; n],
                ordering_ok: true,
                ordering_detail: None,
            },
        })
        .collect();
    let violations = check_cluster(&observations);
    let cluster = ClusterReport {
        params: Json::obj()
            .with("n", n)
            .with("msgs_per_member", args.msgs)
            .with("round_ms", args.round_ms)
            .with("k", args.k)
            .with("mtu", args.mtu)
            .with("drop_p", args.drop_p)
            .with("dup_p", args.dup_p)
            .with("delay_p", args.delay_p)
            .with("max_delay_ms", args.max_delay_ms)
            .with("seed", args.seed)
            .with("budget_secs", args.budget_secs),
        nodes: reports.iter().flatten().cloned().collect(),
        violations,
        proxy: proxy.stats(),
        wall_secs: start.elapsed().as_secs_f64(),
    };
    proxy.shutdown();

    let doc = cluster.to_json();
    if let Some(path) = &args.json {
        std::fs::write(path, doc.render_pretty()).expect("write cluster json");
        eprintln!("wrote {path}");
    }
    let ps = cluster.proxy;
    println!(
        "cluster {} in {:.1}s: {} members, {} delivered total, proxy {} in / {} out \
         ({} dropped, {} duplicated, {} delayed)",
        if cluster.ok() { "PASS" } else { "FAIL" },
        cluster.wall_secs,
        cluster.nodes.len(),
        cluster.nodes.iter().map(|r| r.delivered).sum::<u64>(),
        ps.received,
        ps.forwarded,
        ps.dropped,
        ps.duplicated,
        ps.delayed,
    );
    for v in &cluster.violations {
        println!("violation {:?}: {}", v.kind, v.detail);
    }
    if cluster.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn store_report(reports: &mut [Option<NodeReport>], i: usize, doc: &str) {
    match urcgc_metrics::json::parse(doc).and_then(|j| NodeReport::from_json(&j)) {
        Ok(r) => reports[i] = Some(r),
        Err(e) => eprintln!("child p{i} sent an unparseable report: {e}"),
    }
}

fn fail_and_reap(children: Vec<Child>) -> ExitCode {
    for mut child in children {
        let _ = child.kill();
        let _ = child.wait();
    }
    ExitCode::FAILURE
}
