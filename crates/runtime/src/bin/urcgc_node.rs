//! `urcgc_node` — run one urcgc group member as a standalone OS process.
//!
//! Each member of the group runs its own `urcgc_node` (possibly on a
//! different host); all members are given the same ordered peer list. An
//! interactive stdin loop turns typed lines into causal multicasts and
//! prints every processed message — a minimal "group chat" that is also
//! the deployment skeleton for real applications.
//!
//! Example (three shells):
//!
//! ```text
//! urcgc_node --me 0 --peers 127.0.0.1:7700,127.0.0.1:7701,127.0.0.1:7702
//! urcgc_node --me 1 --peers 127.0.0.1:7700,127.0.0.1:7701,127.0.0.1:7702
//! urcgc_node --me 2 --peers 127.0.0.1:7700,127.0.0.1:7701,127.0.0.1:7702
//! ```

use std::io::BufRead;
use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::mpsc;
use std::time::Duration;

use bytes::Bytes;

use urcgc_runtime::{spawn_member, AppEvent, NodeOptions};
use urcgc_types::{ProcessId, ProtocolConfig};

const HELP: &str = "\
urcgc_node — run one urcgc group member over UDP

USAGE:
  urcgc_node --me I --peers ADDR0,ADDR1,... [--k K] [--round-ms MS]

OPTIONS:
  --me I          this member's index into the peer list (0-based)
  --peers LIST    comma-separated UDP addresses of ALL members, in order
  --k K           failure-detection bound (default 3)
  --round-ms MS   round duration in milliseconds (default 20)
  --help          print this help

Type a line + Enter to multicast it causally; every processed message is
printed as `origin#seq: text`. Ctrl-D exits.
";

struct Args {
    me: ProcessId,
    peers: Vec<SocketAddr>,
    k: u32,
    round_ms: u64,
}

fn parse(args: &[String]) -> Result<Args, String> {
    let mut me = None;
    let mut peers: Vec<SocketAddr> = Vec::new();
    let mut k = 3u32;
    let mut round_ms = 20u64;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--me" => me = Some(value()?.parse::<u16>().map_err(|e| format!("--me: {e}"))?),
            "--peers" => {
                peers = value()?
                    .split(',')
                    .map(|a| a.parse().map_err(|e| format!("--peers: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--k" => k = value()?.parse().map_err(|e| format!("--k: {e}"))?,
            "--round-ms" => round_ms = value()?.parse().map_err(|e| format!("--round-ms: {e}"))?,
            "--help" | "-h" => return Err(HELP.to_string()),
            other => return Err(format!("unknown flag {other}\n\n{HELP}")),
        }
    }
    let me = me.ok_or("missing --me")?;
    if peers.is_empty() {
        return Err("missing --peers".into());
    }
    if me as usize >= peers.len() {
        return Err(format!("--me {me} outside peer list of {}", peers.len()));
    }
    Ok(Args {
        me: ProcessId(me),
        peers,
        k,
        round_ms,
    })
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse(&raw) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let n = args.peers.len();
    let cfg = ProtocolConfig::new(n).with_k(args.k);
    let bind = args.peers[args.me.index()];
    eprintln!(
        "urcgc_node: member {} of {n}, bound to {bind}, K = {}",
        args.me, args.k
    );
    let opts = NodeOptions::default().round_duration(Duration::from_millis(args.round_ms));
    let (mut handle, shutdown) = match spawn_member(args.me, bind, args.peers, cfg, opts) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Stdin lines arrive through a thread so the main loop can multiplex
    // them with protocol events. After EOF the member keeps participating
    // in the group (serving recovery, processing foreign messages) until
    // it leaves or is killed.
    let (line_tx, line_rx) = mpsc::channel::<String>();
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if line_tx.send(line).is_err() {
                break;
            }
        }
    });

    loop {
        for text in line_rx.try_iter() {
            if text.is_empty() {
                continue;
            }
            match handle.submit(Bytes::from(text), vec![]) {
                Ok(mid) => eprintln!("(sent as {mid})"),
                Err(e) => eprintln!("(send failed: {e})"),
            }
        }
        match handle.next_event(Duration::from_millis(50)) {
            Some(AppEvent::Delivered(msg)) => {
                println!("{}: {}", msg.mid, String::from_utf8_lossy(&msg.payload));
            }
            Some(AppEvent::StatusChanged(st)) => {
                eprintln!("(status: {st:?})");
                if !st.is_active() {
                    break;
                }
            }
            Some(_) => {}
            None => {
                // Timeout: loop back to poll stdin. A dead driver surfaces
                // as a failed submit or a StatusChanged event.
            }
        }
    }
    shutdown.shutdown();
    ExitCode::SUCCESS
}
