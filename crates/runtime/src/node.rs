//! One group member as three `std::thread`s around a blocking UDP socket.
//!
//! ```text
//!             ┌────────────┐   Event::Datagram    ┌────────────┐
//!  socket ───▶│  receiver  │──────────────────────▶            │
//!             │ (barrier,  │   bounded channel    │   driver   │──▶ socket
//!             │  loss inj.)│                      │ (owns the  │
//!             └────────────┘      Event::Tick     │  Engine)   │──▶ AppEvent
//!             ┌────────────┐──────────────────────▶            │    channel
//!             │   ticker   │                      └─────▲──────┘
//!             └────────────┘      Event::Cmd(…)         │
//!                       ProcessHandle ──────────────────┘
//! ```
//!
//! * The **receiver** thread runs the startup barrier (hello exchange),
//!   then forwards datagrams — applying the optional Bernoulli loss
//!   injector — into a bounded channel. A full channel *drops* the
//!   datagram (counted): backpressure on a real network is loss, and the
//!   protocol's recovery machinery already handles loss.
//! * The **ticker** thread replaces the simulator's round clock: one
//!   [`Event::Tick`] per `round_duration`, with burst catch-up after
//!   stalls ([`RoundPacer`]).
//! * The **driver** thread is the only one touching the [`Engine`]. It is
//!   a plain event loop: tick → `begin_round`; datagram → reassemble →
//!   `on_frame`; command → query/submit. All engine outputs are flushed
//!   to the socket (fragmented to the MTU) or the application channel.
//!
//! The sender of a frame is identified by the fragment header's `src`
//! field, never by the datagram's source address — so members can sit
//! behind address-rewriting middleboxes such as this crate's
//! [`LossyProxy`](crate::LossyProxy).

use std::collections::HashSet;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use bytes::Bytes;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use urcgc::{
    Clock, Engine, EngineSnapshot, EngineStats, Node, Output, ProcessStatus, RoundPacer, WallClock,
};
use urcgc_types::{DataMsg, GroupId, Mid, ProcessId, ProtocolConfig, Round};

use crate::frag::{Fragmenter, Reassembler};

/// Magic first byte of the startup-barrier hello (never a valid PDU tag or
/// transport-frame tag).
const HELLO: u8 = 0xFF;
/// Hello datagram: `[HELLO, pid_lo, pid_hi]`.
const HELLO_LEN: usize = 3;
/// How often the barrier re-bursts hellos.
const HELLO_BURST_EVERY: Duration = Duration::from_millis(40);
/// Socket read timeout — bounds how stale a stop-flag check can be.
const READ_TIMEOUT: Duration = Duration::from_millis(25);
/// How long a handle waits for the driver to answer a command.
const CMD_TIMEOUT: Duration = Duration::from_secs(10);

/// Tuning knobs for one node.
#[derive(Clone, Debug)]
pub struct NodeOptions {
    /// Wall-clock length of one protocol round. Must comfortably exceed
    /// network latency for the paper's synchronous-round assumption to
    /// hold (trivially true on localhost/LAN at the 5–20 ms defaults).
    pub round_duration: Duration,
    /// Maximum datagram size; engine frames are fragmented to fit.
    pub mtu: usize,
    /// How long an incomplete fragment transfer is kept before eviction.
    pub reassembly_ttl: Duration,
    /// Receive-side Bernoulli drop probability (fault injection on real
    /// sockets); applied after the startup barrier.
    pub loss: f64,
    /// Seed for the loss injector.
    pub seed: u64,
    /// How long the startup barrier waits for all peers before giving up
    /// and starting anyway.
    pub hello_deadline: Duration,
    /// The group this member hosts. Wire frames carry a group envelope
    /// ([`urcgc_types::group`]); a frame for any other group is dropped at
    /// demux without a PDU decode (counted in
    /// [`NetStats::foreign_group_frames`]).
    pub group: GroupId,
}

impl Default for NodeOptions {
    fn default() -> NodeOptions {
        NodeOptions {
            round_duration: Duration::from_millis(10),
            mtu: 1400,
            reassembly_ttl: Duration::from_secs(2),
            loss: 0.0,
            seed: 0,
            hello_deadline: Duration::from_secs(15),
            group: GroupId(0),
        }
    }
}

impl NodeOptions {
    /// Sets the round cadence.
    pub fn round_duration(mut self, d: Duration) -> NodeOptions {
        self.round_duration = d;
        self
    }

    /// Sets the loss injector.
    pub fn loss(mut self, p: f64, seed: u64) -> NodeOptions {
        self.loss = p;
        self.seed = seed;
        self
    }

    /// Sets the datagram MTU.
    pub fn mtu(mut self, mtu: usize) -> NodeOptions {
        self.mtu = mtu;
        self
    }

    /// Sets the hosted group.
    pub fn group(mut self, group: GroupId) -> NodeOptions {
        self.group = group;
        self
    }
}

/// Events surfaced to the application.
#[derive(Clone, Debug)]
pub enum AppEvent {
    /// `urcgc.data.Ind`: a message was processed, in causal order. The
    /// handle is shared with the engine's history buffer.
    Delivered(Arc<DataMsg>),
    /// `urcgc.data.Conf`: an own submission was broadcast and processed.
    Confirmed(Mid),
    /// Waiting messages were destroyed by orphan elimination.
    Discarded(Vec<Mid>),
    /// The entity's life-cycle status changed.
    StatusChanged(ProcessStatus),
}

/// Failures when spawning or using the group.
#[derive(Debug)]
pub enum GroupError {
    /// Socket setup failed.
    Io(io::Error),
    /// The member's driver thread has terminated.
    ProcessGone,
    /// The submission or configuration was rejected.
    Rejected(String),
}

impl std::fmt::Display for GroupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GroupError::Io(e) => write!(f, "socket error: {e}"),
            GroupError::ProcessGone => write!(f, "process thread has terminated"),
            GroupError::Rejected(e) => write!(f, "rejected: {e}"),
        }
    }
}

impl std::error::Error for GroupError {}

impl From<io::Error> for GroupError {
    fn from(e: io::Error) -> Self {
        GroupError::Io(e)
    }
}

/// Network-layer counters for one node (all monotonic).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Datagrams read off the socket (including hellos and injected loss).
    pub datagrams_rx: u64,
    /// Datagrams written to the socket (fragments + hellos).
    pub datagrams_tx: u64,
    /// Datagrams discarded by the Bernoulli loss injector.
    pub dropped_loss: u64,
    /// Datagrams discarded because the driver's event queue was full.
    pub dropped_backpressure: u64,
    /// Complete engine frames handed to the engine.
    pub frames_rx: u64,
    /// Frames the engine rejected as malformed (plus undecodable
    /// fragments, counted by the reassembler).
    pub malformed: u64,
    /// Frames whose group envelope named a group this node does not host —
    /// dropped after the 9-byte header read, before any PDU decode (the
    /// genuineness counter).
    pub foreign_group_frames: u64,
    /// Partial fragment transfers evicted on TTL.
    pub reassembly_evicted: u64,
    /// Protocol rounds begun.
    pub rounds: u64,
}

#[derive(Default)]
struct NetCounters {
    datagrams_rx: AtomicU64,
    datagrams_tx: AtomicU64,
    dropped_loss: AtomicU64,
    dropped_backpressure: AtomicU64,
    frames_rx: AtomicU64,
    malformed: AtomicU64,
    foreign_group_frames: AtomicU64,
    reassembly_evicted: AtomicU64,
    rounds: AtomicU64,
}

impl NetCounters {
    fn snapshot(&self) -> NetStats {
        NetStats {
            datagrams_rx: self.datagrams_rx.load(Ordering::Relaxed),
            datagrams_tx: self.datagrams_tx.load(Ordering::Relaxed),
            dropped_loss: self.dropped_loss.load(Ordering::Relaxed),
            dropped_backpressure: self.dropped_backpressure.load(Ordering::Relaxed),
            frames_rx: self.frames_rx.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            foreign_group_frames: self.foreign_group_frames.load(Ordering::Relaxed),
            reassembly_evicted: self.reassembly_evicted.load(Ordering::Relaxed),
            rounds: self.rounds.load(Ordering::Relaxed),
        }
    }
}

enum Cmd {
    Submit {
        payload: Bytes,
        deps: Vec<Mid>,
        resp: Sender<Result<Mid, String>>,
    },
    Status {
        resp: Sender<ProcessStatus>,
    },
    Stats {
        resp: Sender<EngineStats>,
    },
    Snapshot {
        resp: Sender<EngineSnapshot>,
    },
    /// Run a closure against the live engine on the driver thread — the
    /// observation hook the loopback-cluster harness uses to evaluate
    /// quiescence without widening the engine's query API.
    Probe(Box<dyn FnOnce(&Engine) + Send>),
    /// Hard-kill the process (simulated crash: the driver exits
    /// immediately, mid-protocol, without telling anyone).
    Kill,
    Shutdown,
}

enum Event {
    Datagram(Bytes),
    Tick,
    BarrierDone,
    Cmd(Cmd),
}

/// Client-side handle to one group member. All methods are blocking (with
/// internal timeouts); the handle is cheap to move to another thread.
pub struct ProcessHandle {
    id: ProcessId,
    local_addr: SocketAddr,
    tx: SyncSender<Event>,
    evt_rx: Receiver<AppEvent>,
    net: Arc<NetCounters>,
}

impl ProcessHandle {
    /// The member this handle controls.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// The address the member's socket actually bound.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    fn send(&self, ev: Event) -> Result<(), GroupError> {
        self.tx.send(ev).map_err(|_| GroupError::ProcessGone)
    }

    /// Submits a message with explicit causal dependencies; returns the
    /// assigned mid.
    pub fn submit(&self, payload: Bytes, deps: Vec<Mid>) -> Result<Mid, GroupError> {
        let (resp, rx) = mpsc::channel();
        self.send(Event::Cmd(Cmd::Submit {
            payload,
            deps,
            resp,
        }))?;
        rx.recv_timeout(CMD_TIMEOUT)
            .map_err(|_| GroupError::ProcessGone)?
            .map_err(GroupError::Rejected)
    }

    /// Waits up to `timeout` for the next application event. `None` means
    /// the timeout elapsed or the member exited.
    pub fn next_event(&mut self, timeout: Duration) -> Option<AppEvent> {
        self.evt_rx.recv_timeout(timeout).ok()
    }

    /// Non-blocking event poll.
    pub fn try_event(&mut self) -> Option<AppEvent> {
        self.evt_rx.try_recv().ok()
    }

    /// Queries the entity's life-cycle status.
    pub fn status(&self) -> Result<ProcessStatus, GroupError> {
        let (resp, rx) = mpsc::channel();
        self.send(Event::Cmd(Cmd::Status { resp }))?;
        rx.recv_timeout(CMD_TIMEOUT)
            .map_err(|_| GroupError::ProcessGone)
    }

    /// Queries the entity's live counters.
    pub fn stats(&self) -> Result<EngineStats, GroupError> {
        let (resp, rx) = mpsc::channel();
        self.send(Event::Cmd(Cmd::Stats { resp }))?;
        rx.recv_timeout(CMD_TIMEOUT)
            .map_err(|_| GroupError::ProcessGone)
    }

    /// Takes a full serializable snapshot of the entity's state (frontiers,
    /// view, backlog, counters) — the operations surface.
    pub fn snapshot(&self) -> Result<EngineSnapshot, GroupError> {
        let (resp, rx) = mpsc::channel();
        self.send(Event::Cmd(Cmd::Snapshot { resp }))?;
        rx.recv_timeout(CMD_TIMEOUT)
            .map_err(|_| GroupError::ProcessGone)
    }

    /// Runs `f` against the live engine on the driver thread and returns
    /// its result — arbitrary read-only observation (the loopback-cluster
    /// harness evaluates its quiescence predicate through this).
    pub fn with_engine<T, F>(&self, f: F) -> Result<T, GroupError>
    where
        T: Send + 'static,
        F: FnOnce(&Engine) -> T + Send + 'static,
    {
        let (resp, rx) = mpsc::channel();
        self.send(Event::Cmd(Cmd::Probe(Box::new(move |engine| {
            let _ = resp.send(f(engine));
        }))))?;
        rx.recv_timeout(CMD_TIMEOUT)
            .map_err(|_| GroupError::ProcessGone)
    }

    /// Network-layer counters (lock-free read; no driver round-trip).
    pub fn net_stats(&self) -> NetStats {
        self.net.snapshot()
    }

    /// Simulates a fail-stop crash: the driver thread exits immediately,
    /// mid-protocol, without notifying the group. The survivors are
    /// expected to detect the crash through the protocol's `attempts`
    /// counters within `K` subruns.
    pub fn kill(&self) -> Result<(), GroupError> {
        self.send(Event::Cmd(Cmd::Kill))
    }
}

/// Deferred shutdown token: stops members and joins their threads.
pub struct GroupShutdown {
    txs: Vec<SyncSender<Event>>,
    stops: Vec<Arc<AtomicBool>>,
    threads: Vec<JoinHandle<()>>,
}

impl GroupShutdown {
    /// An empty token, for aggregating members spawned one by one.
    pub fn empty() -> GroupShutdown {
        GroupShutdown {
            txs: Vec::new(),
            stops: Vec::new(),
            threads: Vec::new(),
        }
    }

    /// Folds another token's members into this one.
    pub fn merge(&mut self, other: GroupShutdown) {
        self.txs.extend(other.txs);
        self.stops.extend(other.stops);
        self.threads.extend(other.threads);
    }

    /// Stops all members and joins their threads.
    pub fn shutdown(self) {
        for tx in &self.txs {
            let _ = tx.send(Event::Cmd(Cmd::Shutdown));
        }
        for stop in &self.stops {
            stop.store(true, Ordering::Relaxed);
        }
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Spawns a **single** group member on a pre-bound socket, with the full
/// peer address list supplied explicitly — the deployment shape for real
/// multi-process / multi-host groups (each OS process runs one member and
/// is given everyone's addresses out of band).
///
/// `peers[i]` must be where datagrams *for* process `i` should be sent
/// (its socket, or a middlebox in front of it); `peers[me]` is never
/// dialed. Sender identity travels inside the fragment header, so the
/// entries may point at address-rewriting proxies.
///
/// Members may start at different times: the startup barrier holds the
/// round clock until every peer has been heard from (or its deadline
/// passes), and a late starter fast-forwards its round clock from the
/// first decision it receives.
pub fn spawn_member_on(
    socket: UdpSocket,
    me: ProcessId,
    peers: Vec<SocketAddr>,
    cfg: ProtocolConfig,
    opts: NodeOptions,
) -> Result<(ProcessHandle, GroupShutdown), GroupError> {
    cfg.validate()
        .map_err(|e| GroupError::Rejected(e.to_string()))?;
    if peers.len() != cfg.n {
        return Err(GroupError::Rejected(format!(
            "peer list has {} entries for a group of {}",
            peers.len(),
            cfg.n
        )));
    }
    if me.index() >= cfg.n {
        return Err(GroupError::Rejected(format!(
            "member {me} outside group of {}",
            cfg.n
        )));
    }
    if !(0.0..=1.0).contains(&opts.loss) {
        return Err(GroupError::Rejected(format!(
            "loss probability {} out of range",
            opts.loss
        )));
    }
    let local_addr = socket.local_addr()?;
    socket.set_read_timeout(Some(READ_TIMEOUT))?;
    let rx_socket = socket.try_clone()?;
    let tx_socket = socket;

    let node = Node::single(me, opts.group, cfg);
    let (tx, rx) = mpsc::sync_channel::<Event>(4096);
    let (evt_tx, evt_rx) = mpsc::channel::<AppEvent>();
    let stop = Arc::new(AtomicBool::new(false));
    let net = Arc::new(NetCounters::default());

    let mut threads = Vec::with_capacity(3);
    {
        let (tx, stop, net, peers, opts) = (
            tx.clone(),
            stop.clone(),
            net.clone(),
            peers.clone(),
            opts.clone(),
        );
        threads.push(
            thread::Builder::new()
                .name(format!("urcgc-rx-{}", me.0))
                .spawn(move || receiver_loop(rx_socket, me, &peers, &opts, &tx, &net, &stop))
                .map_err(GroupError::Io)?,
        );
    }
    {
        let (tx, stop, period) = (tx.clone(), stop.clone(), opts.round_duration);
        threads.push(
            thread::Builder::new()
                .name(format!("urcgc-tick-{}", me.0))
                .spawn(move || ticker_loop(period, &tx, &stop))
                .map_err(GroupError::Io)?,
        );
    }
    {
        let (stop, net, evt_tx) = (stop.clone(), net.clone(), evt_tx.clone());
        threads.push(
            thread::Builder::new()
                .name(format!("urcgc-drv-{}", me.0))
                .spawn(move || driver_loop(node, tx_socket, peers, opts, rx, &evt_tx, &net, &stop))
                .map_err(GroupError::Io)?,
        );
    }
    drop(evt_tx);

    Ok((
        ProcessHandle {
            id: me,
            local_addr,
            tx: tx.clone(),
            evt_rx,
            net,
        },
        GroupShutdown {
            txs: vec![tx],
            stops: vec![stop],
            threads,
        },
    ))
}

/// Binds `bind_addr` and spawns a member on it ([`spawn_member_on`]).
pub fn spawn_member(
    me: ProcessId,
    bind_addr: SocketAddr,
    peers: Vec<SocketAddr>,
    cfg: ProtocolConfig,
    opts: NodeOptions,
) -> Result<(ProcessHandle, GroupShutdown), GroupError> {
    let socket = UdpSocket::bind(bind_addr)?;
    spawn_member_on(socket, me, peers, cfg, opts)
}

/// The workload-quiescence predicate the soak harnesses use: the member
/// generated its whole budget, has no backlog, and its frontier covers
/// every recovery hint in the last decision (for origins whose advertised
/// holder is alive and not itself). Mirrors the simulator soak's rule, so
/// in-model and real-network runs terminate on the same condition.
pub fn workload_quiescent(engine: &Engine, submitted: u64, budget: u64) -> bool {
    if !engine.status().is_active() {
        return true; // a dead member has nothing left to do
    }
    if submitted < budget || !engine.gauges().is_drained() {
        return false;
    }
    let d = engine.last_decision();
    (0..d.n()).all(|q| {
        let hint = &d.max_processed[q];
        hint.seq <= engine.last_processed(ProcessId::from_index(q))
            || !engine.view().is_alive(hint.holder)
            || hint.holder == engine.me()
    })
}

fn hello(me: ProcessId) -> [u8; HELLO_LEN] {
    let [lo, hi] = me.0.to_le_bytes();
    [HELLO, lo, hi]
}

fn parse_hello(buf: &[u8]) -> Option<ProcessId> {
    if buf.len() == HELLO_LEN && buf[0] == HELLO {
        Some(ProcessId(u16::from_le_bytes([buf[1], buf[2]])))
    } else {
        None
    }
}

/// Best-effort peek at the sender of an encoded fragment (barrier use).
fn peek_src(buf: &[u8]) -> Option<ProcessId> {
    match urcgc_transport::TFrame::decode(Bytes::copy_from_slice(buf)) {
        Some(urcgc_transport::TFrame::Data { src, .. }) => Some(src),
        _ => None,
    }
}

fn hello_burst(socket: &UdpSocket, me: ProcessId, peers: &[SocketAddr], net: &NetCounters) {
    for (i, addr) in peers.iter().enumerate() {
        if i != me.index() {
            let _ = socket.send_to(&hello(me), addr);
            net.datagrams_tx.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Startup barrier + receive loop.
///
/// Fixed-membership round protocols need all members present before
/// attempt counters start ticking, or a late starter is declared crashed
/// before it boots (the paper has no rejoin). Every member bursts hello
/// datagrams at all peers until it has heard *something* from each of them
/// (a hello or live protocol traffic), with a deadline so a genuinely dead
/// peer cannot wedge startup forever. After the barrier, a member answers
/// any stray hello directly — under packet loss a peer may still be stuck
/// in its own barrier, and the answer is what releases it.
fn receiver_loop(
    socket: UdpSocket,
    me: ProcessId,
    peers: &[SocketAddr],
    opts: &NodeOptions,
    tx: &SyncSender<Event>,
    net: &NetCounters,
    stop: &AtomicBool,
) {
    let mut buf = vec![0u8; 64 * 1024];
    let mut seen: HashSet<ProcessId> = [me].into();
    let deadline = Instant::now() + opts.hello_deadline;
    let mut last_burst: Option<Instant> = None;
    while !stop.load(Ordering::Relaxed) && seen.len() < peers.len() && Instant::now() < deadline {
        if last_burst.map_or(true, |t| t.elapsed() >= HELLO_BURST_EVERY) {
            hello_burst(&socket, me, peers, net);
            last_burst = Some(Instant::now());
        }
        match socket.recv_from(&mut buf) {
            Ok((len, _)) => {
                net.datagrams_rx.fetch_add(1, Ordering::Relaxed);
                if let Some(from) = parse_hello(&buf[..len]) {
                    seen.insert(from);
                } else {
                    // A peer past its barrier is already talking protocol:
                    // that counts as presence, and the frame must not be
                    // lost — forward it.
                    if let Some(from) = peek_src(&buf[..len]) {
                        seen.insert(from);
                    }
                    forward(tx, net, &buf[..len]);
                }
            }
            Err(e) if would_block(&e) => {}
            Err(_) => return,
        }
    }
    // One parting burst so peers still inside their barrier see us even if
    // our earlier hellos raced their bind().
    hello_burst(&socket, me, peers, net);
    if tx.send(Event::BarrierDone).is_err() {
        return;
    }

    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        match socket.recv_from(&mut buf) {
            Ok((len, _)) => {
                net.datagrams_rx.fetch_add(1, Ordering::Relaxed);
                if opts.loss > 0.0 && rng.gen_bool(opts.loss) {
                    net.dropped_loss.fetch_add(1, Ordering::Relaxed);
                    continue; // injected omission
                }
                if let Some(from) = parse_hello(&buf[..len]) {
                    // A peer still inside its startup barrier: answer so it
                    // can complete even when its own hellos are being lost.
                    if from != me && from.index() < peers.len() {
                        let _ = socket.send_to(&hello(me), peers[from.index()]);
                        net.datagrams_tx.fetch_add(1, Ordering::Relaxed);
                    }
                    continue;
                }
                if !forward(tx, net, &buf[..len]) {
                    return;
                }
            }
            Err(e) if would_block(&e) => {}
            Err(_) => return,
        }
    }
}

fn would_block(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Hands a datagram to the driver; a full queue counts as loss. Returns
/// false when the driver is gone.
fn forward(tx: &SyncSender<Event>, net: &NetCounters, buf: &[u8]) -> bool {
    match tx.try_send(Event::Datagram(Bytes::copy_from_slice(buf))) {
        Ok(()) => true,
        Err(TrySendError::Full(_)) => {
            net.dropped_backpressure.fetch_add(1, Ordering::Relaxed);
            true
        }
        Err(TrySendError::Disconnected(_)) => false,
    }
}

/// Paces [`Event::Tick`]s at the round cadence, bursting to catch up after
/// a stall (and re-anchoring after a long one — [`RoundPacer`]).
fn ticker_loop(period: Duration, tx: &SyncSender<Event>, stop: &AtomicBool) {
    let clock = WallClock::new();
    let mut pacer = RoundPacer::new(clock.now(), period);
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let now = clock.now();
        if pacer.poll(now).is_some() {
            if tx.send(Event::Tick).is_err() {
                return;
            }
            continue;
        }
        let wait = pacer
            .until_due(clock.now())
            .clamp(Duration::from_micros(200), Duration::from_millis(50));
        thread::sleep(wait);
    }
}

#[allow(clippy::too_many_arguments)]
fn driver_loop(
    mut node: Node,
    socket: UdpSocket,
    peers: Vec<SocketAddr>,
    opts: NodeOptions,
    rx: Receiver<Event>,
    evt_tx: &Sender<AppEvent>,
    net: &NetCounters,
    stop: &AtomicBool,
) {
    let me = node.me();
    let group = opts.group;
    let clock = WallClock::new();
    let mut frag = Fragmenter::new(me, opts.mtu);
    let mut reasm = Reassembler::new(opts.reassembly_ttl);
    let mut round: u64 = 0;
    let mut barrier_done = false;
    let mut malformed_seen: u64 = 0;
    let mut undecodable_seen: u64 = 0;
    let mut foreign_seen: u64 = 0;

    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let ev = match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(ev) => ev,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        match ev {
            Event::BarrierDone => barrier_done = true,
            Event::Tick => {
                if !barrier_done {
                    continue; // hold the round clock until the group exists
                }
                node.begin_round(Round(round));
                round += 1;
                net.rounds.fetch_add(1, Ordering::Relaxed);
                let evicted = reasm.evict_expired(clock.now());
                if evicted > 0 {
                    net.reassembly_evicted
                        .fetch_add(evicted as u64, Ordering::Relaxed);
                }
                if !flush(&mut node, &mut frag, &socket, &peers, me, evt_tx, net) {
                    break;
                }
                let status = hosted(&node, group).status();
                if !status.is_active() {
                    let _ = evt_tx.send(AppEvent::StatusChanged(status));
                    break;
                }
            }
            Event::Datagram(gram) => {
                let Some((from, frame)) = reasm.accept(gram, clock.now()) else {
                    // Partial transfer or malformed datagram; sync the
                    // malformed counter either way.
                    let m = reasm.malformed();
                    if m > malformed_seen {
                        net.malformed
                            .fetch_add(m - malformed_seen, Ordering::Relaxed);
                        malformed_seen = m;
                    }
                    continue;
                };
                net.frames_rx.fetch_add(1, Ordering::Relaxed);
                if node.on_frame(from, &frame).is_none() {
                    // Either the envelope/PDU was undecodable or the frame
                    // named a group this node does not host; reconcile both
                    // monotonic counters against the net stats.
                    let u = node.undecodable();
                    if u > undecodable_seen {
                        net.malformed
                            .fetch_add(u - undecodable_seen, Ordering::Relaxed);
                        undecodable_seen = u;
                    }
                    let fg = node.foreign_frames();
                    if fg > foreign_seen {
                        net.foreign_group_frames
                            .fetch_add(fg - foreign_seen, Ordering::Relaxed);
                        foreign_seen = fg;
                    }
                    continue;
                }
                // Round synchronization: the paper's model is synchronous
                // rounds, but independently started OS processes boot with
                // round 0. Decisions carry the group's subrun clock; a
                // process that is behind fast-forwards so its requests land
                // in the subrun the rest of the group is actually running.
                let group_subrun = hosted(&node, group).last_decision().subrun.0;
                let sync_round = 2 * (group_subrun + 1);
                if round < sync_round {
                    round = sync_round;
                }
                if !flush(&mut node, &mut frag, &socket, &peers, me, evt_tx, net) {
                    break;
                }
            }
            Event::Cmd(cmd) => match cmd {
                Cmd::Submit {
                    payload,
                    deps,
                    resp,
                } => {
                    let result = node
                        .submit(group, payload, &deps)
                        .map_err(|e| e.to_string());
                    let _ = resp.send(result);
                }
                Cmd::Status { resp } => {
                    let _ = resp.send(hosted(&node, group).status());
                }
                Cmd::Stats { resp } => {
                    let _ = resp.send(hosted(&node, group).stats());
                }
                Cmd::Snapshot { resp } => {
                    let _ = resp.send(hosted(&node, group).snapshot());
                }
                Cmd::Probe(f) => f(hosted(&node, group)),
                Cmd::Kill | Cmd::Shutdown => break,
            },
        }
    }
    // Whatever ended the driver ends the node: release the receiver and
    // ticker threads too.
    stop.store(true, Ordering::Relaxed);
}

/// The hosted group's engine (the runtime node always hosts exactly one).
fn hosted(node: &Node, group: GroupId) -> &Engine {
    node.engine(group).expect("runtime node hosts its group")
}

/// Drains node outputs onto the socket / event channel. Returns false if
/// the application side is gone.
fn flush(
    node: &mut Node,
    frag: &mut Fragmenter,
    socket: &UdpSocket,
    peers: &[SocketAddr],
    me: ProcessId,
    evt_tx: &Sender<AppEvent>,
    net: &NetCounters,
) -> bool {
    while let Some((group, out)) = node.poll_output() {
        match out {
            Output::Send { to, pdu } => {
                let frame = node.encode(group, &pdu);
                for gram in frag.split(&frame) {
                    let _ = socket.send_to(&gram, peers[to.index()]);
                    net.datagrams_tx.fetch_add(1, Ordering::Relaxed);
                }
            }
            Output::Broadcast { pdu } => {
                // Encode (with the group envelope) and fragment once;
                // receivers key reassembly by (src, xfer), so the same
                // fragments fan out to everyone.
                let frame = node.encode(group, &pdu);
                let grams = frag.split(&frame);
                for (i, addr) in peers.iter().enumerate() {
                    if i != me.index() {
                        for gram in &grams {
                            let _ = socket.send_to(gram, addr);
                            net.datagrams_tx.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
            Output::Deliver { msg } => {
                if evt_tx.send(AppEvent::Delivered(msg)).is_err() {
                    return false;
                }
            }
            Output::Confirm { mid } => {
                if evt_tx.send(AppEvent::Confirmed(mid)).is_err() {
                    return false;
                }
            }
            Output::Discarded { mids } => {
                if evt_tx.send(AppEvent::Discarded(mids)).is_err() {
                    return false;
                }
            }
            Output::StatusChanged { status, .. } => {
                if evt_tx.send(AppEvent::StatusChanged(status)).is_err() {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_rejects_bad_configs() {
        let cfg = ProtocolConfig::new(3);
        let addr: SocketAddr = "127.0.0.1:0".parse().unwrap();
        // Wrong peer-list width.
        let err = spawn_member(
            ProcessId(0),
            addr,
            vec![addr; 2],
            cfg.clone(),
            NodeOptions::default(),
        )
        .err()
        .expect("must reject");
        assert!(matches!(err, GroupError::Rejected(_)), "{err}");
        // Member outside the group.
        let err = spawn_member(
            ProcessId(7),
            addr,
            vec![addr; 3],
            cfg.clone(),
            NodeOptions::default(),
        )
        .err()
        .expect("must reject");
        assert!(matches!(err, GroupError::Rejected(_)), "{err}");
        // Loss probability out of range.
        let err = spawn_member(
            ProcessId(0),
            addr,
            vec![addr; 3],
            cfg,
            NodeOptions::default().loss(1.5, 0),
        )
        .err()
        .expect("must reject");
        assert!(matches!(err, GroupError::Rejected(_)), "{err}");
    }

    #[test]
    fn hello_codec_roundtrip() {
        let h = hello(ProcessId(513));
        assert_eq!(parse_hello(&h), Some(ProcessId(513)));
        assert_eq!(parse_hello(&[HELLO, 1]), None, "short datagrams rejected");
        assert_eq!(parse_hello(&[0xD1, 0, 0]), None, "data tag is not a hello");
    }
}
