//! Datagram fragmentation and reassembly for engine frames.
//!
//! An engine frame (an encoded [`Pdu`](urcgc_types::Pdu) with its FNV
//! trailer) can exceed a UDP datagram's safe size — a recovery reply
//! carries whole message bodies, a decision grows with `n`. The runtime
//! therefore ships **every** frame as one or more [`TFrame::Data`]
//! fragments, reusing the transport codec so the wire format is identical
//! to the t-service's:
//!
//! * the `src` field identifies the sender — the runtime never maps
//!   source addresses to process ids, so frames survive address-rewriting
//!   middleboxes (the lossy proxy in this crate, NAT in general);
//! * the `(src, xfer)` pair keys reassembly, so interleaved transfers from
//!   many peers reassemble independently;
//! * fragments may arrive out of order, duplicated, or not at all — a
//!   partial transfer that stops making progress is evicted after a TTL
//!   ([`Reassembler::evict_expired`], driven by the node's round ticker),
//!   and the protocol's own recovery machinery resends the payload.

use std::collections::HashMap;
use std::time::Duration;

use bytes::{Bytes, BytesMut};
use urcgc::Deadlines;
use urcgc_transport::{fragment, TFrame, DATA_HEADER_LEN};
use urcgc_types::ProcessId;

/// Splits engine frames into MTU-sized [`TFrame::Data`] datagrams.
#[derive(Debug)]
pub struct Fragmenter {
    me: ProcessId,
    payload_mtu: usize,
    next_xfer: u64,
}

impl Fragmenter {
    /// `mtu` is the maximum **datagram** size; the usable payload per
    /// fragment is `mtu - DATA_HEADER_LEN`.
    ///
    /// # Panics
    /// Panics unless `mtu > DATA_HEADER_LEN`.
    pub fn new(me: ProcessId, mtu: usize) -> Fragmenter {
        assert!(
            mtu > DATA_HEADER_LEN,
            "mtu {mtu} leaves no room for the {DATA_HEADER_LEN}-byte fragment header"
        );
        Fragmenter {
            me,
            payload_mtu: mtu - DATA_HEADER_LEN,
            next_xfer: 0,
        }
    }

    /// Splits one frame into encoded datagrams (at least one, each at most
    /// `mtu` bytes), consuming a fresh transfer id.
    pub fn split(&mut self, frame: &Bytes) -> Vec<Bytes> {
        self.next_xfer += 1;
        fragment(self.next_xfer, self.me, self.payload_mtu, frame)
    }

    /// Transfers split so far.
    pub fn transfers(&self) -> u64 {
        self.next_xfer
    }
}

/// One incomplete transfer.
struct Partial {
    frag_count: u16,
    received: u16,
    slots: Vec<Option<Bytes>>,
}

/// Reassembles [`TFrame::Data`] datagrams back into engine frames.
///
/// Keyed by `(src, xfer)`; tolerant of loss, duplication, and reordering.
/// Partial transfers are dropped after `ttl` without completion so a
/// forever-lost fragment cannot pin memory (the peer's recovery
/// retransmission arrives under a fresh transfer id anyway).
pub struct Reassembler {
    ttl: Duration,
    partial: HashMap<(ProcessId, u64), Partial>,
    deadlines: Deadlines<(ProcessId, u64)>,
    evicted: u64,
    malformed: u64,
}

impl Reassembler {
    /// Creates a reassembler that forgets partial transfers after `ttl`.
    pub fn new(ttl: Duration) -> Reassembler {
        Reassembler {
            ttl,
            partial: HashMap::new(),
            deadlines: Deadlines::new(),
            evicted: 0,
            malformed: 0,
        }
    }

    /// Feeds one received datagram; returns the sender and the complete
    /// frame when this datagram finishes a transfer. Malformed datagrams
    /// and non-`Data` frames are counted and dropped.
    pub fn accept(&mut self, datagram: Bytes, now: Duration) -> Option<(ProcessId, Bytes)> {
        let Some(TFrame::Data {
            xfer,
            src,
            frag_index,
            frag_count,
            payload,
        }) = TFrame::decode(datagram)
        else {
            self.malformed += 1;
            return None;
        };
        if frag_count == 1 {
            // Fast path: the common case (control PDUs fit one datagram).
            return Some((src, payload));
        }
        let key = (src, xfer);
        let entry = self.partial.entry(key).or_insert_with(|| {
            self.deadlines.arm(key, now + self.ttl);
            Partial {
                frag_count,
                received: 0,
                slots: vec![None; frag_count as usize],
            }
        });
        if entry.frag_count != frag_count {
            // Two transfers disagreeing on their own shape: hostile or
            // corrupted traffic. Drop the fragment, keep the original.
            self.malformed += 1;
            return None;
        }
        let slot = &mut entry.slots[frag_index as usize];
        if slot.is_none() {
            *slot = Some(payload);
            entry.received += 1;
        }
        if entry.received < entry.frag_count {
            return None;
        }
        let done = self.partial.remove(&key).expect("entry just completed");
        self.deadlines.disarm(&key);
        let total: usize = done.slots.iter().map(|s| s.as_ref().unwrap().len()).sum();
        let mut frame = BytesMut::with_capacity(total);
        for s in done.slots {
            frame.extend_from_slice(&s.unwrap());
        }
        Some((src, frame.freeze()))
    }

    /// Drops every partial transfer whose TTL has passed; returns how many
    /// were evicted this call.
    pub fn evict_expired(&mut self, now: Duration) -> usize {
        let expired = self.deadlines.expired(now);
        for key in &expired {
            self.partial.remove(key);
        }
        self.evicted += expired.len() as u64;
        expired.len()
    }

    /// Incomplete transfers currently buffered.
    pub fn partials(&self) -> usize {
        self.partial.len()
    }

    /// Partial transfers evicted since creation.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Undecodable or inconsistent datagrams dropped since creation.
    pub fn malformed(&self) -> u64 {
        self.malformed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: Duration = Duration::from_secs(1);

    fn frame(len: usize) -> Bytes {
        Bytes::from((0..len).map(|i| (i % 251) as u8).collect::<Vec<u8>>())
    }

    #[test]
    fn single_datagram_fast_path() {
        let mut tx = Fragmenter::new(ProcessId(0), 1400);
        let mut rx = Reassembler::new(SEC);
        let f = frame(100);
        let grams = tx.split(&f);
        assert_eq!(grams.len(), 1);
        let (src, got) = rx.accept(grams.into_iter().next().unwrap(), SEC).unwrap();
        assert_eq!(src, ProcessId(0));
        assert_eq!(got, f);
        assert_eq!(rx.partials(), 0);
    }

    #[test]
    fn multi_fragment_roundtrip_out_of_order() {
        let mut tx = Fragmenter::new(ProcessId(2), DATA_HEADER_LEN + 10);
        let mut rx = Reassembler::new(SEC);
        let f = frame(95); // 10 fragments
        let mut grams = tx.split(&f);
        assert_eq!(grams.len(), 10);
        grams.reverse();
        let mut out = None;
        for g in grams {
            if let Some(done) = rx.accept(g, SEC) {
                out = Some(done);
            }
        }
        let (src, got) = out.expect("transfer completed");
        assert_eq!(src, ProcessId(2));
        assert_eq!(got, f);
    }

    #[test]
    fn interleaved_senders_do_not_mix() {
        let mut a = Fragmenter::new(ProcessId(0), DATA_HEADER_LEN + 8);
        let mut b = Fragmenter::new(ProcessId(1), DATA_HEADER_LEN + 8);
        let mut rx = Reassembler::new(SEC);
        let fa = frame(20);
        let fb = Bytes::from_static(b"completely different body!");
        let ga = a.split(&fa);
        let gb = b.split(&fb);
        let mut done = Vec::new();
        for i in 0..ga.len().max(gb.len()) {
            if let Some(x) = ga.get(i) {
                done.extend(rx.accept(x.clone(), SEC));
            }
            if let Some(y) = gb.get(i) {
                done.extend(rx.accept(y.clone(), SEC));
            }
        }
        done.sort_by_key(|(src, _)| *src);
        assert_eq!(done, vec![(ProcessId(0), fa), (ProcessId(1), fb)]);
    }

    #[test]
    fn duplicates_are_harmless() {
        let mut tx = Fragmenter::new(ProcessId(0), DATA_HEADER_LEN + 16);
        let mut rx = Reassembler::new(SEC);
        let f = frame(40);
        let grams = tx.split(&f);
        let mut completions = 0;
        for g in grams.iter().chain(grams.iter().take(2)) {
            if rx.accept(g.clone(), SEC).is_some() {
                completions += 1;
            }
        }
        assert_eq!(completions, 1, "duplicates of spent fragments are inert");
        // The re-sent fragments opened a ghost partial; eviction clears it.
        assert_eq!(rx.partials(), 1);
        assert_eq!(rx.evict_expired(SEC + SEC + SEC), 1);
        assert_eq!(rx.partials(), 0);
    }

    #[test]
    fn stalled_partial_is_evicted_after_ttl() {
        let mut tx = Fragmenter::new(ProcessId(3), DATA_HEADER_LEN + 8);
        let mut rx = Reassembler::new(SEC);
        let mut grams = tx.split(&frame(30));
        let last = grams.pop().unwrap();
        for g in grams {
            assert!(rx.accept(g, Duration::ZERO).is_none());
        }
        assert_eq!(rx.partials(), 1);
        assert_eq!(rx.evict_expired(SEC / 2), 0, "TTL not yet reached");
        assert_eq!(rx.evict_expired(SEC), 1);
        assert_eq!(rx.evicted(), 1);
        // The straggler now opens a fresh (useless) partial; it cannot
        // complete the evicted transfer.
        assert!(rx.accept(last, SEC).is_none());
        assert_eq!(rx.partials(), 1);
    }

    #[test]
    fn malformed_datagrams_are_counted() {
        let mut rx = Reassembler::new(SEC);
        assert!(rx
            .accept(Bytes::from_static(b"\xAB garbage"), SEC)
            .is_none());
        assert!(rx
            .accept(
                TFrame::Ack {
                    xfer: 1,
                    src: ProcessId(0)
                }
                .encode(),
                SEC
            )
            .is_none());
        assert_eq!(rx.malformed(), 2);
    }
}
