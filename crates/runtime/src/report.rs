//! End-of-run reports for real-network members and clusters.
//!
//! A loopback-cluster member is a separate OS process; the orchestrator
//! can only judge the run from what members *report*. [`NodeReport`] is
//! one member's end-of-run self-description (`urcgc-node/1`), carrying
//! exactly what [`urcgc_check::check_cluster`] needs — quiescence,
//! frontiers, order digests, a local ordering verdict — plus network
//! counters for diagnosis. [`ClusterReport`] (`urcgc-cluster/1`) is the
//! orchestrator's aggregation: parameters, every member report, proxy
//! fault counters, and the oracle verdicts.
//!
//! Order digests are 64-bit FNV-1a values; JSON numbers are f64 and would
//! silently round them, so they travel as `"0x…"` hex strings.

use urcgc_check::{fnv1a_stream, NodeObservation, Violation};
use urcgc_metrics::{Json, Schema};
use urcgc_types::Mid;

use crate::node::NetStats;
use crate::proxy::ProxyStats;

/// Schema of one member's end-of-run report document.
pub const NODE_SCHEMA: Schema = Schema::new("urcgc-node", 1);
/// Schema of the orchestrator's cluster document.
pub const CLUSTER_SCHEMA: Schema = Schema::new("urcgc-cluster", 1);

/// Checks a member's own delivery log against Uniform Ordering's local
/// obligations: every declared cause processed before its dependent, and
/// every origin's sequence numbers strictly ascending. Returns the verdict
/// and a human-readable detail for the first offence.
pub fn check_delivery_log<'a>(
    log: impl IntoIterator<Item = &'a (Mid, Vec<Mid>)>,
) -> (bool, Option<String>) {
    let mut processed: std::collections::HashSet<Mid> = std::collections::HashSet::new();
    let mut last_seq: std::collections::HashMap<u16, u64> = std::collections::HashMap::new();
    for (mid, deps) in log {
        for dep in deps {
            if !processed.contains(dep) {
                return (
                    false,
                    Some(format!(
                        "processed p{}#{} before its cause p{}#{}",
                        mid.origin.0, mid.seq, dep.origin.0, dep.seq
                    )),
                );
            }
        }
        let last = last_seq.entry(mid.origin.0).or_insert(0);
        if mid.seq <= *last {
            return (
                false,
                Some(format!(
                    "processed p{}#{} after p{}#{}",
                    mid.origin.0, mid.seq, mid.origin.0, *last
                )),
            );
        }
        *last = mid.seq;
        processed.insert(*mid);
    }
    (true, None)
}

/// Per-origin [`fnv1a_stream`] digests of a delivery log (mids in local
/// delivery order).
pub fn order_digests(n: usize, mids_in_order: &[Mid]) -> Vec<u64> {
    let mut per_origin: Vec<Vec<u64>> = vec![Vec::new(); n];
    for mid in mids_in_order {
        if mid.origin.index() < n {
            per_origin[mid.origin.index()].push(mid.seq);
        }
    }
    per_origin.into_iter().map(fnv1a_stream).collect()
}

fn hex(v: u64) -> String {
    format!("0x{v:016x}")
}

fn from_hex(s: &str) -> Result<u64, String> {
    u64::from_str_radix(s.trim_start_matches("0x"), 16)
        .map_err(|e| format!("bad hex digest {s:?}: {e}"))
}

fn get_u64(j: &Json, key: &str) -> Result<u64, String> {
    j.get(key)
        .and_then(Json::as_f64)
        .map(|v| v as u64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn get_str(j: &Json, key: &str) -> Result<String, String> {
    j.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn get_bool(j: &Json, key: &str) -> Result<bool, String> {
    j.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("missing boolean field {key:?}"))
}

/// One member's end-of-run self-description (`urcgc-node/1`).
#[derive(Clone, Debug, PartialEq)]
pub struct NodeReport {
    /// The member's process id.
    pub me: u16,
    /// Group size.
    pub n: usize,
    /// Final life-cycle status (`Debug` rendering of `ProcessStatus`).
    pub status: String,
    /// Whether the member reached workload quiescence
    /// ([`workload_quiescent`](crate::workload_quiescent)) in time.
    pub quiesced: bool,
    /// Messages the member submitted.
    pub submitted: u64,
    /// Messages the member processed (own + foreign).
    pub delivered: u64,
    /// Messages destroyed by orphan elimination.
    pub discarded: u64,
    /// Per-origin contiguous processed frontier.
    pub frontier: Vec<u64>,
    /// Per-origin order digest of the delivery log ([`order_digests`]).
    pub order_digest: Vec<u64>,
    /// The member's own Uniform Ordering verdict ([`check_delivery_log`]).
    pub ordering_ok: bool,
    /// Specifics when `ordering_ok` is false.
    pub ordering_detail: Option<String>,
    /// Network-layer counters.
    pub net: NetStats,
    /// Member wall-clock from spawn to report.
    pub wall_secs: f64,
}

impl NodeReport {
    /// Serializes as a `urcgc-node/1` document.
    pub fn to_json(&self) -> Json {
        let mut j = NODE_SCHEMA
            .tag(Json::obj())
            .with("me", u64::from(self.me))
            .with("n", self.n)
            .with("status", self.status.as_str())
            .with("quiesced", self.quiesced)
            .with("submitted", self.submitted)
            .with("delivered", self.delivered)
            .with("discarded", self.discarded)
            .with(
                "frontier",
                self.frontier
                    .iter()
                    .map(|&v| Json::from(v))
                    .collect::<Vec<_>>(),
            )
            .with(
                "order_digest",
                self.order_digest
                    .iter()
                    .map(|&v| Json::from(hex(v)))
                    .collect::<Vec<_>>(),
            )
            .with("ordering_ok", self.ordering_ok);
        if let Some(detail) = &self.ordering_detail {
            j.set("ordering_detail", detail.as_str());
        }
        j.set(
            "net",
            Json::obj()
                .with("datagrams_rx", self.net.datagrams_rx)
                .with("datagrams_tx", self.net.datagrams_tx)
                .with("dropped_loss", self.net.dropped_loss)
                .with("dropped_backpressure", self.net.dropped_backpressure)
                .with("frames_rx", self.net.frames_rx)
                .with("malformed", self.net.malformed)
                .with("foreign_group_frames", self.net.foreign_group_frames)
                .with("reassembly_evicted", self.net.reassembly_evicted)
                .with("rounds", self.net.rounds),
        );
        j.set("wall_secs", self.wall_secs);
        j
    }

    /// Parses a `urcgc-node/1` document.
    pub fn from_json(j: &Json) -> Result<NodeReport, String> {
        NODE_SCHEMA.expect(j)?;
        let frontier = j
            .get("frontier")
            .and_then(Json::items)
            .ok_or("missing frontier array")?
            .iter()
            .map(|v| v.as_f64().map(|f| f as u64).ok_or("non-numeric frontier"))
            .collect::<Result<Vec<_>, _>>()?;
        let order_digest = j
            .get("order_digest")
            .and_then(Json::items)
            .ok_or("missing order_digest array")?
            .iter()
            .map(|v| from_hex(v.as_str().ok_or("non-string digest")?))
            .collect::<Result<Vec<_>, _>>()?;
        let net_j = j.get("net").ok_or("missing net object")?;
        let net = NetStats {
            datagrams_rx: get_u64(net_j, "datagrams_rx")?,
            datagrams_tx: get_u64(net_j, "datagrams_tx")?,
            dropped_loss: get_u64(net_j, "dropped_loss")?,
            dropped_backpressure: get_u64(net_j, "dropped_backpressure")?,
            frames_rx: get_u64(net_j, "frames_rx")?,
            malformed: get_u64(net_j, "malformed")?,
            // Absent in documents written before multi-group envelopes.
            foreign_group_frames: get_u64(net_j, "foreign_group_frames").unwrap_or(0),
            reassembly_evicted: get_u64(net_j, "reassembly_evicted")?,
            rounds: get_u64(net_j, "rounds")?,
        };
        Ok(NodeReport {
            me: get_u64(j, "me")? as u16,
            n: get_u64(j, "n")? as usize,
            status: get_str(j, "status")?,
            quiesced: get_bool(j, "quiesced")?,
            submitted: get_u64(j, "submitted")?,
            delivered: get_u64(j, "delivered")?,
            discarded: get_u64(j, "discarded")?,
            frontier,
            order_digest,
            ordering_ok: get_bool(j, "ordering_ok")?,
            ordering_detail: j
                .get("ordering_detail")
                .and_then(Json::as_str)
                .map(str::to_string),
            net,
            wall_secs: j
                .get("wall_secs")
                .and_then(Json::as_f64)
                .ok_or("missing wall_secs")?,
        })
    }

    /// Projects the report onto the oracle-facing observation.
    pub fn to_observation(&self) -> NodeObservation {
        NodeObservation {
            me: self.me,
            status: self.status.clone(),
            quiesced: self.quiesced,
            submitted: self.submitted,
            delivered: self.delivered,
            frontier: self.frontier.clone(),
            order_digest: self.order_digest.clone(),
            ordering_ok: self.ordering_ok,
            ordering_detail: self.ordering_detail.clone(),
        }
    }
}

/// The orchestrator's aggregation of one cluster run (`urcgc-cluster/1`).
pub struct ClusterReport {
    /// Run parameters (free-form object built by the orchestrator).
    pub params: Json,
    /// Every member's report, index-aligned with process ids.
    pub nodes: Vec<NodeReport>,
    /// Oracle verdicts over the reports.
    pub violations: Vec<Violation>,
    /// Proxy fault counters.
    pub proxy: ProxyStats,
    /// Orchestrator wall-clock for the whole run.
    pub wall_secs: f64,
}

impl ClusterReport {
    /// Whether the run passed (reports in, oracles silent).
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Serializes as a `urcgc-cluster/1` document.
    pub fn to_json(&self) -> Json {
        CLUSTER_SCHEMA
            .tag(Json::obj())
            .with("params", self.params.clone())
            .with("ok", self.ok())
            .with(
                "violations",
                self.violations
                    .iter()
                    .map(|v| {
                        Json::obj()
                            .with("kind", format!("{:?}", v.kind))
                            .with("detail", v.detail.as_str())
                    })
                    .collect::<Vec<_>>(),
            )
            .with(
                "proxy",
                Json::obj()
                    .with("received", self.proxy.received)
                    .with("forwarded", self.proxy.forwarded)
                    .with("dropped", self.proxy.dropped)
                    .with("duplicated", self.proxy.duplicated)
                    .with("delayed", self.proxy.delayed),
            )
            .with(
                "nodes",
                self.nodes
                    .iter()
                    .map(NodeReport::to_json)
                    .collect::<Vec<_>>(),
            )
            .with("wall_secs", self.wall_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urcgc_types::ProcessId;

    fn mid(origin: u16, seq: u64) -> Mid {
        Mid {
            origin: ProcessId(origin),
            seq,
        }
    }

    #[test]
    fn clean_log_passes_and_digests_are_per_origin() {
        let log = vec![
            (mid(0, 1), vec![]),
            (mid(1, 1), vec![mid(0, 1)]),
            (mid(0, 2), vec![]),
        ];
        let (ok, detail) = check_delivery_log(&log);
        assert!(ok, "{detail:?}");
        let mids: Vec<Mid> = log.iter().map(|(m, _)| *m).collect();
        let d = order_digests(2, &mids);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0], fnv1a_stream([1, 2]));
        assert_eq!(d[1], fnv1a_stream([1]));
    }

    #[test]
    fn missing_cause_is_flagged() {
        let log = vec![(mid(1, 1), vec![mid(0, 1)])];
        let (ok, detail) = check_delivery_log(&log);
        assert!(!ok);
        assert!(detail.unwrap().contains("before its cause p0#1"));
    }

    #[test]
    fn sequence_regression_is_flagged() {
        let log = vec![(mid(0, 2), vec![]), (mid(0, 1), vec![])];
        let (ok, detail) = check_delivery_log(&log);
        assert!(!ok);
        assert!(detail.unwrap().contains("p0#1 after p0#2"));
    }

    #[test]
    fn node_report_roundtrips_through_json() {
        let report = NodeReport {
            me: 2,
            n: 3,
            status: "Active".into(),
            quiesced: true,
            submitted: 10,
            delivered: 30,
            discarded: 0,
            frontier: vec![10, 10, 10],
            // Includes a digest above 2^53 to prove hex transport is exact.
            order_digest: vec![0xcbf2_9ce4_8422_2325, 1, 0xffff_ffff_ffff_fffe],
            ordering_ok: true,
            ordering_detail: None,
            net: NetStats {
                datagrams_rx: 1000,
                datagrams_tx: 900,
                dropped_loss: 50,
                dropped_backpressure: 1,
                frames_rx: 800,
                malformed: 2,
                foreign_group_frames: 0,
                reassembly_evicted: 3,
                rounds: 500,
            },
            wall_secs: 1.5,
        };
        let text = report.to_json().render();
        let back = NodeReport::from_json(&urcgc_metrics::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn cluster_report_renders_with_verdicts() {
        use urcgc_check::OracleKind;
        let node = NodeReport {
            me: 0,
            n: 1,
            status: "Active".into(),
            quiesced: false,
            submitted: 0,
            delivered: 0,
            discarded: 0,
            frontier: vec![0],
            order_digest: vec![fnv1a_stream([])],
            ordering_ok: true,
            ordering_detail: None,
            net: NetStats::default(),
            wall_secs: 0.1,
        };
        let cluster = ClusterReport {
            params: Json::obj().with("n", 1u64),
            nodes: vec![node],
            violations: vec![Violation {
                kind: OracleKind::Stall,
                round: None,
                detail: "1 of 1 members did not quiesce".into(),
            }],
            proxy: ProxyStats::default(),
            wall_secs: 2.0,
        };
        assert!(!cluster.ok());
        let text = cluster.to_json().render_pretty();
        let j = urcgc_metrics::json::parse(&text).unwrap();
        assert_eq!(
            j.get("schema").and_then(Json::as_str),
            Some("urcgc-cluster/1")
        );
        assert_eq!(j.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(j.get("violations").and_then(Json::items).unwrap().len(), 1);
    }
}
