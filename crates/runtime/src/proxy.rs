//! A lossy UDP middlebox for fault injection between real processes.
//!
//! The loopback-cluster soak does not trust in-process loss injection to
//! represent a network: the point of a real-socket run is that faults
//! happen *between* address spaces. [`LossyProxy`] stands one relay socket
//! in front of every cluster member; peers are given the relay addresses
//! instead of the real ones, and every datagram through a relay is
//! independently dropped, duplicated, or delayed under a seeded RNG.
//!
//! The proxy rewrites source addresses (everything a member receives
//! appears to come from the relay) — which is exactly why the runtime
//! identifies senders by the fragment header's `src` field and not by
//! `recv_from`'s address.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Fault plan for one [`LossyProxy`].
#[derive(Clone, Copy, Debug)]
pub struct ProxyOptions {
    /// Probability a datagram is silently dropped.
    pub drop_p: f64,
    /// Probability a (non-dropped) datagram is forwarded twice.
    pub dup_p: f64,
    /// Probability a (non-dropped) datagram is held back before
    /// forwarding.
    pub delay_p: f64,
    /// Maximum hold-back; the actual delay is uniform in `0..max_delay`.
    pub max_delay: Duration,
    /// RNG seed (each relay derives its own stream from this).
    pub seed: u64,
}

impl Default for ProxyOptions {
    fn default() -> ProxyOptions {
        ProxyOptions {
            drop_p: 0.0,
            dup_p: 0.0,
            delay_p: 0.0,
            max_delay: Duration::from_millis(10),
            seed: 0,
        }
    }
}

/// Counters aggregated over all relays.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProxyStats {
    /// Datagrams received by the relays.
    pub received: u64,
    /// Datagrams forwarded (duplicates counted).
    pub forwarded: u64,
    /// Datagrams dropped.
    pub dropped: u64,
    /// Datagrams forwarded twice.
    pub duplicated: u64,
    /// Datagrams held back before forwarding.
    pub delayed: u64,
}

#[derive(Default)]
struct Counters {
    received: AtomicU64,
    forwarded: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    delayed: AtomicU64,
}

/// One relay socket per protected target, each on its own thread.
pub struct LossyProxy {
    addrs: Vec<SocketAddr>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    counters: Arc<Counters>,
}

impl LossyProxy {
    /// Spawns one loopback relay in front of each `target`; datagrams sent
    /// to [`addrs`](LossyProxy::addrs)`[i]` are forwarded — through the
    /// fault plan — to `targets[i]`.
    pub fn spawn(targets: &[SocketAddr], opts: ProxyOptions) -> io::Result<LossyProxy> {
        assert!((0.0..=1.0).contains(&opts.drop_p), "drop_p out of range");
        assert!((0.0..=1.0).contains(&opts.dup_p), "dup_p out of range");
        assert!((0.0..=1.0).contains(&opts.delay_p), "delay_p out of range");
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let mut addrs = Vec::with_capacity(targets.len());
        let mut threads = Vec::with_capacity(targets.len());
        for (i, &target) in targets.iter().enumerate() {
            let socket = UdpSocket::bind("127.0.0.1:0")?;
            socket.set_read_timeout(Some(Duration::from_millis(2)))?;
            addrs.push(socket.local_addr()?);
            let (stop, counters) = (stop.clone(), counters.clone());
            let seed = opts.seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            threads.push(
                thread::Builder::new()
                    .name(format!("urcgc-proxy-{i}"))
                    .spawn(move || relay_loop(socket, target, opts, seed, &counters, &stop))?,
            );
        }
        Ok(LossyProxy {
            addrs,
            stop,
            threads,
            counters,
        })
    }

    /// The relay addresses, index-aligned with the targets.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Aggregated fault-plan counters.
    pub fn stats(&self) -> ProxyStats {
        ProxyStats {
            received: self.counters.received.load(Ordering::Relaxed),
            forwarded: self.counters.forwarded.load(Ordering::Relaxed),
            dropped: self.counters.dropped.load(Ordering::Relaxed),
            duplicated: self.counters.duplicated.load(Ordering::Relaxed),
            delayed: self.counters.delayed.load(Ordering::Relaxed),
        }
    }

    /// Stops the relays and joins their threads.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// A datagram being held back; min-heap by due time.
struct Held {
    due: Instant,
    payload: Vec<u8>,
}

impl PartialEq for Held {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due
    }
}
impl Eq for Held {}
impl PartialOrd for Held {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Held {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.due.cmp(&other.due)
    }
}

fn relay_loop(
    socket: UdpSocket,
    target: SocketAddr,
    opts: ProxyOptions,
    seed: u64,
    counters: &Counters,
    stop: &AtomicBool,
) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut held: BinaryHeap<Reverse<Held>> = BinaryHeap::new();
    let mut buf = vec![0u8; 64 * 1024];
    while !stop.load(Ordering::Relaxed) {
        // Release everything that has aged out of the delay queue.
        let now = Instant::now();
        while held.peek().is_some_and(|Reverse(h)| h.due <= now) {
            let Reverse(h) = held.pop().unwrap();
            let _ = socket.send_to(&h.payload, target);
            counters.forwarded.fetch_add(1, Ordering::Relaxed);
        }
        match socket.recv_from(&mut buf) {
            Ok((len, _)) => {
                counters.received.fetch_add(1, Ordering::Relaxed);
                if opts.drop_p > 0.0 && rng.gen_bool(opts.drop_p) {
                    counters.dropped.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let copies = if opts.dup_p > 0.0 && rng.gen_bool(opts.dup_p) {
                    counters.duplicated.fetch_add(1, Ordering::Relaxed);
                    2
                } else {
                    1
                };
                for _ in 0..copies {
                    if opts.delay_p > 0.0
                        && opts.max_delay > Duration::ZERO
                        && rng.gen_bool(opts.delay_p)
                    {
                        let nanos = rng.gen_range(0..opts.max_delay.as_nanos() as u64);
                        counters.delayed.fetch_add(1, Ordering::Relaxed);
                        held.push(Reverse(Held {
                            due: Instant::now() + Duration::from_nanos(nanos),
                            payload: buf[..len].to_vec(),
                        }));
                    } else {
                        let _ = socket.send_to(&buf[..len], target);
                        counters.forwarded.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(_) => return,
        }
    }
    // Drain the delay queue on shutdown so late datagrams are not lost by
    // the harness itself (the fault plan already decided their fate).
    for Reverse(h) in held.into_sorted_vec() {
        let _ = socket.send_to(&h.payload, target);
        counters.forwarded.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recv_all(sock: &UdpSocket, window: Duration) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        let mut buf = [0u8; 2048];
        let deadline = Instant::now() + window;
        while Instant::now() < deadline {
            if let Ok((len, _)) = sock.recv_from(&mut buf) {
                out.push(buf[..len].to_vec());
            }
        }
        out
    }

    #[test]
    fn clean_proxy_forwards_everything() {
        let dst = UdpSocket::bind("127.0.0.1:0").unwrap();
        dst.set_read_timeout(Some(Duration::from_millis(5)))
            .unwrap();
        let proxy =
            LossyProxy::spawn(&[dst.local_addr().unwrap()], ProxyOptions::default()).unwrap();
        let src = UdpSocket::bind("127.0.0.1:0").unwrap();
        for i in 0..20u8 {
            src.send_to(&[i], proxy.addrs()[0]).unwrap();
        }
        let got = recv_all(&dst, Duration::from_millis(300));
        assert_eq!(got.len(), 20, "lossless proxy must forward all datagrams");
        let stats = proxy.stats();
        assert_eq!(
            (stats.received, stats.forwarded, stats.dropped),
            (20, 20, 0)
        );
        proxy.shutdown();
    }

    #[test]
    fn full_drop_forwards_nothing() {
        let dst = UdpSocket::bind("127.0.0.1:0").unwrap();
        dst.set_read_timeout(Some(Duration::from_millis(5)))
            .unwrap();
        let opts = ProxyOptions {
            drop_p: 1.0,
            ..ProxyOptions::default()
        };
        let proxy = LossyProxy::spawn(&[dst.local_addr().unwrap()], opts).unwrap();
        let src = UdpSocket::bind("127.0.0.1:0").unwrap();
        for i in 0..10u8 {
            src.send_to(&[i], proxy.addrs()[0]).unwrap();
        }
        let got = recv_all(&dst, Duration::from_millis(200));
        assert!(got.is_empty(), "drop_p=1 must black-hole everything");
        assert_eq!(proxy.stats().dropped, 10);
        proxy.shutdown();
    }

    #[test]
    fn duplication_and_delay_deliver_eventually() {
        let dst = UdpSocket::bind("127.0.0.1:0").unwrap();
        dst.set_read_timeout(Some(Duration::from_millis(5)))
            .unwrap();
        let opts = ProxyOptions {
            dup_p: 1.0,
            delay_p: 1.0,
            max_delay: Duration::from_millis(20),
            seed: 7,
            ..ProxyOptions::default()
        };
        let proxy = LossyProxy::spawn(&[dst.local_addr().unwrap()], opts).unwrap();
        let src = UdpSocket::bind("127.0.0.1:0").unwrap();
        for i in 0..5u8 {
            src.send_to(&[i], proxy.addrs()[0]).unwrap();
        }
        let got = recv_all(&dst, Duration::from_millis(400));
        assert_eq!(got.len(), 10, "each datagram duplicated exactly once");
        proxy.shutdown();
    }
}
