//! In-process convenience: a whole group on localhost sockets.
//!
//! [`UdpGroup`] spawns `cfg.n` members, each on its own `127.0.0.1:0`
//! socket with its own three threads ([`spawn_member_on`]) — one OS
//! process, `n` real members talking real UDP. This is the test and
//! example harness; real deployments run one member per OS process via
//! [`spawn_member`](crate::spawn_member) (see the `loopback-cluster` and
//! `urcgc_node` binaries).

use std::net::UdpSocket;
use std::time::Duration;

use crate::node::{spawn_member_on, GroupError, GroupShutdown, NodeOptions, ProcessHandle};
use urcgc_types::{ProcessId, ProtocolConfig};

/// A running group of urcgc processes on localhost UDP sockets.
pub struct UdpGroup {
    handles: Vec<ProcessHandle>,
    shutdown: GroupShutdown,
}

impl UdpGroup {
    /// Binds `cfg.n` UDP sockets on localhost and spawns one member per
    /// socket. `loss` is a Bernoulli drop probability applied to every
    /// received datagram (fault injection on real sockets); `seed` makes
    /// the injector deterministic.
    pub fn spawn(
        cfg: ProtocolConfig,
        round_duration: Duration,
        loss: f64,
        seed: u64,
    ) -> Result<UdpGroup, GroupError> {
        UdpGroup::spawn_with(
            cfg,
            NodeOptions::default()
                .round_duration(round_duration)
                .loss(loss, seed),
        )
    }

    /// [`spawn`](UdpGroup::spawn) with full [`NodeOptions`] control. Each
    /// member derives its own loss-injector seed from `opts.seed`.
    pub fn spawn_with(cfg: ProtocolConfig, opts: NodeOptions) -> Result<UdpGroup, GroupError> {
        cfg.validate()
            .map_err(|e| GroupError::Rejected(e.to_string()))?;
        let n = cfg.n;
        let mut sockets = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for _ in 0..n {
            let sock = UdpSocket::bind("127.0.0.1:0")?;
            addrs.push(sock.local_addr()?);
            sockets.push(sock);
        }
        let mut handles = Vec::with_capacity(n);
        let mut shutdown = GroupShutdown::empty();
        for (i, sock) in sockets.into_iter().enumerate() {
            let me = ProcessId::from_index(i);
            let member_opts = NodeOptions {
                seed: opts.seed ^ (i as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F),
                ..opts.clone()
            };
            let (handle, member_shutdown) =
                spawn_member_on(sock, me, addrs.clone(), cfg.clone(), member_opts)?;
            handles.push(handle);
            shutdown.merge(member_shutdown);
        }
        Ok(UdpGroup { handles, shutdown })
    }

    /// Number of members.
    pub fn n(&self) -> usize {
        self.handles.len()
    }

    /// Mutable access to one member's handle.
    pub fn handle(&mut self, i: usize) -> &mut ProcessHandle {
        &mut self.handles[i]
    }

    /// Splits the group into its handles (for moving to worker threads).
    pub fn into_handles(self) -> (Vec<ProcessHandle>, GroupShutdown) {
        (self.handles, self.shutdown)
    }

    /// Stops all members and joins their threads.
    pub fn shutdown(self) {
        self.shutdown.shutdown();
    }
}
