//! UDP group runtime.

use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tokio::net::UdpSocket;
use tokio::sync::{mpsc, oneshot};
use tokio::task::JoinHandle;

use urcgc::{Engine, EngineSnapshot, EngineStats, Output, ProcessStatus};
use urcgc_types::{DataMsg, Mid, ProcessId, ProtocolConfig, Round};

/// Events surfaced to the application.
#[derive(Clone, Debug)]
pub enum AppEvent {
    /// `urcgc.data.Ind`: a message was processed, in causal order. The
    /// handle is shared with the engine's history buffer.
    Delivered(Arc<DataMsg>),
    /// `urcgc.data.Conf`: an own submission was broadcast and processed.
    Confirmed(Mid),
    /// Waiting messages were destroyed by orphan elimination.
    Discarded(Vec<Mid>),
    /// The entity's life-cycle status changed.
    StatusChanged(ProcessStatus),
}

/// Failures when spawning or using the group.
#[derive(Debug)]
pub enum GroupError {
    /// Socket setup failed.
    Io(io::Error),
    /// The target process task has terminated.
    ProcessGone,
    /// The submission was rejected by the engine.
    Rejected(String),
}

impl std::fmt::Display for GroupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GroupError::Io(e) => write!(f, "socket error: {e}"),
            GroupError::ProcessGone => write!(f, "process task has terminated"),
            GroupError::Rejected(e) => write!(f, "submission rejected: {e}"),
        }
    }
}

impl std::error::Error for GroupError {}

impl From<io::Error> for GroupError {
    fn from(e: io::Error) -> Self {
        GroupError::Io(e)
    }
}

enum Cmd {
    Submit {
        payload: Bytes,
        deps: Vec<Mid>,
        resp: oneshot::Sender<Result<Mid, String>>,
    },
    Status {
        resp: oneshot::Sender<ProcessStatus>,
    },
    Stats {
        resp: oneshot::Sender<EngineStats>,
    },
    Snapshot {
        resp: oneshot::Sender<EngineSnapshot>,
    },
    /// Hard-kill the process (simulated crash: the task exits immediately,
    /// mid-protocol, without telling anyone).
    Kill,
    Shutdown,
}

/// Client-side handle to one group member.
pub struct ProcessHandle {
    id: ProcessId,
    cmd_tx: mpsc::Sender<Cmd>,
    evt_rx: mpsc::Receiver<AppEvent>,
}

impl ProcessHandle {
    /// The member this handle controls.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// Submits a message with explicit causal dependencies; resolves to the
    /// assigned mid.
    pub async fn submit(&self, payload: Bytes, deps: Vec<Mid>) -> Result<Mid, GroupError> {
        let (resp, rx) = oneshot::channel();
        self.cmd_tx
            .send(Cmd::Submit {
                payload,
                deps,
                resp,
            })
            .await
            .map_err(|_| GroupError::ProcessGone)?;
        rx.await
            .map_err(|_| GroupError::ProcessGone)?
            .map_err(GroupError::Rejected)
    }

    /// Receives the next application event (None once the task exits).
    pub async fn next_event(&mut self) -> Option<AppEvent> {
        self.evt_rx.recv().await
    }

    /// Non-blocking event poll.
    pub fn try_event(&mut self) -> Option<AppEvent> {
        self.evt_rx.try_recv().ok()
    }

    /// Queries the entity's life-cycle status.
    pub async fn status(&self) -> Result<ProcessStatus, GroupError> {
        let (resp, rx) = oneshot::channel();
        self.cmd_tx
            .send(Cmd::Status { resp })
            .await
            .map_err(|_| GroupError::ProcessGone)?;
        rx.await.map_err(|_| GroupError::ProcessGone)
    }

    /// Queries the entity's live counters.
    pub async fn stats(&self) -> Result<EngineStats, GroupError> {
        let (resp, rx) = oneshot::channel();
        self.cmd_tx
            .send(Cmd::Stats { resp })
            .await
            .map_err(|_| GroupError::ProcessGone)?;
        rx.await.map_err(|_| GroupError::ProcessGone)
    }

    /// Takes a full serializable snapshot of the entity's state (frontiers,
    /// view, backlog, counters) — the operations surface.
    pub async fn snapshot(&self) -> Result<EngineSnapshot, GroupError> {
        let (resp, rx) = oneshot::channel();
        self.cmd_tx
            .send(Cmd::Snapshot { resp })
            .await
            .map_err(|_| GroupError::ProcessGone)?;
        rx.await.map_err(|_| GroupError::ProcessGone)
    }

    /// Simulates a fail-stop crash: the process task exits immediately,
    /// mid-protocol, without notifying the group. The survivors are
    /// expected to detect the crash through the protocol's `attempts`
    /// counters within `K` subruns.
    pub async fn kill(&self) -> Result<(), GroupError> {
        self.cmd_tx
            .send(Cmd::Kill)
            .await
            .map_err(|_| GroupError::ProcessGone)
    }
}

/// A running group of urcgc processes on localhost UDP sockets.
pub struct UdpGroup {
    handles: Vec<ProcessHandle>,
    tasks: Vec<JoinHandle<()>>,
    cmd_txs: Vec<mpsc::Sender<Cmd>>,
}

impl UdpGroup {
    /// Binds `cfg.n` UDP sockets on localhost, exchanges addresses, and
    /// spawns one protocol task per member. `loss` is a Bernoulli drop
    /// probability applied to every received datagram (fault injection on
    /// real sockets); `seed` makes the injector deterministic.
    #[allow(clippy::needless_range_loop)] // sockets/addrs/handles built in lockstep
    pub async fn spawn(
        cfg: ProtocolConfig,
        round_duration: Duration,
        loss: f64,
        seed: u64,
    ) -> Result<UdpGroup, GroupError> {
        assert!((0.0..=1.0).contains(&loss), "loss probability out of range");
        cfg.validate().map_err(|e| {
            GroupError::Rejected(e.to_string())
        })?;
        let n = cfg.n;
        let mut sockets = Vec::with_capacity(n);
        let mut addrs: Vec<SocketAddr> = Vec::with_capacity(n);
        for _ in 0..n {
            let sock = UdpSocket::bind("127.0.0.1:0").await?;
            addrs.push(sock.local_addr()?);
            sockets.push(Arc::new(sock));
        }
        let addr_to_pid: HashMap<SocketAddr, ProcessId> = addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| (a, ProcessId::from_index(i)))
            .collect();

        let mut handles = Vec::with_capacity(n);
        let mut tasks = Vec::with_capacity(n);
        let mut cmd_txs = Vec::with_capacity(n);
        for i in 0..n {
            let me = ProcessId::from_index(i);
            let engine = Engine::new(me, cfg.clone());
            let (cmd_tx, cmd_rx) = mpsc::channel(64);
            let (evt_tx, evt_rx) = mpsc::channel(1024);
            let task = tokio::spawn(run_process(
                engine,
                sockets[i].clone(),
                addrs.clone(),
                addr_to_pid.clone(),
                round_duration,
                cmd_rx,
                evt_tx,
                loss,
                seed ^ (i as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F),
            ));
            handles.push(ProcessHandle {
                id: me,
                cmd_tx: cmd_tx.clone(),
                evt_rx,
            });
            cmd_txs.push(cmd_tx);
            tasks.push(task);
        }
        Ok(UdpGroup {
            handles,
            tasks,
            cmd_txs,
        })
    }

    /// Number of members.
    pub fn n(&self) -> usize {
        self.handles.len()
    }

    /// Mutable access to one member's handle.
    pub fn handle(&mut self, i: usize) -> &mut ProcessHandle {
        &mut self.handles[i]
    }

    /// Splits the group into its handles (for moving into separate tasks).
    pub fn into_handles(self) -> (Vec<ProcessHandle>, GroupShutdown) {
        (
            self.handles,
            GroupShutdown {
                tasks: self.tasks,
                cmd_txs: self.cmd_txs,
            },
        )
    }

    /// Stops all members and awaits their tasks.
    pub async fn shutdown(self) {
        let (_, shutdown) = self.into_handles();
        shutdown.shutdown().await;
    }
}

/// Deferred shutdown token from [`UdpGroup::into_handles`].
pub struct GroupShutdown {
    tasks: Vec<JoinHandle<()>>,
    cmd_txs: Vec<mpsc::Sender<Cmd>>,
}

impl GroupShutdown {
    /// Stops all members and awaits their tasks.
    pub async fn shutdown(self) {
        for tx in &self.cmd_txs {
            let _ = tx.send(Cmd::Shutdown).await;
        }
        for t in self.tasks {
            let _ = t.await;
        }
    }
}

/// Magic first byte of the startup-barrier hello (never a valid PDU tag).
const HELLO: u8 = 0xFF;

/// Startup barrier: fixed-membership round protocols need all members
/// present before attempt counters start ticking, or a late starter is
/// declared crashed before it boots (the paper has no rejoin). Every
/// member pings all peers with a hello datagram and waits until it has
/// heard *something* from each of them (a hello or live protocol traffic),
/// with a deadline so a genuinely dead peer cannot wedge startup forever.
async fn startup_barrier(
    me: ProcessId,
    socket: &UdpSocket,
    addrs: &[SocketAddr],
    addr_to_pid: &HashMap<SocketAddr, ProcessId>,
) {
    let mut seen: std::collections::HashSet<ProcessId> = [me].into();
    let deadline = tokio::time::Instant::now() + Duration::from_secs(15);
    let mut buf = [0u8; 2048];
    while seen.len() < addrs.len() && tokio::time::Instant::now() < deadline {
        for (i, addr) in addrs.iter().enumerate() {
            if i != me.index() {
                let _ = socket.send_to(&[HELLO, me.0 as u8], addr).await;
            }
        }
        let window = tokio::time::Instant::now() + Duration::from_millis(40);
        loop {
            let recv = tokio::select! {
                r = socket.recv_from(&mut buf) => r,
                _ = tokio::time::sleep_until(window) => break,
            };
            if let Ok((_, from_addr)) = recv {
                if let Some(&from) = addr_to_pid.get(&from_addr) {
                    seen.insert(from);
                }
            }
            if seen.len() == addrs.len() {
                break;
            }
        }
    }
    // One parting burst so peers still inside their barrier see us even if
    // our earlier hellos raced their bind().
    for (i, addr) in addrs.iter().enumerate() {
        if i != me.index() {
            let _ = socket.send_to(&[HELLO, me.0 as u8], addr).await;
        }
    }
}

#[allow(clippy::too_many_arguments)]
async fn run_process(
    mut engine: Engine,
    socket: Arc<UdpSocket>,
    addrs: Vec<SocketAddr>,
    addr_to_pid: HashMap<SocketAddr, ProcessId>,
    round_duration: Duration,
    mut cmd_rx: mpsc::Receiver<Cmd>,
    evt_tx: mpsc::Sender<AppEvent>,
    loss: f64,
    seed: u64,
) {
    let me = engine.me();
    startup_barrier(me, &socket, &addrs, &addr_to_pid).await;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut ticker = tokio::time::interval(round_duration);
    ticker.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Burst);
    let mut round: u64 = 0;
    let mut buf = vec![0u8; 64 * 1024];

    loop {
        tokio::select! {
            _ = ticker.tick() => {
                engine.begin_round(Round(round));
                round += 1;
                if !flush(&mut engine, &socket, &addrs, me, &evt_tx).await {
                    return;
                }
                if !engine.status().is_active() {
                    // Keep serving status queries briefly, then exit.
                    let _ = evt_tx.send(AppEvent::StatusChanged(engine.status())).await;
                    return;
                }
            }
            recv = socket.recv_from(&mut buf) => {
                let Ok((len, from_addr)) = recv else { continue };
                if loss > 0.0 && rng.gen_bool(loss) {
                    continue; // injected omission
                }
                let Some(&from) = addr_to_pid.get(&from_addr) else { continue };
                if len == 2 && buf[0] == HELLO {
                    continue; // a peer still in its startup barrier
                }
                let frame = Bytes::copy_from_slice(&buf[..len]);
                if engine.on_frame(from, &frame).is_err() {
                    continue; // malformed datagram: drop
                }
                // Round synchronization: the paper's model is synchronous
                // rounds, but independently started OS processes boot with
                // round 0. Decisions carry the group's subrun clock; a
                // process that is behind fast-forwards so its requests land
                // in the subrun the rest of the group is actually running.
                let group_subrun = engine.last_decision().subrun.0;
                let sync_round = 2 * (group_subrun + 1);
                if round < sync_round {
                    round = sync_round;
                }
                if !flush(&mut engine, &socket, &addrs, me, &evt_tx).await {
                    return;
                }
            }
            cmd = cmd_rx.recv() => {
                match cmd {
                    Some(Cmd::Submit { payload, deps, resp }) => {
                        let result = engine
                            .submit(payload, &deps)
                            .map_err(|e| e.to_string());
                        let _ = resp.send(result);
                    }
                    Some(Cmd::Status { resp }) => {
                        let _ = resp.send(engine.status());
                    }
                    Some(Cmd::Stats { resp }) => {
                        let _ = resp.send(engine.stats());
                    }
                    Some(Cmd::Snapshot { resp }) => {
                        let _ = resp.send(engine.snapshot());
                    }
                    Some(Cmd::Kill) | Some(Cmd::Shutdown) | None => return,
                }
            }
        }
    }
}

/// Drains engine outputs onto the socket / event channel. Returns false if
/// the application side is gone.
async fn flush(
    engine: &mut Engine,
    socket: &UdpSocket,
    addrs: &[SocketAddr],
    me: ProcessId,
    evt_tx: &mpsc::Sender<AppEvent>,
) -> bool {
    while let Some(out) = engine.poll_output() {
        match out {
            Output::Send { to, pdu } => {
                let frame = urcgc_types::encode_pdu(&pdu);
                let _ = socket.send_to(&frame, addrs[to.index()]).await;
            }
            Output::Broadcast { pdu } => {
                let frame = urcgc_types::encode_pdu(&pdu);
                for (i, addr) in addrs.iter().enumerate() {
                    if i != me.index() {
                        let _ = socket.send_to(&frame, addr).await;
                    }
                }
            }
            Output::Deliver { msg } => {
                if evt_tx.send(AppEvent::Delivered(msg)).await.is_err() {
                    return false;
                }
            }
            Output::Confirm { mid } => {
                if evt_tx.send(AppEvent::Confirmed(mid)).await.is_err() {
                    return false;
                }
            }
            Output::Discarded { mids } => {
                if evt_tx.send(AppEvent::Discarded(mids)).await.is_err() {
                    return false;
                }
            }
            Output::StatusChanged { status, .. } => {
                if evt_tx.send(AppEvent::StatusChanged(status)).await.is_err() {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    async fn collect_deliveries(
        handle: &mut ProcessHandle,
        expect: usize,
        timeout: Duration,
    ) -> Vec<Arc<DataMsg>> {
        let mut got = Vec::new();
        let deadline = tokio::time::Instant::now() + timeout;
        while got.len() < expect {
            let ev = tokio::select! {
                ev = handle.next_event() => ev,
                _ = tokio::time::sleep_until(deadline) => break,
            };
            match ev {
                Some(AppEvent::Delivered(msg)) => got.push(msg),
                Some(_) => {}
                None => break,
            }
        }
        got
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn three_process_udp_group_delivers_everywhere() {
        let cfg = ProtocolConfig::new(3);
        let mut group = UdpGroup::spawn(cfg, Duration::from_millis(4), 0.0, 42)
            .await
            .unwrap();
        let mid = group
            .handle(0)
            .submit(Bytes::from_static(b"over udp"), vec![])
            .await
            .unwrap();
        for i in 0..3 {
            let got = collect_deliveries(group.handle(i), 1, Duration::from_secs(5)).await;
            assert_eq!(got.len(), 1, "member {i} missed the delivery");
            assert_eq!(got[0].mid, mid);
            assert_eq!(&got[0].payload[..], b"over udp");
        }
        group.shutdown().await;
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn causal_order_holds_on_real_sockets() {
        let cfg = ProtocolConfig::new(3);
        let mut group = UdpGroup::spawn(cfg, Duration::from_millis(4), 0.0, 7)
            .await
            .unwrap();
        // p0 sends a chain of 5; every member must deliver in seq order.
        let mut mids = Vec::new();
        for k in 0..5u8 {
            let mid = group
                .handle(0)
                .submit(Bytes::from(vec![k]), vec![])
                .await
                .unwrap();
            mids.push(mid);
        }
        for i in 1..3 {
            let got = collect_deliveries(group.handle(i), 5, Duration::from_secs(5)).await;
            let seqs: Vec<u64> = got.iter().map(|m| m.mid.seq).collect();
            assert_eq!(seqs, vec![1, 2, 3, 4, 5], "member {i} out of order");
        }
        group.shutdown().await;
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn packet_loss_is_recovered_from_history() {
        let cfg = ProtocolConfig::new(3).with_k(3);
        // 20% receive-side loss on every member.
        let mut group = UdpGroup::spawn(cfg, Duration::from_millis(4), 0.20, 99)
            .await
            .unwrap();
        let mut sent = HashSet::new();
        for k in 0..6u8 {
            let mid = group
                .handle(0)
                .submit(Bytes::from(vec![k]), vec![])
                .await
                .unwrap();
            sent.insert(mid);
        }
        for i in 1..3 {
            let got = collect_deliveries(group.handle(i), 6, Duration::from_secs(20)).await;
            let got_mids: HashSet<Mid> = got.iter().map(|m| m.mid).collect();
            assert_eq!(got_mids, sent, "member {i} did not recover all messages");
        }
        group.shutdown().await;
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn status_query_and_shutdown() {
        let cfg = ProtocolConfig::new(2);
        let mut group = UdpGroup::spawn(cfg, Duration::from_millis(4), 0.0, 1)
            .await
            .unwrap();
        assert_eq!(group.n(), 2);
        let st = group.handle(0).status().await.unwrap();
        assert!(st.is_active());
        group.shutdown().await;
    }
}

#[cfg(test)]
mod crash_tests {
    use super::*;

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn killed_member_is_detected_by_survivors() {
        let cfg = ProtocolConfig::new(4).with_k(2);
        let mut group = UdpGroup::spawn(cfg, Duration::from_millis(4), 0.0, 55)
            .await
            .unwrap();
        // Warm up: a message flows.
        group
            .handle(0)
            .submit(Bytes::from_static(b"warmup"), vec![])
            .await
            .unwrap();
        tokio::time::sleep(Duration::from_millis(60)).await;
        // Kill p3 mid-protocol.
        group.handle(3).kill().await.unwrap();
        // Survivors must converge on a view without p3 within a few K
        // subruns; poll p0's decision view via stats + a fresh submission.
        let deadline = tokio::time::Instant::now() + Duration::from_secs(10);
        loop {
            assert!(
                tokio::time::Instant::now() < deadline,
                "crash never detected"
            );
            // decisions_applied keeps rising; use a probe submission to
            // confirm the group is still live, then check detection via
            // stats of the survivors.
            let st = group.handle(0).stats().await.unwrap();
            if st.decisions_applied > 0 {
                // Submit and verify the 3 survivors still deliver.
                let mid = group
                    .handle(1)
                    .submit(Bytes::from_static(b"after crash"), vec![])
                    .await
                    .unwrap();
                let mut ok = 0;
                for m in 0..3 {
                    let d = tokio::time::timeout(Duration::from_secs(5), async {
                        loop {
                            match group.handle(m).next_event().await {
                                Some(AppEvent::Delivered(msg)) if msg.mid == mid => break true,
                                Some(_) => continue,
                                None => break false,
                            }
                        }
                    })
                    .await;
                    if d == Ok(true) {
                        ok += 1;
                    }
                }
                assert_eq!(ok, 3, "survivors failed to deliver after the crash");
                break;
            }
            tokio::time::sleep(Duration::from_millis(20)).await;
        }
        // The killed member's handle reports the task gone.
        assert!(group.handle(3).status().await.is_err());
        group.shutdown().await;
    }
}

/// Spawns a **single** group member bound to `bind_addr`, with the full
/// peer address list supplied explicitly — the deployment shape for real
/// multi-process / multi-host groups (each OS process runs one member and
/// is given everyone's addresses out of band).
///
/// `peers[i]` must be the address of process `i`; `peers[me]` must equal
/// `bind_addr` (it is used for self-identification, never dialed).
///
/// Members may start at different times: a late starter synchronizes its
/// round clock to the group's from the first coordinator decision it
/// receives (see the round-synchronization note in `run_process`). Until a
/// member has synchronized, its requests may be ignored and its `attempts`
/// counter advances — start all members within `K` subruns of each other
/// or use a larger `K`.
pub async fn spawn_member(
    me: ProcessId,
    bind_addr: SocketAddr,
    peers: Vec<SocketAddr>,
    cfg: ProtocolConfig,
    round_duration: Duration,
) -> Result<(ProcessHandle, GroupShutdown), GroupError> {
    cfg.validate()
        .map_err(|e| GroupError::Rejected(e.to_string()))?;
    if peers.len() != cfg.n {
        return Err(GroupError::Rejected(format!(
            "peer list has {} entries for a group of {}",
            peers.len(),
            cfg.n
        )));
    }
    if me.index() >= cfg.n {
        return Err(GroupError::Rejected(format!(
            "member {me} outside group of {}",
            cfg.n
        )));
    }
    let socket = Arc::new(UdpSocket::bind(bind_addr).await?);
    let addr_to_pid: HashMap<SocketAddr, ProcessId> = peers
        .iter()
        .enumerate()
        .map(|(i, &a)| (a, ProcessId::from_index(i)))
        .collect();
    let engine = Engine::new(me, cfg);
    let (cmd_tx, cmd_rx) = mpsc::channel(64);
    let (evt_tx, evt_rx) = mpsc::channel(1024);
    let task = tokio::spawn(run_process(
        engine,
        socket,
        peers,
        addr_to_pid,
        round_duration,
        cmd_rx,
        evt_tx,
        0.0,
        0,
    ));
    Ok((
        ProcessHandle {
            id: me,
            cmd_tx: cmd_tx.clone(),
            evt_rx,
        },
        GroupShutdown {
            tasks: vec![task],
            cmd_txs: vec![cmd_tx],
        },
    ))
}

#[cfg(test)]
mod member_tests {
    use super::*;

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn independently_spawned_members_form_a_group() {
        // Reserve three concrete ports by binding throwaway sockets first.
        let mut addrs = Vec::new();
        for _ in 0..3 {
            let s = UdpSocket::bind("127.0.0.1:0").await.unwrap();
            addrs.push(s.local_addr().unwrap());
            drop(s);
        }
        let cfg = ProtocolConfig::new(3);
        let mut handles = Vec::new();
        let mut shutdowns = Vec::new();
        for i in 0..3 {
            let (h, s) = spawn_member(
                ProcessId::from_index(i),
                addrs[i],
                addrs.clone(),
                cfg.clone(),
                Duration::from_millis(4),
            )
            .await
            .unwrap();
            handles.push(h);
            shutdowns.push(s);
        }
        let mid = handles[0]
            .submit(Bytes::from_static(b"multi-host"), vec![])
            .await
            .unwrap();
        for (i, h) in handles.iter_mut().enumerate() {
            let deadline = tokio::time::Instant::now() + Duration::from_secs(10);
            loop {
                let ev = tokio::select! {
                    ev = h.next_event() => ev,
                    _ = tokio::time::sleep_until(deadline) => {
                        panic!("member {i} timed out")
                    }
                };
                match ev {
                    Some(AppEvent::Delivered(msg)) if msg.mid == mid => break,
                    Some(_) => {}
                    None => panic!("member {i} task died"),
                }
            }
        }
        for s in shutdowns {
            s.shutdown().await;
        }
    }
}

#[cfg(test)]
mod snapshot_tests {
    use super::*;

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn snapshot_over_the_wire() {
        let cfg = ProtocolConfig::new(2);
        let mut group = UdpGroup::spawn(cfg, Duration::from_millis(4), 0.0, 3)
            .await
            .unwrap();
        group
            .handle(0)
            .submit(Bytes::from_static(b"x"), vec![])
            .await
            .unwrap();
        tokio::time::sleep(Duration::from_millis(80)).await;
        let snap = group.handle(1).snapshot().await.unwrap();
        assert_eq!(snap.me, 1);
        assert_eq!(snap.status, "Active");
        assert_eq!(snap.frontier[0], 1, "p1 processed p0#1");
        assert_eq!(snap.alive, vec![true, true]);
        group.shutdown().await;
    }
}
