//! A real urcgc group over UDP sockets with injected packet loss — the
//! paper's Section 7 prototype scenario.
//!
//! Four processes on localhost, 15% receive-side packet loss at every
//! member, a burst of causally chained messages: the run demonstrates that
//! the same engine the simulator drives also converges over a lossy real
//! network, recovering missed messages from peers' histories.
//!
//! Run: `cargo run --example udp_group`

use std::collections::HashSet;
use std::time::{Duration, Instant};

use bytes::Bytes;
use urcgc_runtime::{AppEvent, UdpGroup};
use urcgc_types::{Mid, ProtocolConfig};

fn main() {
    const N: usize = 4;
    const MSGS_PER_SENDER: usize = 5;
    const LOSS: f64 = 0.15;

    let cfg = ProtocolConfig::new(N);
    println!("spawning {N}-process urcgc group on localhost UDP, {LOSS} loss");
    let mut group =
        UdpGroup::spawn(cfg, Duration::from_millis(5), LOSS, 0xBEEF).expect("spawn group");

    // Two senders each publish a causal chain.
    let mut expected: HashSet<Mid> = HashSet::new();
    for sender in 0..2 {
        for k in 0..MSGS_PER_SENDER {
            let payload = Bytes::from(format!("msg {k} from p{sender}"));
            let mid = group
                .handle(sender)
                .submit(payload, vec![])
                .expect("submit");
            expected.insert(mid);
        }
    }
    println!("submitted {} messages", expected.len());

    // Every member must deliver the full set, each sender's chain in order.
    for member in 0..N {
        let mut got: Vec<Mid> = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(30);
        while got.len() < expected.len() {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                panic!(
                    "p{member} timed out with {}/{} messages",
                    got.len(),
                    expected.len()
                );
            }
            match group.handle(member).next_event(left) {
                Some(AppEvent::Delivered(msg)) => got.push(msg.mid),
                Some(_) => {}
                None => {}
            }
        }
        let got_set: HashSet<Mid> = got.iter().copied().collect();
        assert_eq!(got_set, expected, "p{member} delivered a different set");
        // Per-origin order check (causal order implies per-origin seq order
        // under the intermediate interpretation).
        for origin in 0..2u16 {
            let seqs: Vec<u64> = got
                .iter()
                .filter(|m| m.origin.0 == origin)
                .map(|m| m.seq)
                .collect();
            let mut sorted = seqs.clone();
            sorted.sort();
            assert_eq!(seqs, sorted, "p{member} out of order for origin {origin}");
        }
        println!("p{member}: all {} messages, causally ordered ✓", got.len());
    }

    group.shutdown();
    println!("\nOK: lossy UDP group converged — omissions healed from history.");
}
