//! End-to-end tests of the threaded UDP runtime: the same engine that
//! passed the simulator property tests, now over real sockets with real
//! concurrency, injected packet loss, and an address-rewriting lossy
//! proxy between members.

use std::collections::{HashMap, HashSet};
use std::net::UdpSocket;
use std::time::{Duration, Instant};

use bytes::Bytes;
use urcgc_runtime::{
    spawn_member_on, workload_quiescent, AppEvent, GroupShutdown, LossyProxy, NodeOptions,
    ProcessHandle, ProxyOptions, UdpGroup,
};
use urcgc_types::{Mid, ProcessId, ProtocolConfig};

fn drain_until(handle: &mut ProcessHandle, expect: usize, secs: u64) -> Vec<Mid> {
    let mut got = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(secs);
    while got.len() < expect {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            break;
        }
        match handle.next_event(left) {
            Some(AppEvent::Delivered(msg)) => got.push(msg.mid),
            Some(_) => {}
            None => break,
        }
    }
    got
}

#[test]
fn five_member_group_with_concurrent_senders() {
    let cfg = ProtocolConfig::new(5);
    let mut group = UdpGroup::spawn(cfg, Duration::from_millis(4), 0.0, 17).unwrap();

    // All five members submit concurrently (interleaved submissions).
    let mut expected = HashSet::new();
    for k in 0..4u8 {
        for m in 0..5usize {
            let mid = group
                .handle(m)
                .submit(Bytes::from(vec![k, m as u8]), vec![])
                .unwrap();
            expected.insert(mid);
        }
    }

    for m in 0..5 {
        let got = drain_until(group.handle(m), expected.len(), 15);
        let set: HashSet<Mid> = got.iter().copied().collect();
        assert_eq!(set, expected, "member {m} delivered a different set");
        // Per-origin sequence order (causal order projection).
        let mut per_origin: HashMap<u16, Vec<u64>> = HashMap::new();
        for mid in &got {
            per_origin.entry(mid.origin.0).or_default().push(mid.seq);
        }
        for (origin, seqs) in per_origin {
            let mut sorted = seqs.clone();
            sorted.sort();
            assert_eq!(seqs, sorted, "member {m}, origin {origin} out of order");
        }
    }
    group.shutdown();
}

#[test]
fn explicit_cross_member_dependency_respected_on_sockets() {
    let cfg = ProtocolConfig::new(3);
    let mut group = UdpGroup::spawn(cfg, Duration::from_millis(4), 0.0, 23).unwrap();

    // p0 sends; p1 waits until it sees the message, then replies with an
    // explicit dependency on it.
    let first = group
        .handle(0)
        .submit(Bytes::from_static(b"question"), vec![])
        .unwrap();
    let got = drain_until(group.handle(1), 1, 10);
    assert_eq!(got, vec![first]);
    let reply = group
        .handle(1)
        .submit(Bytes::from_static(b"answer"), vec![first])
        .unwrap();

    // p2 must process question before answer.
    let order = drain_until(group.handle(2), 2, 10);
    assert_eq!(order, vec![first, reply]);
    group.shutdown();
}

#[test]
fn heavy_loss_converges_via_history_recovery() {
    // 25% receive loss at every member: most broadcasts lose at least one
    // destination, so convergence demonstrably depends on recovery.
    let cfg = ProtocolConfig::new(3).with_k(3).with_f_allowance(3);
    let mut group = UdpGroup::spawn(cfg, Duration::from_millis(4), 0.25, 31).unwrap();
    let mut expected = HashSet::new();
    for k in 0..8u8 {
        expected.insert(
            group
                .handle(0)
                .submit(Bytes::from(vec![k]), vec![])
                .unwrap(),
        );
    }
    for m in 1..3 {
        let got = drain_until(group.handle(m), expected.len(), 30);
        let set: HashSet<Mid> = got.iter().copied().collect();
        assert_eq!(set, expected, "member {m} failed to converge under loss");
    }
    group.shutdown();
}

#[test]
fn confirm_events_arrive_for_own_submissions() {
    let cfg = ProtocolConfig::new(2);
    let mut group = UdpGroup::spawn(cfg, Duration::from_millis(4), 0.0, 37).unwrap();
    let mid = group
        .handle(0)
        .submit(Bytes::from_static(b"confirm me"), vec![])
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let left = deadline.saturating_duration_since(Instant::now());
        match group.handle(0).next_event(left) {
            Some(AppEvent::Confirmed(m)) => {
                assert_eq!(m, mid);
                break;
            }
            Some(_) => {}
            None => panic!("no Confirm within 5s"),
        }
    }
    group.shutdown();
}

#[test]
fn status_snapshot_and_stats_answer_over_the_command_channel() {
    let cfg = ProtocolConfig::new(3);
    let mut group = UdpGroup::spawn(cfg, Duration::from_millis(4), 0.0, 41).unwrap();
    let mid = group
        .handle(1)
        .submit(Bytes::from_static(b"observable"), vec![])
        .unwrap();
    for m in 0..3 {
        assert_eq!(drain_until(group.handle(m), 1, 10), vec![mid]);
    }

    let status = group.handle(1).status().unwrap();
    assert!(
        status.is_active(),
        "member 1 should be active, got {status:?}"
    );

    let snap = group.handle(1).snapshot().unwrap();
    assert_eq!(snap.me, 1);
    assert_eq!(snap.status, "Active");
    assert_eq!(snap.frontier.len(), 3);
    assert_eq!(snap.frontier[1], 1, "own message is in the frontier");
    assert!(snap.alive.iter().all(|&a| a), "nobody crashed");

    let stats = group.handle(0).stats().unwrap();
    assert_eq!(stats.processed, 1);

    // The runtime's own counters moved too: rounds ticked, datagrams flowed.
    let net = group.handle(0).net_stats();
    assert!(net.rounds > 0, "round ticker never fired");
    assert!(net.datagrams_rx > 0, "no datagrams received");
    assert!(net.frames_rx > 0, "no frames reassembled");
    group.shutdown();
}

#[test]
fn killed_member_is_detected_by_survivors() {
    // K=2 keeps detection latency low; the dead member stops answering
    // mid-protocol (fail-stop, no goodbye).
    let cfg = ProtocolConfig::new(3).with_k(2);
    let mut group = UdpGroup::spawn(cfg, Duration::from_millis(4), 0.0, 43).unwrap();
    let mid = group
        .handle(0)
        .submit(Bytes::from_static(b"warm-up"), vec![])
        .unwrap();
    for m in 0..3 {
        assert_eq!(drain_until(group.handle(m), 1, 10), vec![mid]);
    }

    group.handle(2).kill().unwrap();

    let deadline = Instant::now() + Duration::from_secs(20);
    let mut detected = false;
    while Instant::now() < deadline && !detected {
        detected = group
            .handle(0)
            .with_engine(|e| !e.view().is_alive(ProcessId(2)))
            .unwrap_or(false);
        if !detected {
            std::thread::sleep(Duration::from_millis(50));
        }
    }
    assert!(detected, "survivors never declared the killed member dead");

    // The surviving pair still agrees on new traffic.
    let after = group
        .handle(1)
        .submit(Bytes::from_static(b"life goes on"), vec![])
        .unwrap();
    assert_eq!(drain_until(group.handle(0), 1, 15), vec![after]);
    group.shutdown();
}

#[test]
fn members_converge_through_an_address_rewriting_lossy_proxy() {
    // Every inter-member datagram crosses a relay that rewrites the source
    // address and drops/duplicates/delays traffic — sender identity must
    // come from the fragment header, and recovery must absorb the faults.
    let n = 3;
    let cfg = ProtocolConfig::new(n).with_k(3).with_f_allowance(3);
    let mut sockets = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..n {
        let s = UdpSocket::bind("127.0.0.1:0").unwrap();
        addrs.push(s.local_addr().unwrap());
        sockets.push(s);
    }
    let proxy = LossyProxy::spawn(
        &addrs,
        ProxyOptions {
            drop_p: 0.10,
            dup_p: 0.10,
            delay_p: 0.25,
            max_delay: Duration::from_millis(5),
            seed: 47,
        },
    )
    .unwrap();

    let mut handles = Vec::new();
    let mut shutdown = GroupShutdown::empty();
    for (i, sock) in sockets.into_iter().enumerate() {
        let peers: Vec<_> = (0..n)
            .map(|j| if j == i { addrs[j] } else { proxy.addrs()[j] })
            .collect();
        let opts = NodeOptions::default()
            .round_duration(Duration::from_millis(4))
            .mtu(200); // small MTU: force multi-fragment transfers through the proxy
        let (h, s) =
            spawn_member_on(sock, ProcessId::from_index(i), peers, cfg.clone(), opts).unwrap();
        handles.push(h);
        shutdown.merge(s);
    }

    let mut expected = HashSet::new();
    for k in 0..6u8 {
        // 512-byte payloads cannot fit one 200-byte datagram: every data
        // PDU crosses the proxy as a multi-fragment transfer.
        let payload = Bytes::from(vec![k; 512]);
        expected.insert(handles[(k % 3) as usize].submit(payload, vec![]).unwrap());
    }
    for (m, h) in handles.iter_mut().enumerate() {
        let got = drain_until(h, expected.len(), 30);
        let set: HashSet<Mid> = got.iter().copied().collect();
        assert_eq!(
            set, expected,
            "member {m} failed to converge behind the proxy"
        );
    }
    let stats = proxy.stats();
    assert!(stats.received > 0, "proxy saw no traffic");
    shutdown.shutdown();
    proxy.shutdown();
}

#[test]
fn quiescence_predicate_reports_group_wide_completion() {
    let cfg = ProtocolConfig::new(3);
    let mut group = UdpGroup::spawn(cfg, Duration::from_millis(4), 0.0, 53).unwrap();
    let budget = 5u64;
    let mut expected = HashSet::new();
    for k in 0..budget {
        expected.insert(
            group
                .handle(0)
                .submit(Bytes::from(vec![k as u8]), vec![])
                .unwrap(),
        );
    }
    for m in 0..3 {
        let got = drain_until(group.handle(m), expected.len(), 15);
        assert_eq!(got.len(), expected.len(), "member {m} incomplete");
    }

    // Deliveries alone are not quiescence: the predicate also wants the
    // recovery hints of the latest decision covered. Poll until it holds
    // at every member.
    let deadline = Instant::now() + Duration::from_secs(15);
    let mut all = false;
    while Instant::now() < deadline && !all {
        all = (0..3).all(|m| {
            let submitted = if m == 0 { budget } else { 0 };
            group
                .handle(m)
                .with_engine(move |e| workload_quiescent(e, submitted, submitted))
                .unwrap_or(false)
        });
        if !all {
            std::thread::sleep(Duration::from_millis(50));
        }
    }
    assert!(all, "the group never reached workload quiescence");
    group.shutdown();
}
