//! End-to-end tests of the tokio UDP runtime: the same engine that passed
//! the simulator property tests, now over real sockets with real
//! concurrency and injected packet loss.

use std::collections::{HashMap, HashSet};
use std::time::Duration;

use bytes::Bytes;
use urcgc_repro::runtime::{AppEvent, UdpGroup};
use urcgc_repro::types::{Mid, ProtocolConfig};

async fn drain_until(
    handle: &mut urcgc_repro::runtime::ProcessHandle,
    expect: usize,
    secs: u64,
) -> Vec<Mid> {
    let mut got = Vec::new();
    let deadline = tokio::time::Instant::now() + Duration::from_secs(secs);
    while got.len() < expect {
        let ev = tokio::select! {
            ev = handle.next_event() => ev,
            _ = tokio::time::sleep_until(deadline) => break,
        };
        match ev {
            Some(AppEvent::Delivered(msg)) => got.push(msg.mid),
            Some(_) => {}
            None => break,
        }
    }
    got
}

#[tokio::test(flavor = "multi_thread", worker_threads = 6)]
async fn five_member_group_with_concurrent_senders() {
    let cfg = ProtocolConfig::new(5);
    let mut group = UdpGroup::spawn(cfg, Duration::from_millis(4), 0.0, 17)
        .await
        .unwrap();

    // All five members submit concurrently (interleaved submissions).
    let mut expected = HashSet::new();
    for k in 0..4u8 {
        for m in 0..5usize {
            let mid = group
                .handle(m)
                .submit(Bytes::from(vec![k, m as u8]), vec![])
                .await
                .unwrap();
            expected.insert(mid);
        }
    }

    for m in 0..5 {
        let got = drain_until(group.handle(m), expected.len(), 15).await;
        let set: HashSet<Mid> = got.iter().copied().collect();
        assert_eq!(set, expected, "member {m} delivered a different set");
        // Per-origin sequence order (causal order projection).
        let mut per_origin: HashMap<u16, Vec<u64>> = HashMap::new();
        for mid in &got {
            per_origin.entry(mid.origin.0).or_default().push(mid.seq);
        }
        for (origin, seqs) in per_origin {
            let mut sorted = seqs.clone();
            sorted.sort();
            assert_eq!(seqs, sorted, "member {m}, origin {origin} out of order");
        }
    }
    group.shutdown().await;
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn explicit_cross_member_dependency_respected_on_sockets() {
    let cfg = ProtocolConfig::new(3);
    let mut group = UdpGroup::spawn(cfg, Duration::from_millis(4), 0.0, 23)
        .await
        .unwrap();

    // p0 sends; p1 waits until it sees the message, then replies with an
    // explicit dependency on it.
    let first = group
        .handle(0)
        .submit(Bytes::from_static(b"question"), vec![])
        .await
        .unwrap();
    let got = drain_until(group.handle(1), 1, 10).await;
    assert_eq!(got, vec![first]);
    let reply = group
        .handle(1)
        .submit(Bytes::from_static(b"answer"), vec![first])
        .await
        .unwrap();

    // p2 must process question before answer.
    let order = drain_until(group.handle(2), 2, 10).await;
    assert_eq!(order, vec![first, reply]);
    group.shutdown().await;
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn heavy_loss_converges_via_history_recovery() {
    // 25% receive loss at every member: most broadcasts lose at least one
    // destination, so convergence demonstrably depends on recovery.
    let cfg = ProtocolConfig::new(3).with_k(3).with_f_allowance(3);
    let mut group = UdpGroup::spawn(cfg, Duration::from_millis(4), 0.25, 31)
        .await
        .unwrap();
    let mut expected = HashSet::new();
    for k in 0..8u8 {
        expected.insert(
            group
                .handle(0)
                .submit(Bytes::from(vec![k]), vec![])
                .await
                .unwrap(),
        );
    }
    for m in 1..3 {
        let got = drain_until(group.handle(m), expected.len(), 30).await;
        let set: HashSet<Mid> = got.iter().copied().collect();
        assert_eq!(set, expected, "member {m} failed to converge under loss");
    }
    group.shutdown().await;
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn confirm_events_arrive_for_own_submissions() {
    let cfg = ProtocolConfig::new(2);
    let mut group = UdpGroup::spawn(cfg, Duration::from_millis(4), 0.0, 37)
        .await
        .unwrap();
    let mid = group
        .handle(0)
        .submit(Bytes::from_static(b"confirm me"), vec![])
        .await
        .unwrap();
    let deadline = tokio::time::Instant::now() + Duration::from_secs(5);
    let mut confirmed = false;
    while !confirmed {
        let ev = tokio::select! {
            ev = group.handle(0).next_event() => ev,
            _ = tokio::time::sleep_until(deadline) => panic!("no Confirm within 5s"),
        };
        if let Some(AppEvent::Confirmed(m)) = ev {
            assert_eq!(m, mid);
            confirmed = true;
        }
    }
    group.shutdown().await;
}
