//! Zero-copy conformance for the full receive path: every [`Pdu`] variant
//! is encoded (through the shared [`FrameCache`] arena), fragmented,
//! reassembled, and decoded — and the test asserts with pointer-range
//! checks that no stage copied the payload when it didn't have to:
//!
//! * a single-fragment transfer hands the engine a frame that is a
//!   refcounted **view into the received datagram** (the `frag_count == 1`
//!   fast path), and the decoded `DataMsg` payloads are views into that
//!   same allocation;
//! * a multi-fragment transfer pays exactly one assembly buffer, and the
//!   decoded payloads are views **into that one buffer** — no per-payload
//!   `to_vec`/`copy_from_slice` on the data path.
//!
//! A second group sweeps single-bit corruption over the batched framings
//! specifically — PDU tags 6/7 (`RecoveryBatchRq`/`RecoveryBatch`) and the
//! transport batch tag `0xB7` — since those are the frames whose
//! populations grew when batching became the default.

use std::time::Duration;

use bytes::Bytes;
use proptest::prelude::*;

use urcgc_runtime::{Fragmenter, Reassembler};
use urcgc_transport::{TFrame, DATA_HEADER_LEN};
use urcgc_types::{
    decode_group, decode_pdu, encode_pdu, DataMsg, Decision, FrameCache, GroupId, MaxProcessed,
    Mid, Pdu, ProcessId, RecoveryBatch, RecoveryBatchRq, RecoveryReply, RecoveryRq, RecoveryRun,
    RecoveryWant, RequestMsg, Round, Subrun,
};

const TTL: Duration = Duration::from_secs(2);

// ---- strategies (same shapes as the types-level wire proptest) ----------

fn arb_pid() -> impl Strategy<Value = ProcessId> {
    (0u16..64).prop_map(ProcessId)
}

fn arb_mid() -> impl Strategy<Value = Mid> {
    (arb_pid(), 1u64..10_000).prop_map(|(origin, seq)| Mid { origin, seq })
}

fn arb_data() -> impl Strategy<Value = DataMsg> {
    (
        arb_mid(),
        prop::collection::vec(arb_mid(), 0..8),
        0u64..1_000,
        prop::collection::vec(any::<u8>(), 1..128),
    )
        .prop_map(|(mid, deps, round, payload)| DataMsg {
            mid,
            deps,
            round: Round(round),
            payload: Bytes::from(payload),
        })
}

fn arb_decision() -> impl Strategy<Value = Decision> {
    (1usize..16).prop_flat_map(|n| {
        (
            0u64..1_000,
            arb_pid(),
            any::<bool>(),
            prop::collection::vec(0u64..10_000, n),
            prop::collection::vec(0u32..10, n),
            prop::collection::vec(any::<bool>(), n),
            prop::collection::vec((arb_pid(), 0u64..10_000), n),
            (
                prop::collection::vec(0u64..10_000, n),
                prop::collection::vec(any::<bool>(), n),
            ),
        )
            .prop_map(
                |(subrun, coordinator, full_group, stable, attempts, state, maxp, (minw, cov))| {
                    Decision {
                        subrun: Subrun(subrun),
                        coordinator,
                        full_group,
                        stable,
                        attempts,
                        process_state: state,
                        max_processed: maxp
                            .into_iter()
                            .map(|(holder, seq)| MaxProcessed { holder, seq })
                            .collect(),
                        min_waiting: minw,
                        covered: cov,
                    }
                },
            )
    })
}

fn arb_batch_rq() -> impl Strategy<Value = Pdu> {
    (
        arb_pid(),
        prop::collection::vec((arb_pid(), 0u64..100, 0u64..100), 0..8),
    )
        .prop_map(|(requester, wants)| {
            Pdu::RecoveryBatchRq(RecoveryBatchRq {
                requester,
                wants: wants
                    .into_iter()
                    .map(|(origin, after_seq, delta)| RecoveryWant {
                        origin,
                        after_seq,
                        upto_seq: after_seq + delta,
                    })
                    .collect(),
            })
        })
}

fn arb_batch_reply() -> impl Strategy<Value = Pdu> {
    (
        arb_pid(),
        prop::collection::vec((arb_pid(), prop::collection::vec(arb_data(), 0..4)), 0..6),
    )
        .prop_map(|(responder, runs)| {
            Pdu::RecoveryBatch(RecoveryBatch {
                responder,
                runs: runs
                    .into_iter()
                    .map(|(origin, messages)| RecoveryRun {
                        origin,
                        messages: messages.into_iter().map(std::sync::Arc::new).collect(),
                    })
                    .collect(),
            })
        })
}

/// Every wire variant, batched framings included.
fn arb_pdu() -> impl Strategy<Value = Pdu> {
    prop_oneof![
        arb_data().prop_map(Pdu::data),
        (
            arb_pid(),
            0u64..1_000,
            prop::collection::vec(0u64..10_000, 1..16),
            prop::collection::vec(0u64..10_000, 1..16),
            (arb_decision(), any::<bool>())
        )
            .prop_map(
                |(sender, subrun, lp, w, (d, fwd))| Pdu::Request(RequestMsg {
                    sender,
                    subrun: Subrun(subrun),
                    last_processed: lp,
                    waiting: w,
                    prev_decision: d,
                    forwarded: fwd,
                })
            ),
        arb_decision().prop_map(Pdu::Decision),
        (arb_pid(), arb_pid(), 0u64..100, 0u64..100).prop_map(
            |(requester, origin, after_seq, delta)| Pdu::RecoveryRq(RecoveryRq {
                requester,
                origin,
                after_seq,
                upto_seq: after_seq + delta,
            })
        ),
        (
            arb_pid(),
            arb_pid(),
            prop::collection::vec(arb_data(), 0..6)
        )
            .prop_map(
                |(responder, origin, messages)| Pdu::RecoveryReply(RecoveryReply {
                    responder,
                    origin,
                    messages: messages.into_iter().map(std::sync::Arc::new).collect(),
                })
            ),
        arb_batch_rq(),
        arb_batch_reply(),
    ]
}

// ---- helpers ------------------------------------------------------------

/// True iff `inner`'s bytes live inside `outer`'s allocation — the
/// refcounted-view check. (Both handles stay alive across the call, so the
/// ranges are stable.)
fn within(outer: &Bytes, inner: &Bytes) -> bool {
    let (o, i) = (outer.as_ptr() as usize, inner.as_ptr() as usize);
    i >= o && i + inner.len() <= o + outer.len()
}

/// Every application payload carried by a PDU (data, recovery bodies).
fn payloads(pdu: &Pdu) -> Vec<Bytes> {
    match pdu {
        Pdu::Data(m) => vec![m.payload.clone()],
        Pdu::RecoveryReply(r) => r.messages.iter().map(|m| m.payload.clone()).collect(),
        Pdu::RecoveryBatch(b) => b
            .runs
            .iter()
            .flat_map(|r| r.messages.iter().map(|m| m.payload.clone()))
            .collect(),
        _ => Vec::new(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 96,
        ..ProptestConfig::default()
    })]

    /// Single-fragment transfers (the control-PDU common case): the frame
    /// the reassembler hands back is a view into the received datagram,
    /// and every decoded payload is a view into that same allocation —
    /// zero copies between the socket buffer and the engine.
    #[test]
    fn single_fragment_decode_shares_the_datagram_storage(pdu in arb_pdu()) {
        let mut cache = FrameCache::new();
        let frame = cache.encode(&pdu);
        prop_assert_eq!(&frame[..], &encode_pdu(&pdu)[..]);

        // An MTU exactly large enough: one datagram per transfer.
        let mut tx = Fragmenter::new(ProcessId(7), frame.len() + DATA_HEADER_LEN);
        let mut rx = Reassembler::new(TTL);
        let grams = tx.split(&frame);
        prop_assert_eq!(grams.len(), 1);
        let datagram = grams[0].clone();

        let (src, got) = rx.accept(datagram.clone(), Duration::ZERO)
            .expect("single fragment completes immediately");
        prop_assert_eq!(src, ProcessId(7));
        prop_assert_eq!(&got[..], &frame[..]);
        prop_assert!(
            within(&datagram, &got),
            "fast-path frame must be a view into the datagram, not a copy"
        );

        let back = decode_pdu(&got).expect("roundtrip");
        for p in payloads(&back) {
            prop_assert!(
                within(&datagram, &p),
                "decoded payload must borrow the datagram's storage"
            );
        }
        prop_assert_eq!(back, pdu);
    }

    /// Multi-fragment transfers pay exactly one assembly buffer; decoding
    /// then borrows from it. The payloads of the decoded PDU all point
    /// into the single reassembled frame.
    #[test]
    fn multi_fragment_decode_shares_the_reassembled_buffer(
        pdu in arb_pdu(),
        payload_mtu in 8usize..64,
    ) {
        let frame = encode_pdu(&pdu);
        // Clamp the per-fragment payload below the frame size so every
        // case exercises real fragmentation (the smallest frames are tag +
        // ids + trailer, still >9 bytes).
        let payload_mtu = payload_mtu.min(frame.len() - 1);
        let mut tx = Fragmenter::new(ProcessId(3), DATA_HEADER_LEN + payload_mtu);
        let mut rx = Reassembler::new(TTL);
        let grams = tx.split(&frame);
        prop_assert!(grams.len() >= 2, "expected a multi-fragment transfer");

        let mut done = None;
        for g in grams {
            if let Some(out) = rx.accept(g, Duration::ZERO) {
                done = Some(out);
            }
        }
        let (src, assembled) = done.expect("full fragment set completes");
        prop_assert_eq!(src, ProcessId(3));
        prop_assert_eq!(&assembled[..], &frame[..]);

        let back = decode_pdu(&assembled).expect("roundtrip");
        for p in payloads(&back) {
            prop_assert!(
                within(&assembled, &p),
                "decoded payload must borrow the one assembly buffer"
            );
        }
        prop_assert_eq!(back, pdu);
        prop_assert_eq!(rx.partials(), 0);
    }

    /// Checksum sweep over the batched PDU framings (wire tags 6 and 7):
    /// any single-bit corruption is caught by the FNV trailer.
    #[test]
    fn corrupted_batched_pdu_frames_never_decode(
        pdu in prop_oneof![arb_batch_rq(), arb_batch_reply()],
        byte in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let frame = encode_pdu(&pdu);
        let mut raw = frame.to_vec();
        let i = byte.index(raw.len());
        raw[i] ^= 1 << bit;
        prop_assert!(decode_pdu(&Bytes::from(raw)).is_err());
    }

    /// Group-enveloped transfers keep the zero-copy property end to end:
    /// the reassembled frame is a view into the received datagram, the
    /// demuxed inner frame is a slice of it (no copy at the envelope
    /// boundary), and the decoded payloads still borrow the same
    /// allocation — so the multi-group wire path costs one 9-byte header
    /// inspection over the single-group path, not an extra copy.
    #[test]
    fn enveloped_single_fragment_decode_shares_the_datagram_storage(
        pdu in arb_pdu(),
        group in any::<u32>(),
    ) {
        let group = GroupId(group);
        let mut cache = FrameCache::new();
        let frame = cache.encode_group(group, &pdu);

        let mut tx = Fragmenter::new(ProcessId(9), frame.len() + DATA_HEADER_LEN);
        let mut rx = Reassembler::new(TTL);
        let grams = tx.split(&frame);
        prop_assert_eq!(grams.len(), 1);
        let datagram = grams[0].clone();

        let (src, got) = rx.accept(datagram.clone(), Duration::ZERO)
            .expect("single fragment completes immediately");
        prop_assert_eq!(src, ProcessId(9));
        prop_assert!(within(&datagram, &got));

        let gf = decode_group(&got).expect("envelope decodes");
        prop_assert_eq!(gf.group, group);
        prop_assert!(
            within(&datagram, &gf.inner),
            "demuxed inner frame must be a view into the datagram"
        );
        let back = decode_pdu(&gf.inner).expect("roundtrip");
        for p in payloads(&back) {
            prop_assert!(
                within(&datagram, &p),
                "decoded payload must borrow the datagram's storage"
            );
        }
        prop_assert_eq!(back, pdu);
    }

    /// Single-bit corruption of a group-enveloped frame degenerates to an
    /// omission, never a misroute: a flip in the 9-byte header is caught
    /// by the header's own FNV checksum (so a frame is never re-addressed
    /// to another group), and a flip in the inner frame sails through the
    /// envelope with the group intact but dies at the destination group's
    /// PDU checksum. Either way no engine takes a step on corrupt bytes —
    /// the wire half of the genuineness property under corruption.
    #[test]
    fn corrupted_enveloped_frames_never_misroute(
        pdu in arb_pdu(),
        group in any::<u32>(),
        byte in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let group = GroupId(group);
        let mut cache = FrameCache::new();
        let frame = cache.encode_group(group, &pdu);
        let mut raw = frame.to_vec();
        let i = byte.index(raw.len());
        raw[i] ^= 1 << bit;

        match decode_group(&Bytes::from(raw)) {
            Err(_) => {} // header corruption: dropped before any PDU decode
            Ok(gf) => {
                prop_assert_eq!(
                    gf.group, group,
                    "corruption must never re-address a frame to another group"
                );
                prop_assert!(
                    decode_pdu(&gf.inner).is_err(),
                    "a corrupt inner frame must fail the destination's PDU checksum"
                );
            }
        }
    }

    /// Corruption sweep over the transport batch container (tag `0xB7`):
    /// a flipped bit either kills the container outright or re-slices the
    /// inner frames — and any inner frame that still passes its own PDU
    /// checksum must be byte-identical to one of the originals. Corruption
    /// can lose frames (that is the omission the model expects) but never
    /// forge one.
    #[test]
    fn corrupted_transport_batch_never_forges_a_pdu(
        pdus in prop::collection::vec(prop_oneof![arb_batch_rq(), arb_batch_reply()], 1..4),
        byte in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let frames: Vec<Bytes> = pdus.iter().map(encode_pdu).collect();
        let datagram = TFrame::Batch { frames }.encode();
        let mut raw = datagram.to_vec();
        let i = byte.index(raw.len());
        raw[i] ^= 1 << bit;

        match TFrame::decode(Bytes::from(raw)) {
            None => {} // malformed container: dropped, counted, harmless
            Some(TFrame::Batch { frames: inner }) => {
                for f in &inner {
                    if let Ok(back) = decode_pdu(f) {
                        prop_assert!(
                            pdus.contains(&back),
                            "corrupted batch decoded a PDU not in the original set"
                        );
                    }
                }
            }
            // A single-bit flip cannot turn 0xB7 into the Data/Ack tags,
            // and inner payloads re-parsed as other frame shapes still
            // face the PDU checksum downstream.
            Some(_) => {}
        }
    }
}
