//! Property tests for datagram fragmentation/reassembly: arbitrary frames
//! and MTUs, with the adversary permuting, duplicating, and dropping
//! fragments. The invariants mirror what the runtime needs from
//! [`urcgc_runtime::frag`]: a transfer completes exactly once iff every
//! fragment arrives, completes byte-identically, and incomplete transfers
//! die by TTL instead of pinning memory.

use std::time::Duration;

use bytes::Bytes;
use proptest::prelude::*;

use urcgc_runtime::{Fragmenter, Reassembler};
use urcgc_transport::DATA_HEADER_LEN;
use urcgc_types::ProcessId;

const TTL: Duration = Duration::from_secs(2);

/// Seed-driven Fisher–Yates over `0..len` (the mini proptest harness has
/// no `prop_shuffle`).
fn shuffled(len: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..len).collect();
    let mut state = seed;
    for i in (1..len).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    order
}

fn permute<T: Clone>(items: &[T], seed: u64) -> Vec<T> {
    shuffled(items.len(), seed)
        .into_iter()
        .map(|i| items[i].clone())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    /// Shuffling and duplicating fragments never corrupts the frame: every
    /// completion is byte-identical. (A fully duplicated fragment set may
    /// complete twice — deduplication is the engine's job, at PDU level.)
    #[test]
    fn roundtrip_survives_reorder_and_duplication(
        data in prop::collection::vec(any::<u8>(), 1..2048),
        mtu in (DATA_HEADER_LEN + 1)..(DATA_HEADER_LEN + 257),
        seed in any::<u64>(),
        dup_every in 1usize..5,
    ) {
        let frame = Bytes::from(data);
        let mut tx = Fragmenter::new(ProcessId(4), mtu);
        let mut rx = Reassembler::new(TTL);
        let grams = tx.split(&frame);
        prop_assert!(!grams.is_empty());
        prop_assert!(grams.iter().all(|g| g.len() <= mtu));

        // Adversarial schedule: every fragment at least once, some twice,
        // in a seed-chosen order.
        let mut schedule: Vec<Bytes> = grams.clone();
        schedule.extend(grams.iter().step_by(dup_every).cloned());
        let schedule = permute(&schedule, seed);

        let mut completions = Vec::new();
        for g in schedule {
            if let Some(done) = rx.accept(g, Duration::ZERO) {
                completions.push(done);
            }
        }
        prop_assert!(!completions.is_empty(), "the full set never completed");
        for (src, got) in completions {
            prop_assert_eq!(src, ProcessId(4));
            prop_assert_eq!(got, frame.clone());
        }
        // Duplicates arriving after completion may open a ghost partial;
        // it must be evictable, never completable.
        prop_assert!(rx.evict_expired(TTL + TTL) as u64 == rx.evicted());
        prop_assert_eq!(rx.partials(), 0);
    }

    /// Losing any single fragment of a multi-fragment transfer prevents
    /// completion; the TTL then reclaims the partial.
    #[test]
    fn dropped_fragment_blocks_completion_until_eviction(
        data in prop::collection::vec(any::<u8>(), 1..2048),
        mtu in (DATA_HEADER_LEN + 1)..(DATA_HEADER_LEN + 257),
        seed in any::<u64>(),
        drop_choice in any::<prop::sample::Index>(),
    ) {
        let frame = Bytes::from(data);
        let mut tx = Fragmenter::new(ProcessId(0), mtu);
        let mut rx = Reassembler::new(TTL);
        let mut grams = tx.split(&frame);
        if grams.len() < 2 {
            // Single-datagram transfers have nothing to lose; skip.
            return Ok(());
        }

        let dropped = drop_choice.index(grams.len());
        grams.remove(dropped);
        for g in permute(&grams, seed) {
            prop_assert!(rx.accept(g, Duration::ZERO).is_none(), "incomplete transfer completed");
        }
        prop_assert_eq!(rx.partials(), 1);

        // Before the TTL: still buffered. At the TTL: reclaimed.
        prop_assert_eq!(rx.evict_expired(TTL / 2), 0);
        prop_assert_eq!(rx.evict_expired(TTL), 1);
        prop_assert_eq!(rx.partials(), 0);
        prop_assert_eq!(rx.evicted(), 1);
    }

    /// Transfers from many senders interleaved in one arbitrary order all
    /// reassemble independently and correctly (the `(src, xfer)` key).
    #[test]
    fn interleaved_multi_sender_transfers_never_mix(
        frames in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 1..600), 2..5),
        mtu in (DATA_HEADER_LEN + 1)..(DATA_HEADER_LEN + 65),
        seed in any::<u64>(),
    ) {
        let mut rx = Reassembler::new(TTL);
        let mut schedule: Vec<Bytes> = Vec::new();
        let mut expect: Vec<(ProcessId, Bytes)> = Vec::new();
        for (i, data) in frames.iter().enumerate() {
            let src = ProcessId(i as u16);
            let frame = Bytes::from(data.clone());
            let mut tx = Fragmenter::new(src, mtu);
            schedule.extend(tx.split(&frame));
            expect.push((src, frame));
        }
        let schedule = permute(&schedule, seed);

        let mut done: Vec<(ProcessId, Bytes)> = Vec::new();
        for g in schedule {
            done.extend(rx.accept(g, Duration::ZERO));
        }
        done.sort_by_key(|(src, _)| *src);
        prop_assert_eq!(done, expect);
        prop_assert_eq!(rx.partials(), 0);
        prop_assert_eq!(rx.malformed(), 0);
    }
}
