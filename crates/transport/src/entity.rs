//! The transport entity state machine.

use std::collections::{BTreeMap, HashMap, HashSet};

use bytes::{Bytes, BytesMut};
use urcgc_types::ProcessId;

use crate::frame::TFrame;

/// Sender-local transfer identifier.
pub type XferId = u64;

/// Transport parameters.
#[derive(Clone, Copy, Debug)]
pub struct TransportConfig {
    /// Maximum fragment payload per frame.
    pub mtu: usize,
    /// Retransmission interval in ticks.
    pub retx_interval: u64,
    /// Retry budget per transfer; when exhausted the transfer confirms
    /// regardless (the primitive never fails).
    pub max_retries: u32,
    /// Coalesce a tick's retransmissions to one wire frame per
    /// destination ([`TFrame::Batch`]). On by default: batching amortizes
    /// per-datagram cost over every queued fragment without changing what
    /// the receiver reassembles. It does change the frame population the
    /// simulator sees, so the digest-gated sweep documents were re-pinned
    /// when this default flipped; set to `false` for per-fragment framing.
    pub batch_retransmissions: bool,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            mtu: 512,
            retx_interval: 2,
            max_retries: 4,
            batch_retransmissions: true,
        }
    }
}

/// Effects drained from the entity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TOutput {
    /// Transmit `frame` to `to`.
    Send {
        /// Destination.
        to: ProcessId,
        /// Encoded transport frame.
        frame: Bytes,
    },
    /// `t.data.Conf`: the transfer reached its `h` threshold (or exhausted
    /// its retries — the primitive never fails).
    Confirm {
        /// The confirmed transfer.
        xfer: XferId,
        /// How many destinations had fully acked at confirmation time.
        acked: usize,
    },
    /// `t.data.Ind`: a complete service data unit arrived from `from`.
    Ind {
        /// Originating process.
        from: ProcessId,
        /// Reassembled data.
        data: Bytes,
    },
}

struct OutgoingXfer {
    fragments: Vec<Bytes>,
    dests: Vec<ProcessId>,
    h: usize,
    acked: HashSet<ProcessId>,
    retries_left: u32,
    next_retx_tick: u64,
    confirmed: bool,
}

struct Reassembly {
    frag_count: u16,
    got: HashMap<u16, Bytes>,
}

/// A transport entity attached to one t-SAP.
pub struct TransportEntity {
    me: ProcessId,
    cfg: TransportConfig,
    tick: u64,
    next_xfer: XferId,
    /// In-flight transfers, ordered by id so retransmissions in
    /// [`on_tick`](Self::on_tick) go out in creation order — hash-map
    /// iteration here made whole-simulation traces nondeterministic by
    /// reordering resends and shifting the simnet's per-frame RNG draws.
    outgoing: BTreeMap<XferId, OutgoingXfer>,
    reassembly: HashMap<(ProcessId, XferId), Reassembly>,
    /// Transfers already fully delivered upward (dedup of retransmissions).
    delivered: HashSet<(ProcessId, XferId)>,
    outbox: Vec<TOutput>,
}

impl TransportEntity {
    /// A fresh entity for process `me`.
    pub fn new(me: ProcessId, cfg: TransportConfig) -> Self {
        assert!(cfg.mtu > 0, "MTU must be positive");
        TransportEntity {
            me,
            cfg,
            tick: 0,
            next_xfer: 1,
            outgoing: BTreeMap::new(),
            reassembly: HashMap::new(),
            delivered: HashSet::new(),
            outbox: Vec::new(),
        }
    }

    /// `t.data.Rq(m, h, v, d)` (the voting function `v` is not used by the
    /// urcgc protocol): starts a transfer of `data` to `dests`,
    /// retransmitting until `h` of them acknowledge. Returns the transfer
    /// id; a [`TOutput::Confirm`] follows.
    ///
    /// # Panics
    /// Panics if `dests` is empty or `h` exceeds the destination count.
    pub fn t_data_rq(&mut self, dests: &[ProcessId], h: usize, data: Bytes) -> XferId {
        assert!(!dests.is_empty(), "empty destination set");
        assert!(
            (1..=dests.len()).contains(&h),
            "h = {h} outside 1..={}",
            dests.len()
        );
        let xfer = self.next_xfer;
        self.next_xfer += 1;

        let fragments = crate::frame::fragment(xfer, self.me, self.cfg.mtu, &data);
        for &to in dests {
            for frame in &fragments {
                self.outbox.push(TOutput::Send {
                    to,
                    frame: frame.clone(),
                });
            }
        }
        self.outgoing.insert(
            xfer,
            OutgoingXfer {
                fragments,
                dests: dests.to_vec(),
                h,
                acked: HashSet::new(),
                retries_left: self.cfg.max_retries,
                next_retx_tick: self.tick + self.cfg.retx_interval,
                confirmed: false,
            },
        );
        xfer
    }

    /// Feeds a received frame.
    pub fn on_frame(&mut self, from: ProcessId, raw: Bytes) {
        let Some(frame) = TFrame::decode(raw) else {
            return;
        };
        match frame {
            TFrame::Batch { frames } => {
                // Decode rejects nested batches, so this recurses once.
                for inner in frames {
                    self.on_frame(from, inner);
                }
            }
            TFrame::Ack { xfer, src } => {
                if let Some(x) = self.outgoing.get_mut(&xfer) {
                    if x.dests.contains(&src) {
                        x.acked.insert(src);
                        if !x.confirmed && x.acked.len() >= x.h {
                            // The h threshold is met: confirm and stop
                            // retransmitting — "retransmission is used to
                            // ensure that at least h of them receive the
                            // message" (§5); reaching the remaining
                            // destinations is the upper layer's business
                            // (urcgc recovers them from history).
                            x.confirmed = true;
                            let acked = x.acked.len();
                            self.outgoing.remove(&xfer);
                            self.outbox.push(TOutput::Confirm { xfer, acked });
                        }
                    }
                }
            }
            TFrame::Data {
                xfer,
                src,
                frag_index,
                frag_count,
                payload,
            } => {
                let key = (src, xfer);
                if self.delivered.contains(&key) {
                    // Duplicate of a completed transfer: re-ack, don't
                    // re-deliver.
                    self.push_ack(from, xfer);
                    return;
                }
                let entry = self.reassembly.entry(key).or_insert_with(|| Reassembly {
                    frag_count,
                    got: HashMap::new(),
                });
                if entry.frag_count != frag_count {
                    return; // inconsistent fragmentation: drop
                }
                entry.got.insert(frag_index, payload);
                if entry.got.len() == frag_count as usize {
                    let mut entry = self.reassembly.remove(&key).expect("just present");
                    let data = if frag_count == 1 {
                        // Borrowed fast path: a lone fragment's payload is
                        // already a zero-copy view into the received
                        // datagram — hand it up as-is.
                        entry.got.remove(&0).expect("sole fragment present")
                    } else {
                        // Multi-fragment SDUs get exactly one assembly
                        // buffer, sized up front.
                        let total: usize = entry.got.values().map(Bytes::len).sum();
                        let mut data = BytesMut::with_capacity(total);
                        for i in 0..frag_count {
                            data.extend_from_slice(&entry.got[&i]);
                        }
                        data.freeze()
                    };
                    self.delivered.insert(key);
                    self.push_ack(from, xfer);
                    self.outbox.push(TOutput::Ind { from: src, data });
                }
            }
        }
    }

    fn push_ack(&mut self, to: ProcessId, xfer: XferId) {
        self.outbox.push(TOutput::Send {
            to,
            frame: TFrame::Ack { xfer, src: self.me }.encode(),
        });
    }

    /// Advances the retransmission clock one tick.
    pub fn on_tick(&mut self) {
        self.tick += 1;
        let tick = self.tick;
        let mut finished: Vec<XferId> = Vec::new();
        let mut resends: Vec<(ProcessId, Bytes)> = Vec::new();
        let mut confirms: Vec<(XferId, usize)> = Vec::new();
        for (&xfer, x) in self.outgoing.iter_mut() {
            if tick < x.next_retx_tick {
                continue;
            }
            if x.retries_left == 0 {
                // Retry budget exhausted: the primitive never fails — it
                // confirms with however many acks arrived.
                if !x.confirmed {
                    confirms.push((xfer, x.acked.len()));
                }
                finished.push(xfer);
                continue;
            }
            x.retries_left -= 1;
            x.next_retx_tick = tick + self.cfg.retx_interval;
            for &to in &x.dests {
                if x.acked.contains(&to) {
                    continue;
                }
                for frame in &x.fragments {
                    resends.push((to, frame.clone()));
                }
            }
        }
        for (xfer, acked) in confirms {
            self.outbox.push(TOutput::Confirm { xfer, acked });
        }
        for xfer in finished {
            self.outgoing.remove(&xfer);
        }
        if self.cfg.batch_retransmissions {
            // One wire frame per destination: group this tick's resends by
            // destination, preserving first-appearance order (which is
            // creation order, keeping traces deterministic).
            let mut order: Vec<ProcessId> = Vec::new();
            let mut per_dest: HashMap<ProcessId, Vec<Bytes>> = HashMap::new();
            for (to, frame) in resends {
                per_dest
                    .entry(to)
                    .or_insert_with(|| {
                        order.push(to);
                        Vec::new()
                    })
                    .push(frame);
            }
            for to in order {
                let frames = per_dest.remove(&to).expect("grouped above");
                let frame = if frames.len() == 1 {
                    frames.into_iter().next().expect("len checked")
                } else {
                    TFrame::Batch { frames }.encode()
                };
                self.outbox.push(TOutput::Send { to, frame });
            }
        } else {
            for (to, frame) in resends {
                self.outbox.push(TOutput::Send { to, frame });
            }
        }
    }

    /// Drains the next effect.
    pub fn poll_output(&mut self) -> Option<TOutput> {
        if self.outbox.is_empty() {
            None
        } else {
            Some(self.outbox.remove(0))
        }
    }

    /// Number of transfers still awaiting acknowledgements.
    pub fn in_flight(&self) -> usize {
        self.outgoing.len()
    }

    /// Number of partially reassembled incoming transfers.
    pub fn reassembling(&self) -> usize {
        self.reassembly.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Small helper: collect non-Send outputs on the receiver.
    impl TransportEntity {
        fn drain_inds(&mut self) -> Vec<TOutput> {
            let mut out = Vec::new();
            while let Some(o) = self.poll_output() {
                if !matches!(o, TOutput::Send { .. }) {
                    out.push(o);
                }
            }
            out
        }
    }

    #[test]
    fn single_fragment_transfer_confirms_and_indicates() {
        let mut a = TransportEntity::new(ProcessId(0), TransportConfig::default());
        let mut b = TransportEntity::new(ProcessId(1), TransportConfig::default());
        let xfer = a.t_data_rq(&[ProcessId(1)], 1, Bytes::from_static(b"hello"));

        // a → b data.
        let mut a_confirm = None;
        while let Some(o) = a.poll_output() {
            match o {
                TOutput::Send { frame, .. } => b.on_frame(ProcessId(0), frame),
                TOutput::Confirm { xfer: x, acked } => a_confirm = Some((x, acked)),
                _ => {}
            }
        }
        assert!(a_confirm.is_none(), "no confirm before ack");
        // b's effects: Ind + ack back to a.
        let mut got_ind = false;
        while let Some(o) = b.poll_output() {
            match o {
                TOutput::Send { frame, .. } => a.on_frame(ProcessId(1), frame),
                TOutput::Ind { from, data } => {
                    assert_eq!(from, ProcessId(0));
                    assert_eq!(&data[..], b"hello");
                    got_ind = true;
                }
                _ => {}
            }
        }
        assert!(got_ind);
        while let Some(o) = a.poll_output() {
            if let TOutput::Confirm { xfer: x, acked } = o {
                assert_eq!(x, xfer);
                assert_eq!(acked, 1);
                a_confirm = Some((x, acked));
            }
        }
        assert!(a_confirm.is_some());
        assert_eq!(a.in_flight(), 0);
    }

    #[test]
    fn large_sdu_fragments_and_reassembles() {
        let cfg = TransportConfig {
            mtu: 16,
            ..Default::default()
        };
        let mut a = TransportEntity::new(ProcessId(0), cfg);
        let mut b = TransportEntity::new(ProcessId(1), cfg);
        let data: Vec<u8> = (0..100u8).collect();
        a.t_data_rq(&[ProcessId(1)], 1, Bytes::from(data.clone()));
        let mut frames = Vec::new();
        while let Some(o) = a.poll_output() {
            if let TOutput::Send { frame, .. } = o {
                frames.push(frame);
            }
        }
        assert_eq!(frames.len(), 7, "100 bytes / 16-byte MTU = 7 fragments");
        // Deliver out of order.
        frames.reverse();
        let mut ind = None;
        for f in frames {
            b.on_frame(ProcessId(0), f);
        }
        while let Some(o) = b.poll_output() {
            if let TOutput::Ind { data: d, .. } = o {
                ind = Some(d);
            }
        }
        assert_eq!(ind.unwrap(), Bytes::from(data));
        assert_eq!(b.reassembling(), 0);
    }

    #[test]
    fn retransmission_recovers_a_dropped_frame() {
        let cfg = TransportConfig {
            mtu: 512,
            retx_interval: 1,
            max_retries: 5,
            ..Default::default()
        };
        let mut a = TransportEntity::new(ProcessId(0), cfg);
        let mut b = TransportEntity::new(ProcessId(1), cfg);
        a.t_data_rq(&[ProcessId(1)], 1, Bytes::from_static(b"persist"));
        // Drop the first transmission entirely.
        while a.poll_output().is_some() {}
        // Tick: retransmission goes out and is delivered.
        a.on_tick();
        let mut delivered = false;
        while let Some(o) = a.poll_output() {
            if let TOutput::Send { frame, .. } = o {
                b.on_frame(ProcessId(0), frame);
            }
        }
        while let Some(o) = b.poll_output() {
            match o {
                TOutput::Send { frame, .. } => a.on_frame(ProcessId(1), frame),
                TOutput::Ind { data, .. } => {
                    assert_eq!(&data[..], b"persist");
                    delivered = true;
                }
                _ => {}
            }
        }
        assert!(delivered);
        let confirms: Vec<_> = std::iter::from_fn(|| a.poll_output())
            .filter(|o| matches!(o, TOutput::Confirm { .. }))
            .collect();
        assert_eq!(confirms.len(), 1);
    }

    #[test]
    fn batched_retransmission_coalesces_per_destination_and_heals() {
        let cfg = TransportConfig {
            mtu: 16,
            retx_interval: 1,
            max_retries: 5,
            batch_retransmissions: true,
        };
        let mut a = TransportEntity::new(ProcessId(0), cfg);
        let mut b = TransportEntity::new(ProcessId(1), cfg);
        let data: Vec<u8> = (0..100u8).collect();
        a.t_data_rq(&[ProcessId(1), ProcessId(2)], 2, Bytes::from(data.clone()));
        while a.poll_output().is_some() {} // first transmission lost
        a.on_tick();
        let resends: Vec<(ProcessId, Bytes)> = std::iter::from_fn(|| a.poll_output())
            .filter_map(|o| match o {
                TOutput::Send { to, frame } => Some((to, frame)),
                _ => None,
            })
            .collect();
        // 7 fragments × 2 unacked destinations coalesce to 2 wire frames.
        assert_eq!(resends.len(), 2, "one frame per destination");
        assert_eq!(resends[0].0, ProcessId(1));
        assert_eq!(resends[1].0, ProcessId(2));
        // The batch reassembles into the original SDU on the receiver.
        b.on_frame(ProcessId(0), resends[0].1.clone());
        let ind = b
            .drain_inds()
            .into_iter()
            .find_map(|o| match o {
                TOutput::Ind { data, .. } => Some(data),
                _ => None,
            })
            .expect("batched resend delivers");
        assert_eq!(ind, Bytes::from(data));
    }

    #[test]
    fn single_frame_resends_stay_unbatched() {
        let cfg = TransportConfig {
            mtu: 512,
            retx_interval: 1,
            max_retries: 5,
            batch_retransmissions: true,
        };
        let mut a = TransportEntity::new(ProcessId(0), cfg);
        a.t_data_rq(&[ProcessId(1)], 1, Bytes::from_static(b"solo"));
        while a.poll_output().is_some() {}
        a.on_tick();
        let frames: Vec<Bytes> = std::iter::from_fn(|| a.poll_output())
            .filter_map(|o| match o {
                TOutput::Send { frame, .. } => Some(frame),
                _ => None,
            })
            .collect();
        assert_eq!(frames.len(), 1);
        assert!(
            matches!(TFrame::decode(frames[0].clone()), Some(TFrame::Data { .. })),
            "a lone fragment needs no batch envelope"
        );
    }

    #[test]
    fn duplicate_transfer_reacked_not_redelivered() {
        let mut a = TransportEntity::new(ProcessId(0), TransportConfig::default());
        let mut b = TransportEntity::new(ProcessId(1), TransportConfig::default());
        a.t_data_rq(&[ProcessId(1)], 1, Bytes::from_static(b"once"));
        let mut frames = Vec::new();
        while let Some(o) = a.poll_output() {
            if let TOutput::Send { frame, .. } = o {
                frames.push(frame);
            }
        }
        b.on_frame(ProcessId(0), frames[0].clone());
        b.on_frame(ProcessId(0), frames[0].clone()); // duplicate
        let inds: Vec<_> = b
            .drain_inds()
            .into_iter()
            .filter(|o| matches!(o, TOutput::Ind { .. }))
            .collect();
        assert_eq!(inds.len(), 1, "exactly one indication");
    }

    #[test]
    fn h_threshold_gates_confirmation() {
        let dests = [ProcessId(1), ProcessId(2), ProcessId(3)];
        let mut a = TransportEntity::new(ProcessId(0), TransportConfig::default());
        let xfer = a.t_data_rq(&dests, 2, Bytes::from_static(b"x"));
        while a.poll_output().is_some() {}
        a.on_frame(
            ProcessId(1),
            TFrame::Ack {
                xfer,
                src: ProcessId(1),
            }
            .encode(),
        );
        assert!(
            std::iter::from_fn(|| a.poll_output()).count() == 0,
            "one ack < h = 2: no confirm yet"
        );
        a.on_frame(
            ProcessId(2),
            TFrame::Ack {
                xfer,
                src: ProcessId(2),
            }
            .encode(),
        );
        let confirms: Vec<_> = std::iter::from_fn(|| a.poll_output()).collect();
        assert!(matches!(confirms[..], [TOutput::Confirm { acked: 2, .. }]));
        // Reaching h ends the transfer: no residual retransmission (the
        // urcgc layer's history recovery covers the third destination).
        assert_eq!(a.in_flight(), 0);
        a.on_frame(
            ProcessId(3),
            TFrame::Ack {
                xfer,
                src: ProcessId(3),
            }
            .encode(),
        );
        assert_eq!(a.in_flight(), 0, "late ack is harmless");
    }

    #[test]
    fn never_fails_confirms_after_retry_exhaustion() {
        let cfg = TransportConfig {
            mtu: 512,
            retx_interval: 1,
            max_retries: 2,
            ..Default::default()
        };
        let mut a = TransportEntity::new(ProcessId(0), cfg);
        let xfer = a.t_data_rq(&[ProcessId(1)], 1, Bytes::from_static(b"void"));
        while a.poll_output().is_some() {} // all frames lost
        let mut confirm = None;
        for _ in 0..10 {
            a.on_tick();
            while let Some(o) = a.poll_output() {
                if let TOutput::Confirm { xfer: x, acked } = o {
                    confirm = Some((x, acked));
                }
            }
            if confirm.is_some() {
                break;
            }
        }
        assert_eq!(confirm, Some((xfer, 0)), "confirms with zero acks");
        assert_eq!(a.in_flight(), 0);
    }

    #[test]
    fn ack_from_non_destination_is_ignored() {
        let mut a = TransportEntity::new(ProcessId(0), TransportConfig::default());
        let xfer = a.t_data_rq(&[ProcessId(1)], 1, Bytes::from_static(b"x"));
        while a.poll_output().is_some() {}
        a.on_frame(
            ProcessId(5),
            TFrame::Ack {
                xfer,
                src: ProcessId(5),
            }
            .encode(),
        );
        assert_eq!(a.in_flight(), 1, "spoofed ack must not complete transfer");
    }

    #[test]
    #[should_panic(expected = "h = 4 outside")]
    fn h_larger_than_dest_set_panics() {
        let mut a = TransportEntity::new(ProcessId(0), TransportConfig::default());
        let _ = a.t_data_rq(&[ProcessId(1)], 4, Bytes::new());
    }

    #[test]
    fn single_fragment_indication_borrows_the_datagram() {
        // Borrowed decode: an SDU that fits one fragment must come back up
        // as a zero-copy view into the received datagram, not a fresh
        // allocation.
        let mut a = TransportEntity::new(ProcessId(0), TransportConfig::default());
        let mut b = TransportEntity::new(ProcessId(1), TransportConfig::default());
        a.t_data_rq(&[ProcessId(1)], 1, Bytes::from_static(b"view into me"));
        let datagram = std::iter::from_fn(|| a.poll_output())
            .find_map(|o| match o {
                TOutput::Send { frame, .. } => Some(frame),
                _ => None,
            })
            .expect("one fragment sent");
        b.on_frame(ProcessId(0), datagram.clone());
        let ind = b
            .drain_inds()
            .into_iter()
            .find_map(|o| match o {
                TOutput::Ind { data, .. } => Some(data),
                _ => None,
            })
            .expect("delivered");
        assert_eq!(&ind[..], b"view into me");
        let outer = datagram.as_ptr() as usize;
        let inner = ind.as_ptr() as usize;
        assert!(
            inner >= outer && inner + ind.len() <= outer + datagram.len(),
            "indication re-allocated instead of borrowing the datagram"
        );
    }

    #[test]
    fn corrupted_batch_frames_never_forge_a_pdu() {
        // Checksum sweep over the 0xB7 envelope: flip every byte of a
        // batched retransmission carrying a fragmented encoded PDU. Each
        // flip must be caught — by TFrame::decode (envelope damage), by
        // reassembly (shape damage), or by the PDU checksum trailer
        // (payload damage). A flip may at worst reproduce the original;
        // it must never decode to a *different* PDU.
        use urcgc_types::wire::{decode_pdu, encode_pdu};
        use urcgc_types::{DataMsg, Mid, Pdu, Round};

        let pdu = Pdu::data(DataMsg {
            mid: Mid::new(ProcessId(0), 7),
            deps: vec![Mid::new(ProcessId(1), 3)],
            round: Round(2),
            payload: Bytes::from_static(b"batched payload under test"),
        });
        let sdu = encode_pdu(&pdu);
        let cfg = TransportConfig {
            mtu: 16,
            retx_interval: 1,
            max_retries: 5,
            batch_retransmissions: true,
        };
        let mut a = TransportEntity::new(ProcessId(0), cfg);
        a.t_data_rq(&[ProcessId(1)], 1, sdu);
        while a.poll_output().is_some() {} // first transmission lost
        a.on_tick();
        let batch = std::iter::from_fn(|| a.poll_output())
            .find_map(|o| match o {
                TOutput::Send { frame, .. } => Some(frame),
                _ => None,
            })
            .expect("batched resend");
        assert_eq!(batch[0], 0xB7, "envelope under test is a batch");

        for i in 0..batch.len() {
            let mut raw = batch.to_vec();
            raw[i] ^= 0x10;
            let mut rx = TransportEntity::new(ProcessId(1), cfg);
            rx.on_frame(ProcessId(0), Bytes::from(raw));
            for out in rx.drain_inds() {
                if let TOutput::Ind { data, .. } = out {
                    match decode_pdu(&data) {
                        Err(_) => {} // checksum/structure caught it
                        Ok(back) => {
                            assert_eq!(back, pdu, "flip at byte {i} forged a different PDU")
                        }
                    }
                }
            }
        }
    }
}
