//! Transport frames: data fragments and acknowledgements.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use urcgc_types::ProcessId;

/// A frame on the transport wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TFrame {
    /// One fragment of a service data unit.
    Data {
        /// Sender-local transfer identifier.
        xfer: u64,
        /// Originating process (for reassembly keying).
        src: ProcessId,
        /// Fragment index, `0..frag_count`.
        frag_index: u16,
        /// Total fragments in the transfer.
        frag_count: u16,
        /// Fragment bytes.
        payload: Bytes,
    },
    /// Acknowledgement of a fully received transfer.
    Ack {
        /// The acknowledged transfer.
        xfer: u64,
        /// The acknowledging process.
        src: ProcessId,
    },
    /// Several frames for one destination coalesced into a single wire
    /// frame (batched retransmission). Members are encoded [`TFrame`]s and
    /// may not themselves be batches.
    Batch {
        /// Encoded member frames, in send order.
        frames: Vec<Bytes>,
    },
}

const TAG_DATA: u8 = 0xD1;
const TAG_ACK: u8 = 0xA1;
const TAG_BATCH: u8 = 0xB7;

/// Encoded size of a [`TFrame::Data`] header (tag + xfer + src +
/// frag_index + frag_count + payload length). A fragment of payload size
/// `p` occupies `DATA_HEADER_LEN + p` bytes on the wire — runtimes sizing
/// fragments against a *datagram* MTU must budget for this overhead.
pub const DATA_HEADER_LEN: usize = 1 + 8 + 2 + 2 + 2 + 4;

/// Splits `data` into encoded [`TFrame::Data`] datagrams of at most `mtu`
/// payload bytes each (empty data still yields one empty fragment, so a
/// transfer is never zero frames). This is the one fragmentation routine in
/// the workspace: [`TransportEntity`](crate::TransportEntity) uses it for
/// the t-service and the UDP runtime uses it to fit engine PDUs into
/// network packets.
///
/// # Panics
/// Panics if `mtu` is zero or `data` needs more than `u16::MAX` fragments.
pub fn fragment(xfer: u64, src: ProcessId, mtu: usize, data: &Bytes) -> Vec<Bytes> {
    assert!(mtu > 0, "MTU must be positive");
    let frag_count = data.len().div_ceil(mtu).max(1);
    assert!(
        frag_count <= u16::MAX as usize,
        "data too large for u16 fragments"
    );
    let mut fragments = Vec::with_capacity(frag_count);
    for i in 0..frag_count {
        let start = i * mtu;
        let end = (start + mtu).min(data.len());
        let frame = TFrame::Data {
            xfer,
            src,
            frag_index: i as u16,
            frag_count: frag_count as u16,
            payload: data.slice(start..end),
        };
        fragments.push(frame.encode());
    }
    fragments
}

impl TFrame {
    /// Encodes the frame.
    pub fn encode(&self) -> Bytes {
        match self {
            TFrame::Data {
                xfer,
                src,
                frag_index,
                frag_count,
                payload,
            } => {
                let mut b = BytesMut::with_capacity(1 + 8 + 2 + 2 + 2 + 4 + payload.len());
                b.put_u8(TAG_DATA);
                b.put_u64_le(*xfer);
                b.put_u16_le(src.0);
                b.put_u16_le(*frag_index);
                b.put_u16_le(*frag_count);
                b.put_u32_le(payload.len() as u32);
                b.put_slice(payload);
                b.freeze()
            }
            TFrame::Ack { xfer, src } => {
                let mut b = BytesMut::with_capacity(1 + 8 + 2);
                b.put_u8(TAG_ACK);
                b.put_u64_le(*xfer);
                b.put_u16_le(src.0);
                b.freeze()
            }
            TFrame::Batch { frames } => {
                debug_assert!(
                    frames.iter().all(|f| f.first() != Some(&TAG_BATCH)),
                    "batches must not nest"
                );
                let body: usize = frames.iter().map(|f| 4 + f.len()).sum();
                let mut b = BytesMut::with_capacity(1 + 2 + body);
                b.put_u8(TAG_BATCH);
                b.put_u16_le(frames.len() as u16);
                for f in frames {
                    b.put_u32_le(f.len() as u32);
                    b.put_slice(f);
                }
                b.freeze()
            }
        }
    }

    /// Decodes a frame; `None` on malformed input.
    pub fn decode(mut frame: Bytes) -> Option<TFrame> {
        if frame.remaining() < 1 {
            return None;
        }
        match frame.get_u8() {
            TAG_DATA => {
                if frame.remaining() < 8 + 2 + 2 + 2 + 4 {
                    return None;
                }
                let xfer = frame.get_u64_le();
                let src = ProcessId(frame.get_u16_le());
                let frag_index = frame.get_u16_le();
                let frag_count = frame.get_u16_le();
                let plen = frame.get_u32_le() as usize;
                if frame.remaining() < plen || frag_count == 0 || frag_index >= frag_count {
                    return None;
                }
                let payload = frame.split_to(plen);
                Some(TFrame::Data {
                    xfer,
                    src,
                    frag_index,
                    frag_count,
                    payload,
                })
            }
            TAG_ACK => {
                if frame.remaining() < 10 {
                    return None;
                }
                let xfer = frame.get_u64_le();
                let src = ProcessId(frame.get_u16_le());
                Some(TFrame::Ack { xfer, src })
            }
            TAG_BATCH => {
                if frame.remaining() < 2 {
                    return None;
                }
                let count = frame.get_u16_le() as usize;
                let mut frames = Vec::with_capacity(count.min(64));
                for _ in 0..count {
                    if frame.remaining() < 4 {
                        return None;
                    }
                    let len = frame.get_u32_le() as usize;
                    if frame.remaining() < len {
                        return None;
                    }
                    let inner = frame.split_to(len);
                    // One level only: a nested batch is malformed.
                    if inner.first() == Some(&TAG_BATCH) {
                        return None;
                    }
                    frames.push(inner);
                }
                Some(TFrame::Batch { frames })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_roundtrip() {
        let f = TFrame::Data {
            xfer: 42,
            src: ProcessId(3),
            frag_index: 1,
            frag_count: 4,
            payload: Bytes::from_static(b"chunk"),
        };
        assert_eq!(TFrame::decode(f.encode()), Some(f));
    }

    #[test]
    fn fragment_helper_covers_data_and_header_len_is_exact() {
        let data = Bytes::from((0..100u8).collect::<Vec<u8>>());
        let frags = fragment(9, ProcessId(4), 16, &data);
        assert_eq!(frags.len(), 7, "100 bytes / 16-byte MTU = 7 fragments");
        let mut rebuilt = Vec::new();
        for (i, raw) in frags.iter().enumerate() {
            // Header length is the documented constant for every fragment.
            let Some(TFrame::Data {
                xfer,
                src,
                frag_index,
                frag_count,
                payload,
            }) = TFrame::decode(raw.clone())
            else {
                panic!("fragment {i} did not decode as Data");
            };
            assert_eq!(raw.len(), DATA_HEADER_LEN + payload.len());
            assert_eq!((xfer, src), (9, ProcessId(4)));
            assert_eq!((frag_index, frag_count), (i as u16, 7));
            rebuilt.extend_from_slice(&payload);
        }
        assert_eq!(rebuilt, &data[..]);
        // Empty data still ships one (empty) fragment.
        let empty = fragment(1, ProcessId(0), 16, &Bytes::new());
        assert_eq!(empty.len(), 1);
        assert_eq!(empty[0].len(), DATA_HEADER_LEN);
    }

    #[test]
    fn ack_roundtrip() {
        let f = TFrame::Ack {
            xfer: 7,
            src: ProcessId(1),
        };
        assert_eq!(TFrame::decode(f.encode()), Some(f));
    }

    #[test]
    fn malformed_frames_rejected() {
        assert_eq!(TFrame::decode(Bytes::new()), None);
        assert_eq!(TFrame::decode(Bytes::from_static(&[0x99, 1, 2])), None);
        // frag_index >= frag_count
        let bad = TFrame::Data {
            xfer: 1,
            src: ProcessId(0),
            frag_index: 0,
            frag_count: 1,
            payload: Bytes::new(),
        };
        let mut raw = bad.encode().to_vec();
        raw[11] = 5; // frag_index = 5 > frag_count = 1
        assert_eq!(TFrame::decode(Bytes::from(raw)), None);
    }

    #[test]
    fn batch_roundtrip() {
        let members = vec![
            TFrame::Data {
                xfer: 1,
                src: ProcessId(0),
                frag_index: 0,
                frag_count: 2,
                payload: Bytes::from_static(b"aa"),
            }
            .encode(),
            TFrame::Data {
                xfer: 1,
                src: ProcessId(0),
                frag_index: 1,
                frag_count: 2,
                payload: Bytes::from_static(b"bb"),
            }
            .encode(),
        ];
        let f = TFrame::Batch {
            frames: members.clone(),
        };
        assert_eq!(
            TFrame::decode(f.encode()),
            Some(TFrame::Batch { frames: members })
        );
        assert_eq!(
            TFrame::decode(TFrame::Batch { frames: vec![] }.encode()),
            Some(TFrame::Batch { frames: vec![] })
        );
    }

    #[test]
    fn nested_batches_rejected() {
        let inner = TFrame::Batch { frames: vec![] }.encode();
        let outer = TFrame::Batch {
            frames: vec![inner],
        };
        // Encode via raw bytes (the debug_assert guards release encode).
        let mut raw = BytesMut::new();
        raw.put_u8(0xB7);
        raw.put_u16_le(1);
        let TFrame::Batch { frames } = &outer else {
            unreachable!()
        };
        raw.put_u32_le(frames[0].len() as u32);
        raw.put_slice(&frames[0]);
        assert_eq!(TFrame::decode(raw.freeze()), None);
    }

    #[test]
    fn batch_truncations_rejected() {
        let f = TFrame::Batch {
            frames: vec![TFrame::Ack {
                xfer: 3,
                src: ProcessId(1),
            }
            .encode()],
        };
        let enc = f.encode();
        for cut in 0..enc.len() {
            let mut part = enc.clone();
            part.truncate(cut);
            assert_eq!(TFrame::decode(part), None, "cut {cut}");
        }
    }

    #[test]
    fn truncations_rejected() {
        let f = TFrame::Data {
            xfer: 9,
            src: ProcessId(2),
            frag_index: 0,
            frag_count: 1,
            payload: Bytes::from_static(b"abcdef"),
        };
        let enc = f.encode();
        for cut in 0..enc.len() {
            let mut part = enc.clone();
            part.truncate(cut);
            assert_eq!(TFrame::decode(part), None, "cut {cut}");
        }
    }
}
