#![warn(missing_docs)]

//! The t-service transport abstraction of Section 5.
//!
//! The paper mounts the urcgc entities on abstract transport SAPs whose
//! service is `t.data.Rq(m, h, v, d)`: deliver data `d` to the destination
//! set `m` with **n-unicast semantics**, retransmitting until at least `h`
//! of the destinations have received it (the voting function `v` is unused
//! by urcgc). Two properties are load-bearing:
//!
//! * the primitive **never fails** — after the retry budget is exhausted it
//!   confirms anyway, and the urcgc layer's own history recovery covers the
//!   residue (this is what makes urcgc independent of transport QoS);
//! * with `h = 1` (or no transport at all) the entity sits directly on a
//!   datagram subnetwork — the configuration all the paper's simulations
//!   use — while larger `h` shifts retransmission *down* the stack and
//!   reduces recovery-from-history traffic.
//!
//! [`TransportEntity`] is a sans-I/O state machine (same pattern as
//! `urcgc::Engine`): feed frames and ticks, drain [`TOutput`] effects. It
//! also performs fragmentation/reassembly so service data units larger than
//! the network MTU travel as multiple frames ("useful when there is the
//! need of fragmenting and assembling the urcgc data units to fit the
//! network packet size").

//! ```
//! use bytes::Bytes;
//! use urcgc_transport::{TOutput, TransportConfig, TransportEntity};
//! use urcgc_types::ProcessId;
//!
//! let mut sender = TransportEntity::new(ProcessId(0), TransportConfig::default());
//! let mut receiver = TransportEntity::new(ProcessId(1), TransportConfig::default());
//! sender.t_data_rq(&[ProcessId(1)], 1, Bytes::from_static(b"payload"));
//! // Carry frames sender → receiver, acks back, until the Ind arrives.
//! while let Some(out) = sender.poll_output() {
//!     if let TOutput::Send { frame, .. } = out {
//!         receiver.on_frame(ProcessId(0), frame);
//!     }
//! }
//! let mut got = None;
//! while let Some(out) = receiver.poll_output() {
//!     match out {
//!         TOutput::Send { frame, .. } => sender.on_frame(ProcessId(1), frame),
//!         TOutput::Ind { data, .. } => got = Some(data),
//!         _ => {}
//!     }
//! }
//! assert_eq!(got.as_deref(), Some(&b"payload"[..]));
//! ```

pub mod entity;
pub mod frame;
pub mod relay;

pub use entity::{TOutput, TransportConfig, TransportEntity, XferId};
pub use frame::{fragment, TFrame, DATA_HEADER_LEN};
pub use relay::{
    decode_relay, encode_relay, encode_relay_into, is_relay_frame, RelayError, RelayFrame,
    RelaySeen, RELAY_HEADER_LEN, RELAY_TAG,
};
