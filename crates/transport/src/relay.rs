//! The relay frame envelope for overlay dissemination.
//!
//! When `data`/`decision` frames travel hop-by-hop over a bounded-degree
//! overlay instead of the paper's n-unicast, every hop needs to know *whose*
//! broadcast a frame belongs to without decoding the inner PDU: the
//! envelope prefixes the unchanged inner frame with the originating process
//! and an origin-local broadcast sequence number. Forwarders re-send the
//! received [`Bytes`] handle verbatim (a refcount clone — the relay path
//! stays zero-copy), and receivers deduplicate on `(origin, seq)` because
//! re-parenting after a crash can deliver the same broadcast along two
//! paths.
//!
//! The envelope header carries its own FNV-1a checksum so a corrupted
//! header degenerates to an omission instead of mis-routing the frame; the
//! inner frame keeps its own integrity trailer and is verified only at
//! delivery, never per hop.

use std::collections::BTreeSet;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use urcgc_types::{fnv1a_32, ProcessId};

/// First byte of every relay envelope. Distinct from the engine PDU tags
/// (1–7) and the t-service frame tags (`0xD1`/`0xA1`/`0xB7`) so a relay
/// frame is recognizable from its first byte on any shared wire.
pub const RELAY_TAG: u8 = 0xE7;

/// Encoded envelope header size: tag + origin + seq + header checksum.
pub const RELAY_HEADER_LEN: usize = 1 + 2 + 8 + 4;

/// FNV-1a over the envelope header (tag, origin, seq).
fn header_checksum(header: &[u8]) -> u32 {
    fnv1a_32(header)
}

/// A decoded relay envelope: routing header plus the untouched inner frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelayFrame {
    /// The process whose logical broadcast this frame carries.
    pub origin: ProcessId,
    /// Origin-local broadcast sequence number (dedup key, with `origin`).
    pub seq: u64,
    /// The inner engine frame, byte-identical at every hop.
    pub inner: Bytes,
}

/// Why a relay frame failed to parse.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RelayError {
    /// Shorter than a header, or not a relay frame at all.
    Truncated,
    /// First byte is not [`RELAY_TAG`].
    BadTag(u8),
    /// Header checksum mismatch (corruption in flight).
    BadChecksum,
}

/// Whether `frame` looks like a relay envelope (cheap first-byte probe; the
/// checksum is verified by [`decode_relay`]).
pub fn is_relay_frame(frame: &[u8]) -> bool {
    frame.first() == Some(&RELAY_TAG)
}

/// Encodes an envelope into `buf` (header + inner bytes). The inner frame
/// is copied exactly once, at wrap time; every forward afterwards clones
/// the resulting [`Bytes`] handle.
pub fn encode_relay_into(origin: ProcessId, seq: u64, inner: &[u8], buf: &mut BytesMut) {
    let start = buf.len();
    buf.put_u8(RELAY_TAG);
    buf.put_u16_le(origin.0);
    buf.put_u64_le(seq);
    let sum = header_checksum(&buf[start..start + 11]);
    buf.put_u32_le(sum);
    buf.put_slice(inner);
}

/// Encodes an envelope as a fresh frame.
pub fn encode_relay(origin: ProcessId, seq: u64, inner: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(RELAY_HEADER_LEN + inner.len());
    encode_relay_into(origin, seq, inner, &mut buf);
    buf.freeze()
}

/// Decodes an envelope, verifying the header checksum. The returned
/// `inner` is a zero-copy slice of `frame`.
pub fn decode_relay(frame: &Bytes) -> Result<RelayFrame, RelayError> {
    if frame.len() < RELAY_HEADER_LEN {
        return Err(RelayError::Truncated);
    }
    if frame[0] != RELAY_TAG {
        return Err(RelayError::BadTag(frame[0]));
    }
    let carried = u32::from_le_bytes(frame[11..15].try_into().expect("4 bytes"));
    if carried != header_checksum(&frame[..11]) {
        return Err(RelayError::BadChecksum);
    }
    let mut hdr = &frame[1..11];
    let origin = ProcessId(hdr.get_u16_le());
    let seq = hdr.get_u64_le();
    Ok(RelayFrame {
        origin,
        seq,
        inner: frame.slice(RELAY_HEADER_LEN..),
    })
}

/// Per-origin seen-set for forwarded frames: `insert` answers "is this
/// `(origin, seq)` fresh?" exactly once per broadcast, which is both the
/// delivery dedup and the infect-and-die forwarding rule (a frame is
/// forwarded only on its first receipt, so relay loops terminate without a
/// TTL field — the envelope stays immutable hop to hop).
///
/// Memory stays bounded without any protocol help: sequences from one
/// origin are near-contiguous, so each origin keeps a contiguous floor
/// plus a small out-of-order residue that compacts back into the floor.
#[derive(Clone, Debug, Default)]
pub struct RelaySeen {
    origins: Vec<SeenWindow>,
}

#[derive(Clone, Debug, Default)]
struct SeenWindow {
    /// Every seq below this has been seen.
    floor: u64,
    /// Seen seqs at or above `floor` (compacted whenever `floor` is seen).
    above: BTreeSet<u64>,
}

impl RelaySeen {
    /// An empty tracker sized lazily by origin index.
    pub fn new() -> RelaySeen {
        RelaySeen::default()
    }

    /// Records `(origin, seq)`; returns `true` iff it was not seen before.
    pub fn insert(&mut self, origin: ProcessId, seq: u64) -> bool {
        let idx = origin.index();
        if idx >= self.origins.len() {
            self.origins.resize_with(idx + 1, SeenWindow::default);
        }
        let w = &mut self.origins[idx];
        if seq < w.floor || !w.above.insert(seq) {
            return false;
        }
        while w.above.remove(&w.floor) {
            w.floor += 1;
        }
        true
    }

    /// Whether `(origin, seq)` has been recorded.
    pub fn contains(&self, origin: ProcessId, seq: u64) -> bool {
        self.origins
            .get(origin.index())
            .is_some_and(|w| seq < w.floor || w.above.contains(&seq))
    }

    /// Out-of-order residue currently held for `origin` (tests/gauges).
    pub fn residue(&self, origin: ProcessId) -> usize {
        self.origins
            .get(origin.index())
            .map_or(0, |w| w.above.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trips_and_preserves_inner_bytes() {
        let inner = Bytes::from_static(b"\x01engine frame bytes\xAA\xBB\xCC\xDD");
        let frame = encode_relay(ProcessId(7), 42, &inner);
        assert!(is_relay_frame(&frame));
        assert_eq!(frame.len(), RELAY_HEADER_LEN + inner.len());
        let decoded = decode_relay(&frame).expect("decodes");
        assert_eq!(decoded.origin, ProcessId(7));
        assert_eq!(decoded.seq, 42);
        assert_eq!(decoded.inner, inner);
    }

    #[test]
    fn inner_slice_is_zero_copy() {
        let frame = encode_relay(ProcessId(0), 1, b"payload");
        let decoded = decode_relay(&frame).expect("decodes");
        // Same backing allocation: the slice points into the envelope.
        assert_eq!(
            decoded.inner.as_ptr() as usize,
            frame.as_ptr() as usize + RELAY_HEADER_LEN
        );
    }

    #[test]
    fn header_corruption_is_rejected() {
        let frame = encode_relay(ProcessId(3), 9, b"x");
        for byte in 0..RELAY_HEADER_LEN {
            let mut raw = frame.to_vec();
            raw[byte] ^= 0x40;
            let got = decode_relay(&Bytes::from(raw));
            assert!(got.is_err(), "flip at byte {byte} accepted: {got:?}");
        }
        // Inner-frame corruption passes the envelope (the inner trailer
        // catches it at delivery).
        let mut raw = frame.to_vec();
        let last = raw.len() - 1;
        raw[last] ^= 0x40;
        assert!(decode_relay(&Bytes::from(raw)).is_ok());
    }

    #[test]
    fn truncated_and_foreign_frames_are_rejected() {
        assert_eq!(
            decode_relay(&Bytes::from_static(b"\xE7short")),
            Err(RelayError::Truncated)
        );
        let pdu_like = Bytes::from_static(b"\x01AAAAAAAAAAAAAAAAAAAA");
        assert!(!is_relay_frame(&pdu_like));
        assert_eq!(decode_relay(&pdu_like), Err(RelayError::BadTag(0x01)));
    }

    #[test]
    fn seen_set_dedups_and_compacts() {
        let mut seen = RelaySeen::new();
        let p = ProcessId(2);
        assert!(seen.insert(p, 0));
        assert!(!seen.insert(p, 0), "duplicate detected");
        // Out of order: 2 parks in the residue until 1 closes the gap.
        assert!(seen.insert(p, 2));
        assert_eq!(seen.residue(p), 1);
        assert!(seen.insert(p, 1));
        assert_eq!(seen.residue(p), 0, "contiguous prefix compacted");
        assert!(!seen.insert(p, 1), "below the floor is a duplicate");
        assert!(seen.contains(p, 2) && !seen.contains(p, 3));
        // Other origins are independent.
        assert!(seen.insert(ProcessId(5), 0));
        assert!(!seen.contains(ProcessId(4), 0));
    }
}
