//! The pre-calendar-queue engine, kept as an executable specification.
//!
//! [`FlatWireSimNet`] is the flat-wire scheduler [`crate::SimNet`] replaced:
//! every round it rescans the whole in-flight vector (a frame delayed `d`
//! rounds is re-examined `d` times), allocates a fresh `Vec<Outgoing>` per
//! node invocation, and decides `all_done()` with a full n-node scan. It is
//! retained — like `RescanWaitingList` before it — so that
//!
//! * differential tests can assert the calendar queue reproduces its
//!   delivery order, RNG draw alignment, and counters bit for bit, and
//! * the scheduler before/after benchmarks measure the real replaced code,
//!   not a strawman.
//!
//! Do not use it outside tests and benches; it is O(in-flight) per round.

use bytes::Bytes;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use urcgc_types::{ProcessId, Round};

use crate::adversary::Adversary;
use crate::fault::FaultPlan;
use crate::net::{InFlight, RunOutcome, SimOptions, SimStats};
use crate::node::{NetCtx, Node, Outgoing};
use crate::timeline::ByteTimeline;

/// The old flat-wire engine (see the module docs). API mirrors
/// [`crate::SimNet`].
pub struct FlatWireSimNet<N: Node> {
    nodes: Vec<N>,
    faults: FaultPlan,
    opts: SimOptions,
    rng: ChaCha8Rng,
    stats: SimStats,
    round: Round,
    /// Frames in flight, rescanned in full every round.
    wire: Vec<InFlight>,
    /// Bytes offered during the round currently executing.
    round_bytes: u64,
    /// Optional schedule adversary, applied to each round's arrival set
    /// exactly as [`crate::SimNet`] applies it (the checker's differential
    /// oracle runs the same adversary on both engines).
    adversary: Option<Box<dyn Adversary>>,
}

impl<N: Node> FlatWireSimNet<N> {
    /// Builds a network over `nodes` (process `i` is `nodes[i]`).
    pub fn new(nodes: Vec<N>, faults: FaultPlan, opts: SimOptions) -> Self {
        let rng = ChaCha8Rng::seed_from_u64(opts.seed);
        let stats = SimStats {
            bytes_per_round: ByteTimeline::new(opts.bytes_window),
            ..SimStats::default()
        };
        FlatWireSimNet {
            nodes,
            faults,
            opts,
            rng,
            stats,
            round: Round(0),
            wire: Vec::new(),
            round_bytes: 0,
            adversary: None,
        }
    }

    /// Installs a schedule adversary (mirrors [`crate::SimNet::set_adversary`]).
    pub fn set_adversary(&mut self, adv: Box<dyn Adversary>) {
        self.adversary = Some(adv);
    }

    /// Group cardinality.
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// The round about to be executed (or just executed, after a step).
    pub fn round(&self) -> Round {
        self.round
    }

    /// Engine counters.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Immutable node access for post-run inspection.
    pub fn node(&self, p: ProcessId) -> &N {
        &self.nodes[p.index()]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// Executes one full round, rescanning the whole wire.
    pub fn step(&mut self) {
        let round = self.round;
        let n = self.nodes.len();
        let mut new_out: Vec<Outgoing>;
        let mut sent_this_round: Vec<InFlight> = Vec::new();

        // Phase 1: deliveries; every in-flight frame is examined whether or
        // not it arrives this round. The partition draws no randomness and
        // preserves wire order, so splitting it from the delivery loop (for
        // the adversary hook) changes nothing without an adversary.
        let wire = std::mem::take(&mut self.wire);
        let mut still_in_flight = Vec::new();
        let mut arriving = Vec::new();
        for msg in wire {
            if msg.arrives > round {
                still_in_flight.push(msg);
            } else {
                arriving.push(msg);
            }
        }
        if let Some(adv) = self.adversary.as_deref_mut() {
            crate::adversary::perturb(adv, round, &mut arriving, &mut self.stats.adversary_dropped);
        }
        for msg in arriving {
            if self.faults.is_crashed(msg.to, round) {
                self.stats.to_crashed += 1;
                continue;
            }
            if self.faults.recv_omission_prob > 0.0
                && self.rng.gen_bool(self.faults.recv_omission_prob)
            {
                self.stats.recv_omitted += 1;
                continue;
            }
            new_out = Vec::new();
            {
                let mut ctx = NetCtx::new(msg.to, n, round, &mut new_out);
                self.nodes[msg.to.index()].on_frame(msg.from, msg.frame, &mut ctx);
            }
            self.stats.delivered += 1;
            sent_this_round.extend(self.filter_sends(msg.to, round, new_out));
        }

        // Phase 2: round actions for every alive node.
        for i in 0..n {
            let me = ProcessId::from_index(i);
            if self.faults.is_crashed(me, round) {
                continue;
            }
            new_out = Vec::new();
            {
                let mut ctx = NetCtx::new(me, n, round, &mut new_out);
                self.nodes[i].on_round(round, &mut ctx);
            }
            sent_this_round.extend(self.filter_sends(me, round, new_out));
        }

        still_in_flight.extend(sent_this_round);
        self.wire = still_in_flight;
        self.stats.bytes_per_round.record(self.round_bytes);
        self.round_bytes = 0;
        self.round = round.next();
    }

    /// Applies send-side faults and traffic accounting to a node's queued
    /// output (per-frame crash check and delay lookup, as the old engine
    /// did).
    fn filter_sends(&mut self, from: ProcessId, round: Round, out: Vec<Outgoing>) -> Vec<InFlight> {
        let n = self.nodes.len();
        let mut kept = Vec::with_capacity(out.len());
        for o in out {
            if o.to.index() >= n {
                self.stats.misaddressed += 1;
                continue;
            }
            if self.faults.is_crashed(from, round) {
                self.stats.from_crashed += 1;
                continue;
            }
            self.stats.traffic.record(o.kind, o.frame.len());
            self.round_bytes += o.frame.len() as u64;
            if self.faults.link_cut_at(from, o.to, round) {
                self.stats.link_dropped += 1;
                continue;
            }
            if self.faults.send_omission_prob > 0.0
                && self.rng.gen_bool(self.faults.send_omission_prob)
            {
                self.stats.send_omitted += 1;
                continue;
            }
            let frame = if self.faults.corrupt_prob > 0.0
                && !o.frame.is_empty()
                && self.rng.gen_bool(self.faults.corrupt_prob)
            {
                self.stats.corrupted += 1;
                let mut raw = o.frame.to_vec();
                let idx = self.rng.gen_range(0..raw.len());
                raw[idx] ^= 1 << self.rng.gen_range(0..8);
                Bytes::from(raw)
            } else {
                o.frame
            };
            kept.push(InFlight {
                from,
                to: o.to,
                frame,
                arrives: Round(round.0 + 1 + self.faults.sender_delay(from)),
            });
        }
        kept
    }

    /// Whether every non-crashed node reports done (full n-node scan).
    pub fn all_done(&self) -> bool {
        self.nodes.iter().enumerate().all(|(i, node)| {
            self.faults.is_crashed(ProcessId::from_index(i), self.round) || node.is_done()
        })
    }

    /// Runs until every alive node is done or the round limit is hit.
    pub fn run(&mut self) -> RunOutcome {
        while self.round.0 < self.opts.max_rounds {
            if self.all_done() {
                return RunOutcome::AllDone {
                    at_round: self.round.0,
                };
            }
            self.step();
        }
        if self.all_done() {
            RunOutcome::AllDone {
                at_round: self.round.0,
            }
        } else {
            RunOutcome::RoundLimit
        }
    }

    /// Runs exactly `rounds` more rounds (without the done check).
    pub fn run_rounds(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Consumes the network, returning the nodes and stats for inspection.
    pub fn into_parts(self) -> (Vec<N>, SimStats) {
        (self.nodes, self.stats)
    }
}

#[cfg(test)]
mod differential_tests {
    use super::*;
    use crate::net::SimNet;

    /// A node whose trace captures everything the scheduler decides: the
    /// exact (round, sender, frame) delivery sequence, plus sends that
    /// exercise unicast, broadcast, and per-frame payload variation.
    #[derive(Clone, Default)]
    struct Tracer {
        log: Vec<(Round, ProcessId, Bytes)>,
        sent: u64,
    }

    impl Node for Tracer {
        fn on_round(&mut self, round: Round, net: &mut NetCtx<'_>) {
            // Two bursts so frames with different delays overlap in flight.
            if round.0.is_multiple_of(3) && self.sent < 40 {
                self.sent += 1;
                let body = vec![round.0 as u8, self.sent as u8, net.me().0 as u8];
                net.broadcast("data", Bytes::from(body));
            }
        }

        fn on_frame(&mut self, from: ProcessId, frame: Bytes, net: &mut NetCtx<'_>) {
            self.log.push((net.round(), from, frame.clone()));
            // Echo every third reception back, so phase-1 sends (and their
            // RNG draws) interleave with phase-2 sends.
            if self.log.len().is_multiple_of(3) {
                net.send(from, "echo", frame);
            }
        }

        fn is_done(&self) -> bool {
            self.sent >= 40 && self.log.len() > 100
        }
    }

    fn mixed_faults() -> FaultPlan {
        FaultPlan::none()
            .omission_rate(0.05)
            .corruption_rate(0.02)
            .slow_sender(ProcessId(1), 4)
            .slow_sender(ProcessId(3), 9)
            .crash_at(ProcessId(2), Round(17))
            .cut_link(ProcessId(0), ProcessId(4))
    }

    fn counters(s: &SimStats) -> [u64; 8] {
        [
            s.delivered,
            s.send_omitted,
            s.recv_omitted,
            s.link_dropped,
            s.to_crashed,
            s.from_crashed,
            s.corrupted,
            s.misaddressed,
        ]
    }

    /// The calendar queue must reproduce the flat-wire engine bit for bit:
    /// same delivery traces, same fault counters, same RNG alignment (any
    /// drift desynchronizes the omission/corruption draws and shows up in
    /// the counters within a few rounds).
    #[test]
    fn calendar_queue_matches_flat_wire_exactly() {
        for seed in [1u64, 7, 0xC0FFEE] {
            let opts = SimOptions {
                max_rounds: 200,
                seed,
                ..Default::default()
            };
            let n = 5;
            let mut fast = SimNet::new(vec![Tracer::default(); n], mixed_faults(), opts.clone());
            let mut spec = FlatWireSimNet::new(vec![Tracer::default(); n], mixed_faults(), opts);
            fast.run_rounds(120);
            spec.run_rounds(120);
            assert_eq!(
                counters(fast.stats()),
                counters(spec.stats()),
                "fault counters diverged (seed {seed})"
            );
            assert_eq!(
                fast.stats().bytes_per_round.per_round(),
                spec.stats().bytes_per_round.per_round(),
                "offered-load timeline diverged (seed {seed})"
            );
            for i in 0..n {
                let p = ProcessId::from_index(i);
                assert_eq!(
                    fast.node(p).log,
                    spec.node(p).log,
                    "delivery trace diverged at p{i} (seed {seed})"
                );
            }
            assert_eq!(fast.all_done(), spec.all_done());
        }
    }

    /// A deterministic schedule adversary for the differential test:
    /// shuffles each round's arrivals and drops a bounded number of frames,
    /// all from its own ChaCha stream.
    struct TestAdversary {
        rng: ChaCha8Rng,
        drops_left: u32,
    }

    impl TestAdversary {
        fn new(seed: u64) -> Self {
            TestAdversary {
                rng: ChaCha8Rng::seed_from_u64(seed),
                drops_left: 9,
            }
        }
    }

    impl crate::Adversary for TestAdversary {
        fn reorder(&mut self, _round: Round, frames: &[crate::FrameView]) -> Option<Vec<usize>> {
            let mut perm: Vec<usize> = (0..frames.len()).collect();
            // Fisher–Yates off the adversary's own stream.
            for i in (1..perm.len()).rev() {
                perm.swap(i, self.rng.gen_range(0..i + 1));
            }
            Some(perm)
        }

        fn drop_arrival(&mut self, _round: Round, _frame: &crate::FrameView) -> bool {
            if self.drops_left > 0 && self.rng.gen_bool(0.02) {
                self.drops_left -= 1;
                true
            } else {
                false
            }
        }
    }

    /// The same `(seed, FaultPlan, adversary)` triple must replay the same
    /// run on both engines — the checker's differential oracle depends on
    /// this equivalence.
    #[test]
    fn adversarial_schedules_match_across_engines() {
        for seed in [3u64, 0xBEEF] {
            let opts = SimOptions {
                max_rounds: 200,
                seed,
                ..Default::default()
            };
            let n = 5;
            let mut fast = SimNet::new(vec![Tracer::default(); n], mixed_faults(), opts.clone());
            let mut spec = FlatWireSimNet::new(vec![Tracer::default(); n], mixed_faults(), opts);
            fast.set_adversary(Box::new(TestAdversary::new(seed ^ 0xAD)));
            spec.set_adversary(Box::new(TestAdversary::new(seed ^ 0xAD)));
            fast.run_rounds(120);
            spec.run_rounds(120);
            assert_eq!(
                counters(fast.stats()),
                counters(spec.stats()),
                "fault counters diverged under adversary (seed {seed})"
            );
            assert_eq!(
                fast.stats().adversary_dropped,
                spec.stats().adversary_dropped,
                "adversary drop counts diverged (seed {seed})"
            );
            assert!(
                fast.stats().adversary_dropped > 0,
                "adversary never bit (seed {seed})"
            );
            for i in 0..n {
                let p = ProcessId::from_index(i);
                assert_eq!(
                    fast.node(p).log,
                    spec.node(p).log,
                    "adversarial delivery trace diverged at p{i} (seed {seed})"
                );
            }
        }
    }
}
