//! Schedule adversaries: a hook for perturbing the delivery schedule.
//!
//! The round-synchronous engines deliver each round's arrivals in a fixed
//! deterministic order (send round, then within-round enqueue order). That
//! is exactly one point in the space of schedules the paper's asynchronous
//! bound quantifies over — an [`Adversary`] lets a checker explore the
//! rest: it may *reorder* the frames arriving in a round (PCT-style
//! priority perturbation) and *drop* individual arrivals (targeted
//! omissions, e.g. around coordinator handoffs).
//!
//! Contract:
//!
//! * With no adversary installed the engines behave bit-for-bit as before —
//!   the hook costs nothing and draws nothing from the fault RNG.
//! * An installed adversary must be deterministic given its own seed; it
//!   must **not** share the engine's fault RNG (the engine never exposes
//!   it), so the same `(seed, FaultPlan, adversary)` triple replays the
//!   same run bit-for-bit — the checker's counterexample replay depends
//!   on this.
//! * Reordering happens first, on the whole arrival set of the round;
//!   drops are then asked per frame in the perturbed order. Dropped frames
//!   are counted in [`crate::SimStats::adversary_dropped`].

use urcgc_types::{ProcessId, Round};

use crate::net::InFlight;

/// What an adversary may observe about one arriving frame. Payload bytes
/// are deliberately opaque: schedule adversaries perturb *when*, not
/// *what*.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameView {
    /// The sending process.
    pub from: ProcessId,
    /// The receiving process.
    pub to: ProcessId,
    /// Encoded frame length in bytes.
    pub len: usize,
}

/// A delivery-schedule adversary (see the module docs for the contract).
pub trait Adversary: Send {
    /// Optionally perturbs the delivery order of this round's arrivals:
    /// return a permutation of `0..frames.len()` (`result[k]` is the index
    /// of the frame delivered `k`-th), or `None` to keep the engine order.
    /// A malformed permutation panics — it is a bug in the adversary, not
    /// a schedule.
    fn reorder(&mut self, round: Round, frames: &[FrameView]) -> Option<Vec<usize>>;

    /// Targeted omission: return `true` to drop this arriving frame.
    /// Called once per frame, after [`Adversary::reorder`], in the
    /// perturbed order.
    fn drop_arrival(&mut self, _round: Round, _frame: &FrameView) -> bool {
        false
    }
}

fn view(m: &InFlight) -> FrameView {
    FrameView {
        from: m.from,
        to: m.to,
        len: m.frame.len(),
    }
}

/// Applies `adv` to one round's arrival set (shared by both engines so
/// they perturb identically).
pub(crate) fn perturb(
    adv: &mut dyn Adversary,
    round: Round,
    arriving: &mut Vec<InFlight>,
    dropped: &mut u64,
) {
    if arriving.is_empty() {
        return;
    }
    let views: Vec<FrameView> = arriving.iter().map(view).collect();
    if let Some(perm) = adv.reorder(round, &views) {
        assert_eq!(
            perm.len(),
            arriving.len(),
            "adversary permutation length {} != {} arrivals",
            perm.len(),
            arriving.len()
        );
        let mut slots: Vec<Option<InFlight>> =
            std::mem::take(arriving).into_iter().map(Some).collect();
        *arriving = perm
            .iter()
            .map(|&i| {
                slots
                    .get_mut(i)
                    .and_then(Option::take)
                    .expect("adversary permutation is not a bijection")
            })
            .collect();
    }
    arriving.retain(|m| {
        let drop = adv.drop_arrival(round, &view(m));
        if drop {
            *dropped += 1;
        }
        !drop
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::net::{SimNet, SimOptions};
    use crate::node::{NetCtx, Node};
    use bytes::Bytes;

    /// Broadcasts one tagged frame in round 0 and logs arrival order.
    struct Tagged {
        tag: u8,
        log: Vec<u8>,
    }

    impl Node for Tagged {
        fn on_round(&mut self, round: Round, net: &mut NetCtx<'_>) {
            if round == Round(0) {
                net.broadcast("data", Bytes::from(vec![self.tag]));
            }
        }
        fn on_frame(&mut self, _from: ProcessId, frame: Bytes, _net: &mut NetCtx<'_>) {
            self.log.push(frame[0]);
        }
    }

    fn group(n: u8) -> Vec<Tagged> {
        (0..n)
            .map(|tag| Tagged {
                tag,
                log: Vec::new(),
            })
            .collect()
    }

    /// Reverses every round's arrival order.
    struct Reverser;
    impl Adversary for Reverser {
        fn reorder(&mut self, _round: Round, frames: &[FrameView]) -> Option<Vec<usize>> {
            Some((0..frames.len()).rev().collect())
        }
    }

    /// Keeps the order but drops every frame from a given sender.
    struct Censor(ProcessId);
    impl Adversary for Censor {
        fn reorder(&mut self, _round: Round, _frames: &[FrameView]) -> Option<Vec<usize>> {
            None
        }
        fn drop_arrival(&mut self, _round: Round, frame: &FrameView) -> bool {
            frame.from == self.0
        }
    }

    #[test]
    fn reverser_flips_delivery_order() {
        let mut plain = SimNet::new(group(4), FaultPlan::none(), SimOptions::default());
        let mut adv = SimNet::new(group(4), FaultPlan::none(), SimOptions::default());
        adv.set_adversary(Box::new(Reverser));
        plain.run_rounds(2);
        adv.run_rounds(2);
        for i in 0..4 {
            let p = ProcessId(i);
            let mut expect = plain.node(p).log.clone();
            expect.reverse();
            assert_eq!(adv.node(p).log, expect, "p{i}");
        }
        assert_eq!(adv.stats().delivered, plain.stats().delivered);
        assert_eq!(adv.stats().adversary_dropped, 0);
    }

    #[test]
    fn censor_drops_and_counts_targeted_arrivals() {
        let mut net = SimNet::new(group(3), FaultPlan::none(), SimOptions::default());
        net.set_adversary(Box::new(Censor(ProcessId(0))));
        net.run_rounds(2);
        // p0's two frames were dropped at the receivers; the other four
        // frames arrived.
        assert_eq!(net.stats().adversary_dropped, 2);
        assert_eq!(net.stats().delivered, 4);
        for i in 1..3u16 {
            assert!(
                !net.node(ProcessId(i)).log.contains(&0),
                "p{i} still heard the censored sender"
            );
        }
    }

    #[test]
    #[should_panic(expected = "bijection")]
    fn malformed_permutation_panics() {
        struct Broken;
        impl Adversary for Broken {
            fn reorder(&mut self, _round: Round, frames: &[FrameView]) -> Option<Vec<usize>> {
                Some(vec![0; frames.len()])
            }
        }
        let mut net = SimNet::new(group(3), FaultPlan::none(), SimOptions::default());
        net.set_adversary(Box::new(Broken));
        net.run_rounds(2);
    }
}
