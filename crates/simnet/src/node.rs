//! The protocol-agnostic node interface.
//!
//! urcgc processes, CBCAST processes, and Psync processes all drive the same
//! simulator through this trait; the experiment harness only swaps the node
//! implementation.

use bytes::Bytes;
use urcgc_types::{ProcessId, Round};

/// A frame queued for transmission during the current round.
#[derive(Clone, Debug)]
pub struct Outgoing {
    /// Destination process.
    pub to: ProcessId,
    /// Traffic-accounting category (usually the PDU kind label).
    pub kind: &'static str,
    /// Encoded frame.
    pub frame: Bytes,
    /// Whether this is an overlay *forward* of a frame received from
    /// another process (vs. traffic this node originated). Splits the
    /// per-process `frames_sent`/`frames_relayed` gauges.
    pub relayed: bool,
}

/// Per-round sending context handed to a node.
///
/// Sends are queued, not instantaneous: frames sent during round `r` arrive
/// at the start of round `r+1` (one half-rtd of latency). The simulator
/// applies send-omission faults *after* the node returns, so a node cannot
/// observe its own failures — exactly the paper's model, where `send` "can
/// be interrupted by a failure, and only a subset of the destination
/// processes could receive the message".
#[derive(Debug)]
pub struct NetCtx<'a> {
    me: ProcessId,
    n: usize,
    round: Round,
    out: &'a mut Vec<Outgoing>,
    /// Bytes of frames encoded fresh during this invocation (each unique
    /// frame counted once).
    encoded_bytes: u64,
    /// Bytes put on the wire by refcount-sharing an already-counted frame
    /// (fan-out clones beyond the first copy).
    shared_bytes: u64,
    /// Bytes re-sent unchanged as overlay forwards of frames received from
    /// another process (refcount clones of the arrived allocation).
    relayed_bytes: u64,
}

impl<'a> NetCtx<'a> {
    pub(crate) fn new(me: ProcessId, n: usize, round: Round, out: &'a mut Vec<Outgoing>) -> Self {
        NetCtx {
            me,
            n,
            round,
            out,
            encoded_bytes: 0,
            shared_bytes: 0,
            relayed_bytes: 0,
        }
    }

    /// (encoded, shared, relayed) byte deltas accumulated by this
    /// invocation; the engine folds them into [`crate::SimStats`].
    pub(crate) fn share_gauge(&self) -> (u64, u64, u64) {
        (self.encoded_bytes, self.shared_bytes, self.relayed_bytes)
    }

    /// The node this context belongs to.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// Group cardinality.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The current round.
    pub fn round(&self) -> Round {
        self.round
    }

    /// Queues a unicast frame (counted as freshly encoded bytes).
    pub fn send(&mut self, to: ProcessId, kind: &'static str, frame: Bytes) {
        self.encoded_bytes += frame.len() as u64;
        self.out.push(Outgoing {
            to,
            kind,
            frame,
            relayed: false,
        });
    }

    /// Queues a unicast clone of a frame whose encoding was already
    /// counted — manual fan-outs use this for every copy after the first so
    /// the encoded-vs-shared gauge stays honest.
    pub fn send_shared(&mut self, to: ProcessId, kind: &'static str, frame: Bytes) {
        self.shared_bytes += frame.len() as u64;
        self.out.push(Outgoing {
            to,
            kind,
            frame,
            relayed: false,
        });
    }

    /// Queues an overlay *forward*: a frame received from another process,
    /// re-sent unchanged (the caller clones the arrived [`Bytes`] handle —
    /// no new encoding happens). Counted in the relayed gauge and in this
    /// process's `frames_relayed`, keeping the originated-vs-relayed split
    /// honest at every layer.
    pub fn send_relayed(&mut self, to: ProcessId, kind: &'static str, frame: Bytes) {
        self.relayed_bytes += frame.len() as u64;
        self.out.push(Outgoing {
            to,
            kind,
            frame,
            relayed: true,
        });
    }

    /// Queues the same frame to every *other* group member (n−1 unicasts —
    /// the `n`-unicast semantics of the paper's transport service with no
    /// required replies). The frame's bytes are counted encoded once; every
    /// further destination is a refcount-shared copy.
    pub fn broadcast(&mut self, kind: &'static str, frame: Bytes) {
        let mut copies = 0u64;
        for i in 0..self.n {
            let to = ProcessId::from_index(i);
            if to != self.me {
                copies += 1;
                self.out.push(Outgoing {
                    to,
                    kind,
                    frame: frame.clone(),
                    relayed: false,
                });
            }
        }
        if copies > 0 {
            self.encoded_bytes += frame.len() as u64;
            self.shared_bytes += frame.len() as u64 * (copies - 1);
        }
    }

    /// Number of frames queued so far this round (for tests).
    pub fn queued(&self) -> usize {
        self.out.len()
    }
}

/// A simulated process.
pub trait Node {
    /// Called once per round *after* the round's deliveries, in process-id
    /// order. The node performs its protocol actions and queues sends.
    fn on_round(&mut self, round: Round, net: &mut NetCtx<'_>);

    /// Called for each frame delivered to this node at the start of a round,
    /// before [`Node::on_round`]. Frames are delivered in (sender, queue)
    /// order, deterministically.
    fn on_frame(&mut self, from: ProcessId, frame: Bytes, net: &mut NetCtx<'_>);

    /// Whether this node considers its workload complete. The simulator
    /// stops early once every non-crashed node reports `true`.
    fn is_done(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_excludes_self() {
        let mut out = Vec::new();
        let mut ctx = NetCtx::new(ProcessId(1), 4, Round(0), &mut out);
        ctx.broadcast("data", Bytes::from_static(b"x"));
        assert_eq!(ctx.queued(), 3);
        let dests: Vec<u16> = out.iter().map(|o| o.to.0).collect();
        assert_eq!(dests, vec![0, 2, 3]);
    }

    #[test]
    fn send_queues_in_order() {
        let mut out = Vec::new();
        let mut ctx = NetCtx::new(ProcessId(0), 2, Round(3), &mut out);
        assert_eq!(ctx.round(), Round(3));
        assert_eq!(ctx.me(), ProcessId(0));
        assert_eq!(ctx.n(), 2);
        ctx.send(ProcessId(1), "a", Bytes::from_static(b"1"));
        ctx.send(ProcessId(1), "b", Bytes::from_static(b"2"));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].kind, "a");
        assert_eq!(out[1].kind, "b");
    }
}
