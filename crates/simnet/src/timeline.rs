//! Offered-load timeline accounting.
//!
//! The paper's Section 6 characterizes protocols by the network load they
//! offer over time. Short experiment runs keep the full per-round series
//! (one `u64` per round — what `netload_timeline` plots); long-horizon soak
//! runs (millions of rounds) would accumulate an unbounded vector, so the
//! timeline can instead aggregate into fixed-width round windows: memory is
//! `rounds / window` instead of `rounds`, and the windowed sums are exactly
//! what the soak workload streams.

/// Per-round or window-aggregated offered-byte series.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ByteTimeline {
    /// One entry per round (the default; unbounded over the run length).
    PerRound(Vec<u64>),
    /// Aggregated sums over consecutive `window`-round spans.
    Windowed {
        /// Window width in rounds.
        window: u64,
        /// Per-window byte sums; the last entry may cover a partial window.
        sums: Vec<u64>,
        /// Rounds recorded so far.
        rounds: u64,
        /// Total bytes over the whole run.
        total: u64,
    },
}

impl Default for ByteTimeline {
    fn default() -> Self {
        ByteTimeline::PerRound(Vec::new())
    }
}

impl ByteTimeline {
    /// A timeline in per-round mode (`window = None`) or windowed mode.
    pub fn new(window: Option<u64>) -> Self {
        match window {
            None => ByteTimeline::PerRound(Vec::new()),
            Some(w) => {
                assert!(w > 0, "window must be at least one round");
                ByteTimeline::Windowed {
                    window: w,
                    sums: Vec::new(),
                    rounds: 0,
                    total: 0,
                }
            }
        }
    }

    /// Records one round's offered bytes. Called once per simulated round.
    pub fn record(&mut self, bytes: u64) {
        match self {
            ByteTimeline::PerRound(series) => series.push(bytes),
            ByteTimeline::Windowed {
                window,
                sums,
                rounds,
                total,
            } => {
                let idx = (*rounds / *window) as usize;
                if sums.len() <= idx {
                    sums.push(0);
                }
                sums[idx] += bytes;
                *rounds += 1;
                *total += bytes;
            }
        }
    }

    /// Rounds recorded so far.
    pub fn rounds(&self) -> u64 {
        match self {
            ByteTimeline::PerRound(series) => series.len() as u64,
            ByteTimeline::Windowed { rounds, .. } => *rounds,
        }
    }

    /// Total bytes over the whole run.
    pub fn total(&self) -> u64 {
        match self {
            ByteTimeline::PerRound(series) => series.iter().sum(),
            ByteTimeline::Windowed { total, .. } => *total,
        }
    }

    /// The full per-round series. Panics in windowed mode — the per-round
    /// resolution was deliberately not kept.
    pub fn per_round(&self) -> &[u64] {
        match self {
            ByteTimeline::PerRound(series) => series,
            ByteTimeline::Windowed { .. } => {
                panic!("per-round series not kept: timeline runs in windowed mode")
            }
        }
    }

    /// Window width in rounds (`None` in per-round mode).
    pub fn window(&self) -> Option<u64> {
        match self {
            ByteTimeline::PerRound(_) => None,
            ByteTimeline::Windowed { window, .. } => Some(*window),
        }
    }

    /// Per-window byte sums (per-round mode: each round is its own window).
    pub fn window_sums(&self) -> &[u64] {
        match self {
            ByteTimeline::PerRound(series) => series,
            ByteTimeline::Windowed { sums, .. } => sums,
        }
    }

    /// Mean offered bytes per round (0 before any round).
    pub fn mean_per_round(&self) -> f64 {
        let rounds = self.rounds();
        if rounds == 0 {
            return 0.0;
        }
        self.total() as f64 / rounds as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_round_keeps_every_sample() {
        let mut t = ByteTimeline::new(None);
        for b in [10, 0, 30] {
            t.record(b);
        }
        assert_eq!(t.per_round(), &[10, 0, 30]);
        assert_eq!(t.rounds(), 3);
        assert_eq!(t.total(), 40);
        assert_eq!(t.window(), None);
        assert_eq!(t.window_sums(), &[10, 0, 30]);
    }

    #[test]
    fn windowed_aggregates_and_bounds_memory() {
        let mut t = ByteTimeline::new(Some(4));
        for r in 0..10u64 {
            t.record(r);
        }
        // 0+1+2+3, 4+5+6+7, 8+9 (partial tail window).
        assert_eq!(t.window_sums(), &[6, 22, 17]);
        assert_eq!(t.rounds(), 10);
        assert_eq!(t.total(), 45);
        assert_eq!(t.window(), Some(4));
        assert!((t.mean_per_round() - 4.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "windowed mode")]
    fn per_round_accessor_panics_in_windowed_mode() {
        let mut t = ByteTimeline::new(Some(2));
        t.record(1);
        let _ = t.per_round();
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_window_panics() {
        let _ = ByteTimeline::new(Some(0));
    }
}
