#![warn(missing_docs)]

//! Deterministic round-based network simulator with general-omission fault
//! injection.
//!
//! The paper's evaluation (Section 6) measures everything in **rounds** and
//! **round-trip delays**: "communications proceed in rounds", a subrun is
//! two rounds, and "assuming the subrun as long as the round trip delay" one
//! round is half an rtd. The simulator therefore advances in discrete
//! rounds:
//!
//! 1. at the start of round `r`, messages sent during round `r−1` are
//!    delivered (subject to receive-omission and crash faults);
//! 2. every alive node then takes its round action (possibly sending new
//!    messages, subject to send-omission faults).
//!
//! This is a specialization of a discrete-event simulator to the paper's
//! synchronous-round timing model; determinism comes from a single seeded
//! ChaCha RNG that drives every fault draw in a fixed order.
//!
//! Fault injection implements the paper's **general omission failure
//! model**: fail-stop crashes (scheduled per process per round, including
//! coordinator-targeted schedules for Figure 5), i.i.d. send omissions and
//! receive omissions (the paper's "1/500" and "1/100" message-loss rates),
//! and whole-link cuts. Every frame accepted onto the wire is metered by
//! PDU-kind so Table 1's control-traffic accounting falls out of the run.

//! ```
//! use bytes::Bytes;
//! use urcgc_simnet::{FaultPlan, NetCtx, Node, SimNet, SimOptions};
//! use urcgc_types::{ProcessId, Round};
//!
//! struct Pinger;
//! impl Node for Pinger {
//!     fn on_round(&mut self, round: Round, net: &mut NetCtx<'_>) {
//!         if round == Round(0) {
//!             net.broadcast("ping", Bytes::from_static(b"hi"));
//!         }
//!     }
//!     fn on_frame(&mut self, _from: ProcessId, _frame: Bytes, _net: &mut NetCtx<'_>) {}
//! }
//!
//! let faults = FaultPlan::none().omission_rate(1.0 / 500.0);
//! let mut net = SimNet::new(vec![Pinger, Pinger, Pinger], faults, SimOptions::default());
//! net.run_rounds(2);
//! assert_eq!(net.stats().traffic.get("ping").count, 6); // 3 nodes × 2 dests
//! ```

pub mod adversary;
pub mod fault;
pub mod net;
pub mod node;
pub mod timeline;

pub use adversary::{Adversary, FrameView};
pub use fault::FaultPlan;
pub use net::{RunOutcome, SimNet, SimOptions, SimStats};
pub use node::{NetCtx, Node, Outgoing};
pub use timeline::ByteTimeline;

/// Rounds per network round-trip delay (subrun = rtd = 2 rounds).
pub const ROUNDS_PER_RTD: u64 = 2;

/// Converts a duration in rounds to rtd units.
pub fn rounds_to_rtd(rounds: u64) -> f64 {
    rounds as f64 / ROUNDS_PER_RTD as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtd_conversion() {
        assert_eq!(rounds_to_rtd(2), 1.0);
        assert_eq!(rounds_to_rtd(1), 0.5);
        assert_eq!(rounds_to_rtd(0), 0.0);
    }
}
