//! Fault injection under the general omission failure model (Section 3).
//!
//! "Processes may fail either by crashing (fail stop failure), or by
//! omitting to send or receive a subset of the messages the protocol
//! requires. This failure model also describes the loss of packets at the
//! subnetwork level and local omissions."

use urcgc_types::{ProcessId, Round};

/// A declarative fault schedule, fixed before the run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Per-process crash round: the process takes no action at or after this
    /// round (it neither sends nor receives).
    crashes: Vec<(ProcessId, Round)>,
    /// Probability that any single frame transmission is lost at the sender
    /// (send omission). The paper's "1/500" ⇒ `0.002`.
    pub send_omission_prob: f64,
    /// Probability that any single frame delivery is lost at the receiver
    /// (receive omission).
    pub recv_omission_prob: f64,
    /// Probability that a frame has one byte corrupted in flight. The
    /// decoder rejects the damage, so corruption degenerates to an
    /// omission — but it exercises the codec's robustness end to end.
    pub corrupt_prob: f64,
    /// Severed links: frames from `.0` to `.1` are dropped while the
    /// current round is inside `[.2, .3)` (directional; `.3 = Round(u64::MAX)`
    /// for permanent cuts).
    cut_links: Vec<(ProcessId, ProcessId, Round, Round)>,
    /// Extra delivery latency in rounds for frames *sent by* `.0`
    /// (straggler modeling: the synchronous-round assumption bends).
    slow_senders: Vec<(ProcessId, u64)>,
}

impl FaultPlan {
    /// The fault-free plan.
    pub fn none() -> Self {
        Self::default()
    }

    /// Schedules `p` to crash at the start of `round`.
    pub fn crash_at(mut self, p: ProcessId, round: Round) -> Self {
        self.crashes.push((p, round));
        self
    }

    /// Sets a symmetric omission rate: each frame is independently lost with
    /// probability `prob` on send *and* with probability `prob` on receive.
    /// `message_rate(1.0/500.0)` models the paper's "one omission failure
    /// each 500 messages" by splitting the loss budget over both sides.
    pub fn omission_rate(mut self, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability out of range");
        self.send_omission_prob = prob / 2.0;
        self.recv_omission_prob = prob / 2.0;
        self
    }

    /// Sets only the send-omission probability.
    pub fn send_omissions(mut self, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability out of range");
        self.send_omission_prob = prob;
        self
    }

    /// Sets only the receive-omission probability.
    pub fn recv_omissions(mut self, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability out of range");
        self.recv_omission_prob = prob;
        self
    }

    /// Sets the in-flight corruption probability (one byte mutated per
    /// affected frame).
    pub fn corruption_rate(mut self, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability out of range");
        self.corrupt_prob = prob;
        self
    }

    /// Severs the directional link `from → to` for the whole run.
    pub fn cut_link(mut self, from: ProcessId, to: ProcessId) -> Self {
        self.cut_links.push((from, to, Round(0), Round(u64::MAX)));
        self
    }

    /// Severs the directional link `from → to` while the round is in
    /// `[from_round, to_round)` — a healing network fault.
    pub fn cut_link_during(
        mut self,
        from: ProcessId,
        to: ProcessId,
        from_round: Round,
        to_round: Round,
    ) -> Self {
        assert!(from_round <= to_round, "inverted cut interval");
        self.cut_links.push((from, to, from_round, to_round));
        self
    }

    /// Partitions the group into two sides for `[from_round, to_round)`:
    /// every link crossing the partition is cut in both directions, then
    /// heals. Processes not named in `side_a` form the other side
    /// implicitly (given group cardinality `n`).
    pub fn partition_during(
        mut self,
        side_a: &[ProcessId],
        n: usize,
        from_round: Round,
        to_round: Round,
    ) -> Self {
        assert!(from_round <= to_round, "inverted partition interval");
        for i in 0..n {
            let p = ProcessId::from_index(i);
            let in_a = side_a.contains(&p);
            for j in 0..n {
                let q = ProcessId::from_index(j);
                if p != q && in_a != side_a.contains(&q) {
                    self.cut_links.push((p, q, from_round, to_round));
                }
            }
        }
        self
    }

    /// Schedules `f` *consecutive coordinator crashes*: the coordinators of
    /// subruns `first_subrun, first_subrun+1, …` each crash at the start of
    /// their decision round — after collecting requests but before
    /// broadcasting the decision. This is exactly the scenario Figure 5
    /// sweeps (`T` against `f`).
    ///
    /// Coordinators rotate over the full group, so the crashed processes are
    /// `coordinator_for(first_subrun + i, n)`. The caller must keep
    /// `f ≤ (n−1)/2` for the algorithm's resilience bound to hold.
    pub fn consecutive_coordinator_crashes(mut self, first_subrun: u64, f: u32, n: usize) -> Self {
        for i in 0..f as u64 {
            let subrun = urcgc_types::Subrun(first_subrun + i);
            let coord = ProcessId::coordinator_for(subrun, n);
            self.crashes.push((coord, subrun.decision_round()));
        }
        self
    }

    /// The round at which `p` crashes, if scheduled.
    pub fn crash_round(&self, p: ProcessId) -> Option<Round> {
        self.crashes
            .iter()
            .filter(|(q, _)| *q == p)
            .map(|&(_, r)| r)
            .min()
    }

    /// Whether `p` is crashed as of `round` (crash takes effect at the start
    /// of its scheduled round).
    pub fn is_crashed(&self, p: ProcessId, round: Round) -> bool {
        self.crash_round(p).is_some_and(|r| round >= r)
    }

    /// Makes every frame sent by `p` take `extra_rounds` additional rounds
    /// to arrive — a straggler that violates the paper's synchronous-round
    /// assumption (normally a frame sent in round `r` arrives at `r + 1`).
    pub fn slow_sender(mut self, p: ProcessId, extra_rounds: u64) -> Self {
        self.slow_senders.push((p, extra_rounds));
        self
    }

    /// Extra delivery latency for frames sent by `p`.
    pub fn sender_delay(&self, p: ProcessId) -> u64 {
        self.slow_senders
            .iter()
            .filter(|(q, _)| *q == p)
            .map(|&(_, d)| d)
            .max()
            .unwrap_or(0)
    }

    /// Whether the directional link `from → to` is cut at `round`.
    pub fn link_cut_at(&self, from: ProcessId, to: ProcessId, round: Round) -> bool {
        self.cut_links
            .iter()
            .any(|&(f, t, lo, hi)| f == from && t == to && round >= lo && round < hi)
    }

    /// Total number of scheduled crashes.
    pub fn crash_count(&self) -> usize {
        let mut ps: Vec<ProcessId> = self.crashes.iter().map(|&(p, _)| p).collect();
        ps.sort();
        ps.dedup();
        ps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_fault_free() {
        let f = FaultPlan::none();
        assert_eq!(f.send_omission_prob, 0.0);
        assert_eq!(f.recv_omission_prob, 0.0);
        assert!(!f.is_crashed(ProcessId(0), Round(100)));
        assert_eq!(f.crash_count(), 0);
    }

    #[test]
    fn crash_takes_effect_at_scheduled_round() {
        let f = FaultPlan::none().crash_at(ProcessId(1), Round(5));
        assert!(!f.is_crashed(ProcessId(1), Round(4)));
        assert!(f.is_crashed(ProcessId(1), Round(5)));
        assert!(f.is_crashed(ProcessId(1), Round(9)));
        assert!(!f.is_crashed(ProcessId(0), Round(9)));
    }

    #[test]
    fn earliest_crash_wins_when_duplicated() {
        let f = FaultPlan::none()
            .crash_at(ProcessId(1), Round(9))
            .crash_at(ProcessId(1), Round(3));
        assert_eq!(f.crash_round(ProcessId(1)), Some(Round(3)));
        assert_eq!(f.crash_count(), 1);
    }

    #[test]
    fn omission_rate_splits_across_sides() {
        let f = FaultPlan::none().omission_rate(1.0 / 500.0);
        assert!((f.send_omission_prob - 0.001).abs() < 1e-12);
        assert!((f.recv_omission_prob - 0.001).abs() < 1e-12);
    }

    #[test]
    fn coordinator_crash_schedule_targets_decision_rounds() {
        let n = 5;
        let f = FaultPlan::none().consecutive_coordinator_crashes(2, 3, n);
        // Subrun 2 → coordinator p2, decision round 5; subrun 3 → p3, round 7;
        // subrun 4 → p4, round 9.
        assert_eq!(f.crash_round(ProcessId(2)), Some(Round(5)));
        assert_eq!(f.crash_round(ProcessId(3)), Some(Round(7)));
        assert_eq!(f.crash_round(ProcessId(4)), Some(Round(9)));
        assert_eq!(f.crash_count(), 3);
    }

    #[test]
    fn link_cut_is_directional() {
        let f = FaultPlan::none().cut_link(ProcessId(0), ProcessId(1));
        assert!(f.link_cut_at(ProcessId(0), ProcessId(1), Round(5)));
        assert!(!f.link_cut_at(ProcessId(1), ProcessId(0), Round(5)));
    }

    #[test]
    fn timed_cut_heals() {
        let f = FaultPlan::none().cut_link_during(ProcessId(0), ProcessId(1), Round(2), Round(5));
        assert!(!f.link_cut_at(ProcessId(0), ProcessId(1), Round(1)));
        assert!(f.link_cut_at(ProcessId(0), ProcessId(1), Round(2)));
        assert!(f.link_cut_at(ProcessId(0), ProcessId(1), Round(4)));
        assert!(!f.link_cut_at(ProcessId(0), ProcessId(1), Round(5)));
    }

    #[test]
    fn partition_cuts_all_crossing_links_both_ways() {
        let side_a = [ProcessId(0), ProcessId(1)];
        let f = FaultPlan::none().partition_during(&side_a, 4, Round(3), Round(9));
        // Crossing links cut in both directions during the window.
        assert!(f.link_cut_at(ProcessId(0), ProcessId(2), Round(4)));
        assert!(f.link_cut_at(ProcessId(2), ProcessId(0), Round(4)));
        assert!(f.link_cut_at(ProcessId(1), ProcessId(3), Round(4)));
        // Intra-side links stay up.
        assert!(!f.link_cut_at(ProcessId(0), ProcessId(1), Round(4)));
        assert!(!f.link_cut_at(ProcessId(2), ProcessId(3), Round(4)));
        // Healed after the window.
        assert!(!f.link_cut_at(ProcessId(0), ProcessId(2), Round(9)));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        let _ = FaultPlan::none().omission_rate(1.5);
    }
}
