//! The simulator engine.
//!
//! # Calendar-queue scheduler
//!
//! Frames in flight live in a round-bucketed calendar queue
//! (`VecDeque<Vec<InFlight>>` keyed by `arrives - round`), the classic
//! discrete-event-scheduler structure specialized to the paper's integer
//! round clock: each round pops exactly the bucket of frames arriving in it,
//! so a frame delayed `d` rounds by `slow_sender` is touched once on arrival
//! instead of being re-examined `d` times by a full wire rescan.
//!
//! The delivery order and RNG draw sequence are bit-for-bit identical to
//! the flat-wire engine this replaced (retired after three PRs of
//! differential testing found no divergence): the flat wire was ordered by
//! (send round, within-round enqueue order) and frames drew no randomness
//! while parked, so bucket-fill order — older send rounds first, enqueue
//! order within a round — reproduces the rescan's arrival order exactly,
//! and every fault draw happens at the same point in the ChaCha stream.

use std::collections::VecDeque;

use bytes::Bytes;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use urcgc_metrics::TrafficMeter;
use urcgc_types::{ProcessId, Round};

use crate::adversary::Adversary;
use crate::fault::FaultPlan;
use crate::node::{NetCtx, Node, Outgoing};
use crate::timeline::ByteTimeline;

/// Engine parameters.
#[derive(Clone, Debug)]
pub struct SimOptions {
    /// Hard stop after this many rounds (a run that hits it is reported as
    /// [`RunOutcome::RoundLimit`]).
    pub max_rounds: u64,
    /// RNG seed; identical seeds reproduce runs bit-for-bit.
    pub seed: u64,
    /// Aggregate [`SimStats::bytes_per_round`] into windows of this many
    /// rounds instead of keeping the full per-round series. `None` (the
    /// default) keeps one entry per round; soak runs over millions of rounds
    /// set a window so the timeline stays bounded.
    pub bytes_window: Option<u64>,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            max_rounds: 10_000,
            seed: 0xC0FFEE,
            bytes_window: None,
        }
    }
}

/// Why the run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every non-crashed node reported [`Node::is_done`].
    AllDone {
        /// The first round at which the condition held.
        at_round: u64,
    },
    /// The round limit was reached first.
    RoundLimit,
}

/// Counters the engine maintains across a run.
#[derive(Clone, Debug, Default)]
pub struct SimStats {
    /// Frames accepted onto the wire, by category.
    pub traffic: TrafficMeter,
    /// Frames actually handed to a node.
    pub delivered: u64,
    /// Frames lost to send omission.
    pub send_omitted: u64,
    /// Frames lost to receive omission.
    pub recv_omitted: u64,
    /// Frames lost to link cuts.
    pub link_dropped: u64,
    /// Frames addressed to a crashed process.
    pub to_crashed: u64,
    /// Frames discarded because the *sender* crashed before the frame left
    /// its queue (crash at the round boundary).
    pub from_crashed: u64,
    /// Frames corrupted in flight (delivered with one byte mutated).
    pub corrupted: u64,
    /// Frames addressed outside the group (dropped at the edge).
    pub misaddressed: u64,
    /// Arriving frames dropped by an installed [`Adversary`] (targeted
    /// omissions; always 0 without an adversary).
    pub adversary_dropped: u64,
    /// Bytes of frames the nodes actually encoded (each unique frame
    /// counted once, at its first enqueue) — the real allocation/copy cost
    /// of the send path.
    pub encoded_bytes: u64,
    /// Bytes offered to the wire by refcount-sharing an already-encoded
    /// frame (fan-out copies beyond the first). With encode-once fan-out,
    /// `encoded_bytes + shared_bytes + relayed_bytes` equals the total
    /// offered bytes; the ratio is the zero-copy win.
    pub shared_bytes: u64,
    /// Bytes offered as overlay *forwards* — frames received from another
    /// process and re-sent unchanged (refcount clones of the arrived
    /// allocation, no re-encoding). Third leg of the offered-byte
    /// partition; always 0 on the direct n-unicast path.
    pub relayed_bytes: u64,
    /// Frames each process originated onto the wire (one slot per
    /// process; offered, like [`SimStats::traffic`]). On the overlay this
    /// must stay O(degree · broadcasts), not O(n · broadcasts).
    pub frames_sent: Vec<u64>,
    /// Frames each process forwarded on behalf of another origin
    /// (overlay relays; 0 everywhere on the direct path).
    pub frames_relayed: Vec<u64>,
    /// Offered wire bytes over time (per round by default, or aggregated
    /// into fixed windows via [`SimOptions::bytes_window`]) — the network
    /// load timeline the paper's Section 6 characterizes.
    pub bytes_per_round: ByteTimeline,
}

pub(crate) struct InFlight {
    pub(crate) from: ProcessId,
    pub(crate) to: ProcessId,
    pub(crate) frame: Bytes,
    /// Round at which this frame becomes deliverable.
    pub(crate) arrives: Round,
}

/// Recycled-bucket pool cap: steady state pops and refills one bucket per
/// round, so a handful of spares suffices; the cap keeps an idle
/// million-round run from hoarding empty vectors.
const SPARE_BUCKET_CAP: usize = 32;

/// A group of nodes wired through the simulated network.
pub struct SimNet<N: Node> {
    nodes: Vec<N>,
    faults: FaultPlan,
    opts: SimOptions,
    rng: ChaCha8Rng,
    stats: SimStats,
    round: Round,
    /// Calendar queue: at the top of [`SimNet::step`] for round `r`,
    /// `buckets[j]` holds the frames arriving at round `r + j`; bucket 0 is
    /// popped first, after which `buckets[j]` holds arrivals at `r + 1 + j`
    /// (the indexing [`SimNet::filter_sends`] pushes under).
    buckets: VecDeque<Vec<InFlight>>,
    /// Emptied buckets kept for reuse so steady-state rounds allocate
    /// nothing.
    spare_buckets: Vec<Vec<InFlight>>,
    /// One scratch output queue reused across every node invocation (the
    /// old engine allocated a fresh `Vec` per delivery and per round
    /// action).
    scratch_out: Vec<Outgoing>,
    /// Bytes offered during the round currently executing.
    round_bytes: u64,
    /// Cached `is_done()` per node, refreshed at each node's phase-2
    /// invocation (node state only changes inside invocations, and every
    /// non-crashed node is invoked every round).
    done: Vec<bool>,
    /// Nodes counted as crashed so far (kept in lockstep with
    /// `crash_cursor`).
    crashed: Vec<bool>,
    /// Count of nodes neither done nor crashed: `all_done()` is this
    /// reaching zero, replacing the old every-round n-node scan.
    undone: usize,
    /// Each process's first crash round, sorted; consumed by `crash_cursor`
    /// as the clock passes each event.
    crash_events: Vec<(Round, usize)>,
    crash_cursor: usize,
    /// Optional schedule adversary (see [`crate::adversary`]); `None` keeps
    /// the engine's deterministic order untouched.
    adversary: Option<Box<dyn Adversary>>,
}

impl<N: Node> SimNet<N> {
    /// Builds a network over `nodes` (process `i` is `nodes[i]`).
    pub fn new(nodes: Vec<N>, faults: FaultPlan, opts: SimOptions) -> Self {
        let rng = ChaCha8Rng::seed_from_u64(opts.seed);
        let done: Vec<bool> = nodes.iter().map(|n| n.is_done()).collect();
        let undone = done.iter().filter(|d| !**d).count();
        let mut crash_events: Vec<(Round, usize)> = (0..nodes.len())
            .filter_map(|i| faults.crash_round(ProcessId::from_index(i)).map(|r| (r, i)))
            .collect();
        crash_events.sort_unstable();
        let stats = SimStats {
            bytes_per_round: ByteTimeline::new(opts.bytes_window),
            frames_sent: vec![0; nodes.len()],
            frames_relayed: vec![0; nodes.len()],
            ..SimStats::default()
        };
        let mut net = SimNet {
            crashed: vec![false; nodes.len()],
            nodes,
            faults,
            opts,
            rng,
            stats,
            round: Round(0),
            buckets: VecDeque::new(),
            spare_buckets: Vec::new(),
            scratch_out: Vec::new(),
            round_bytes: 0,
            done,
            undone,
            crash_events,
            crash_cursor: 0,
            adversary: None,
        };
        net.apply_crashes_up_to(Round(0));
        net
    }

    /// Group cardinality.
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// The round about to be executed (or just executed, after a step).
    pub fn round(&self) -> Round {
        self.round
    }

    /// Engine counters.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Immutable node access for post-run inspection.
    pub fn node(&self, p: ProcessId) -> &N {
        &self.nodes[p.index()]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// Whether `p` is crashed as of the current round.
    pub fn is_crashed(&self, p: ProcessId) -> bool {
        self.faults.is_crashed(p, self.round)
    }

    /// Installs a schedule adversary. Without one the delivery order is the
    /// engine's deterministic default.
    pub fn set_adversary(&mut self, adv: Box<dyn Adversary>) {
        self.adversary = Some(adv);
    }

    /// Advances the crash-event cursor through every event at or before
    /// `round`, removing newly crashed nodes from the undone count.
    fn apply_crashes_up_to(&mut self, round: Round) {
        while let Some(&(at, i)) = self.crash_events.get(self.crash_cursor) {
            if at > round {
                break;
            }
            self.crash_cursor += 1;
            self.crashed[i] = true;
            if !self.done[i] {
                self.undone -= 1;
            }
        }
    }

    /// Refreshes node `i`'s cached done flag after an invocation.
    fn note_done(&mut self, i: usize) {
        debug_assert!(!self.crashed[i], "crashed nodes are never invoked");
        let now = self.nodes[i].is_done();
        if now != self.done[i] {
            self.done[i] = now;
            if now {
                self.undone -= 1;
            } else {
                self.undone += 1;
            }
        }
    }

    /// Executes one full round: deliveries, then node actions, then fault
    /// filtering of the new sends.
    pub fn step(&mut self) {
        let round = self.round;
        let n = self.nodes.len();
        let mut out = std::mem::take(&mut self.scratch_out);
        debug_assert!(out.is_empty());

        // Phase 1: deliveries of wire traffic whose arrival round has come,
        // in deterministic (send round, send order) order — exactly one
        // calendar bucket.
        let mut arriving = self.buckets.pop_front().unwrap_or_default();
        if let Some(adv) = self.adversary.as_deref_mut() {
            crate::adversary::perturb(adv, round, &mut arriving, &mut self.stats.adversary_dropped);
        }
        for msg in arriving.drain(..) {
            debug_assert_eq!(msg.arrives, round, "bucket indexing drifted");
            if self.faults.is_crashed(msg.to, round) {
                self.stats.to_crashed += 1;
                continue;
            }
            if self.faults.recv_omission_prob > 0.0
                && self.rng.gen_bool(self.faults.recv_omission_prob)
            {
                self.stats.recv_omitted += 1;
                continue;
            }
            {
                let mut ctx = NetCtx::new(msg.to, n, round, &mut out);
                self.nodes[msg.to.index()].on_frame(msg.from, msg.frame, &mut ctx);
                let (encoded, shared, relayed) = ctx.share_gauge();
                self.stats.encoded_bytes += encoded;
                self.stats.shared_bytes += shared;
                self.stats.relayed_bytes += relayed;
            }
            self.stats.delivered += 1;
            self.filter_sends(msg.to, round, &mut out);
        }
        if arriving.capacity() > 0 && self.spare_buckets.len() < SPARE_BUCKET_CAP {
            self.spare_buckets.push(arriving);
        }

        // Phase 2: round actions for every alive node.
        for i in 0..n {
            let me = ProcessId::from_index(i);
            if self.faults.is_crashed(me, round) {
                continue;
            }
            {
                let mut ctx = NetCtx::new(me, n, round, &mut out);
                self.nodes[i].on_round(round, &mut ctx);
                let (encoded, shared, relayed) = ctx.share_gauge();
                self.stats.encoded_bytes += encoded;
                self.stats.shared_bytes += shared;
                self.stats.relayed_bytes += relayed;
            }
            self.filter_sends(me, round, &mut out);
            self.note_done(i);
        }

        self.scratch_out = out;
        self.stats.bytes_per_round.record(self.round_bytes);
        self.round_bytes = 0;
        self.round = round.next();
        self.apply_crashes_up_to(self.round);
    }

    /// Applies send-side faults and traffic accounting to a node's queued
    /// output, draining `out` into the arrival bucket. Only callable from
    /// inside [`SimNet::step`] (after the round's own bucket is popped, so
    /// bucket `j` holds arrivals at `round + 1 + j`).
    fn filter_sends(&mut self, from: ProcessId, round: Round, out: &mut Vec<Outgoing>) {
        if out.is_empty() {
            return;
        }
        let n = self.nodes.len();
        // One sender, one round: the crash check and delivery delay are
        // constant across the whole batch.
        let from_crashed = self.faults.is_crashed(from, round);
        let delay = self.faults.sender_delay(from);
        let arrives = Round(round.0 + 1 + delay);
        let slot = delay as usize;
        while self.buckets.len() <= slot {
            let spare = self.spare_buckets.pop().unwrap_or_default();
            self.buckets.push_back(spare);
        }
        let mut bucket = std::mem::take(&mut self.buckets[slot]);
        for o in out.drain(..) {
            if o.to.index() >= n {
                // A node addressed a nonexistent process (e.g. acting on a
                // corrupted PDU): the network has nowhere to carry it.
                self.stats.misaddressed += 1;
                continue;
            }
            if from_crashed {
                // Cannot happen for phase-2 sends (crashed nodes don't act)
                // but a node crashed *this* round may have queued frames in
                // phase 1 before the crash round check — drop them.
                self.stats.from_crashed += 1;
                continue;
            }
            // Accounting happens for every attempted transmission: the
            // paper's network-load figures count offered control traffic.
            self.stats.traffic.record(o.kind, o.frame.len());
            self.round_bytes += o.frame.len() as u64;
            if o.relayed {
                self.stats.frames_relayed[from.index()] += 1;
            } else {
                self.stats.frames_sent[from.index()] += 1;
            }
            if self.faults.link_cut_at(from, o.to, round) {
                self.stats.link_dropped += 1;
                continue;
            }
            if self.faults.send_omission_prob > 0.0
                && self.rng.gen_bool(self.faults.send_omission_prob)
            {
                self.stats.send_omitted += 1;
                continue;
            }
            let frame = if self.faults.corrupt_prob > 0.0
                && !o.frame.is_empty()
                && self.rng.gen_bool(self.faults.corrupt_prob)
            {
                // Mutate one byte in flight (the smoltcp-style
                // corrupt-chance fault).
                self.stats.corrupted += 1;
                let mut raw = o.frame.to_vec();
                let idx = self.rng.gen_range(0..raw.len());
                raw[idx] ^= 1 << self.rng.gen_range(0..8);
                Bytes::from(raw)
            } else {
                o.frame
            };
            bucket.push(InFlight {
                from,
                to: o.to,
                frame,
                arrives,
            });
        }
        self.buckets[slot] = bucket;
    }

    /// Whether every non-crashed node reports done. O(1): maintained from
    /// `is_done()` transitions and the crash schedule rather than a scan.
    pub fn all_done(&self) -> bool {
        let fast = self.undone == 0;
        debug_assert_eq!(
            fast,
            self.nodes.iter().enumerate().all(|(i, node)| {
                self.faults.is_crashed(ProcessId::from_index(i), self.round) || node.is_done()
            }),
            "incremental done count diverged from full scan"
        );
        fast
    }

    /// Runs until every alive node is done or the round limit is hit.
    pub fn run(&mut self) -> RunOutcome {
        while self.round.0 < self.opts.max_rounds {
            if self.all_done() {
                return RunOutcome::AllDone {
                    at_round: self.round.0,
                };
            }
            self.step();
        }
        if self.all_done() {
            RunOutcome::AllDone {
                at_round: self.round.0,
            }
        } else {
            RunOutcome::RoundLimit
        }
    }

    /// Runs exactly `rounds` more rounds (without the done check).
    pub fn run_rounds(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Consumes the network, returning the nodes and stats for inspection.
    pub fn into_parts(self) -> (Vec<N>, SimStats) {
        (self.nodes, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A node that broadcasts one frame in round 0 and counts receptions.
    struct Chatter {
        sent: bool,
        received: Vec<(ProcessId, Bytes)>,
        echo: bool,
    }

    impl Chatter {
        fn new(echo: bool) -> Self {
            Chatter {
                sent: false,
                received: Vec::new(),
                echo,
            }
        }
    }

    impl Node for Chatter {
        fn on_round(&mut self, round: Round, net: &mut NetCtx<'_>) {
            if round == Round(0) && !self.sent {
                self.sent = true;
                net.broadcast("data", Bytes::from_static(b"hello"));
            }
        }

        fn on_frame(&mut self, from: ProcessId, frame: Bytes, net: &mut NetCtx<'_>) {
            self.received.push((from, frame));
            if self.echo {
                net.send(from, "echo", Bytes::from_static(b"ack"));
            }
        }

        fn is_done(&self) -> bool {
            self.sent && !self.received.is_empty()
        }
    }

    fn build(n: usize, faults: FaultPlan, echo: bool) -> SimNet<Chatter> {
        let nodes = (0..n).map(|_| Chatter::new(echo)).collect();
        SimNet::new(nodes, faults, SimOptions::default())
    }

    #[test]
    fn broadcast_arrives_next_round() {
        let mut net = build(3, FaultPlan::none(), false);
        net.step(); // round 0: everyone broadcasts
        assert_eq!(net.stats().delivered, 0, "nothing delivered in round 0");
        net.step(); // round 1: deliveries
        assert_eq!(net.stats().delivered, 6, "each of 3 nodes gets 2 frames");
        for i in 0..3 {
            assert_eq!(net.node(ProcessId(i)).received.len(), 2);
        }
    }

    #[test]
    fn echo_replies_flow_one_round_later() {
        let mut net = build(2, FaultPlan::none(), true);
        net.step(); // r0: both broadcast
        net.step(); // r1: both deliver + queue echoes
        net.step(); // r2: echoes delivered
        let got: Vec<&str> = net
            .node(ProcessId(0))
            .received
            .iter()
            .map(|(_, f)| std::str::from_utf8(f).unwrap())
            .collect();
        assert_eq!(got, vec!["hello", "ack"]);
    }

    #[test]
    fn traffic_is_metered_by_kind() {
        let mut net = build(3, FaultPlan::none(), false);
        net.run_rounds(2);
        let t = net.stats().traffic.get("data");
        assert_eq!(t.count, 6);
        assert_eq!(t.bytes, 30);
    }

    #[test]
    fn crashed_node_neither_sends_nor_receives() {
        let faults = FaultPlan::none().crash_at(ProcessId(0), Round(0));
        let mut net = build(3, faults, false);
        net.run_rounds(3);
        // p0 never broadcast; p1/p2 each got only one frame (from each other).
        assert_eq!(net.node(ProcessId(1)).received.len(), 1);
        assert_eq!(net.node(ProcessId(2)).received.len(), 1);
        assert!(net.node(ProcessId(0)).received.is_empty());
        assert_eq!(net.stats().traffic.get("data").count, 4);
    }

    #[test]
    fn frames_to_crashed_are_counted() {
        let faults = FaultPlan::none().crash_at(ProcessId(1), Round(1));
        let mut net = build(2, faults, false);
        net.run_rounds(2);
        assert_eq!(net.stats().to_crashed, 1, "p0's frame hit a corpse");
        assert_eq!(net.node(ProcessId(0)).received.len(), 1, "p1 sent in r0");
    }

    #[test]
    fn link_cut_drops_directionally() {
        let faults = FaultPlan::none().cut_link(ProcessId(0), ProcessId(1));
        let mut net = build(2, faults, false);
        net.run_rounds(2);
        assert!(net.node(ProcessId(1)).received.is_empty());
        assert_eq!(net.node(ProcessId(0)).received.len(), 1);
        assert_eq!(net.stats().link_dropped, 1);
    }

    #[test]
    fn certain_send_omission_loses_everything() {
        let faults = FaultPlan::none().send_omissions(1.0);
        let mut net = build(2, faults, false);
        net.run_rounds(3);
        assert_eq!(net.stats().delivered, 0);
        assert_eq!(net.stats().send_omitted, 2);
        // Offered traffic is still accounted (the frames were attempted).
        assert_eq!(net.stats().traffic.get("data").count, 2);
    }

    #[test]
    fn certain_recv_omission_loses_everything() {
        let faults = FaultPlan::none().recv_omissions(1.0);
        let mut net = build(2, faults, false);
        net.run_rounds(3);
        assert_eq!(net.stats().delivered, 0);
        assert_eq!(net.stats().recv_omitted, 2);
    }

    #[test]
    fn identical_seeds_reproduce_runs() {
        let run = |seed: u64| {
            let faults = FaultPlan::none().omission_rate(0.3);
            let nodes = (0..4).map(|_| Chatter::new(true)).collect();
            let mut net = SimNet::new(
                nodes,
                faults,
                SimOptions {
                    seed,
                    ..Default::default()
                },
            );
            net.run_rounds(6);
            (
                net.stats().delivered,
                net.stats().send_omitted,
                net.stats().recv_omitted,
            )
        };
        assert_eq!(run(42), run(42));
        // And different seeds (very likely) diverge — not asserted to avoid
        // a flaky test, but the counters must at least be internally
        // consistent.
        let (d, s, r) = run(42);
        assert!(d + s + r > 0);
    }

    #[test]
    fn run_stops_when_all_done() {
        let mut net = build(2, FaultPlan::none(), false);
        let outcome = net.run();
        assert_eq!(outcome, RunOutcome::AllDone { at_round: 2 });
    }

    #[test]
    fn run_respects_round_limit() {
        let nodes = vec![Chatter::new(false)]; // alone: never receives
        let mut net = SimNet::new(
            nodes,
            FaultPlan::none(),
            SimOptions {
                max_rounds: 5,
                ..Default::default()
            },
        );
        assert_eq!(net.run(), RunOutcome::RoundLimit);
        assert_eq!(net.round(), Round(5));
    }

    #[test]
    fn crashed_nodes_do_not_block_all_done() {
        let faults = FaultPlan::none().crash_at(ProcessId(0), Round(0));
        let nodes = (0..3).map(|_| Chatter::new(false)).collect();
        let mut net = SimNet::new(nodes, faults, SimOptions::default());
        let outcome = net.run();
        assert!(matches!(outcome, RunOutcome::AllDone { .. }));
    }

    #[test]
    fn all_done_tracks_mid_run_crashes() {
        // p0 crashes at round 2, after which the others are already done;
        // the incremental count must notice the crash event removing p0.
        struct Never;
        impl Node for Never {
            fn on_round(&mut self, _round: Round, _net: &mut NetCtx<'_>) {}
            fn on_frame(&mut self, _f: ProcessId, _x: Bytes, _n: &mut NetCtx<'_>) {}
        }
        let faults = FaultPlan::none().crash_at(ProcessId(0), Round(2));
        let mut net = SimNet::new(vec![Never], faults, SimOptions::default());
        assert!(!net.all_done(), "alive and not done");
        net.run_rounds(2);
        assert!(net.all_done(), "crashed nodes don't count");
    }
}

#[cfg(test)]
mod load_tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::node::{NetCtx, Node};
    use urcgc_types::{ProcessId, Round};

    struct Talker;
    impl Node for Talker {
        fn on_round(&mut self, _round: Round, net: &mut NetCtx<'_>) {
            net.broadcast("data", Bytes::from_static(b"12345678"));
        }
        fn on_frame(&mut self, _f: ProcessId, _x: Bytes, _n: &mut NetCtx<'_>) {}
    }

    #[test]
    fn bytes_per_round_records_offered_load() {
        let mut net = SimNet::new(
            vec![Talker, Talker, Talker],
            FaultPlan::none(),
            SimOptions::default(),
        );
        net.run_rounds(4);
        let series = net.stats().bytes_per_round.per_round();
        assert_eq!(series.len(), 4);
        // 3 nodes × 2 dests × 8 bytes per round.
        assert!(series.iter().all(|&b| b == 48), "{series:?}");
    }

    #[test]
    fn share_gauge_splits_offered_bytes_into_encoded_and_shared() {
        let mut net = SimNet::new(
            vec![Talker, Talker, Talker],
            FaultPlan::none(),
            SimOptions::default(),
        );
        net.run_rounds(4);
        // Each broadcast encodes its 8 bytes once and refcount-shares the
        // second of its 2 destination copies.
        assert_eq!(net.stats().encoded_bytes, 3 * 4 * 8);
        assert_eq!(net.stats().shared_bytes, 3 * 4 * 8);
        assert_eq!(
            net.stats().encoded_bytes + net.stats().shared_bytes + net.stats().relayed_bytes,
            net.stats().bytes_per_round.total(),
            "gauges must partition the offered load"
        );
        assert_eq!(net.stats().relayed_bytes, 0, "direct path never relays");
        assert!(net.stats().frames_relayed.iter().all(|&f| f == 0));
    }

    /// p0 sends one frame to p1 each round; p1 forwards every arrival to
    /// p2 via the relay path.
    struct HopSender;
    struct HopRelay;
    struct HopSink;
    impl Node for HopSender {
        fn on_round(&mut self, _round: Round, net: &mut NetCtx<'_>) {
            net.send(ProcessId(1), "data", Bytes::from_static(b"12345678"));
        }
        fn on_frame(&mut self, _f: ProcessId, _x: Bytes, _n: &mut NetCtx<'_>) {}
    }
    impl Node for HopRelay {
        fn on_round(&mut self, _round: Round, _net: &mut NetCtx<'_>) {}
        fn on_frame(&mut self, _f: ProcessId, frame: Bytes, net: &mut NetCtx<'_>) {
            net.send_relayed(ProcessId(2), "relay", frame);
        }
    }
    impl Node for HopSink {
        fn on_round(&mut self, _round: Round, _net: &mut NetCtx<'_>) {}
        fn on_frame(&mut self, _f: ProcessId, _x: Bytes, _n: &mut NetCtx<'_>) {}
    }

    #[test]
    fn relayed_sends_split_out_per_process_and_by_bytes() {
        enum Hop {
            Sender(HopSender),
            Relay(HopRelay),
            Sink(HopSink),
        }
        impl Node for Hop {
            fn on_round(&mut self, round: Round, net: &mut NetCtx<'_>) {
                match self {
                    Hop::Sender(x) => x.on_round(round, net),
                    Hop::Relay(x) => x.on_round(round, net),
                    Hop::Sink(x) => x.on_round(round, net),
                }
            }
            fn on_frame(&mut self, from: ProcessId, frame: Bytes, net: &mut NetCtx<'_>) {
                match self {
                    Hop::Sender(x) => x.on_frame(from, frame, net),
                    Hop::Relay(x) => x.on_frame(from, frame, net),
                    Hop::Sink(x) => x.on_frame(from, frame, net),
                }
            }
        }
        let nodes = vec![
            Hop::Sender(HopSender),
            Hop::Relay(HopRelay),
            Hop::Sink(HopSink),
        ];
        let mut net = SimNet::new(nodes, FaultPlan::none(), SimOptions::default());
        net.run_rounds(4);
        // p0 originated 4 frames; p1 forwarded the 3 that had arrived by
        // round 3 (one hop of latency); p2 sent nothing.
        assert_eq!(net.stats().frames_sent, vec![4, 0, 0]);
        assert_eq!(net.stats().frames_relayed, vec![0, 3, 0]);
        assert_eq!(net.stats().encoded_bytes, 4 * 8);
        assert_eq!(net.stats().relayed_bytes, 3 * 8);
        assert_eq!(
            net.stats().encoded_bytes + net.stats().shared_bytes + net.stats().relayed_bytes,
            net.stats().bytes_per_round.total(),
            "three-way partition tiles the offered load"
        );
    }

    #[test]
    fn windowed_timeline_matches_per_round_totals() {
        let mut net = SimNet::new(
            vec![Talker, Talker, Talker],
            FaultPlan::none(),
            SimOptions {
                bytes_window: Some(3),
                ..Default::default()
            },
        );
        net.run_rounds(7);
        let timeline = &net.stats().bytes_per_round;
        assert_eq!(timeline.window(), Some(3));
        assert_eq!(timeline.rounds(), 7);
        // 48 bytes per round, aggregated 3-3-1.
        assert_eq!(timeline.window_sums(), &[144, 144, 48]);
        assert_eq!(timeline.total(), 7 * 48);
    }
}

#[cfg(test)]
mod corruption_tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::node::{NetCtx, Node};
    use urcgc_types::{ProcessId, Round};

    struct Echo {
        received: Vec<Bytes>,
    }
    impl Node for Echo {
        fn on_round(&mut self, round: Round, net: &mut NetCtx<'_>) {
            if round == Round(0) {
                net.broadcast("data", Bytes::from_static(b"AAAAAAAA"));
            }
        }
        fn on_frame(&mut self, _f: ProcessId, frame: Bytes, _n: &mut NetCtx<'_>) {
            self.received.push(frame);
        }
    }

    #[test]
    fn certain_corruption_mutates_exactly_one_bit() {
        let faults = FaultPlan::none().corruption_rate(1.0);
        let nodes = vec![Echo { received: vec![] }, Echo { received: vec![] }];
        let mut net = SimNet::new(nodes, faults, SimOptions::default());
        net.run_rounds(2);
        assert_eq!(net.stats().corrupted, 2);
        for node in net.nodes() {
            assert_eq!(node.received.len(), 1);
            let frame = &node.received[0];
            assert_eq!(frame.len(), 8, "length preserved");
            let diff: u32 = frame
                .iter()
                .zip(b"AAAAAAAA")
                .map(|(a, b)| (a ^ b).count_ones())
                .sum();
            assert_eq!(diff, 1, "exactly one bit flipped");
        }
    }
}

#[cfg(test)]
mod straggler_tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::node::{NetCtx, Node};
    use urcgc_types::{ProcessId, Round};

    struct Once {
        sent: bool,
        arrivals: Vec<(Round, ProcessId)>,
    }
    impl Node for Once {
        fn on_round(&mut self, round: Round, net: &mut NetCtx<'_>) {
            if round == Round(0) && !self.sent {
                self.sent = true;
                net.broadcast("data", Bytes::from_static(b"x"));
            }
        }
        fn on_frame(&mut self, from: ProcessId, _frame: Bytes, net: &mut NetCtx<'_>) {
            self.arrivals.push((net.round(), from));
        }
    }

    #[test]
    fn slow_sender_delays_delivery_by_extra_rounds() {
        let faults = FaultPlan::none().slow_sender(ProcessId(0), 3);
        let nodes = (0..3)
            .map(|_| Once {
                sent: false,
                arrivals: vec![],
            })
            .collect();
        let mut net = SimNet::new(nodes, faults, SimOptions::default());
        net.run_rounds(6);
        // p1's frame from p0 arrives at round 4 (1 + 3 extra); frames from
        // p2 arrive at round 1 as usual.
        let p1 = &net.nodes()[1];
        let from0 = p1
            .arrivals
            .iter()
            .find(|(_, f)| *f == ProcessId(0))
            .unwrap();
        let from2 = p1
            .arrivals
            .iter()
            .find(|(_, f)| *f == ProcessId(2))
            .unwrap();
        assert_eq!(from0.0, Round(4));
        assert_eq!(from2.0, Round(1));
    }
}
