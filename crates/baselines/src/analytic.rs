//! Published analytic cost models (Table 1 and Figure 5 of the paper).
//!
//! The paper compares urcgc's failure-path costs against CBCAST using
//! closed-form models rather than an ISIS deployment; this module encodes
//! those formulas verbatim so the experiment binaries can print the paper's
//! rows next to our measured values.
//!
//! Symbols: `n` group cardinality, `K` the failure-detection attempt bound,
//! `f` the number of consecutive coordinator crashes, `l` the data size.

/// urcgc's cost model (Section 6 and Table 1).
#[derive(Clone, Copy, Debug)]
pub struct UrcgcCost {
    /// Group cardinality.
    pub n: usize,
    /// Failure-detection bound `K`.
    pub k: u32,
}

impl UrcgcCost {
    /// Control messages per subrun under reliable conditions: `2(n−1)` —
    /// `n−1` requests to the coordinator plus `n−1` decision copies.
    pub fn control_msgs_reliable(&self) -> u64 {
        2 * (self.n as u64 - 1)
    }

    /// Control messages to ride out `f` consecutive coordinator crashes:
    /// `2(2K + f)(n−1)` — the same per-subrun traffic sustained for the
    /// `2K + f` subruns the agreement needs.
    pub fn control_msgs_crash(&self, f: u32) -> u64 {
        2 * (2 * self.k as u64 + f as u64) * (self.n as u64 - 1)
    }

    /// Control message size in bytes: the paper reports `n(36 + l/4)`-ish
    /// linear growth; our wire codec gives `header + 32n` for decisions
    /// (measured, see `urcgc_types::wire`). This returns the paper's model.
    pub fn control_size_paper(&self, l: usize) -> u64 {
        (self.n as u64) * (36 + l as u64 / 4)
    }

    /// Time (in rtd = subruns) to decide on new group composition and
    /// message stability after `f` consecutive coordinator crashes:
    /// `T = 2K + f`. Message processing continues throughout.
    pub fn recovery_time_rtd(&self, f: u32) -> u64 {
        2 * self.k as u64 + f as u64
    }

    /// Worst-case history population while the agreement is pending:
    /// `2(2K + f)·n` (Section 6).
    pub fn history_bound(&self, f: u32) -> u64 {
        2 * (2 * self.k as u64 + f as u64) * self.n as u64
    }
}

/// CBCAST's cost model as reported in the paper (Table 1, Figure 5).
#[derive(Clone, Copy, Debug)]
pub struct CbcastCost {
    /// Group cardinality.
    pub n: usize,
    /// ISIS failure-detection attempt bound `K`.
    pub k: u32,
}

impl CbcastCost {
    /// Control messages under reliable conditions: `n + 1` (piggybacked
    /// acknowledgements plus an occasional stability message).
    pub fn control_msgs_reliable(&self) -> u64 {
        self.n as u64 + 1
    }

    /// Control message size under reliable conditions: `4(n+1)` bytes (the
    /// compressed vector timestamp).
    pub fn control_size_reliable(&self) -> u64 {
        4 * (self.n as u64 + 1)
    }

    /// Control messages to handle `f` coordinator-equivalent crashes:
    /// `K((f+1)(2n−3) + 1)` — the flush protocol restarted on every
    /// further failure, with `K` communication attempts per suspect.
    pub fn control_msgs_crash(&self, f: u32) -> u64 {
        self.k as u64 * ((f as u64 + 1) * (2 * self.n as u64 - 3) + 1)
    }

    /// Flush message size: `4(n−1)` bytes.
    pub fn flush_size(&self) -> u64 {
        4 * (self.n as u64 - 1)
    }

    /// Time (in rtd) for the view-change/flush protocol after `f`
    /// consecutive failures: `K(5f + 6)`. Message processing is *suspended*
    /// for the whole interval.
    pub fn recovery_time_rtd(&self, f: u32) -> u64 {
        self.k as u64 * (5 * f as u64 + 6)
    }
}

/// Psync's qualitative cost notes (Section 6): the `mask_out` operation is
/// re-run from scratch on every failure, and its flow control *deletes*
/// waiting messages past a bound, converting congestion into extra omission
/// failures.
#[derive(Clone, Copy, Debug)]
pub struct PsyncCost {
    /// Group cardinality.
    pub n: usize,
}

impl PsyncCost {
    /// Each `mask_out` run involves an all-to-all exchange: `n(n−1)`
    /// messages (the paper gives no closed form; this is the standard
    /// context-graph flush bound used for qualitative comparison).
    pub fn mask_out_msgs(&self) -> u64 {
        (self.n as u64) * (self.n as u64 - 1)
    }

    /// `mask_out` is restarted for every additional failure.
    pub fn mask_out_msgs_for(&self, failures: u32) -> u64 {
        self.mask_out_msgs() * failures as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn urcgc_reliable_traffic_is_2n_minus_2() {
        let c = UrcgcCost { n: 15, k: 3 };
        assert_eq!(c.control_msgs_reliable(), 28);
    }

    #[test]
    fn urcgc_crash_traffic_scales_with_detection_window() {
        let c = UrcgcCost { n: 15, k: 3 };
        // 2(2·3 + 2)(14) = 224
        assert_eq!(c.control_msgs_crash(2), 224);
    }

    #[test]
    fn urcgc_recovery_time_is_2k_plus_f() {
        let c = UrcgcCost { n: 40, k: 3 };
        assert_eq!(c.recovery_time_rtd(0), 6);
        assert_eq!(c.recovery_time_rtd(4), 10);
    }

    #[test]
    fn urcgc_history_bound_matches_section_6() {
        let c = UrcgcCost { n: 40, k: 2 };
        assert_eq!(c.history_bound(1), 2 * 5 * 40);
    }

    #[test]
    fn cbcast_view_change_is_k_5f_plus_6() {
        let c = CbcastCost { n: 40, k: 3 };
        assert_eq!(c.recovery_time_rtd(0), 18);
        assert_eq!(c.recovery_time_rtd(2), 48);
    }

    #[test]
    fn cbcast_beats_urcgc_on_reliable_traffic_and_loses_on_crash() {
        // The paper's headline comparison: CBCAST generates fewer/shorter
        // control messages when nothing fails, urcgc wins under crashes.
        let n = 15;
        let (k, f) = (3, 1);
        let u = UrcgcCost { n, k };
        let c = CbcastCost { n, k };
        assert!(c.control_msgs_reliable() < u.control_msgs_reliable());
        assert!(c.control_size_reliable() < u.control_size_paper(64));
        assert!(u.recovery_time_rtd(f) < c.recovery_time_rtd(f));
        // Message-count crossover under crash for moderate f:
        assert!(u.control_msgs_crash(f) < c.control_msgs_crash(f) * 4);
    }

    #[test]
    fn paper_size_model_fits_ip_datagram_at_n15() {
        // Section 6: an urcgc control message for n = 15 fits a 576-byte IP
        // datagram (with small data l).
        let u = UrcgcCost { n: 15, k: 3 };
        assert!(u.control_size_paper(8) <= 576);
    }

    #[test]
    fn psync_mask_out_restarts_per_failure() {
        let p = PsyncCost { n: 10 };
        assert_eq!(p.mask_out_msgs(), 90);
        assert_eq!(p.mask_out_msgs_for(3), 270);
    }
}
