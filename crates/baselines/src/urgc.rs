//! URGC — the authors' *totally ordered* predecessor (\[APR93\], Section 2).
//!
//! The paper positions urcgc against its own total-order sibling: services
//! like ABCAST/urgc impose one group-wide processing order whose "order
//! values are autonomously defined by the service provider", whereas urcgc
//! lets applications publish causal relations and processes concurrent
//! sequences independently. This module implements a faithful-in-spirit
//! urgc using the same rotating-coordinator/subrun machinery:
//!
//! * processes broadcast unlabeled messages and *hold* them unprocessed;
//! * each subrun the coordinator assigns the next batch of global order
//!   values to every message it has seen, and broadcasts the batch;
//! * members process held messages strictly in batch order — a missing
//!   message **head-of-line blocks** everything ordered after it until
//!   recovered from the coordinator.
//!
//! That head-of-line blocking is precisely the concurrency cost the paper's
//! Section 2 motivates causal ordering with; `tests/baseline_comparison.rs`
//! and the `total_vs_causal` bench measure it.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use urcgc_history::History;
use urcgc_simnet::{FaultPlan, NetCtx, Node, SimNet, SimOptions};
use urcgc_types::{DataMsg, Mid, ProcessId, Round, Subrun};

use crate::cbcast::Load;

/// A message identifier in the total-order service: (sender, sender-local
/// sequence).
pub type TotalId = (ProcessId, u64);

/// The history key for a total-order id (same keyspace as urcgc's table).
fn mid_of(id: TotalId) -> Mid {
    Mid::new(id.0, id.1)
}

/// Frames of the urgc wire protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UFrame {
    /// Application broadcast (unordered until a batch names it).
    Data {
        /// Sender.
        sender: ProcessId,
        /// Sender-local sequence.
        seq: u64,
        /// Generation round.
        round: Round,
        /// Payload.
        payload: Bytes,
    },
    /// Coordinator's order batch for one subrun: the listed messages get
    /// the next consecutive global order values.
    Batch {
        /// Subrun of the batch.
        subrun: Subrun,
        /// First global order value assigned by this batch.
        first_order: u64,
        /// Messages in their assigned order.
        ids: Vec<TotalId>,
    },
    /// Ask the coordinator (or any holder) to resend a message.
    Fetch {
        /// Who asks.
        requester: ProcessId,
        /// What they need.
        id: TotalId,
    },
    /// Ask a peer for the global order suffix starting at `from_order`
    /// (recovers lost batches).
    FetchOrder {
        /// Who asks.
        requester: ProcessId,
        /// First missing order value.
        from_order: u64,
    },
    /// Coordinator anti-entropy: the current global order length. A member
    /// whose own order is shorter missed a batch (possibly the final one of
    /// the run, after which no newer batch would ever reveal the gap) and
    /// pulls the suffix with [`UFrame::FetchOrder`].
    Digest {
        /// Sender (the subrun coordinator).
        sender: ProcessId,
        /// Global order length as known by the sender.
        order_len: u64,
    },
}

const TAG_DATA: u8 = 0x60;
const TAG_BATCH: u8 = 0x61;
const TAG_FETCH: u8 = 0x62;
const TAG_FETCH_ORDER: u8 = 0x63;
const TAG_DIGEST: u8 = 0x64;

impl UFrame {
    /// Encodes the frame.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::new();
        match self {
            UFrame::Data {
                sender,
                seq,
                round,
                payload,
            } => {
                b.put_u8(TAG_DATA);
                b.put_u16_le(sender.0);
                b.put_u64_le(*seq);
                b.put_u64_le(round.0);
                b.put_u32_le(payload.len() as u32);
                b.put_slice(payload);
            }
            UFrame::Batch {
                subrun,
                first_order,
                ids,
            } => {
                b.put_u8(TAG_BATCH);
                b.put_u64_le(subrun.0);
                b.put_u64_le(*first_order);
                b.put_u16_le(ids.len() as u16);
                for (p, s) in ids {
                    b.put_u16_le(p.0);
                    b.put_u64_le(*s);
                }
            }
            UFrame::Fetch { requester, id } => {
                b.put_u8(TAG_FETCH);
                b.put_u16_le(requester.0);
                b.put_u16_le(id.0 .0);
                b.put_u64_le(id.1);
            }
            UFrame::FetchOrder {
                requester,
                from_order,
            } => {
                b.put_u8(TAG_FETCH_ORDER);
                b.put_u16_le(requester.0);
                b.put_u64_le(*from_order);
            }
            UFrame::Digest { sender, order_len } => {
                b.put_u8(TAG_DIGEST);
                b.put_u16_le(sender.0);
                b.put_u64_le(*order_len);
            }
        }
        b.freeze()
    }

    /// Decodes a frame.
    pub fn decode(mut f: Bytes) -> Option<UFrame> {
        if f.remaining() < 1 {
            return None;
        }
        match f.get_u8() {
            TAG_DATA => {
                if f.remaining() < 22 {
                    return None;
                }
                let sender = ProcessId(f.get_u16_le());
                let seq = f.get_u64_le();
                let round = Round(f.get_u64_le());
                let len = f.get_u32_le() as usize;
                if f.remaining() < len {
                    return None;
                }
                Some(UFrame::Data {
                    sender,
                    seq,
                    round,
                    payload: f.split_to(len),
                })
            }
            TAG_BATCH => {
                if f.remaining() < 18 {
                    return None;
                }
                let subrun = Subrun(f.get_u64_le());
                let first_order = f.get_u64_le();
                let len = f.get_u16_le() as usize;
                if f.remaining() < len * 10 {
                    return None;
                }
                let ids = (0..len)
                    .map(|_| {
                        let p = ProcessId(f.get_u16_le());
                        let s = f.get_u64_le();
                        (p, s)
                    })
                    .collect();
                Some(UFrame::Batch {
                    subrun,
                    first_order,
                    ids,
                })
            }
            TAG_FETCH => {
                if f.remaining() < 12 {
                    return None;
                }
                let requester = ProcessId(f.get_u16_le());
                let p = ProcessId(f.get_u16_le());
                let s = f.get_u64_le();
                Some(UFrame::Fetch {
                    requester,
                    id: (p, s),
                })
            }
            TAG_FETCH_ORDER => {
                if f.remaining() < 10 {
                    return None;
                }
                let requester = ProcessId(f.get_u16_le());
                let from_order = f.get_u64_le();
                Some(UFrame::FetchOrder {
                    requester,
                    from_order,
                })
            }
            TAG_DIGEST => {
                if f.remaining() < 10 {
                    return None;
                }
                let sender = ProcessId(f.get_u16_le());
                let order_len = f.get_u64_le();
                Some(UFrame::Digest { sender, order_len })
            }
            _ => None,
        }
    }
}

/// A urgc (total order) group member.
pub struct UrgcTotalNode {
    me: ProcessId,
    n: usize,
    load: Load,
    submitted: u64,
    next_seq: u64,
    seed_counter: u64,
    /// Messages received (or own) but possibly not yet ordered/processed.
    /// Backed by the same sharded, segmented table urcgc uses — the two
    /// services share buffer infrastructure, differing only in ordering.
    held: History,
    /// Ids already placed in the global order, in order; the prefix
    /// `processed_upto` of it has been processed.
    order: Vec<TotalId>,
    ordered_set: HashSet<TotalId>,
    processed_upto: usize,
    /// id → processing round (global-order delivery).
    deliveries: HashMap<TotalId, Round>,
    /// Own generation rounds.
    generated: HashMap<TotalId, Round>,
    /// As coordinator: ids seen but not yet ordered by anyone.
    /// (Everyone tracks this; only the subrun coordinator acts on it.)
    unordered: Vec<TotalId>,
    /// Global order length as known (next first_order).
    next_order: u64,
    /// Out-of-order batches buffered until the gap before them fills.
    pending_batches: HashMap<u64, Vec<TotalId>>,
}

impl UrgcTotalNode {
    /// Builds member `me` of an `n`-member total-order group.
    pub fn new(me: ProcessId, n: usize, load: Load) -> Self {
        UrgcTotalNode {
            me,
            n,
            load,
            submitted: 0,
            next_seq: 1,
            seed_counter: 0,
            held: History::new(n),
            order: Vec::new(),
            ordered_set: HashSet::new(),
            processed_upto: 0,
            deliveries: HashMap::new(),
            generated: HashMap::new(),
            unordered: Vec::new(),
            next_order: 0,
            pending_batches: HashMap::new(),
        }
    }

    /// Per-id delivery rounds.
    pub fn deliveries(&self) -> &HashMap<TotalId, Round> {
        &self.deliveries
    }

    /// Own generation rounds.
    pub fn generated(&self) -> &HashMap<TotalId, Round> {
        &self.generated
    }

    /// The global processing order as seen here (processed prefix).
    pub fn processed_order(&self) -> &[TotalId] {
        &self.order[..self.processed_upto]
    }

    /// Messages ordered but blocked (head-of-line) behind a missing one.
    pub fn blocked(&self) -> usize {
        self.order.len() - self.processed_upto
    }

    fn note_seen(&mut self, id: TotalId) {
        if !self.ordered_set.contains(&id) && !self.unordered.contains(&id) {
            self.unordered.push(id);
        }
    }

    fn try_process(&mut self, now: Round) {
        while self.processed_upto < self.order.len() {
            let id = self.order[self.processed_upto];
            if self.held.contains(mid_of(id)) {
                self.deliveries.insert(id, now);
                self.processed_upto += 1;
            } else {
                // Head-of-line blocked on a missing message.
                return;
            }
        }
    }

    /// Applies a batch, buffering out-of-order arrivals: the global order
    /// must be extended gap-free or members would disagree on it. Returns
    /// whether a gap is (still) open before the buffered batches.
    fn apply_batch(&mut self, first_order: u64, ids: Vec<TotalId>, now: Round) -> bool {
        if first_order > self.next_order {
            self.pending_batches.entry(first_order).or_insert(ids);
            return true;
        }
        if first_order < self.next_order {
            // Overlapping reply (we advanced since asking): keep only the
            // unseen tail.
            let skip = (self.next_order - first_order) as usize;
            if skip < ids.len() {
                self.extend_order(ids[skip..].to_vec());
                while let Some(next) = self.pending_batches.remove(&self.next_order) {
                    self.extend_order(next);
                }
                self.try_process(now);
            }
            return !self.pending_batches.is_empty();
        }
        self.extend_order(ids);
        // Absorb any buffered batches that are now contiguous.
        while let Some(ids) = self.pending_batches.remove(&self.next_order) {
            self.extend_order(ids);
        }
        self.try_process(now);
        !self.pending_batches.is_empty()
    }

    fn extend_order(&mut self, ids: Vec<TotalId>) {
        for id in ids {
            if self.ordered_set.insert(id) {
                self.order.push(id);
                self.unordered.retain(|&u| u != id);
            }
        }
        self.next_order = self.order.len() as u64;
    }
}

impl Node for UrgcTotalNode {
    fn on_round(&mut self, round: Round, net: &mut NetCtx<'_>) {
        // Generation.
        if self.submitted < self.load.total {
            self.seed_counter += 1;
            let x = (self.me.0 as u64 + 11)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(self.seed_counter.wrapping_mul(0x2545_F491_4F6C_DD1D));
            let u = (x >> 11) as f64 / (1u64 << 53) as f64;
            if u < self.load.gen_prob {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.submitted += 1;
                let id = (self.me, seq);
                let payload = Bytes::from(vec![0u8; self.load.payload_size]);
                self.generated.insert(id, round);
                self.held.save(Arc::new(DataMsg {
                    mid: mid_of(id),
                    deps: vec![],
                    round,
                    payload: payload.clone(),
                }));
                self.note_seen(id);
                net.broadcast(
                    "urgc-data",
                    UFrame::Data {
                        sender: self.me,
                        seq,
                        round,
                        payload,
                    }
                    .encode(),
                );
            }
        }
        // Coordinator duty: in the decision round of our subrun, order
        // everything seen-but-unordered.
        let subrun = round.subrun();
        if !round.is_request_phase()
            && ProcessId::coordinator_for(subrun, self.n) == self.me
            && !self.unordered.is_empty()
        {
            let mut ids = std::mem::take(&mut self.unordered);
            ids.sort(); // deterministic service-provider order
            let first_order = self.next_order;
            net.broadcast(
                "urgc-batch",
                UFrame::Batch {
                    subrun,
                    first_order,
                    ids: ids.clone(),
                }
                .encode(),
            );
            let _ = self.apply_batch(first_order, ids, round);
        }
        // Coordinator anti-entropy: advertise the order length every
        // decision round we coordinate. Without this, a member that lost
        // the *final* batch of a run would never learn the order grew (no
        // newer batch arrives to expose the gap) and the group would
        // quiesce incomplete.
        if !round.is_request_phase()
            && ProcessId::coordinator_for(subrun, self.n) == self.me
            && self.next_order > 0
        {
            net.broadcast(
                "urgc-digest",
                UFrame::Digest {
                    sender: self.me,
                    order_len: self.next_order,
                }
                .encode(),
            );
        }
        // Order-gap recovery: while buffered batches sit behind a gap,
        // periodically re-ask a random-ish peer (the previous coordinator)
        // for the suffix.
        if !self.pending_batches.is_empty() && !round.is_request_phase() {
            let prev_coord = ProcessId::coordinator_for(Subrun(subrun.0.saturating_sub(1)), self.n);
            if prev_coord != self.me {
                net.send(
                    prev_coord,
                    "urgc-fetch-order",
                    UFrame::FetchOrder {
                        requester: self.me,
                        from_order: self.next_order,
                    }
                    .encode(),
                );
            }
        }
        // Head-of-line recovery: fetch the first missing ordered message
        // from whoever sent it (origin always holds its own messages).
        if self.processed_upto < self.order.len() && !round.is_request_phase() {
            let id = self.order[self.processed_upto];
            if !self.held.contains(mid_of(id)) && id.0 != self.me {
                net.send(
                    id.0,
                    "urgc-fetch",
                    UFrame::Fetch {
                        requester: self.me,
                        id,
                    }
                    .encode(),
                );
            }
        }
    }

    fn on_frame(&mut self, from: ProcessId, frame: Bytes, net: &mut NetCtx<'_>) {
        let now = net.round();
        match UFrame::decode(frame) {
            Some(UFrame::Data {
                sender,
                seq,
                round,
                payload,
            }) => {
                let id = (sender, seq);
                self.held.save(Arc::new(DataMsg {
                    mid: mid_of(id),
                    deps: vec![],
                    round,
                    payload,
                }));
                self.note_seen(id);
                self.try_process(now);
            }
            Some(UFrame::Batch {
                first_order, ids, ..
            }) => {
                let gap = self.apply_batch(first_order, ids, now);
                if gap {
                    // We missed an earlier batch: pull the order suffix
                    // from whoever just showed us a newer one.
                    net.send(
                        from,
                        "urgc-fetch-order",
                        UFrame::FetchOrder {
                            requester: self.me,
                            from_order: self.next_order,
                        }
                        .encode(),
                    );
                }
            }
            Some(UFrame::Fetch { requester, id }) => {
                if let Some(msg) = self.held.get(mid_of(id)) {
                    net.send(
                        requester,
                        "urgc-data",
                        UFrame::Data {
                            sender: id.0,
                            seq: id.1,
                            round: msg.round,
                            payload: msg.payload.clone(),
                        }
                        .encode(),
                    );
                }
            }
            Some(UFrame::Digest { sender, order_len }) if order_len > self.next_order => {
                net.send(
                    sender,
                    "urgc-fetch-order",
                    UFrame::FetchOrder {
                        requester: self.me,
                        from_order: self.next_order,
                    }
                    .encode(),
                );
            }
            Some(UFrame::Digest { .. }) => {}
            Some(UFrame::FetchOrder {
                requester,
                from_order,
            }) => {
                let from = from_order as usize;
                if from < self.order.len() {
                    net.send(
                        requester,
                        "urgc-batch",
                        UFrame::Batch {
                            subrun: now.subrun(),
                            first_order: from_order,
                            ids: self.order[from..].to_vec(),
                        }
                        .encode(),
                    );
                }
            }
            None => {}
        }
        let _ = from;
    }

    fn is_done(&self) -> bool {
        self.submitted >= self.load.total
            && self.processed_upto == self.order.len()
            && self.unordered.is_empty()
            && self.pending_batches.is_empty()
    }
}

/// Measured output of a total-order run.
pub struct UrgcReport {
    /// Rounds executed.
    pub rounds: u64,
    /// Delays (rtd) from generation to group-wide processing.
    pub delays: urcgc_metrics::DelayStats,
    /// Whether all members ended with identical processed orders.
    pub total_order_agrees: bool,
    /// Fraction of generated messages processed by every member.
    pub completeness: f64,
    /// Peak head-of-line blocked backlog observed at the end (diagnostic).
    pub stats: urcgc_simnet::SimStats,
}

/// Runs a total-order group to quiescence.
pub fn run_urgc_total(
    n: usize,
    load: Load,
    faults: FaultPlan,
    seed: u64,
    max_rounds: u64,
) -> UrgcReport {
    let nodes: Vec<UrgcTotalNode> = (0..n)
        .map(|i| UrgcTotalNode::new(ProcessId::from_index(i), n, load))
        .collect();
    let mut net = SimNet::new(
        nodes,
        faults,
        SimOptions {
            max_rounds,
            seed,
            ..SimOptions::default()
        },
    );
    let mut rounds = 0;
    let mut idle = 0;
    while rounds < max_rounds {
        net.step();
        rounds += 1;
        if net.all_done() {
            idle += 1;
            if idle >= 8 {
                break;
            }
        } else {
            idle = 0;
        }
    }
    let mut generated: HashMap<TotalId, Round> = HashMap::new();
    for node in net.nodes() {
        generated.extend(node.generated().iter().map(|(&k, &v)| (k, v)));
    }
    let mut delays = urcgc_metrics::DelayStats::new();
    let mut full = 0u64;
    for (&id, &gen) in &generated {
        let mut max_round = 0u64;
        let all = net.nodes().iter().all(|nd| match nd.deliveries().get(&id) {
            Some(r) => {
                max_round = max_round.max(r.0);
                true
            }
            None => false,
        });
        if all {
            full += 1;
            delays.record(urcgc_simnet::rounds_to_rtd(
                max_round.saturating_sub(gen.0).max(1),
            ));
        }
    }
    let orders: Vec<&[TotalId]> = net.nodes().iter().map(|nd| nd.processed_order()).collect();
    let min_len = orders.iter().map(|o| o.len()).min().unwrap_or(0);
    let total_order_agrees = orders
        .windows(2)
        .all(|w| w[0][..min_len] == w[1][..min_len]);
    let completeness = if generated.is_empty() {
        1.0
    } else {
        full as f64 / generated.len() as f64
    };
    let stats = net.stats().clone();
    UrgcReport {
        rounds,
        delays,
        total_order_agrees,
        completeness,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrips() {
        let frames = [
            UFrame::Data {
                sender: ProcessId(1),
                seq: 3,
                round: Round(4),
                payload: Bytes::from_static(b"pay"),
            },
            UFrame::Batch {
                subrun: Subrun(2),
                first_order: 9,
                ids: vec![(ProcessId(0), 1), (ProcessId(2), 5)],
            },
            UFrame::Fetch {
                requester: ProcessId(3),
                id: (ProcessId(0), 7),
            },
        ];
        for f in frames {
            assert_eq!(UFrame::decode(f.encode()), Some(f));
        }
        assert_eq!(UFrame::decode(Bytes::new()), None);
    }

    #[test]
    fn total_order_is_agreed_under_reliable_conditions() {
        let r = run_urgc_total(5, Load::fixed(8, 8), FaultPlan::none(), 3, 2_000);
        assert_eq!(r.completeness, 1.0);
        assert!(r.total_order_agrees);
        assert!(r.delays.min().unwrap() >= 0.5);
    }

    #[test]
    fn total_order_survives_omissions_via_fetch() {
        let faults = FaultPlan::none().omission_rate(0.02);
        let r = run_urgc_total(5, Load::fixed(10, 8), faults, 5, 8_000);
        assert_eq!(r.completeness, 1.0, "fetch path must heal losses");
        assert!(r.total_order_agrees);
    }

    #[test]
    fn head_of_line_blocking_raises_tail_delay_vs_floor() {
        // Under loss, some messages wait for a missing predecessor in the
        // global order even though they are causally unrelated.
        let faults = FaultPlan::none().omission_rate(0.05);
        let r = run_urgc_total(6, Load::fixed(12, 8), faults, 7, 10_000);
        assert_eq!(r.completeness, 1.0);
        assert!(
            r.delays.max().unwrap() >= 2.0,
            "expected head-of-line stalls, max delay {}",
            r.delays.max().unwrap()
        );
    }
}
