//! Executable CBCAST baseline (ISIS; Birman, Schiper, Stephenson 1991).
//!
//! Causal multicast by **vector timestamps**: every message carries the
//! sender's vector clock; a receiver delays delivery until the timestamp is
//! the immediate causal successor of its own clock
//! ([`VectorClock::cbcast_deliverable`]). Acknowledgements piggyback on the
//! timestamps themselves; silent members emit a small stability message
//! once per subrun so acks keep flowing (this is the `n+1` / `4(n+1)`-byte
//! reliable-path control traffic of Table 1).
//!
//! Failure handling is where CBCAST and urcgc part ways: on suspecting a
//! member, ISIS runs a **blocking flush / view-change protocol** — no
//! message delivery until the new view is installed. We model the flush as
//! a delivery freeze of the published duration `K(5f+6)` rtd (Figure 5)
//! while metering its `K((f+1)(2n−3)+1)` control messages; a faithful
//! packet-level ISIS implementation is out of scope (the paper, too,
//! compares against the model).

use std::collections::HashMap;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use urcgc_causal::VectorClock;
use urcgc_simnet::{FaultPlan, NetCtx, Node, SimNet, SimOptions};
use urcgc_types::{ProcessId, Round};

use crate::analytic::CbcastCost;

/// Simple per-process workload: up to `total` messages, one attempt per
/// round with probability `gen_prob`.
#[derive(Clone, Copy, Debug)]
pub struct Load {
    /// Per-round generation probability.
    pub gen_prob: f64,
    /// Total messages to generate.
    pub total: u64,
    /// Payload size in bytes.
    pub payload_size: usize,
    /// Keep per-message probe maps (generation/delivery rounds) for delay
    /// measurement. Disable for long-horizon soak runs: probes grow one
    /// entry per message, which at millions of messages is the difference
    /// between bounded and unbounded memory.
    pub probe: bool,
}

impl Load {
    /// Back-to-back generation.
    pub fn fixed(total: u64, payload_size: usize) -> Self {
        Load {
            gen_prob: 1.0,
            total,
            payload_size,
            probe: true,
        }
    }

    /// Disables per-message probe maps (counters only — soak mode).
    pub fn unprobed(mut self) -> Self {
        self.probe = false;
        self
    }
}

/// A CBCAST message on the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CbMsg {
    /// Originating process.
    pub sender: ProcessId,
    /// Vector timestamp (sender component already incremented).
    pub ts: Vec<u32>,
    /// Round of generation (measurement only).
    pub round: Round,
    /// Application payload (empty for stability messages).
    pub payload: Bytes,
}

impl CbMsg {
    /// Encodes with ISIS's compressed 4-byte timestamp entries — the
    /// `4(n+1)` bytes of Table 1 plus payload.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(2 + 8 + 4 * self.ts.len() + 4 + self.payload.len());
        b.put_u16_le(self.sender.0);
        b.put_u64_le(self.round.0);
        b.put_u16_le(self.ts.len() as u16);
        for &c in &self.ts {
            b.put_u32_le(c);
        }
        b.put_u32_le(self.payload.len() as u32);
        b.put_slice(&self.payload);
        b.freeze()
    }

    /// Decodes a frame produced by [`CbMsg::encode`].
    pub fn decode(mut frame: Bytes) -> Option<CbMsg> {
        if frame.remaining() < 12 {
            return None;
        }
        let sender = ProcessId(frame.get_u16_le());
        let round = Round(frame.get_u64_le());
        let len = frame.get_u16_le() as usize;
        if frame.remaining() < 4 * len + 4 {
            return None;
        }
        let ts = (0..len).map(|_| frame.get_u32_le()).collect();
        let plen = frame.get_u32_le() as usize;
        if frame.remaining() < plen {
            return None;
        }
        let payload = frame.split_to(plen);
        Some(CbMsg {
            sender,
            ts,
            round,
            payload,
        })
    }

    fn clock(&self) -> VectorClock {
        VectorClock::from_components(self.ts.iter().map(|&c| c as u64).collect())
    }
}

/// Flush state during a (modeled) view change.
#[derive(Clone, Debug)]
struct Flush {
    /// Delivery resumes at this round.
    until: Round,
    /// Members being removed by this flush.
    suspects: Vec<ProcessId>,
}

/// One CBCAST group member.
pub struct CbcastNode {
    me: ProcessId,
    n: usize,
    k: u32,
    /// Delivered-message clock.
    vc: VectorClock,
    /// Messages received but not yet causally deliverable.
    buffer: Vec<CbMsg>,
    load: Load,
    submitted: u64,
    seed_counter: u64,
    /// Submissions blocked by an in-progress flush, stamped with the round
    /// the application *wanted* to send (ISIS blocks generation during a
    /// view change; the stall is visible in end-to-end delay).
    blocked_sends: std::collections::VecDeque<Round>,
    /// Last round we heard anything from each member.
    last_heard: Vec<Round>,
    /// Members in the current view.
    view: Vec<bool>,
    /// Rounds of silence before suspecting a member.
    suspicion_rounds: u64,
    /// Active flush, if any.
    flush: Option<Flush>,
    /// Completed view changes (the running `f` for flush-duration modeling).
    view_changes: u32,
    /// mid ≙ (sender, seq) → local delivery round (probe; empty when
    /// `load.probe` is off).
    deliveries: HashMap<(ProcessId, u64), Round>,
    /// Own generation rounds (probe; empty when `load.probe` is off).
    generated: HashMap<(ProcessId, u64), Round>,
    /// Messages delivered here (always counted, probed or not).
    delivered_count: u64,
    /// Rounds spent with delivery frozen by a flush.
    pub frozen_rounds: u64,
}

impl CbcastNode {
    /// Builds member `me` of an `n`-process CBCAST group. `k` is the ISIS
    /// failure-detection bound used for flush-duration modeling.
    pub fn new(me: ProcessId, n: usize, k: u32, load: Load) -> Self {
        CbcastNode {
            me,
            n,
            k,
            vc: VectorClock::zero(n),
            buffer: Vec::new(),
            load,
            submitted: 0,
            seed_counter: 0,
            blocked_sends: std::collections::VecDeque::new(),
            last_heard: vec![Round(0); n],
            view: vec![true; n],
            suspicion_rounds: 2 * k as u64 + 2,
            flush: None,
            view_changes: 0,
            deliveries: HashMap::new(),
            generated: HashMap::new(),
            delivered_count: 0,
            frozen_rounds: 0,
        }
    }

    /// Per-(sender, seq) delivery rounds.
    pub fn deliveries(&self) -> &HashMap<(ProcessId, u64), Round> {
        &self.deliveries
    }

    /// Own generation rounds.
    pub fn generated(&self) -> &HashMap<(ProcessId, u64), Round> {
        &self.generated
    }

    /// Messages generated so far.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Messages delivered here (including own), counter-only.
    pub fn delivered_count(&self) -> u64 {
        self.delivered_count
    }

    /// Current delivered-message clock.
    pub fn clock(&self) -> &VectorClock {
        &self.vc
    }

    /// Whether delivery is currently frozen by a flush.
    pub fn is_flushing(&self) -> bool {
        self.flush.is_some()
    }

    /// Number of completed view changes.
    pub fn view_changes(&self) -> u32 {
        self.view_changes
    }

    /// Undeliverable backlog size.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    fn record_delivery(&mut self, msg: &CbMsg, now: Round) {
        self.delivered_count += 1;
        if self.load.probe {
            let seq = msg.ts[msg.sender.index()] as u64;
            self.deliveries.insert((msg.sender, seq), now);
        }
        self.vc.merge(&msg.clock());
    }

    fn try_drain(&mut self, now: Round) {
        if self.flush.is_some() {
            return;
        }
        loop {
            let idx = self
                .buffer
                .iter()
                .position(|m| self.vc.cbcast_deliverable(&m.clock(), m.sender));
            match idx {
                Some(i) => {
                    let msg = self.buffer.swap_remove(i);
                    self.record_delivery(&msg, now);
                }
                None => return,
            }
        }
    }

    fn maybe_suspect(&mut self, now: Round, net: &mut NetCtx<'_>) {
        if self.flush.is_some() || now.0 < self.suspicion_rounds {
            return;
        }
        let suspects: Vec<ProcessId> = (0..self.n)
            .map(ProcessId::from_index)
            .filter(|&p| {
                p != self.me
                    && self.view[p.index()]
                    && now.0 - self.last_heard[p.index()].0 > self.suspicion_rounds
            })
            .collect();
        if suspects.is_empty() {
            return;
        }
        // Start the flush: delivery freezes for the published view-change
        // duration, and the flush-protocol control messages hit the wire.
        let cost = CbcastCost {
            n: self.n,
            k: self.k,
        };
        let f = (suspects.len() as u32).saturating_sub(1);
        let duration_rounds = cost.recovery_time_rtd(f) * urcgc_simnet::ROUNDS_PER_RTD;
        let msgs = cost.control_msgs_crash(f);
        let flush_frame = Bytes::from(vec![0u8; cost.flush_size() as usize]);
        // The flush traffic is spread over the group; we charge this node
        // its per-member share so group-wide accounting matches the model.
        let share = msgs.div_ceil(self.n as u64);
        for _ in 0..share {
            net.broadcast("cbcast-flush", flush_frame.clone());
        }
        self.flush = Some(Flush {
            until: Round(now.0 + duration_rounds),
            suspects,
        });
    }

    fn finish_flush_if_due(&mut self, now: Round) {
        let Some(flush) = &self.flush else { return };
        if now < flush.until {
            self.frozen_rounds += 1;
            return;
        }
        for &p in &flush.suspects {
            self.view[p.index()] = false;
            // Messages from evicted members that never became deliverable
            // are discarded with the old view.
            self.buffer.retain(|m| m.sender != p);
        }
        self.view_changes += 1;
        self.flush = None;
        self.try_drain(now);
    }
}

impl Node for CbcastNode {
    fn on_round(&mut self, round: Round, net: &mut NetCtx<'_>) {
        self.finish_flush_if_due(round);
        self.maybe_suspect(round, net);

        // The application's generation process runs regardless of protocol
        // state; what a flush blocks is the *send* (ISIS suspends message
        // generation and processing during a view change), so intents queue
        // with their original round stamp.
        if (self.submitted + self.blocked_sends.len() as u64) < self.load.total {
            // Cheap deterministic Bernoulli draw (splitmix-style hash of
            // (member, attempt counter)).
            self.seed_counter += 1;
            let x = (self.me.0 as u64 + 1)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(self.seed_counter.wrapping_mul(0xBF58_476D_1CE4_E5B9));
            let u = (x >> 11) as f64 / (1u64 << 53) as f64;
            if u < self.load.gen_prob {
                self.blocked_sends.push_back(round);
            }
        }
        if self.flush.is_none() {
            if let Some(intent_round) = self.blocked_sends.pop_front() {
                self.vc.tick(self.me);
                let msg = CbMsg {
                    sender: self.me,
                    ts: self.vc.components().iter().map(|&c| c as u32).collect(),
                    round: intent_round,
                    payload: Bytes::from(vec![0u8; self.load.payload_size]),
                };
                self.submitted += 1;
                self.delivered_count += 1;
                if self.load.probe {
                    let seq = self.vc.get(self.me);
                    self.generated.insert((self.me, seq), intent_round);
                    self.deliveries.insert((self.me, seq), round);
                }
                net.broadcast("cbcast-data", msg.encode());
                return;
            }
        }
        // Nothing sent this round: emit the stability/ack message once per
        // subrun so piggyback acknowledgements keep flowing.
        if round.is_request_phase() {
            let stab = CbMsg {
                sender: self.me,
                ts: self.vc.components().iter().map(|&c| c as u32).collect(),
                round,
                payload: Bytes::new(),
            };
            net.broadcast("cbcast-stability", stab.encode());
        }
    }

    fn on_frame(&mut self, from: ProcessId, frame: Bytes, net: &mut NetCtx<'_>) {
        let now = net.round();
        self.last_heard[from.index()] = now;
        let Some(msg) = CbMsg::decode(frame) else {
            return;
        };
        if !self.view[msg.sender.index()] {
            return; // evicted member
        }
        if msg.payload.is_empty() {
            // Pure stability/ack message: nothing to deliver.
            return;
        }
        if self.flush.is_some() {
            self.buffer.push(msg);
            return;
        }
        if self.vc.cbcast_deliverable(&msg.clock(), msg.sender) {
            self.record_delivery(&msg, now);
            self.try_drain(now);
        } else {
            self.buffer.push(msg);
        }
    }

    fn is_done(&self) -> bool {
        self.submitted >= self.load.total
            && self.blocked_sends.is_empty()
            && self.buffer.is_empty()
            && self.flush.is_none()
    }
}

/// Runs a CBCAST group and reports measured delays.
pub struct CbcastReport {
    /// Rounds executed.
    pub rounds: u64,
    /// Delays (rtd) for messages delivered by every surviving member.
    pub delays: urcgc_metrics::DelayStats,
    /// Engine counters (traffic by kind, drops, …).
    pub stats: urcgc_simnet::SimStats,
    /// Rounds each node spent frozen in flushes.
    pub frozen_rounds: Vec<u64>,
}

/// Convenience harness mirroring `urcgc::sim::GroupHarness` for CBCAST.
pub fn run_cbcast_group(
    n: usize,
    k: u32,
    load: Load,
    faults: FaultPlan,
    seed: u64,
    max_rounds: u64,
) -> CbcastReport {
    let nodes: Vec<CbcastNode> = (0..n)
        .map(|i| CbcastNode::new(ProcessId::from_index(i), n, k, load))
        .collect();
    let mut net = SimNet::new(
        nodes,
        faults,
        SimOptions {
            max_rounds,
            seed,
            ..SimOptions::default()
        },
    );
    let mut rounds = 0;
    let mut idle_streak = 0;
    while rounds < max_rounds {
        net.step();
        rounds += 1;
        if net.all_done() {
            idle_streak += 1;
            if idle_streak >= 4 {
                break;
            }
        } else {
            idle_streak = 0;
        }
    }

    let alive: Vec<bool> = (0..n)
        .map(|i| !net.is_crashed(ProcessId::from_index(i)))
        .collect();
    let mut generated: HashMap<(ProcessId, u64), Round> = HashMap::new();
    for node in net.nodes() {
        generated.extend(node.generated().iter().map(|(&k, &v)| (k, v)));
    }
    let mut delays = urcgc_metrics::DelayStats::new();
    for (&key, &gen) in &generated {
        let mut max_round = 0u64;
        let mut all = true;
        for (i, node) in net.nodes().iter().enumerate() {
            if !alive[i] {
                continue;
            }
            match node.deliveries().get(&key) {
                Some(r) => max_round = max_round.max(r.0),
                None => {
                    all = false;
                    break;
                }
            }
        }
        if all {
            let delta = max_round.saturating_sub(gen.0).max(1);
            delays.record(urcgc_simnet::rounds_to_rtd(delta));
        }
    }
    let frozen_rounds = net.nodes().iter().map(|nd| nd.frozen_rounds).collect();
    let stats = net.stats().clone();
    CbcastReport {
        rounds,
        delays,
        stats,
        frozen_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_roundtrip() {
        let m = CbMsg {
            sender: ProcessId(2),
            ts: vec![1, 0, 3],
            round: Round(9),
            payload: Bytes::from_static(b"pay"),
        };
        assert_eq!(CbMsg::decode(m.encode()), Some(m));
    }

    #[test]
    fn decode_rejects_truncation() {
        let m = CbMsg {
            sender: ProcessId(0),
            ts: vec![1, 1],
            round: Round(0),
            payload: Bytes::from_static(b"xy"),
        };
        let enc = m.encode();
        for cut in 0..enc.len() {
            let mut part = enc.clone();
            part.truncate(cut);
            assert_eq!(CbMsg::decode(part), None, "cut at {cut}");
        }
    }

    #[test]
    fn stability_message_size_matches_table1_shape() {
        // 4(n+1) bytes of timestamp for n = 15, plus our fixed header.
        let n = 15;
        let m = CbMsg {
            sender: ProcessId(0),
            ts: vec![0; n],
            round: Round(0),
            payload: Bytes::new(),
        };
        let frame = m.encode();
        // header: 2 (sender) + 8 (round) + 2 (len) + 4 (payload len) = 16
        assert_eq!(frame.len(), 16 + 4 * n);
    }

    #[test]
    fn reliable_group_delivers_everything_causally() {
        let report = run_cbcast_group(4, 3, Load::fixed(8, 8), FaultPlan::none(), 1, 500);
        assert_eq!(report.delays.count(), 4 * 8);
        assert!(report.delays.min().unwrap() >= 0.5);
        assert!(report.frozen_rounds.iter().all(|&f| f == 0));
    }

    #[test]
    fn crash_triggers_blocking_flush() {
        let faults = FaultPlan::none().crash_at(ProcessId(3), Round(4));
        let report = run_cbcast_group(4, 2, Load::fixed(30, 8), faults, 2, 4_000);
        // Survivors froze for the modeled view-change duration.
        assert!(
            report.frozen_rounds[..3].iter().all(|&f| f > 0),
            "frozen: {:?}",
            report.frozen_rounds
        );
        // Flush control traffic hit the wire.
        assert!(report.stats.traffic.get("cbcast-flush").count > 0);
    }
}
