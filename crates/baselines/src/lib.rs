#![warn(missing_docs)]

//! Baseline causal-multicast protocols the paper compares against.
//!
//! Section 6 evaluates urcgc "mainly with the CBCAST primitive" of ISIS
//! (Birman, Schiper, Stephenson 1991) and, where possible, with Psync
//! (Peterson, Buchholz, Schlichting 1989). Both are provided in two forms:
//!
//! * **executable** — [`cbcast::CbcastNode`] and [`psync::PsyncNode`] run on
//!   the same [`urcgc_simnet`] simulator as urcgc, so reliable-path delays
//!   and traffic are measured, not asserted;
//! * **analytic** — [`analytic`] carries the published cost formulas the
//!   paper itself uses for the failure-path comparison (Figure 5's
//!   `K(5f+6)` view-change latency, Table 1's message counts and sizes),
//!   since CBCAST's failure handling is a *blocking* protocol whose cost
//!   the paper models rather than simulates.

pub mod analytic;
pub mod cbcast;
pub mod psync;
pub mod urgc;

pub use analytic::{CbcastCost, PsyncCost, UrcgcCost};
pub use cbcast::CbcastNode;
pub use psync::PsyncNode;
pub use urgc::UrgcTotalNode;
