//! Executable Psync baseline (Peterson, Buchholz, Schlichting 1989).
//!
//! Psync maintains a **context graph**: each message explicitly lists the
//! messages at the leaves of the sender's current view of the conversation,
//! and a receiver delivers a message only when its whole context (ancestor
//! closure) has been delivered. Two behaviours the paper calls out are
//! modeled faithfully:
//!
//! * **flow control by deletion** — "it consists in the deletion of the
//!   messages exceeding a given upper bound, thus increasing the rate of
//!   omission failures" (Section 6): when the waiting buffer is full, the
//!   incoming message is dropped on the floor;
//! * **`mask_out` on failure** — a specialized operation "activated all
//!   over again whenever a failure occurs" that lets the group agree on the
//!   new composition; modeled as a blocking all-to-all exchange
//!   ([`crate::analytic::PsyncCost`]) during which delivery is frozen.

use std::collections::HashMap;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use urcgc_simnet::{FaultPlan, NetCtx, Node, SimNet, SimOptions};
use urcgc_types::{ProcessId, Round};

use crate::analytic::PsyncCost;
use crate::cbcast::Load;

/// A message in the context graph, identified by `(sender, seq)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PsMsg {
    /// Originating process.
    pub sender: ProcessId,
    /// Per-sender sequence number, from 1.
    pub seq: u64,
    /// Context: the leaves of the sender's graph when it sent this message.
    pub context: Vec<(ProcessId, u64)>,
    /// Round of generation.
    pub round: Round,
    /// Payload.
    pub payload: Bytes,
}

impl PsMsg {
    /// Encodes the message.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::new();
        b.put_u16_le(self.sender.0);
        b.put_u64_le(self.seq);
        b.put_u64_le(self.round.0);
        b.put_u16_le(self.context.len() as u16);
        for &(p, s) in &self.context {
            b.put_u16_le(p.0);
            b.put_u64_le(s);
        }
        b.put_u32_le(self.payload.len() as u32);
        b.put_slice(&self.payload);
        b.freeze()
    }

    /// Decodes a frame produced by [`PsMsg::encode`].
    pub fn decode(mut frame: Bytes) -> Option<PsMsg> {
        if frame.remaining() < 20 {
            return None;
        }
        let sender = ProcessId(frame.get_u16_le());
        let seq = frame.get_u64_le();
        let round = Round(frame.get_u64_le());
        let clen = frame.get_u16_le() as usize;
        if frame.remaining() < clen * 10 + 4 {
            return None;
        }
        let context = (0..clen)
            .map(|_| {
                let p = ProcessId(frame.get_u16_le());
                let s = frame.get_u64_le();
                (p, s)
            })
            .collect();
        let plen = frame.get_u32_le() as usize;
        if frame.remaining() < plen {
            return None;
        }
        let payload = frame.split_to(plen);
        Some(PsMsg {
            sender,
            seq,
            round,
            payload,
            context,
        })
    }
}

/// One Psync group member.
pub struct PsyncNode {
    me: ProcessId,
    n: usize,
    /// Per-sender delivered frontier: messages `1..=frontier[s]` from sender
    /// `s` have been delivered. Delivery is per-sender in-order (a message's
    /// context includes its own predecessor), so the delivered set is always
    /// a contiguous prefix and this vector carries the whole membership role
    /// of the old per-message map — in O(n) memory instead of O(messages).
    frontier: Vec<u64>,
    /// Delivered messages with rounds (probe; empty when `load.probe` is
    /// off — the frontier above keeps the protocol running without it).
    delivered: HashMap<(ProcessId, u64), Round>,
    /// Messages delivered here (always counted, probed or not).
    delivered_count: u64,
    /// Current leaves of the local context graph.
    leaves: Vec<(ProcessId, u64)>,
    /// Received but undeliverable messages, bounded by `waiting_bound`.
    waiting: Vec<PsMsg>,
    /// Upper bound on the waiting buffer (Psync's deletion flow control).
    waiting_bound: usize,
    load: Load,
    submitted: u64,
    next_seq: u64,
    seed_counter: u64,
    generated: HashMap<(ProcessId, u64), Round>,
    /// Messages deleted by the flow-control bound — induced omissions.
    pub induced_omissions: u64,
    /// Suspicion bookkeeping for mask_out.
    last_heard: Vec<Round>,
    view: Vec<bool>,
    suspicion_rounds: u64,
    mask_out_until: Option<Round>,
    /// Rounds spent frozen in mask_out.
    pub frozen_rounds: u64,
}

impl PsyncNode {
    /// Builds member `me` of an `n`-process Psync group with the given
    /// waiting-buffer bound.
    pub fn new(me: ProcessId, n: usize, waiting_bound: usize, load: Load) -> Self {
        PsyncNode {
            me,
            n,
            frontier: vec![0; n],
            delivered: HashMap::new(),
            delivered_count: 0,
            leaves: Vec::new(),
            waiting: Vec::new(),
            waiting_bound,
            load,
            submitted: 0,
            next_seq: 1,
            seed_counter: 0,
            generated: HashMap::new(),
            induced_omissions: 0,
            last_heard: vec![Round(0); n],
            view: vec![true; n],
            suspicion_rounds: 8,
            mask_out_until: None,
            frozen_rounds: 0,
        }
    }

    /// Delivered messages with their local delivery rounds.
    pub fn deliveries(&self) -> &HashMap<(ProcessId, u64), Round> {
        &self.delivered
    }

    /// Own generation rounds.
    pub fn generated(&self) -> &HashMap<(ProcessId, u64), Round> {
        &self.generated
    }

    /// Messages generated so far.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Messages delivered here (including own), counter-only.
    pub fn delivered_count(&self) -> u64 {
        self.delivered_count
    }

    /// Current waiting-buffer population.
    pub fn waiting_len(&self) -> usize {
        self.waiting.len()
    }

    /// Whether `(sender, seq)` has been delivered here (frontier membership;
    /// out-of-range senders — e.g. from a corrupted frame — are never
    /// delivered).
    fn is_delivered(&self, sender: ProcessId, seq: u64) -> bool {
        seq >= 1 && seq <= self.frontier.get(sender.index()).copied().unwrap_or(0)
    }

    fn context_satisfied(&self, msg: &PsMsg) -> bool {
        // In-order per sender plus full context delivered.
        let prev_ok = msg.seq == 1 || self.is_delivered(msg.sender, msg.seq - 1);
        prev_ok && msg.context.iter().all(|&(p, s)| self.is_delivered(p, s))
    }

    fn deliver(&mut self, msg: PsMsg, now: Round) {
        // The delivered message replaces its context entries as a leaf.
        self.leaves
            .retain(|k| *k != (msg.sender, msg.seq) && !msg.context.contains(k));
        self.leaves.push((msg.sender, msg.seq));
        debug_assert_eq!(
            msg.seq,
            self.frontier[msg.sender.index()] + 1,
            "per-sender delivery out of order"
        );
        self.frontier[msg.sender.index()] = msg.seq;
        self.delivered_count += 1;
        if self.load.probe {
            self.delivered.insert((msg.sender, msg.seq), now);
        }
    }

    fn drain(&mut self, now: Round) {
        if self.mask_out_until.is_some() {
            return;
        }
        loop {
            let idx = self.waiting.iter().position(|m| self.context_satisfied(m));
            match idx {
                Some(i) => {
                    let msg = self.waiting.swap_remove(i);
                    self.deliver(msg, now);
                }
                None => return,
            }
        }
    }

    fn maybe_mask_out(&mut self, now: Round, net: &mut NetCtx<'_>) {
        if self.mask_out_until.is_some() || now.0 < self.suspicion_rounds {
            return;
        }
        let suspects: Vec<ProcessId> = (0..self.n)
            .map(ProcessId::from_index)
            .filter(|&p| {
                p != self.me
                    && self.view[p.index()]
                    && now.0 - self.last_heard[p.index()].0 > self.suspicion_rounds
            })
            .collect();
        if suspects.is_empty() {
            return;
        }
        // mask_out: all-to-all agreement on the new membership, restarted
        // for each failure; delivery frozen meanwhile.
        let cost = PsyncCost { n: self.n };
        let share = cost
            .mask_out_msgs_for(suspects.len() as u32)
            .div_ceil(self.n as u64);
        for _ in 0..share {
            net.broadcast("psync-maskout", Bytes::from_static(&[0u8; 16]));
        }
        for p in suspects {
            self.view[p.index()] = false;
            self.waiting.retain(|m| m.sender != p);
        }
        self.mask_out_until = Some(Round(now.0 + 4 * self.n as u64 / 2));
    }
}

impl Node for PsyncNode {
    fn on_round(&mut self, round: Round, net: &mut NetCtx<'_>) {
        if let Some(until) = self.mask_out_until {
            if round < until {
                self.frozen_rounds += 1;
                return;
            }
            self.mask_out_until = None;
            self.drain(round);
        }
        self.maybe_mask_out(round, net);

        if self.submitted < self.load.total {
            self.seed_counter += 1;
            let x = (self.me.0 as u64 + 7)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(self.seed_counter.wrapping_mul(0xD6E8_FEB8_6659_FD93));
            let u = (x >> 11) as f64 / (1u64 << 53) as f64;
            if u < self.load.gen_prob {
                let seq = self.next_seq;
                self.next_seq += 1;
                let msg = PsMsg {
                    sender: self.me,
                    seq,
                    context: self.leaves.clone(),
                    round,
                    payload: Bytes::from(vec![0u8; self.load.payload_size]),
                };
                self.submitted += 1;
                if self.load.probe {
                    self.generated.insert((self.me, seq), round);
                }
                self.deliver(msg.clone(), round);
                net.broadcast("psync-data", msg.encode());
            }
        }
    }

    fn on_frame(&mut self, from: ProcessId, frame: Bytes, net: &mut NetCtx<'_>) {
        let now = net.round();
        self.last_heard[from.index()] = now;
        let Some(msg) = PsMsg::decode(frame) else {
            return;
        };
        if !self.view[msg.sender.index()] || self.is_delivered(msg.sender, msg.seq) {
            return;
        }
        if self.mask_out_until.is_none() && self.context_satisfied(&msg) {
            self.deliver(msg, now);
            self.drain(now);
        } else if self.waiting.len() >= self.waiting_bound {
            // Psync flow control: delete the overflow — an induced omission.
            self.induced_omissions += 1;
        } else {
            self.waiting.push(msg);
        }
    }

    fn is_done(&self) -> bool {
        self.submitted >= self.load.total && self.waiting.is_empty()
    }
}

/// Measured output of a Psync run.
pub struct PsyncReport {
    /// Rounds executed.
    pub rounds: u64,
    /// Delays (rtd) for messages delivered by every surviving member.
    pub delays: urcgc_metrics::DelayStats,
    /// Engine counters.
    pub stats: urcgc_simnet::SimStats,
    /// Flow-control deletions per node.
    pub induced_omissions: Vec<u64>,
    /// Fraction of generated messages delivered group-wide.
    pub delivery_ratio: f64,
}

/// Runs a Psync group to quiescence and reports.
pub fn run_psync_group(
    n: usize,
    waiting_bound: usize,
    load: Load,
    faults: FaultPlan,
    seed: u64,
    max_rounds: u64,
) -> PsyncReport {
    let nodes: Vec<PsyncNode> = (0..n)
        .map(|i| PsyncNode::new(ProcessId::from_index(i), n, waiting_bound, load))
        .collect();
    let mut net = SimNet::new(
        nodes,
        faults,
        SimOptions {
            max_rounds,
            seed,
            ..SimOptions::default()
        },
    );
    let mut rounds = 0;
    let mut idle = 0;
    while rounds < max_rounds {
        net.step();
        rounds += 1;
        if net.all_done() {
            idle += 1;
            if idle >= 4 {
                break;
            }
        } else {
            idle = 0;
        }
    }
    let alive: Vec<bool> = (0..n)
        .map(|i| !net.is_crashed(ProcessId::from_index(i)))
        .collect();
    let mut generated: HashMap<(ProcessId, u64), Round> = HashMap::new();
    for node in net.nodes() {
        generated.extend(node.generated().iter().map(|(&k, &v)| (k, v)));
    }
    let mut delays = urcgc_metrics::DelayStats::new();
    let mut fully = 0u64;
    for (&key, &gen) in &generated {
        let mut max_round = 0u64;
        let mut all = true;
        for (i, node) in net.nodes().iter().enumerate() {
            if !alive[i] {
                continue;
            }
            match node.deliveries().get(&key) {
                Some(r) => max_round = max_round.max(r.0),
                None => {
                    all = false;
                    break;
                }
            }
        }
        if all {
            fully += 1;
            delays.record(urcgc_simnet::rounds_to_rtd(
                max_round.saturating_sub(gen.0).max(1),
            ));
        }
    }
    let induced = net.nodes().iter().map(|nd| nd.induced_omissions).collect();
    let ratio = if generated.is_empty() {
        1.0
    } else {
        fully as f64 / generated.len() as f64
    };
    let stats = net.stats().clone();
    PsyncReport {
        rounds,
        delays,
        stats,
        induced_omissions: induced,
        delivery_ratio: ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_roundtrip() {
        let m = PsMsg {
            sender: ProcessId(1),
            seq: 4,
            context: vec![(ProcessId(0), 2), (ProcessId(2), 1)],
            round: Round(6),
            payload: Bytes::from_static(b"ctx"),
        };
        assert_eq!(PsMsg::decode(m.encode()), Some(m));
    }

    #[test]
    fn decode_rejects_truncation() {
        let m = PsMsg {
            sender: ProcessId(0),
            seq: 1,
            context: vec![(ProcessId(1), 1)],
            round: Round(0),
            payload: Bytes::from_static(b"z"),
        };
        let enc = m.encode();
        for cut in 0..enc.len() {
            let mut part = enc.clone();
            part.truncate(cut);
            assert_eq!(PsMsg::decode(part), None);
        }
    }

    #[test]
    fn context_graph_orders_delivery() {
        let report = run_psync_group(4, 64, Load::fixed(10, 8), FaultPlan::none(), 3, 1_000);
        assert_eq!(report.delivery_ratio, 1.0);
        assert!(report.delays.min().unwrap() >= 0.5);
        assert!(report.induced_omissions.iter().all(|&x| x == 0));
    }

    #[test]
    fn tiny_waiting_bound_induces_omissions() {
        // Heavy load + omissions + a 1-slot buffer: deletions must occur.
        let faults = FaultPlan::none().omission_rate(0.05);
        let report = run_psync_group(6, 1, Load::fixed(30, 8), faults, 5, 2_000);
        let total: u64 = report.induced_omissions.iter().sum();
        assert!(
            total > 0,
            "expected flow-control deletions, got {:?}",
            report.induced_omissions
        );
        assert!(report.delivery_ratio < 1.0);
    }

    #[test]
    fn mask_out_fires_on_crash() {
        let faults = FaultPlan::none().crash_at(ProcessId(3), Round(3));
        let report = run_psync_group(4, 64, Load::fixed(25, 8), faults, 7, 3_000);
        assert!(report.stats.traffic.get("psync-maskout").count > 0);
    }
}
