//! The multi-group node façade: many [`Engine`]s behind one `GroupId`-keyed
//! surface.
//!
//! The paper's model is one process set running one group; every public API
//! in this workspace used to bake that in (`Engine::new(me, cfg)` with the
//! group implicit and global). The ROADMAP's scaling direction needs the
//! opposite shape: one OS process hosting 10^3–10^4 **shared-nothing**
//! groups, each a full URCGC instance with its own history, waiting list,
//! and rotating coordinator. [`Node`] is that pivot — it owns a
//! `BTreeMap<GroupId, Engine>` and redesigns the surface around the
//! explicit group key:
//!
//! * [`Node::submit`]`(group, payload, deps)` — submissions name their
//!   group;
//! * [`Node::poll_output`]` -> (GroupId, Output)` — effects come back
//!   tagged with the group that produced them;
//! * [`Node::on_frame`] — demultiplexes incoming group-tagged frames
//!   ([`urcgc_types::group`]) **before** PDU decode, so a frame addressed
//!   to a group this node does not host is dropped after a 9-byte header
//!   inspection. That is the node half of the *genuineness* property
//!   (only a message's destination groups take steps), and it is what the
//!   checker's genuineness oracle asserts over [`Node::foreign_frames`];
//! * [`Node::gauges`] — one read aggregating every hosted engine's
//!   [`EngineGauges`].
//!
//! [`Engine`] stays public as the single-group core — the simulator and
//! the digest-pinned sweep harnesses drive it directly — but the runtime,
//! the multigroup soak, and every future multi-group layer construct
//! engines only through this façade.

use std::collections::{BTreeMap, VecDeque};

use bytes::Bytes;

use urcgc_types::{decode_group, FrameCache, GroupId, Mid, Pdu, ProcessId, ProtocolConfig, Round};

use crate::engine::Engine;
use crate::output::{EngineGauges, Output, SubmitError};

/// Failures at the node surface (engine-level rejections are wrapped).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeError {
    /// The named group is not hosted by this node.
    UnknownGroup(GroupId),
    /// [`Node::join`] on a group this node already hosts.
    DuplicateGroup(GroupId),
    /// The hosted group's engine rejected the submission.
    Submit(SubmitError),
}

impl core::fmt::Display for NodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NodeError::UnknownGroup(g) => write!(f, "group {g} is not hosted here"),
            NodeError::DuplicateGroup(g) => write!(f, "group {g} is already hosted here"),
            NodeError::Submit(e) => write!(f, "submission rejected: {e}"),
        }
    }
}

impl std::error::Error for NodeError {}

impl From<SubmitError> for NodeError {
    fn from(e: SubmitError) -> NodeError {
        NodeError::Submit(e)
    }
}

/// Aggregate gauges for one node — every hosted engine summed, plus the
/// node-level demux counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeGauges {
    /// Hosted groups.
    pub groups: usize,
    /// Per-field sums of every hosted engine's [`EngineGauges`].
    pub totals: EngineGauges,
    /// Frames dropped at demux because their destination group is not
    /// hosted here — each cost one header inspection and zero PDU decodes
    /// (the genuineness counter).
    pub foreign_frames: u64,
    /// Frames dropped because the group envelope or the inner frame failed
    /// to decode (corruption → omission).
    pub undecodable: u64,
}

/// One process hosting many shared-nothing URCGC groups — see the module
/// docs. All engines share this node's process id; group membership is
/// per-group via each group's [`ProtocolConfig`].
pub struct Node {
    me: ProcessId,
    groups: BTreeMap<GroupId, Engine>,
    frames: FrameCache,
    /// Groups whose engines may hold undrained outputs, oldest first.
    /// Duplicates are harmless: a stale entry drains to nothing.
    dirty: VecDeque<GroupId>,
    foreign_frames: u64,
    undecodable: u64,
}

impl Node {
    /// A node hosting no groups yet.
    pub fn new(me: ProcessId) -> Node {
        Node {
            me,
            groups: BTreeMap::new(),
            frames: FrameCache::new(),
            dirty: VecDeque::new(),
            foreign_frames: 0,
            undecodable: 0,
        }
    }

    /// Convenience: a node hosting exactly one group — the single-group
    /// deployment shape (the UDP runtime's default).
    ///
    /// # Panics
    /// Panics if `cfg` is invalid or `me` is outside the group (same
    /// contract as [`Engine::new`]).
    pub fn single(me: ProcessId, group: GroupId, cfg: ProtocolConfig) -> Node {
        let mut node = Node::new(me);
        node.join(group, cfg).expect("fresh node cannot collide");
        node
    }

    /// This node's process id (shared by every hosted engine).
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// Starts hosting `group` with a fresh engine under `cfg`.
    ///
    /// # Panics
    /// Panics if `cfg` is invalid or `me` is outside the group (same
    /// contract as [`Engine::new`]).
    pub fn join(&mut self, group: GroupId, cfg: ProtocolConfig) -> Result<(), NodeError> {
        if self.groups.contains_key(&group) {
            return Err(NodeError::DuplicateGroup(group));
        }
        self.groups.insert(group, Engine::new(self.me, cfg));
        Ok(())
    }

    /// Stops hosting `group`, dropping its engine and all its state.
    pub fn leave(&mut self, group: GroupId) -> Result<(), NodeError> {
        self.groups
            .remove(&group)
            .map(|_| ())
            .ok_or(NodeError::UnknownGroup(group))
    }

    /// Whether this node hosts `group`.
    pub fn hosts(&self, group: GroupId) -> bool {
        self.groups.contains_key(&group)
    }

    /// Hosted groups, ascending.
    pub fn groups(&self) -> impl Iterator<Item = GroupId> + '_ {
        self.groups.keys().copied()
    }

    /// Number of hosted groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Read access to one hosted engine (oracles, quiescence predicates).
    pub fn engine(&self, group: GroupId) -> Option<&Engine> {
        self.groups.get(&group)
    }

    /// `urcgc.data.Rq` into one hosted group; returns the assigned mid.
    pub fn submit(
        &mut self,
        group: GroupId,
        payload: Bytes,
        deps: &[Mid],
    ) -> Result<Mid, NodeError> {
        let engine = self
            .groups
            .get_mut(&group)
            .ok_or(NodeError::UnknownGroup(group))?;
        let mid = engine.submit(payload, deps)?;
        self.dirty.push_back(group);
        Ok(mid)
    }

    /// Advances every hosted group to `round`. Shared-nothing groups share
    /// nothing but the clock: one tick drives them all.
    pub fn begin_round(&mut self, round: Round) {
        for (&group, engine) in &mut self.groups {
            engine.begin_round(round);
            self.dirty.push_back(group);
        }
    }

    /// Advances one hosted group to `round` (harnesses that stagger group
    /// clocks, e.g. to spread coordinator load across rounds).
    pub fn begin_group_round(&mut self, group: GroupId, round: Round) -> Result<(), NodeError> {
        let engine = self
            .groups
            .get_mut(&group)
            .ok_or(NodeError::UnknownGroup(group))?;
        engine.begin_round(round);
        self.dirty.push_back(group);
        Ok(())
    }

    /// Demultiplexes one received group-tagged frame from peer `from`.
    ///
    /// Returns the destination group when the frame was accepted by that
    /// group's engine. A frame for a group this node does not host is
    /// dropped after the 9-byte header read — counted in
    /// [`Node::foreign_frames`], never decoded, never shown to any engine:
    /// the genuineness property, enforced structurally. Envelope or inner
    /// decode failures count as [`Node::undecodable`] (corruption
    /// degenerates to omission, which the protocol recovers from).
    pub fn on_frame(&mut self, from: ProcessId, frame: &Bytes) -> Option<GroupId> {
        let gf = match decode_group(frame) {
            Ok(gf) => gf,
            Err(_) => {
                self.undecodable += 1;
                return None;
            }
        };
        let Some(engine) = self.groups.get_mut(&gf.group) else {
            self.foreign_frames += 1;
            return None;
        };
        if engine.on_frame(from, &gf.inner).is_err() {
            self.undecodable += 1;
            return None;
        }
        self.dirty.push_back(gf.group);
        Some(gf.group)
    }

    /// Drains the next engine effect, tagged with the group that produced
    /// it. Groups drain in the order they were touched (round order within
    /// a tick, arrival order for frames), each to exhaustion.
    pub fn poll_output(&mut self) -> Option<(GroupId, Output)> {
        while let Some(group) = self.dirty.pop_front() {
            let Some(engine) = self.groups.get_mut(&group) else {
                continue; // left since it was marked
            };
            if let Some(out) = engine.poll_output() {
                // More may follow; keep the group at the front so it
                // drains fully before the next one starts.
                self.dirty.push_front(group);
                return Some((group, out));
            }
        }
        None
    }

    /// Encodes `pdu` as a group-tagged wire frame through the node's warm
    /// [`FrameCache`] — encoded once, clone per destination.
    pub fn encode(&mut self, group: GroupId, pdu: &Pdu) -> Bytes {
        self.frames.encode_group(group, pdu)
    }

    /// Aggregate gauges across every hosted engine, plus demux counters.
    pub fn gauges(&self) -> NodeGauges {
        let mut totals = EngineGauges::default();
        for engine in self.groups.values() {
            let g = engine.gauges();
            totals.history_len += g.history_len;
            totals.history_bytes += g.history_bytes;
            totals.history_segments += g.history_segments;
            totals.purge_lag += g.purge_lag;
            totals.waiting_len += g.waiting_len;
            totals.pending_len += g.pending_len;
        }
        NodeGauges {
            groups: self.groups.len(),
            totals,
            foreign_frames: self.foreign_frames,
            undecodable: self.undecodable,
        }
    }

    /// Per-group gauges, ascending by group (idle-group residency audits).
    pub fn group_gauges(&self) -> impl Iterator<Item = (GroupId, EngineGauges)> + '_ {
        self.groups.iter().map(|(&g, e)| (g, e.gauges()))
    }

    /// Frames dropped at demux for a non-hosted destination group (the
    /// genuineness counter; see [`Node::on_frame`]).
    pub fn foreign_frames(&self) -> u64 {
        self.foreign_frames
    }

    /// Frames dropped because the envelope or inner frame failed to decode.
    pub fn undecodable(&self) -> u64 {
        self.undecodable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GA: GroupId = GroupId(1);
    const GB: GroupId = GroupId(2);

    fn two_group_node(me: u16) -> Node {
        let mut node = Node::new(ProcessId(me));
        node.join(GA, ProtocolConfig::new(2)).unwrap();
        node.join(GB, ProtocolConfig::new(2)).unwrap();
        node
    }

    #[test]
    fn join_and_leave_manage_the_group_table() {
        let mut node = two_group_node(0);
        assert_eq!(node.group_count(), 2);
        assert!(node.hosts(GA) && node.hosts(GB));
        assert_eq!(
            node.join(GA, ProtocolConfig::new(2)),
            Err(NodeError::DuplicateGroup(GA))
        );
        node.leave(GA).unwrap();
        assert!(!node.hosts(GA));
        assert_eq!(node.leave(GA), Err(NodeError::UnknownGroup(GA)));
        assert_eq!(node.groups().collect::<Vec<_>>(), vec![GB]);
    }

    #[test]
    fn submit_requires_a_hosted_group() {
        let mut node = two_group_node(0);
        let err = node
            .submit(GroupId(99), Bytes::from_static(b"x"), &[])
            .unwrap_err();
        assert_eq!(err, NodeError::UnknownGroup(GroupId(99)));
        let mid = node.submit(GA, Bytes::from_static(b"x"), &[]).unwrap();
        assert_eq!(mid, Mid::new(ProcessId(0), 1));
        // Sequences are per group: the same node's first submission into
        // the other group draws seq 1 again.
        let mid_b = node.submit(GB, Bytes::from_static(b"y"), &[]).unwrap();
        assert_eq!(mid_b, Mid::new(ProcessId(0), 1));
    }

    #[test]
    fn outputs_come_back_group_tagged() {
        let mut node = two_group_node(0);
        node.submit(GA, Bytes::from_static(b"a"), &[]).unwrap();
        node.begin_round(Round(0));
        let mut saw_a_broadcast = false;
        while let Some((group, out)) = node.poll_output() {
            if let Output::Broadcast { pdu } = out {
                assert_eq!(group, GA, "only group A had a submission");
                assert!(matches!(&*pdu, Pdu::Data(_)));
                saw_a_broadcast = true;
            }
        }
        assert!(saw_a_broadcast);
    }

    /// The demux test of record: a frame addressed to group A must never
    /// reach group B's engine — and a frame for an unhosted group must be
    /// dropped before PDU decode, leaving a foreign-frame count behind.
    #[test]
    fn demux_never_crosses_groups() {
        // Peer node 1 produces a data broadcast in group A.
        let mut peer = two_group_node(1);
        peer.submit(GA, Bytes::from_static(b"hello A"), &[])
            .unwrap();
        peer.begin_round(Round(0));
        let mut wire: Option<Bytes> = None;
        while let Some((group, out)) = peer.poll_output() {
            if let Output::Broadcast { pdu } = out {
                if matches!(&*pdu, Pdu::Data(_)) {
                    wire = Some(peer.encode(group, &pdu));
                }
            }
        }
        let wire = wire.expect("peer broadcast a data frame");

        // Node 0 hosts A and B: the frame lands in A, and B's engine
        // observes nothing (its gauges stay zero).
        let mut node = two_group_node(0);
        assert_eq!(node.on_frame(ProcessId(1), &wire), Some(GA));
        let delivered: Vec<GroupId> = std::iter::from_fn(|| node.poll_output())
            .map(|(g, _)| g)
            .collect();
        assert!(delivered.iter().all(|&g| g == GA));
        assert_eq!(node.engine(GB).unwrap().gauges(), EngineGauges::default());
        assert_eq!(node.foreign_frames(), 0);

        // A node hosting only B drops the same frame at the header: the
        // genuineness counter ticks, no engine (and no PDU decode) runs.
        let mut only_b = Node::new(ProcessId(0));
        only_b.join(GB, ProtocolConfig::new(2)).unwrap();
        assert_eq!(only_b.on_frame(ProcessId(1), &wire), None);
        assert_eq!(only_b.foreign_frames(), 1);
        assert_eq!(only_b.undecodable(), 0);
        assert_eq!(only_b.engine(GB).unwrap().gauges(), EngineGauges::default());
    }

    #[test]
    fn corrupt_frames_count_as_undecodable() {
        let mut node = two_group_node(0);
        // Garbage that is not even an envelope.
        assert_eq!(
            node.on_frame(ProcessId(1), &Bytes::from_static(b"\x01garbage")),
            None
        );
        // A valid envelope around a corrupt inner frame.
        let enveloped = urcgc_types::encode_group(GA, b"not a pdu frame");
        assert_eq!(node.on_frame(ProcessId(1), &enveloped), None);
        assert_eq!(node.undecodable(), 2);
        assert_eq!(node.foreign_frames(), 0);
    }

    #[test]
    fn two_nodes_run_a_group_to_delivery_through_the_facade() {
        // A two-member group (A) plus an uninvolved group (B) on node 0:
        // drive rounds, ferry frames both ways, and require node 1 to
        // deliver node 0's message while B stays untouched.
        let mut n0 = two_group_node(0);
        let mut n1 = Node::single(ProcessId(1), GA, ProtocolConfig::new(2));
        n0.submit(GA, Bytes::from_static(b"payload"), &[]).unwrap();

        let mut delivered_at_1 = false;
        for r in 0..20u64 {
            n0.begin_round(Round(r));
            n1.begin_round(Round(r));
            // Drain both nodes alternately until neither has output,
            // ferrying every Send/Broadcast to the other node.
            loop {
                let mut progressed = false;
                while let Some((g, out)) = n0.poll_output() {
                    progressed = true;
                    match out {
                        Output::Send { pdu, .. } => {
                            let f = n0.encode(g, &pdu);
                            n1.on_frame(ProcessId(0), &f);
                        }
                        Output::Broadcast { pdu } => {
                            let f = n0.encode(g, &pdu);
                            n1.on_frame(ProcessId(0), &f);
                        }
                        _ => {}
                    }
                }
                while let Some((g, out)) = n1.poll_output() {
                    progressed = true;
                    match out {
                        Output::Send { pdu, .. } => {
                            let f = n1.encode(g, &pdu);
                            n0.on_frame(ProcessId(1), &f);
                        }
                        Output::Broadcast { pdu } => {
                            let f = n1.encode(g, &pdu);
                            n0.on_frame(ProcessId(1), &f);
                        }
                        Output::Deliver { msg } => {
                            assert_eq!(g, GA);
                            assert_eq!(msg.mid, Mid::new(ProcessId(0), 1));
                            delivered_at_1 = true;
                        }
                        _ => {}
                    }
                }
                if !progressed {
                    break;
                }
            }
            if delivered_at_1 {
                break;
            }
        }
        assert!(delivered_at_1, "group A never delivered through the façade");
        assert_eq!(n0.engine(GB).unwrap().gauges(), EngineGauges::default());
        assert_eq!(n0.foreign_frames() + n1.foreign_frames(), 0);
    }

    #[test]
    fn gauges_aggregate_across_groups() {
        let mut node = two_group_node(0);
        node.submit(GA, Bytes::from_static(b"a"), &[]).unwrap();
        node.submit(GB, Bytes::from_static(b"b"), &[]).unwrap();
        node.submit(GB, Bytes::from_static(b"c"), &[]).unwrap();
        let g = node.gauges();
        assert_eq!(g.groups, 2);
        assert_eq!(g.totals.pending_len, 3, "2 pending in B + 1 in A");
        let per: Vec<_> = node.group_gauges().collect();
        assert_eq!(per.len(), 2);
        assert_eq!(per[0].0, GA);
        assert_eq!(per[0].1.pending_len, 1);
        assert_eq!(per[1].1.pending_len, 2);
    }
}
