//! Structured protocol tracing.
//!
//! A [`Tracer`] interprets the engine's [`Output`] stream into a typed
//! timeline — useful for debugging drivers, narrating failure drills, and
//! asserting protocol behaviour in tests without poking engine internals.
//! It is strictly an observer: feed it every output you drain and it never
//! affects the protocol.

use core::fmt;

use urcgc_types::{Mid, ProcessId, Round, Subrun};

use crate::output::{Output, ProcessStatus, StatusReason};

/// One observed protocol event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// An application message was broadcast.
    DataSent {
        /// Round of the broadcast.
        round: Round,
        /// The message.
        mid: Mid,
        /// Number of published direct causes.
        deps: usize,
    },
    /// A request was sent to the subrun coordinator.
    RequestSent {
        /// Round of the send.
        round: Round,
        /// Destination coordinator.
        coordinator: ProcessId,
        /// Subrun the request belongs to.
        subrun: Subrun,
    },
    /// A decision was broadcast (this entity coordinated).
    DecisionMade {
        /// Round of the broadcast.
        round: Round,
        /// Subrun decided.
        subrun: Subrun,
        /// Whether the stability computation covered the whole alive group.
        full_group: bool,
        /// Members declared dead in this decision.
        declared_dead: Vec<ProcessId>,
    },
    /// A recovery request was sent.
    RecoveryAsked {
        /// Round of the send.
        round: Round,
        /// The most-updated process being asked.
        target: ProcessId,
        /// Sequence origin being recovered.
        origin: ProcessId,
        /// Range `(after, upto]`.
        range: (u64, u64),
    },
    /// A message was processed (delivered to the application).
    Processed {
        /// Round of processing.
        round: Round,
        /// The message.
        mid: Mid,
    },
    /// An own submission completed (`urcgc.data.Conf`).
    Confirmed {
        /// Round of confirmation.
        round: Round,
        /// The confirmed message.
        mid: Mid,
    },
    /// Waiting messages were destroyed by orphan elimination.
    Discarded {
        /// Round of destruction.
        round: Round,
        /// The victims.
        mids: Vec<Mid>,
    },
    /// The entity changed life-cycle status.
    StatusChanged {
        /// Round of the change.
        round: Round,
        /// New status.
        status: ProcessStatus,
        /// Why.
        reason: StatusReason,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::DataSent { round, mid, deps } => {
                write!(f, "{round}: sent {mid} ({deps} deps)")
            }
            TraceEvent::RequestSent {
                round,
                coordinator,
                subrun,
            } => write!(f, "{round}: request → {coordinator} for {subrun}"),
            TraceEvent::DecisionMade {
                round,
                subrun,
                full_group,
                declared_dead,
            } => write!(
                f,
                "{round}: decided {subrun} (full_group={full_group}, dead={declared_dead:?})"
            ),
            TraceEvent::RecoveryAsked {
                round,
                target,
                origin,
                range,
            } => write!(
                f,
                "{round}: recovery → {target} for {origin} ({}, {}]",
                range.0, range.1
            ),
            TraceEvent::Processed { round, mid } => write!(f, "{round}: processed {mid}"),
            TraceEvent::Confirmed { round, mid } => write!(f, "{round}: confirmed {mid}"),
            TraceEvent::Discarded { round, mids } => {
                write!(f, "{round}: discarded {mids:?}")
            }
            TraceEvent::StatusChanged {
                round,
                status,
                reason,
            } => write!(f, "{round}: status → {status:?} ({reason})"),
        }
    }
}

/// Accumulates [`TraceEvent`]s for one entity.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    events: Vec<TraceEvent>,
}

impl Tracer {
    /// An empty tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interprets one drained output at `round`. Pass every output through;
    /// non-protocol-visible ones are ignored.
    pub fn observe(&mut self, round: Round, out: &Output) {
        use urcgc_types::Pdu;
        let ev = match out {
            Output::Broadcast { pdu } => match pdu.as_ref() {
                Pdu::Data(d) => Some(TraceEvent::DataSent {
                    round,
                    mid: d.mid,
                    deps: d.deps.len(),
                }),
                Pdu::Decision(d) => Some(TraceEvent::DecisionMade {
                    round,
                    subrun: d.subrun,
                    full_group: d.full_group,
                    declared_dead: d
                        .process_state
                        .iter()
                        .enumerate()
                        .filter(|(_, alive)| !**alive)
                        .map(|(i, _)| ProcessId::from_index(i))
                        .collect(),
                }),
                _ => None,
            },
            Output::Send { to, pdu } => match &**pdu {
                Pdu::Request(r) => Some(TraceEvent::RequestSent {
                    round,
                    coordinator: *to,
                    subrun: r.subrun,
                }),
                Pdu::RecoveryRq(rq) => Some(TraceEvent::RecoveryAsked {
                    round,
                    target: *to,
                    origin: rq.origin,
                    range: (rq.after_seq, rq.upto_seq),
                }),
                _ => None,
            },
            Output::Deliver { msg } => Some(TraceEvent::Processed {
                round,
                mid: msg.mid,
            }),
            Output::Confirm { mid } => Some(TraceEvent::Confirmed { round, mid: *mid }),
            Output::Discarded { mids } => Some(TraceEvent::Discarded {
                round,
                mids: mids.clone(),
            }),
            Output::StatusChanged { status, reason } => Some(TraceEvent::StatusChanged {
                round,
                status: *status,
                reason: *reason,
            }),
        };
        if let Some(ev) = ev {
            self.events.push(ev);
        }
    }

    /// All observed events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events of a given shape (by discriminant match function).
    pub fn count(&self, pred: impl Fn(&TraceEvent) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }

    /// Renders one event per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use bytes::Bytes;
    use urcgc_types::ProtocolConfig;

    #[test]
    fn tracer_captures_a_send_request_decide_cycle() {
        let mut e = Engine::new(ProcessId(0), ProtocolConfig::new(3));
        let mut t = Tracer::new();
        let mid = e.submit(Bytes::from_static(b"x"), &[]).unwrap();
        for r in 0..2u64 {
            e.begin_round(Round(r));
            while let Some(out) = e.poll_output() {
                t.observe(Round(r), &out);
            }
        }
        assert!(t.count(|ev| matches!(ev, TraceEvent::DataSent { .. })) == 1);
        assert!(t.count(|ev| matches!(ev, TraceEvent::Processed { .. })) == 1);
        assert!(t.count(|ev| matches!(ev, TraceEvent::Confirmed { mid: m, .. } if *m == mid)) == 1);
        // p0 coordinates subrun 0: its own request is internal (no wire
        // send) and it decides at round 1.
        assert_eq!(
            t.count(|ev| matches!(ev, TraceEvent::DecisionMade { .. })),
            1
        );
        let rendered = t.render();
        assert!(rendered.contains("sent p0#1"));
        assert!(rendered.contains("decided s0"));
    }

    #[test]
    fn tracer_captures_requests_to_remote_coordinators() {
        let mut e = Engine::new(ProcessId(1), ProtocolConfig::new(3));
        let mut t = Tracer::new();
        e.begin_round(Round(0)); // subrun 0: coordinator is p0, not us
        while let Some(out) = e.poll_output() {
            t.observe(Round(0), &out);
        }
        assert_eq!(
            t.count(|ev| matches!(
                ev,
                TraceEvent::RequestSent {
                    coordinator: ProcessId(0),
                    ..
                }
            )),
            1
        );
    }

    #[test]
    fn display_is_compact_and_greppable() {
        let ev = TraceEvent::RecoveryAsked {
            round: Round(7),
            target: ProcessId(2),
            origin: ProcessId(0),
            range: (3, 9),
        };
        assert_eq!(ev.to_string(), "r7: recovery → p2 for p0 (3, 9]");
    }
}
