//! Engine effects and status types.

use core::fmt;
use std::sync::Arc;

use urcgc_types::{DataMsg, Mid, Pdu, ProcessId};

/// Life-cycle state of a protocol entity.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ProcessStatus {
    /// Participating normally.
    #[default]
    Active,
    /// Committed suicide after learning the group declared it crashed
    /// (Section 4: "when an alive process notices it is supposed dead, it
    /// commits suicide").
    Suicided,
    /// Left the group autonomously — after failing to receive from `K`
    /// consecutive coordinators, or after `R` unsuccessful recovery
    /// attempts.
    Left,
}

impl ProcessStatus {
    /// Whether the entity still participates in the protocol.
    pub fn is_active(self) -> bool {
        matches!(self, ProcessStatus::Active)
    }
}

/// Why a status change happened.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StatusReason {
    /// A decision carried `process_state[me] == false`.
    DeclaredCrashed,
    /// `K` consecutive subruns elapsed without receiving any decision.
    MissedKDecisions,
    /// `R` consecutive recovery attempts made no progress.
    RecoveryExhausted,
}

impl fmt::Display for StatusReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StatusReason::DeclaredCrashed => "declared crashed by the group",
            StatusReason::MissedKDecisions => "missed K consecutive coordinator decisions",
            StatusReason::RecoveryExhausted => "R recovery attempts without progress",
        };
        f.write_str(s)
    }
}

/// An effect produced by the engine, drained via
/// [`Engine::poll_output`](crate::Engine::poll_output).
#[derive(Clone, Debug)]
pub enum Output {
    /// Transmit `pdu` to one destination. Unicast is the rare path
    /// (requests, recovery); boxing keeps the hot outbox variants small.
    Send {
        /// Destination process.
        to: ProcessId,
        /// The protocol data unit to encode and ship.
        pdu: Box<Pdu>,
    },
    /// Transmit `pdu` to every other group member. The PDU is shared — the
    /// transport encodes it once and fans the frame out, so an n-way
    /// broadcast never deep-copies the message body per destination.
    Broadcast {
        /// The protocol data unit to encode (once) and ship to everyone.
        pdu: Arc<Pdu>,
    },
    /// `urcgc.data.Ind`: a message has been *processed* — hand it to the
    /// application. Emitted in causal order. The handle is shared with the
    /// engine's history buffer.
    Deliver {
        /// The processed message.
        msg: Arc<DataMsg>,
    },
    /// `urcgc.data.Conf`: the local entity has broadcast and processed the
    /// application's own submission.
    Confirm {
        /// The mid assigned to the submission.
        mid: Mid,
    },
    /// Waiting messages were destroyed by orphan-sequence elimination.
    Discarded {
        /// The destroyed mids, sorted.
        mids: Vec<Mid>,
    },
    /// The entity changed life-cycle state.
    StatusChanged {
        /// New status.
        status: ProcessStatus,
        /// What triggered it.
        reason: StatusReason,
    },
}

/// Rejected submissions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The entity is no longer active.
    NotActive(ProcessStatus),
    /// The dependency list was rejected by the labeler.
    BadLabel(String),
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::NotActive(s) => write!(f, "entity is not active (status {s:?})"),
            SubmitError::BadLabel(e) => write!(f, "invalid causal label: {e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Counters the engine maintains for observability and experiments.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// Messages processed (own + foreign).
    pub processed: u64,
    /// Messages currently parked in the waiting list (gauge).
    pub waiting: usize,
    /// Current history population (gauge).
    pub history_len: usize,
    /// Recovery requests sent.
    pub recovery_requests: u64,
    /// Messages recovered from peers' histories.
    pub recovered: u64,
    /// Messages destroyed by orphan elimination.
    pub discarded: u64,
    /// Rounds in which flow control suppressed generation.
    pub flow_blocked_rounds: u64,
    /// Decisions applied.
    pub decisions_applied: u64,
    /// Decisions computed as coordinator.
    pub decisions_made: u64,
    /// Messages freed from history by stability purges.
    pub purged_messages: u64,
    /// Whole history segments freed by stability purges (each drop is O(1);
    /// purge cost scales with this counter, not with message population).
    pub purged_segments: u64,
}

/// Every state-population gauge of an [`Engine`](crate::Engine), read in
/// one call ([`Engine::gauges`](crate::Engine::gauges)).
///
/// These six numbers used to be six separate getters; one typed struct
/// keeps the observation surface in lockstep across the simulator, the
/// soak harnesses, the UDP runtime, and [`EngineSnapshot`] — a new gauge
/// is added here once and every layer sees it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineGauges {
    /// History population, in messages (Figure 6's "history length").
    pub history_len: usize,
    /// Payload bytes resident in the history table.
    pub history_bytes: usize,
    /// Live history segments (capacity actually allocated; the soak
    /// harness tracks this as "history residency").
    pub history_segments: usize,
    /// How far processing runs ahead of group stability, in messages: the
    /// sum over origins of `last_processed − stable_frontier` — the
    /// population the next full-group purge could free.
    pub purge_lag: u64,
    /// Waiting-list population.
    pub waiting_len: usize,
    /// Submissions accepted but not yet broadcast.
    pub pending_len: usize,
}

impl EngineGauges {
    /// Whether the entity holds no undelivered backlog — no submission
    /// waiting to be broadcast and no message parked for missing causes.
    /// The common prefix of every quiescence predicate in the workspace.
    pub fn is_drained(&self) -> bool {
        self.pending_len == 0 && self.waiting_len == 0
    }
}

/// A serializable point-in-time view of an [`Engine`](crate::Engine) — see
/// [`Engine::snapshot`](crate::Engine::snapshot).
#[derive(Clone, Debug)]
pub struct EngineSnapshot {
    /// This member's id.
    pub me: u16,
    /// Life-cycle status (Debug rendering).
    pub status: String,
    /// Current round.
    pub round: u64,
    /// Current subrun.
    pub subrun: u64,
    /// Subrun of the last applied decision, if any.
    pub last_decision_subrun: Option<u64>,
    /// Whether the last applied decision covered the full alive group.
    pub last_decision_full_group: bool,
    /// Per-origin contiguous processing frontier.
    pub frontier: Vec<u64>,
    /// Per-member liveness in the local view.
    pub alive: Vec<bool>,
    /// State-population gauges at snapshot time.
    pub gauges: EngineGauges,
    /// Consecutive subruns without a decision.
    pub missed_decisions: u32,
    /// Consecutive fruitless recovery attempts.
    pub recovery_attempts: u32,
    /// Counters.
    pub stats: EngineStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_is_the_only_participating_status() {
        assert!(ProcessStatus::Active.is_active());
        assert!(!ProcessStatus::Suicided.is_active());
        assert!(!ProcessStatus::Left.is_active());
    }

    #[test]
    fn reasons_render() {
        assert!(StatusReason::DeclaredCrashed
            .to_string()
            .contains("crashed"));
        assert!(StatusReason::MissedKDecisions.to_string().contains("K"));
        assert!(StatusReason::RecoveryExhausted.to_string().contains("R"));
    }

    #[test]
    fn submit_errors_render() {
        let e = SubmitError::NotActive(ProcessStatus::Left);
        assert!(e.to_string().contains("Left"));
        let e = SubmitError::BadLabel("nope".into());
        assert!(e.to_string().contains("nope"));
    }
}
