//! Discrete-event simulation driver: runs a group of [`Engine`]s over
//! [`urcgc_simnet`] and collects the measurements the paper's evaluation
//! reports (end-to-end delay, control traffic, history length).
//!
//! The driver is the reproduction of the authors' simulation testbed
//! (Section 6): synthetic offered load (a Bernoulli per-round generation
//! probability, or a fixed per-process message budget), fault plans from
//! [`urcgc_simnet::FaultPlan`], and per-round sampling of each process's
//! history length.

use std::collections::{BTreeMap, HashMap};

use bytes::Bytes;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use urcgc_overlay::{Disseminator, OverlayConfig, RelayDisposition};
use urcgc_simnet::{Adversary, FaultPlan, NetCtx, Node, RunOutcome, SimNet, SimOptions, SimStats};
use urcgc_types::{FrameCache, Mid, ProcessId, ProtocolConfig, Round};

use crate::engine::Engine;
use crate::output::{Output, ProcessStatus};

/// How submissions choose their foreign causal dependencies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DepPolicy {
    /// Depend only on the process's own previous message (independent
    /// per-process sequences — maximum concurrency).
    OwnChain,
    /// Additionally depend on the most recently processed foreign message
    /// (point ii of Definition 3.1: reception → send), producing the
    /// cross-process causal webs the paper's applications generate.
    #[default]
    LatestForeign,
}

/// Synthetic offered load for one process.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Per-round probability of generating a message (1.0 = one per round,
    /// the paper's maximum service rate).
    pub gen_prob: f64,
    /// Total messages this process will generate.
    pub total: u64,
    /// Payload size in bytes.
    pub payload_size: usize,
    /// Foreign-dependency policy.
    pub deps: DepPolicy,
}

impl Workload {
    /// Back-to-back generation of `total` messages of `payload_size` bytes.
    pub fn fixed_count(total: u64, payload_size: usize) -> Self {
        Workload {
            gen_prob: 1.0,
            total,
            payload_size,
            deps: DepPolicy::default(),
        }
    }

    /// Bernoulli offered load: each round, generate with probability
    /// `gen_prob`, up to `total` messages.
    pub fn bernoulli(gen_prob: f64, total: u64, payload_size: usize) -> Self {
        assert!((0.0..=1.0).contains(&gen_prob), "probability out of range");
        Workload {
            gen_prob,
            total,
            payload_size,
            deps: DepPolicy::default(),
        }
    }

    /// No generation at all (pure receiver).
    pub fn silent() -> Self {
        Workload {
            gen_prob: 0.0,
            total: 0,
            payload_size: 0,
            deps: DepPolicy::default(),
        }
    }

    /// Overrides the dependency policy.
    pub fn with_deps(mut self, deps: DepPolicy) -> Self {
        self.deps = deps;
        self
    }
}

/// One simulated group member: engine + workload generator + probes.
pub struct UrcgcNode {
    engine: Engine,
    workload: Workload,
    rng: ChaCha8Rng,
    submitted: u64,
    /// mid → round at which *this* node processed it.
    deliveries: HashMap<Mid, Round>,
    /// Exact local processing order (the causal-order witness for tests).
    delivery_log: Vec<Mid>,
    /// Published dependency lists of every message processed here.
    deps_of: HashMap<Mid, Vec<Mid>>,
    /// mid → round at which this node *generated* it.
    generated: HashMap<Mid, Round>,
    /// Most recently processed foreign message (for [`DepPolicy`]).
    latest_foreign: Option<Mid>,
    /// Orphan-destruction victims observed here.
    discarded: Vec<Mid>,
    /// (round, history length) samples, one per round.
    history_series: Vec<(u64, usize)>,
    /// (round, waiting length) samples, one per round.
    waiting_series: Vec<(u64, usize)>,
    /// Frames that failed to decode (corruption casualties).
    undecodable: u64,
    /// Reused encode arena: one allocation per outgoing frame, shared
    /// across every destination of a broadcast.
    frames: FrameCache,
    /// Optional overlay relay layer. `None` (the default) keeps the
    /// paper's direct n-unicast broadcast path, bit for bit.
    overlay: Option<Disseminator>,
}

impl UrcgcNode {
    /// Builds the node for process `me`.
    pub fn new(me: ProcessId, cfg: ProtocolConfig, workload: Workload, seed: u64) -> Self {
        UrcgcNode {
            engine: Engine::new(me, cfg),
            workload,
            rng: ChaCha8Rng::seed_from_u64(
                seed ^ (0x9E37_79B9_7F4A_7C15u64).wrapping_mul(me.0 as u64 + 1),
            ),
            submitted: 0,
            deliveries: HashMap::new(),
            delivery_log: Vec::new(),
            deps_of: HashMap::new(),
            generated: HashMap::new(),
            latest_foreign: None,
            discarded: Vec::new(),
            history_series: Vec::new(),
            waiting_series: Vec::new(),
            undecodable: 0,
            frames: FrameCache::new(),
            overlay: None,
        }
    }

    /// Routes this node's `data`/`decision` broadcasts over the overlay
    /// instead of direct n-unicast (control traffic stays direct). Every
    /// group member must be given the same config.
    pub fn with_overlay(mut self, cfg: OverlayConfig) -> Self {
        let n = self.engine.config().n;
        self.overlay = Some(Disseminator::new(self.engine.me(), n, cfg));
        self
    }

    /// The overlay relay layer, if enabled.
    pub fn overlay(&self) -> Option<&Disseminator> {
        self.overlay.as_ref()
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Messages this node has generated so far.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Per-mid local processing rounds.
    pub fn deliveries(&self) -> &HashMap<Mid, Round> {
        &self.deliveries
    }

    /// The exact order in which this node processed messages.
    pub fn delivery_log(&self) -> &[Mid] {
        &self.delivery_log
    }

    /// The published dependency list of a message processed here.
    pub fn deps_of(&self, mid: Mid) -> Option<&[Mid]> {
        self.deps_of.get(&mid).map(Vec::as_slice)
    }

    /// Per-mid generation rounds (own messages only).
    pub fn generated(&self) -> &HashMap<Mid, Round> {
        &self.generated
    }

    /// Orphan-destruction victims observed by this node.
    pub fn discarded(&self) -> &[Mid] {
        &self.discarded
    }

    /// Per-round history-length samples.
    pub fn history_series(&self) -> &[(u64, usize)] {
        &self.history_series
    }

    /// Per-round waiting-list samples.
    pub fn waiting_series(&self) -> &[(u64, usize)] {
        &self.waiting_series
    }

    /// Frames dropped because they failed to decode (corruption).
    pub fn undecodable(&self) -> u64 {
        self.undecodable
    }

    /// Whether the node has generated its whole budget and holds no
    /// backlog — including no *known gap*: the latest decision must not
    /// name any process that has processed further than this node has
    /// (such a gap means recovery is still owed).
    pub fn is_quiescent(&self) -> bool {
        if !self.engine.status().is_active() {
            return true;
        }
        if self.submitted < self.workload.total || !self.engine.gauges().is_drained() {
            return false;
        }
        let d = self.engine.last_decision();
        (0..d.n()).all(|q| {
            let p = ProcessId::from_index(q);
            d.max_processed[q].seq <= self.engine.last_processed(p)
                || !self.engine.view().is_alive(d.max_processed[q].holder)
                || d.max_processed[q].holder == self.engine.me()
        })
    }

    fn maybe_generate(&mut self, round: Round) {
        if !self.engine.status().is_active() || self.submitted >= self.workload.total {
            return;
        }
        if self.workload.gen_prob < 1.0 && !self.rng.gen_bool(self.workload.gen_prob) {
            return;
        }
        let deps: Vec<Mid> = match self.workload.deps {
            DepPolicy::OwnChain => vec![],
            DepPolicy::LatestForeign => self.latest_foreign.into_iter().collect(),
        };
        let payload = Bytes::from(vec![0u8; self.workload.payload_size]);
        match self.engine.submit(payload, &deps) {
            Ok(mid) => {
                self.submitted += 1;
                self.generated.insert(mid, round);
            }
            Err(_) => { /* entity no longer active */ }
        }
    }

    /// Drains engine effects into the network and the probes.
    fn flush(&mut self, net: &mut NetCtx<'_>) {
        let me = self.engine.me();
        while let Some(out) = self.engine.poll_output() {
            match out {
                Output::Send { to, pdu } => {
                    net.send(to, pdu.kind().label(), self.frames.encode(&pdu));
                }
                Output::Broadcast { pdu } => {
                    let kind = pdu.kind().label();
                    let inner = self.frames.encode(&pdu);
                    match self.overlay.as_mut() {
                        Some(ov) => {
                            ov.sync_view(self.engine.view().flags());
                            let (envelope, targets) = ov.broadcast(&inner);
                            for (i, to) in targets.into_iter().enumerate() {
                                if i == 0 {
                                    net.send(to, kind, envelope.clone());
                                } else {
                                    net.send_shared(to, kind, envelope.clone());
                                }
                            }
                        }
                        None => net.broadcast(kind, inner),
                    }
                }
                Output::Deliver { msg } => {
                    self.deliveries.insert(msg.mid, net.round());
                    self.delivery_log.push(msg.mid);
                    self.deps_of.insert(msg.mid, msg.deps.clone());
                    if msg.mid.origin != me {
                        self.latest_foreign = Some(msg.mid);
                    }
                }
                Output::Confirm { .. } => {}
                Output::Discarded { mids } => self.discarded.extend(mids),
                Output::StatusChanged { .. } => {}
            }
        }
    }

    /// Handles an arriving overlay envelope: forward-once to this node's
    /// children of the origin's tree, then unwrap and feed the engine.
    fn on_relay_frame(&mut self, frame: &Bytes, net: &mut NetCtx<'_>) {
        let disposition = {
            let ov = self.overlay.as_mut().expect("relay frame without overlay");
            ov.sync_view(self.engine.view().flags());
            ov.on_frame(frame)
        };
        match disposition {
            RelayDisposition::Deliver {
                origin,
                inner,
                forward,
                envelope,
            } => {
                for to in forward {
                    net.send_relayed(to, "relay", envelope.clone());
                }
                if self.engine.on_frame(origin, &inner).is_err() {
                    self.undecodable += 1;
                }
            }
            RelayDisposition::Duplicate => {}
            RelayDisposition::Undecodable => self.undecodable += 1,
        }
    }
}

impl Node for UrcgcNode {
    fn on_round(&mut self, round: Round, net: &mut NetCtx<'_>) {
        self.maybe_generate(round);
        self.engine.begin_round(round);
        self.flush(net);
        let g = self.engine.gauges();
        self.history_series.push((round.0, g.history_len));
        self.waiting_series.push((round.0, g.waiting_len));
    }

    fn on_frame(&mut self, from: ProcessId, frame: Bytes, net: &mut NetCtx<'_>) {
        // Corrupted frames (FaultPlan::corruption_rate) fail to decode and
        // are dropped — in-flight corruption degenerates to an omission,
        // which the protocol already recovers from.
        if self.overlay.is_some() && urcgc_overlay::is_relay_frame(&frame) {
            self.on_relay_frame(&frame, net);
        } else if self.engine.on_frame(from, &frame).is_err() {
            self.undecodable += 1;
        }
        self.flush(net);
    }

    fn is_done(&self) -> bool {
        self.is_quiescent()
    }
}

/// Builder for [`GroupHarness`].
pub struct GroupHarnessBuilder {
    cfg: ProtocolConfig,
    workload: Workload,
    faults: FaultPlan,
    seed: u64,
    max_rounds: u64,
    adversary: Option<Box<dyn Adversary>>,
    overlay: Option<OverlayConfig>,
}

impl GroupHarnessBuilder {
    /// Sets every process's workload.
    pub fn workload(mut self, w: Workload) -> Self {
        self.workload = w;
        self
    }

    /// Sets the fault plan.
    pub fn faults(mut self, f: FaultPlan) -> Self {
        self.faults = f;
        self
    }

    /// Sets the deterministic seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the hard round limit.
    pub fn max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Installs a delivery-schedule adversary (see
    /// [`urcgc_simnet::Adversary`]); the default is none, which leaves the
    /// engine schedule untouched.
    pub fn adversary(mut self, adv: Box<dyn Adversary>) -> Self {
        self.adversary = Some(adv);
        self
    }

    /// Routes every member's `data`/`decision` broadcasts over a shared
    /// overlay (see [`urcgc_overlay`]); the default is `None`, the paper's
    /// direct n-unicast.
    pub fn overlay(mut self, cfg: OverlayConfig) -> Self {
        self.overlay = Some(cfg);
        self
    }

    /// Builds the harness.
    pub fn build(self) -> GroupHarness {
        let n = self.cfg.n;
        let nodes: Vec<UrcgcNode> = (0..n)
            .map(|i| {
                let node = UrcgcNode::new(
                    ProcessId::from_index(i),
                    self.cfg.clone(),
                    self.workload.clone(),
                    self.seed,
                );
                match &self.overlay {
                    Some(ov) => node.with_overlay(ov.clone()),
                    None => node,
                }
            })
            .collect();
        let mut net = SimNet::new(
            nodes,
            self.faults,
            SimOptions {
                max_rounds: self.max_rounds,
                seed: self.seed,
                ..SimOptions::default()
            },
        );
        if let Some(adv) = self.adversary {
            net.set_adversary(adv);
        }
        GroupHarness { net }
    }
}

/// A full simulated group plus measurement extraction.
pub struct GroupHarness {
    net: SimNet<UrcgcNode>,
}

impl GroupHarness {
    /// Starts building a harness over `cfg`.
    pub fn builder(cfg: ProtocolConfig) -> GroupHarnessBuilder {
        GroupHarnessBuilder {
            cfg,
            workload: Workload::silent(),
            faults: FaultPlan::none(),
            seed: 1,
            max_rounds: 100_000,
            adversary: None,
            overlay: None,
        }
    }

    /// Direct access to the underlying network.
    pub fn net(&self) -> &SimNet<UrcgcNode> {
        &self.net
    }

    /// Steps one round.
    pub fn step(&mut self) {
        self.net.step();
    }

    /// Runs until every surviving node is quiescent (budget generated, no
    /// waiting backlog) — plus a short drain so in-flight frames settle —
    /// or until `max_rounds`. Returns the collected report.
    pub fn run_to_completion(&mut self, max_rounds: u64) -> GroupReport {
        let mut quiescent_streak = 0u64;
        let mut rounds = 0u64;
        while rounds < max_rounds {
            self.net.step();
            rounds += 1;
            if self.net.all_done() {
                quiescent_streak += 1;
                // Let in-flight frames and two more decision subruns settle
                // (stability, cleaning and gap detection lag behind the
                // last data message by up to a subrun each).
                if quiescent_streak >= 8 {
                    break;
                }
            } else {
                quiescent_streak = 0;
            }
        }
        self.report(rounds)
    }

    /// Runs exactly `rounds` rounds.
    pub fn run_rounds(&mut self, rounds: u64) {
        self.net.run_rounds(rounds);
    }

    /// Builds the report as of now.
    pub fn report(&self, rounds: u64) -> GroupReport {
        let nodes = self.net.nodes();
        let n = nodes.len();
        let alive: Vec<bool> = (0..n)
            .map(|i| {
                let p = ProcessId::from_index(i);
                !self.net.is_crashed(p) && nodes[i].engine().status().is_active()
            })
            .collect();

        // Per-mid generation round (from its origin). BTreeMap: the loop
        // below must visit mids in a deterministic order — delay samples
        // (and their float-summed mean) would otherwise vary run to run
        // with HashMap's per-instance hash seed.
        let mut generated: BTreeMap<Mid, Round> = BTreeMap::new();
        for node in nodes {
            generated.extend(node.generated().iter().map(|(&m, &r)| (m, r)));
        }

        // Per-mid delays: processed-by-all-alive time minus generation time.
        // Classify each generated message against the surviving group:
        // processed by all (atomicity's "all of them"), by none (the
        // permitted "none of them" branch — e.g. a message lost together
        // with its crashed origin), or by a strict subset (an atomicity
        // violation if it persists at quiescence).
        let mut delays = urcgc_metrics::DelayStats::new();
        let mut fully_processed = 0u64;
        let mut unprocessed = 0u64;
        let mut partially_processed = 0u64;
        for (&mid, &gen_round) in &generated {
            let mut max_round = 0u64;
            let mut holders = 0usize;
            let mut survivors = 0usize;
            for (i, node) in nodes.iter().enumerate() {
                if !alive[i] {
                    continue;
                }
                survivors += 1;
                if let Some(r) = node.deliveries().get(&mid) {
                    holders += 1;
                    max_round = max_round.max(r.0);
                }
            }
            if survivors > 0 && holders == survivors {
                fully_processed += 1;
                let delta = max_round.saturating_sub(gen_round.0).max(1);
                delays.record(urcgc_simnet::rounds_to_rtd(delta));
            } else if holders == 0 {
                unprocessed += 1;
            } else {
                partially_processed += 1;
            }
        }

        GroupReport {
            rounds,
            quiesced: self.net.all_done(),
            alive,
            generated_total: generated.len() as u64,
            fully_processed,
            unprocessed,
            partially_processed,
            delays,
            stats: self.net.stats().clone(),
            statuses: nodes.iter().map(|nd| nd.engine().status()).collect(),
            flow_blocked_rounds: nodes
                .iter()
                .map(|nd| nd.engine().stats().flow_blocked_rounds)
                .sum(),
            history_series: nodes
                .iter()
                .map(|nd| nd.history_series().to_vec())
                .collect(),
            waiting_series: nodes
                .iter()
                .map(|nd| nd.waiting_series().to_vec())
                .collect(),
            last_processed: nodes
                .iter()
                .map(|nd| {
                    (0..n)
                        .map(|q| nd.engine().last_processed(ProcessId::from_index(q)))
                        .collect()
                })
                .collect(),
            discarded: nodes.iter().map(|nd| nd.discarded().to_vec()).collect(),
        }
    }
}

/// Measurements extracted from a finished run.
#[derive(Clone, Debug)]
pub struct GroupReport {
    /// Rounds executed.
    pub rounds: u64,
    /// Whether the run ended because every surviving node quiesced
    /// (`false` means it hit the round limit with work still outstanding —
    /// the checker's stall oracle keys off this).
    pub quiesced: bool,
    /// Which processes survived (not crashed, not left/suicided).
    pub alive: Vec<bool>,
    /// Messages generated group-wide.
    pub generated_total: u64,
    /// Messages processed by *every* surviving process.
    pub fully_processed: u64,
    /// Messages processed by *no* surviving process (the "none of them"
    /// branch of uniform atomicity — typically messages lost together with
    /// their crashed origin).
    pub unprocessed: u64,
    /// Messages processed by a strict subset of the survivors — an
    /// atomicity violation if non-zero at quiescence.
    pub partially_processed: u64,
    /// End-to-end delays in rtd, one sample per fully processed message
    /// (generation → processed by the whole surviving group).
    pub delays: urcgc_metrics::DelayStats,
    /// Engine-level traffic/fault counters.
    pub stats: SimStats,
    /// Final status per process.
    pub statuses: Vec<ProcessStatus>,
    /// Group-wide total of rounds in which flow control suppressed a
    /// pending generation (Figure 6 b's cost metric).
    pub flow_blocked_rounds: u64,
    /// Per-process (round, history length) samples.
    pub history_series: Vec<Vec<(u64, usize)>>,
    /// Per-process (round, waiting length) samples.
    pub waiting_series: Vec<Vec<(u64, usize)>>,
    /// Per-process final `last_processed` vectors.
    pub last_processed: Vec<Vec<u64>>,
    /// Per-process orphan-destruction victims.
    pub discarded: Vec<Vec<Mid>>,
}

impl GroupReport {
    /// Uniform-atomicity check: every message that was generated was
    /// processed by every surviving process (no failures ⇒ must hold; with
    /// failures, holds for all non-discarded messages).
    pub fn all_processed_everything(&self) -> bool {
        self.fully_processed == self.generated_total
    }

    /// Uniform atomicity in its exact form (Definition 3.2): every message
    /// was processed either by all surviving processes or by none of them.
    /// Messages lost with a crashed origin fall in the "none" branch and do
    /// not violate atomicity.
    pub fn atomicity_holds(&self) -> bool {
        self.partially_processed == 0
    }

    /// Uniform-agreement check on frontiers: all surviving processes ended
    /// with identical `last_processed` vectors.
    pub fn frontiers_agree(&self) -> bool {
        let mut iter = self
            .alive
            .iter()
            .zip(&self.last_processed)
            .filter(|(a, _)| **a)
            .map(|(_, v)| v);
        let Some(first) = iter.next() else {
            return true;
        };
        iter.all(|v| v == first)
    }

    /// Duration in rtd units.
    pub fn rtd(&self) -> f64 {
        urcgc_simnet::rounds_to_rtd(self.rounds)
    }

    /// Maximum history length observed anywhere.
    pub fn max_history(&self) -> usize {
        self.history_series
            .iter()
            .flatten()
            .map(|&(_, l)| l)
            .max()
            .unwrap_or(0)
    }

    /// Maximum waiting-list length observed anywhere.
    pub fn max_waiting(&self) -> usize {
        self.waiting_series
            .iter()
            .flatten()
            .map(|&(_, l)| l)
            .max()
            .unwrap_or(0)
    }

    /// The history-length series of one process, in (rtd, len) form,
    /// averaged over each subrun for plotting.
    pub fn history_series_rtd(&self, p: ProcessId) -> Vec<(f64, f64)> {
        self.history_series[p.index()]
            .iter()
            .map(|&(r, l)| (urcgc_simnet::rounds_to_rtd(r), l as f64))
            .collect()
    }
}

/// A run outcome plus report, for callers that need both.
pub struct CompletedRun {
    /// Why the engine stopped.
    pub outcome: RunOutcome,
    /// The measurements.
    pub report: GroupReport,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_process_group_reaches_atomic_agreement() {
        let cfg = ProtocolConfig::new(5);
        let mut h = GroupHarness::builder(cfg)
            .workload(Workload::fixed_count(10, 16))
            .seed(7)
            .build();
        let report = h.run_to_completion(1_000);
        assert_eq!(report.generated_total, 50);
        assert!(report.all_processed_everything());
        assert!(report.frontiers_agree());
        assert!(report.statuses.iter().all(|s| s.is_active()));
    }

    #[test]
    fn reliable_delay_floor_is_half_rtd() {
        let cfg = ProtocolConfig::new(4);
        let mut h = GroupHarness::builder(cfg)
            .workload(Workload::fixed_count(5, 8).with_deps(DepPolicy::OwnChain))
            .seed(3)
            .build();
        let report = h.run_to_completion(500);
        assert!(report.all_processed_everything());
        // "under reliable system conditions D ≥ 1/2 rtd"
        assert!(report.delays.min().unwrap() >= 0.5);
        assert!(report.delays.mean().unwrap() < 2.0, "no recovery stalls");
    }

    #[test]
    fn histories_are_cleaned_under_reliable_conditions() {
        let cfg = ProtocolConfig::new(5);
        let mut h = GroupHarness::builder(cfg)
            .workload(Workload::fixed_count(20, 8))
            .seed(11)
            .build();
        let report = h.run_to_completion(2_000);
        // Section 6 bounds the failure-free history at ~2n for the paper's
        // per-subrun generation; at our maximum service rate (one message
        // per *round* per process) the send→stable→purge pipeline is ~4
        // rounds deep, so the steady-state bound is ~4n.
        assert!(
            report.max_history() <= 4 * 5,
            "max history {} exceeds ~4n",
            report.max_history()
        );
        // After the run the histories have been purged to (near) empty.
        let final_lens: Vec<usize> = report
            .history_series
            .iter()
            .map(|s| s.last().map(|&(_, l)| l).unwrap_or(0))
            .collect();
        assert!(final_lens.iter().all(|&l| l <= 5), "{final_lens:?}");
    }

    #[test]
    fn omission_failures_are_recovered() {
        let cfg = ProtocolConfig::new(5);
        let mut h = GroupHarness::builder(cfg)
            .workload(Workload::fixed_count(20, 8))
            .faults(FaultPlan::none().omission_rate(1.0 / 100.0))
            .seed(13)
            .build();
        let report = h.run_to_completion(4_000);
        assert!(
            report.all_processed_everything(),
            "fully {}/{} (statuses {:?})",
            report.fully_processed,
            report.generated_total,
            report.statuses
        );
        assert!(report.frontiers_agree());
    }

    #[test]
    fn crash_of_member_is_detected_and_group_continues() {
        let cfg = ProtocolConfig::new(5).with_k(2);
        // p4 crashes at round 6 (mid-run).
        let faults = FaultPlan::none().crash_at(ProcessId(4), Round(6));
        let mut h = GroupHarness::builder(cfg)
            .workload(Workload::fixed_count(15, 8))
            .faults(faults)
            .seed(17)
            .build();
        let report = h.run_to_completion(2_000);
        assert!(!report.alive[4]);
        // Survivors agree and processed all *surviving* messages.
        assert!(report.frontiers_agree());
        assert!(report.statuses[..4].iter().all(|s| s.is_active()));
        // The group view converged on p4's crash.
        // (Check through the last decision of p0's engine.)
        let d = h.net().node(ProcessId(0)).engine().last_decision();
        assert!(!d.process_state[4]);
    }

    #[test]
    fn coordinator_crash_defers_decision_one_subrun() {
        let cfg = ProtocolConfig::new(5).with_k(3);
        // The coordinator of subrun 1 (p1) crashes right before its
        // decision broadcast.
        let faults = FaultPlan::none().consecutive_coordinator_crashes(1, 1, 5);
        let mut h = GroupHarness::builder(cfg)
            .workload(Workload::fixed_count(10, 8))
            .faults(faults)
            .seed(19)
            .build();
        let report = h.run_to_completion(2_000);
        assert!(report.frontiers_agree());
        assert!(report.statuses[0].is_active());
        // Processing was NOT suspended: delays stay flat (the urcgc
        // headline property, Figure 4 under crash conditions).
        assert!(report.delays.mean().unwrap() < 3.0);
    }

    #[test]
    fn report_distinguishes_quiescence_from_round_limit() {
        let cfg = ProtocolConfig::new(4);
        let mut h = GroupHarness::builder(cfg.clone())
            .workload(Workload::fixed_count(5, 8))
            .seed(23)
            .build();
        let done = h.run_to_completion(1_000);
        assert!(done.quiesced);
        // Same run cut off after 3 rounds: the budget cannot be finished.
        let mut h = GroupHarness::builder(cfg)
            .workload(Workload::fixed_count(5, 8))
            .seed(23)
            .build();
        let cut = h.run_to_completion(3);
        assert!(!cut.quiesced);
        assert_eq!(cut.rounds, 3);
    }

    #[test]
    fn schedule_adversary_reaches_the_engines() {
        struct Reverser;
        impl Adversary for Reverser {
            fn reorder(
                &mut self,
                _round: Round,
                frames: &[urcgc_simnet::FrameView],
            ) -> Option<Vec<usize>> {
                Some((0..frames.len()).rev().collect())
            }
        }
        let cfg = ProtocolConfig::new(4);
        let mut h = GroupHarness::builder(cfg)
            .workload(Workload::fixed_count(8, 8))
            .seed(29)
            .adversary(Box::new(Reverser))
            .build();
        let report = h.run_to_completion(2_000);
        // Reordering within a round is a legal asynchrony: the protocol
        // must still reach atomic agreement.
        assert!(report.quiesced);
        assert!(report.all_processed_everything());
        assert!(report.frontiers_agree());
    }

    #[test]
    #[cfg(feature = "checker-knobs")]
    fn broken_purge_knob_discards_unstable_history() {
        // With the deliberate purge-before-stability bug and a slow
        // receiver, some node must at some point have purged past another
        // node's processed frontier — exactly what the checker's stability
        // oracle looks for. Sample the invariant every round.
        let cfg = ProtocolConfig::new(5).with_broken_purge_before_stability();
        let faults = FaultPlan::none().slow_sender(ProcessId(1), 2);
        let mut h = GroupHarness::builder(cfg)
            .workload(Workload::fixed_count(20, 8))
            .faults(faults)
            .seed(31)
            .build();
        let mut violated = false;
        for _ in 0..2_000 {
            h.step();
            let nodes = h.net().nodes();
            'scan: for holder in nodes {
                if !holder.engine().status().is_active() {
                    continue;
                }
                for peer in nodes {
                    if !peer.engine().status().is_active()
                        || !holder.engine().view().is_alive(peer.engine().me())
                    {
                        continue;
                    }
                    for q in 0..5 {
                        let q = ProcessId::from_index(q);
                        if holder.engine().history_purged_to(q) > peer.engine().last_processed(q) {
                            violated = true;
                            break 'scan;
                        }
                    }
                }
            }
            if violated {
                break;
            }
        }
        assert!(violated, "broken purge never outran a peer's frontier");
    }

    #[test]
    fn overlay_group_reaches_atomic_agreement_with_flat_fanout() {
        let n = 9;
        let cfg = ProtocolConfig::new(n);
        let mut h = GroupHarness::builder(cfg)
            .workload(Workload::fixed_count(8, 16))
            .seed(41)
            .overlay(OverlayConfig::tree(2, 0xfeed))
            .build();
        let report = h.run_to_completion(4_000);
        assert!(report.quiesced);
        assert!(report.all_processed_everything());
        assert!(report.frontiers_agree());
        // Dissemination really went hop-by-hop: interior tree nodes forwarded
        // frames, and the relayed byte gauge is non-zero.
        let relayed: u64 = report.stats.frames_relayed.iter().sum();
        assert!(relayed > 0, "no forwards — overlay was bypassed");
        assert!(report.stats.relayed_bytes > 0);
        // Flat fan-out: no process originates more than degree copies per
        // logical broadcast, where direct n-unicast would send n−1 = 8.
        // Compare against a direct-unicast twin of the same run.
        let cfg = ProtocolConfig::new(n);
        let mut direct = GroupHarness::builder(cfg)
            .workload(Workload::fixed_count(8, 16))
            .seed(41)
            .build();
        let dreport = direct.run_to_completion(4_000);
        let overlay_origin: u64 = report.stats.frames_sent.iter().sum();
        let direct_origin: u64 = dreport.stats.frames_sent.iter().sum();
        assert!(
            overlay_origin * 2 < direct_origin,
            "overlay originated {overlay_origin} vs direct {direct_origin}"
        );
    }

    #[test]
    fn overlay_survives_relay_node_crash() {
        // A mid-tree relay crashes while traffic is in flight; re-parenting
        // plus the engine's recovery path must still reach atomic agreement
        // among the survivors. K must absorb the re-parenting window: until
        // the coordinator declares the relay failed, decisions keep routing
        // through the corpse, so a downstream process can miss several
        // consecutive decisions without being at fault (PROTOCOL.md §8).
        let n = 7;
        let cfg = ProtocolConfig::new(n).with_k(4);
        let faults = FaultPlan::none().crash_at(ProcessId(3), Round(10));
        let mut h = GroupHarness::builder(cfg)
            .workload(Workload::fixed_count(10, 16))
            .faults(faults)
            .seed(43)
            .overlay(OverlayConfig::tree(2, 0xbeef))
            .build();
        let report = h.run_to_completion(6_000);
        assert!(!report.alive[3]);
        assert!(report.frontiers_agree());
        assert!(report.atomicity_holds());
        assert!(
            report.statuses[..3].iter().all(|s| s.is_active())
                && report.statuses[4..].iter().all(|s| s.is_active()),
            "statuses {:?} quiesced={} fully={}/{}",
            report.statuses,
            report.quiesced,
            report.fully_processed,
            report.generated_total,
        );
    }

    #[test]
    fn gossip_overlay_reaches_agreement_via_recovery() {
        // Gossip coverage is probabilistic; the engine's recovery-from-
        // history fills whatever the rumor missed, so the end state is
        // still uniform agreement.
        let cfg = ProtocolConfig::new(8);
        let mut h = GroupHarness::builder(cfg)
            .workload(Workload::fixed_count(6, 16))
            .seed(47)
            .overlay(OverlayConfig::gossip(3, 0xabcd))
            .build();
        let report = h.run_to_completion(6_000);
        assert!(report.quiesced, "gossip run stalled");
        assert!(report.all_processed_everything());
        assert!(report.frontiers_agree());
    }

    #[test]
    fn overlay_runs_are_deterministic() {
        let run = |seed: u64| {
            let cfg = ProtocolConfig::new(6);
            let mut h = GroupHarness::builder(cfg)
                .workload(Workload::bernoulli(0.5, 8, 8))
                .faults(FaultPlan::none().omission_rate(0.01))
                .seed(seed)
                .overlay(OverlayConfig::tree(3, 99))
                .build();
            let r = h.run_to_completion(4_000);
            (
                r.rounds,
                r.generated_total,
                r.fully_processed,
                r.stats.frames_sent,
                r.stats.frames_relayed,
            )
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn deterministic_runs_with_same_seed() {
        let run = |seed: u64| {
            let cfg = ProtocolConfig::new(4);
            let mut h = GroupHarness::builder(cfg)
                .workload(Workload::bernoulli(0.5, 10, 8))
                .faults(FaultPlan::none().omission_rate(0.01))
                .seed(seed)
                .build();
            let r = h.run_to_completion(3_000);
            (r.rounds, r.generated_total, r.fully_processed)
        };
        assert_eq!(run(5), run(5));
    }
}
