//! The urcgc protocol state machine (Section 4 of the paper).
//!
//! One [`Engine`] embodies one group member `p ∈ G`. It is strictly
//! sans-I/O: callers feed it round boundaries, decoded PDUs and application
//! submissions, and drain [`Output`] effects. All protocol rules live here:
//!
//! * **per-round behaviour** — at most one new application broadcast per
//!   round (the paper's maximum service rate of "one message a round"),
//!   gated by the distributed flow control of Figure 6 b;
//! * **per-subrun behaviour** — a request to the rotating coordinator in the
//!   first round; as coordinator, a decision computed and broadcast in the
//!   second;
//! * **causal processing** — a received message is processed only once all
//!   its published causes are; otherwise it waits;
//! * **failure handling** — embedded in the decision flow: `attempts`/`K`
//!   crash declaration, suicide on learning one's own declared death,
//!   leaving after `K` missed decisions or `R` fruitless recovery attempts,
//!   history cleaning on `full_group` decisions, orphan-sequence
//!   destruction on decided unrecoverable gaps.

use std::collections::VecDeque;
use std::sync::Arc;

use bytes::Bytes;

use urcgc_causal::{DeliveryTracker, Labeler, WaitingList};
use urcgc_history::{FlowControl, History, StabilityDelta, StabilityMatrix, StableVector};
use urcgc_types::{
    decode_pdu, DataMsg, Decision, GroupView, Mid, Pdu, ProcessId, ProtocolConfig, RecoveryBatch,
    RecoveryBatchRq, RecoveryReply, RecoveryRq, RecoveryRun, RecoveryWant, RequestMsg, Round,
    Subrun, WireError,
};

use crate::output::{EngineStats, Output, ProcessStatus, StatusReason, SubmitError};

/// How many subruns old a request may be and still enter the current
/// stability matrix. Contributions are monotone state, so folding in stale
/// ones is conservative (mins only shrink); the window lets the group
/// absorb stragglers whose latency exceeds one round (see
/// `Engine::handle_request`).
const REQUEST_STALENESS_SUBRUNS: u64 = 2;

/// A group member executing the urcgc protocol.
pub struct Engine {
    me: ProcessId,
    cfg: ProtocolConfig,
    status: ProcessStatus,
    /// Why `status` left `Active` (`None` while active).
    status_reason: Option<StatusReason>,
    view: GroupView,
    labeler: Labeler,
    tracker: DeliveryTracker,
    waiting: WaitingList,
    history: History,
    flow: FlowControl,
    /// Most recent decision applied (starts at genesis).
    last_decision: Decision,
    /// Subrun of the most recently applied decision, used for the
    /// missed-K-decisions exit rule. `None` until the first decision.
    last_decision_subrun: Option<Subrun>,
    /// Coordinator-side request accumulator for the subrun we coordinate,
    /// with the accumulated [`StabilityDelta`] its `record` calls emitted.
    matrix: Option<(Subrun, StabilityMatrix, StabilityDelta)>,
    /// Requests that arrived while no matrix was open (stragglers,
    /// forwarded requests racing the round boundary); folded into the next
    /// matrix if still within the staleness window. At most one per sender.
    request_stash: Vec<RequestMsg>,
    /// Labeled submissions awaiting their broadcast round (FIFO).
    pending: VecDeque<(Mid, Vec<Mid>, Bytes)>,
    outbox: VecDeque<Output>,
    current_round: Round,
    missed_decisions: u32,
    recovery_attempts: u32,
    processed_at_last_recovery: u64,
    stats: EngineStats,
}

impl Engine {
    /// A fresh entity for process `me` under `cfg`.
    ///
    /// # Panics
    /// Panics if the configuration is invalid or `me` is outside the group.
    pub fn new(me: ProcessId, cfg: ProtocolConfig) -> Self {
        cfg.validate().expect("invalid protocol configuration");
        assert!(
            me.index() < cfg.n,
            "process {me} outside group of {}",
            cfg.n
        );
        let n = cfg.n;
        let flow = match cfg.history_threshold {
            Some(t) => FlowControl::with_threshold(t),
            None => FlowControl::disabled(),
        };
        Engine {
            me,
            status: ProcessStatus::Active,
            status_reason: None,
            view: GroupView::all_alive(n),
            labeler: Labeler::new(me, n, cfg.causality),
            tracker: DeliveryTracker::new(n),
            waiting: WaitingList::new(),
            history: History::new(n),
            flow,
            last_decision: Decision::genesis(n),
            last_decision_subrun: None,
            matrix: None,
            request_stash: Vec::new(),
            pending: VecDeque::new(),
            outbox: VecDeque::new(),
            current_round: Round(0),
            missed_decisions: 0,
            recovery_attempts: 0,
            processed_at_last_recovery: 0,
            stats: EngineStats::default(),
            cfg,
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// This entity's process id.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// Current life-cycle status.
    pub fn status(&self) -> ProcessStatus {
        self.status
    }

    /// Why the entity left `Active`, if it has (`None` while active). Lets
    /// harnesses distinguish a self-ejection (missed decisions, exhausted
    /// recovery) from a group verdict (declared crashed).
    pub fn status_reason(&self) -> Option<StatusReason> {
        self.status_reason
    }

    /// The protocol configuration.
    pub fn config(&self) -> &ProtocolConfig {
        &self.cfg
    }

    /// Whether the checker-only broken-purge knob is on (always false
    /// without the `checker-knobs` feature, where the field does not exist).
    #[inline]
    fn broken_purge_enabled(&self) -> bool {
        #[cfg(feature = "checker-knobs")]
        {
            self.cfg.broken_purge_before_stability
        }
        #[cfg(not(feature = "checker-knobs"))]
        {
            false
        }
    }

    /// The local group view.
    pub fn view(&self) -> &GroupView {
        &self.view
    }

    /// The most recent decision applied.
    pub fn last_decision(&self) -> &Decision {
        &self.last_decision
    }

    /// Live counters (gauges refreshed on read).
    pub fn stats(&self) -> EngineStats {
        let mut s = self.stats;
        s.waiting = self.waiting.len();
        s.history_len = self.history.len();
        s
    }

    /// Every state-population gauge in one read — history, waiting list,
    /// pending submissions, residency, and purge lag. Replaces the six
    /// per-gauge getters the API used to carry; the same struct is
    /// embedded in [`EngineSnapshot`](crate::output::EngineSnapshot).
    pub fn gauges(&self) -> crate::output::EngineGauges {
        crate::output::EngineGauges {
            history_len: self.history.len(),
            history_bytes: self.history.payload_bytes(),
            history_segments: self.history.segments_live(),
            purge_lag: self.purge_lag(),
            waiting_len: self.waiting.len(),
            pending_len: self.pending.len(),
        }
    }

    /// Highest contiguous sequence processed for origin `q`.
    pub fn last_processed(&self, q: ProcessId) -> u64 {
        self.tracker.last_processed(q)
    }

    /// Whether `mid` has been processed here.
    pub fn has_processed(&self, mid: Mid) -> bool {
        self.tracker.is_processed(mid)
    }

    /// Highest sequence purged from origin `q`'s local history (0 if
    /// nothing has been purged). Oracle-facing: the checker's
    /// stability-safety invariant compares this against every alive peer's
    /// processed frontier.
    pub fn history_purged_to(&self, q: ProcessId) -> u64 {
        self.history.stable_frontier(q)
    }

    /// How far processing runs ahead of group stability, in messages (the
    /// [`EngineGauges::purge_lag`](crate::output::EngineGauges) field).
    fn purge_lag(&self) -> u64 {
        (0..self.cfg.n)
            .map(|q| {
                let q = ProcessId::from_index(q);
                self.tracker
                    .last_processed(q)
                    .saturating_sub(self.history.stable_frontier(q))
            })
            .sum()
    }

    /// A point-in-time view of the whole entity — the operations/debugging
    /// surface (exported by the UDP runtime's stats channel).
    pub fn snapshot(&self) -> crate::output::EngineSnapshot {
        crate::output::EngineSnapshot {
            me: self.me.0,
            status: format!("{:?}", self.status),
            round: self.current_round.0,
            subrun: self.current_round.subrun().0,
            last_decision_subrun: self.last_decision_subrun.map(|s| s.0),
            last_decision_full_group: self.last_decision.full_group,
            frontier: self.tracker.last_processed_vector(),
            alive: self.view.flags().to_vec(),
            gauges: self.gauges(),
            missed_decisions: self.missed_decisions,
            recovery_attempts: self.recovery_attempts,
            stats: self.stats(),
        }
    }

    // ------------------------------------------------------------------
    // Inputs
    // ------------------------------------------------------------------

    /// `urcgc.data.Rq`: queues an application message. `chosen_deps` names
    /// the messages this one causally depends on (interpreted per the
    /// configured [`CausalityMode`](urcgc_types::CausalityMode)). Returns
    /// the assigned mid; a [`Output::Confirm`] follows once the message is
    /// broadcast and locally processed.
    pub fn submit(&mut self, payload: Bytes, chosen_deps: &[Mid]) -> Result<Mid, SubmitError> {
        if !self.status.is_active() {
            return Err(SubmitError::NotActive(self.status));
        }
        let (mid, deps) = self
            .labeler
            .label(chosen_deps)
            .map_err(|e| SubmitError::BadLabel(e.to_string()))?;
        self.pending.push_back((mid, deps, payload));
        Ok(mid)
    }

    /// Advances the entity to `round` and performs its round actions.
    /// Drivers must call this once per round, monotonically.
    pub fn begin_round(&mut self, round: Round) {
        if !self.status.is_active() {
            return;
        }
        self.current_round = round;
        let subrun = round.subrun();

        if round.is_request_phase() {
            self.check_missed_decisions(subrun);
            if !self.status.is_active() {
                return;
            }
            self.maybe_broadcast_pending(round);
            self.send_request(subrun);
        } else {
            self.maybe_broadcast_pending(round);
            self.coordinator_decide(subrun);
            self.attempt_recovery();
        }
        #[cfg(debug_assertions)]
        self.debug_validate();
    }

    /// Internal-consistency checks run at every round boundary in debug
    /// builds (tests, examples): a violated invariant here means an engine
    /// bug, caught at the round it is introduced rather than rounds later
    /// as a mysterious protocol divergence.
    #[cfg(debug_assertions)]
    fn debug_validate(&self) {
        let n = self.cfg.n;
        debug_assert_eq!(self.last_decision.n(), n, "decision width drifted");
        debug_assert_eq!(self.view.n(), n, "view width drifted");
        // A message sitting in the waiting list must genuinely be blocked:
        // if all its causes are processed it should have been released.
        for msg in self.waiting.iter() {
            debug_assert!(
                !self.tracker.deliverable(&msg.deps),
                "releasable message {} stuck in waiting list",
                msg.mid
            );
        }
        // Everything the history holds has been processed here.
        for q in 0..n {
            let q = ProcessId::from_index(q);
            let hi = self.history.highest_seq(q);
            debug_assert!(
                hi == 0 || self.tracker.is_processed(Mid::new(q, hi)),
                "history holds unprocessed {q}#{hi}"
            );
        }
        // The adopted view never contradicts the adopted decision.
        for i in 0..n {
            if !self.last_decision.process_state[i] && self.last_decision_subrun.is_some() {
                debug_assert!(
                    !self.view.is_alive(ProcessId::from_index(i)),
                    "view resurrects a declared-crashed member"
                );
            }
        }
    }

    /// Feeds a decoded PDU received from `from`.
    ///
    /// Structurally invalid PDUs — fields naming processes outside the
    /// group, vectors of the wrong width — are silently dropped: a
    /// corrupted (the wire codec has no checksum; real datagram stacks do,
    /// but bit flips can also survive them) or hostile frame must never be
    /// able to panic or corrupt a group member.
    pub fn on_pdu(&mut self, from: ProcessId, pdu: Pdu) {
        if !self.status.is_active() || !self.pdu_is_well_formed(&pdu) {
            return;
        }
        match pdu {
            Pdu::Data(msg) => {
                self.handle_data(msg, false);
            }
            Pdu::Request(req) => self.handle_request(req),
            Pdu::Decision(d) => {
                self.apply_decision(&d);
            }
            Pdu::RecoveryRq(rq) => self.handle_recovery_rq(from, rq),
            Pdu::RecoveryReply(rep) => self.handle_recovery_reply(rep),
            Pdu::RecoveryBatchRq(rq) => self.handle_recovery_batch_rq(from, rq),
            Pdu::RecoveryBatch(batch) => self.handle_recovery_batch(batch),
        }
    }

    /// Convenience: decodes a wire frame and feeds it to [`Engine::on_pdu`].
    pub fn on_frame(&mut self, from: ProcessId, frame: &Bytes) -> Result<(), WireError> {
        let pdu = decode_pdu(frame)?;
        self.on_pdu(from, pdu);
        Ok(())
    }

    /// Drains the next pending effect.
    pub fn poll_output(&mut self) -> Option<Output> {
        self.outbox.pop_front()
    }

    /// Structural validation of incoming PDUs (see [`Engine::on_pdu`]).
    fn pdu_is_well_formed(&self, pdu: &Pdu) -> bool {
        let n = self.cfg.n;
        let mid_ok = |m: &Mid| m.origin.index() < n && m.seq > 0;
        let data_ok = |d: &DataMsg| mid_ok(&d.mid) && d.deps.iter().all(mid_ok);
        let decision_ok = |d: &Decision| {
            d.stable.len() == n
                && d.attempts.len() == n
                && d.process_state.len() == n
                && d.max_processed.len() == n
                && d.min_waiting.len() == n
                && d.covered.len() == n
                && d.coordinator.index() < n
                && d.max_processed.iter().all(|m| m.holder.index() < n)
        };
        match pdu {
            Pdu::Data(d) => data_ok(d.as_ref()),
            Pdu::Request(r) => {
                r.sender.index() < n
                    && r.last_processed.len() == n
                    && r.waiting.len() == n
                    && decision_ok(&r.prev_decision)
            }
            Pdu::Decision(d) => decision_ok(d),
            Pdu::RecoveryRq(rq) => {
                rq.requester.index() < n && rq.origin.index() < n && rq.after_seq <= rq.upto_seq
            }
            Pdu::RecoveryReply(rep) => {
                rep.responder.index() < n
                    && rep.origin.index() < n
                    && rep.messages.iter().all(|m| data_ok(m.as_ref()))
            }
            Pdu::RecoveryBatchRq(rq) => {
                rq.requester.index() < n
                    && rq.wants.len() <= n
                    && rq
                        .wants
                        .iter()
                        .all(|w| w.origin.index() < n && w.after_seq <= w.upto_seq)
            }
            Pdu::RecoveryBatch(batch) => {
                batch.responder.index() < n
                    && batch.runs.len() <= n
                    && batch.runs.iter().all(|r| {
                        r.origin.index() < n && r.messages.iter().all(|m| data_ok(m.as_ref()))
                    })
            }
        }
    }

    // ------------------------------------------------------------------
    // Round actions
    // ------------------------------------------------------------------

    /// The missed-decisions exit rule, evaluated at each subrun start: the
    /// decision for subrun `s−1` should have arrived by the first round of
    /// subrun `s`.
    ///
    /// The paper's rule is "a process that fails to receive from `K`
    /// consecutive coordinators autonomously leaves the group", and
    /// Lemma 4.1 makes precise that only **non-crashed** coordinators
    /// count. A process in a miss streak cannot yet distinguish its own
    /// receive omissions from coordinator crashes (a crashed coordinator
    /// broadcasts to nobody and merely "defers the decision to the next
    /// subrun"), so the miss budget is sized as `K` plus the `f` allowance
    /// the deployment is configured for: up to `f` of the missed subruns
    /// may be deferrals rather than evidence of our own failure.
    fn check_missed_decisions(&mut self, subrun: Subrun) {
        if subrun.0 == 0 {
            return;
        }
        let expected = Subrun(subrun.0 - 1);
        if self.last_decision_subrun.is_some_and(|s| s >= expected) {
            self.missed_decisions = 0;
        } else {
            self.missed_decisions += 1;
            if self.missed_decisions >= self.cfg.k + self.cfg.max_coordinator_crashes {
                self.transition(ProcessStatus::Left, StatusReason::MissedKDecisions);
            }
        }
    }

    /// Broadcasts at most one pending submission (the paper's one message a
    /// round), subject to flow control.
    fn maybe_broadcast_pending(&mut self, round: Round) {
        if self.pending.is_empty() {
            return;
        }
        if !self.flow.may_generate(self.history.len()) {
            self.stats.flow_blocked_rounds += 1;
            return;
        }
        let (mid, deps, payload) = self.pending.pop_front().expect("checked non-empty");
        let msg = Arc::new(DataMsg {
            mid,
            deps,
            round,
            payload,
        });
        // One allocation serves the broadcast, the history table and the
        // local delivery: everything downstream shares the handle.
        self.outbox.push_back(Output::Broadcast {
            pdu: Arc::new(Pdu::Data(Arc::clone(&msg))),
        });
        // "…broadcasts the message to the group and processes it."
        self.process_now(msg);
        self.drain_waiting_from(mid);
        self.outbox.push_back(Output::Confirm { mid });
    }

    /// Sends this subrun's request to the rotating coordinator (or records
    /// it directly when we are the coordinator).
    fn send_request(&mut self, subrun: Subrun) {
        let Some(coordinator) = self.view.next_live_coordinator(subrun) else {
            // Nobody alive to coordinate: the group is gone.
            self.transition(ProcessStatus::Left, StatusReason::MissedKDecisions);
            return;
        };
        let last_processed = self.tracker.last_processed_vector();
        let waiting = self.waiting.waiting_vector(self.cfg.n);
        if coordinator == self.me {
            // Self-contribution: no request message is materialized, and the
            // previous decision is only cloned if the matrix keeps it.
            let mut matrix = StabilityMatrix::new(self.cfg.n);
            let mut delta = matrix.record(self.me, last_processed, waiting, &self.last_decision);
            // Fold in stashed straggler/forwarded requests that are still
            // within the staleness window.
            for stashed in std::mem::take(&mut self.request_stash) {
                if stashed.subrun.0 + REQUEST_STALENESS_SUBRUNS >= subrun.0 {
                    delta.merge(matrix.record(
                        stashed.sender,
                        stashed.last_processed,
                        stashed.waiting,
                        &stashed.prev_decision,
                    ));
                }
            }
            self.matrix = Some((subrun, matrix, delta));
        } else {
            self.matrix = None;
            self.outbox.push_back(Output::Send {
                to: coordinator,
                pdu: Box::new(Pdu::Request(RequestMsg {
                    sender: self.me,
                    subrun,
                    last_processed,
                    waiting,
                    prev_decision: self.last_decision.clone(),
                    forwarded: false,
                })),
            });
        }
    }

    /// As coordinator: fold received requests into this subrun's decision
    /// and broadcast it.
    fn coordinator_decide(&mut self, subrun: Subrun) {
        let Some((s, matrix, delta)) = self.matrix.take() else {
            return;
        };
        if s != subrun {
            return;
        }
        let decision = matrix.compute(subrun, self.me, self.cfg.k, &self.last_decision);
        // The accumulated delta can drive this decision's purge directly —
        // but only when it provably describes the same purge the stable
        // vector would: the delta claims exactness, its baseline matches
        // the full-group decision we last applied, the new decision is
        // itself full-group, and — decisions can be lost in transit, so the
        // matrix's `freshest_prev` may sit ahead of what we applied — the
        // union of our current purge frontier and the delta's ranges
        // actually reaches the decision's stable vector. Anything else
        // falls back to the vector sweep.
        let hint_ok = decision.full_group
            && matrix.delta_exact()
            && matrix
                .freshest_prev()
                .is_some_and(|p| p.full_group && self.last_decision_subrun == Some(p.subrun))
            && {
                let mut covered: Vec<u64> = (0..self.cfg.n)
                    .map(|q| self.history.stable_frontier(ProcessId::from_index(q)))
                    .collect();
                for r in delta.ranges() {
                    let c = &mut covered[r.origin.index()];
                    *c = (*c).max(r.upto_seq);
                }
                decision
                    .stable
                    .iter()
                    .enumerate()
                    .all(|(q, &s)| s <= covered[q])
            };
        self.stats.decisions_made += 1;
        let pdu = Arc::new(Pdu::Decision(decision));
        self.outbox.push_back(Output::Broadcast {
            pdu: Arc::clone(&pdu),
        });
        let Pdu::Decision(decision) = &*pdu else {
            unreachable!("just built")
        };
        self.apply_decision_inner(decision, if hint_ok { Some(&delta) } else { None });
    }

    // ------------------------------------------------------------------
    // Message processing
    // ------------------------------------------------------------------

    /// Handles an application data message (fresh from the wire or pulled
    /// out of a peer's history). Returns whether it was processed now.
    fn handle_data(&mut self, msg: Arc<DataMsg>, via_recovery: bool) -> bool {
        if msg.mid.origin.index() >= self.cfg.n {
            // A malformed or hostile frame naming an origin outside the
            // group must not disturb (let alone panic) the entity.
            return false;
        }
        if self.tracker.is_processed(msg.mid) {
            return false; // duplicate
        }
        if self.tracker.deliverable(&msg.deps) {
            if via_recovery {
                self.stats.recovered += 1;
            }
            let mid = msg.mid;
            self.process_now(msg);
            self.drain_waiting_from(mid);
            true
        } else {
            let tracker = &self.tracker;
            let parked = self.waiting.park(msg, |m| tracker.is_processed(m));
            debug_assert!(parked, "a non-deliverable message must park");
            false
        }
    }

    /// Unconditionally processes `msg`: marks it, saves it to history,
    /// emits the indication. History and delivery share the same handle —
    /// nothing is copied.
    fn process_now(&mut self, msg: Arc<DataMsg>) {
        let newly = self.tracker.mark_processed(msg.mid);
        debug_assert!(newly, "process_now on an already-processed message");
        self.labeler.note_processed(msg.mid);
        self.history.save(Arc::clone(&msg));
        self.stats.processed += 1;
        self.outbox.push_back(Output::Deliver { msg });
    }

    /// Releases waiting messages unblocked by processing `root`, cascading
    /// wave by wave until no release unblocks another. Each wake touches
    /// only the dependents of the mid just processed, and each wave is
    /// sorted by mid — reproducing, release for release, the order of the
    /// old full-rescan fixpoint (the sweep-JSON determinism oracle).
    ///
    /// Completeness relies on the engine invariant checked in
    /// `debug_validate`: a parked message always has at least one
    /// unprocessed cause, so only the mid just processed (and, inductively,
    /// mids released here) can unblock anything.
    fn drain_waiting_from(&mut self, root: Mid) {
        let mut wave = self.waiting.wake(root);
        while !wave.is_empty() {
            let mut next = Vec::new();
            for msg in wave {
                let mid = msg.mid;
                if !self.tracker.is_processed(mid) {
                    debug_assert!(
                        self.tracker.deliverable(&msg.deps),
                        "woken message {mid} is not deliverable"
                    );
                    self.process_now(msg);
                }
                next.extend(self.waiting.wake(mid));
            }
            next.sort_by_key(|m| m.mid);
            wave = next;
        }
    }

    // ------------------------------------------------------------------
    // Coordinator input
    // ------------------------------------------------------------------

    /// Handles a member request — ours to collect, or a straggler's to
    /// salvage.
    ///
    /// The happy path records the request into the open stability matrix;
    /// requests tagged with an *earlier* subrun are accepted too (their
    /// state is monotone, so folding them in is conservative) as long as
    /// they are within [`REQUEST_STALENESS_SUBRUNS`]. A request that
    /// arrives while we are not collecting — a straggler that addressed an
    /// expired coordinator, or a forwarded request racing the round
    /// boundary — is stashed for our own next matrix and, if it has not
    /// been forwarded before, relayed once to the *next* subrun's
    /// coordinator so its sender's `attempts` counter keeps being reset.
    /// Without this, any member whose latency exceeds one round would be
    /// declared crashed regardless of `K` (its requests would always reach
    /// coordinators whose collection window had closed).
    fn handle_request(&mut self, req: RequestMsg) {
        // Decision circulation: a request can carry a decision newer than
        // anything we have seen (e.g. we missed the previous broadcast).
        self.apply_decision(&req.prev_decision);
        if !self.status.is_active() {
            return; // the carried decision may have declared us dead
        }
        let current = self.current_round.subrun();
        let fresh = req.subrun.0 + REQUEST_STALENESS_SUBRUNS >= current.0;
        if !fresh {
            return;
        }
        if let Some((subrun, matrix, delta)) = &mut self.matrix {
            if req.subrun <= *subrun {
                delta.merge(matrix.record(
                    req.sender,
                    req.last_processed,
                    req.waiting,
                    &req.prev_decision,
                ));
                return;
            }
        }
        // Not collecting (or the request is ahead of our matrix): salvage.
        if !req.forwarded && req.sender != self.me {
            let mut fwd = req.clone();
            fwd.forwarded = true;
            if let Some(next) = self.view.next_live_coordinator(current.next()) {
                if next != self.me {
                    self.outbox.push_back(Output::Send {
                        to: next,
                        pdu: Box::new(Pdu::Request(fwd)),
                    });
                }
            }
        }
        self.request_stash.retain(|r| r.sender != req.sender);
        if self.request_stash.len() < self.cfg.n {
            self.request_stash.push(req);
        }
    }

    // ------------------------------------------------------------------
    // Decisions
    // ------------------------------------------------------------------

    /// Adopts `d` if it is newer than the current decision; applies history
    /// cleaning, view updates, suicide, and orphan destruction. Returns
    /// whether it was adopted. Takes a reference and clones only on
    /// adoption, so the common stale/duplicate case copies nothing.
    fn apply_decision(&mut self, d: &Decision) -> bool {
        self.apply_decision_inner(d, None)
    }

    /// [`Engine::apply_decision`] with an optional purge hint: the
    /// coordinator's accumulated [`StabilityDelta`], passed only when
    /// `coordinator_decide` has proven it equivalent to `d.stable`.
    fn apply_decision_inner(&mut self, d: &Decision, hint: Option<&StabilityDelta>) -> bool {
        // "Newer" is judged against the last *applied* decision; before any
        // decision has been applied, even a subrun-0 decision supersedes
        // the synthetic genesis value the engine boots with. Carried
        // genesis values themselves (inside early requests) are never
        // adopted — they are boot state, not decisions.
        let newer = match self.last_decision_subrun {
            None => true,
            Some(s) => d.subrun > s,
        };
        if d.n() != self.cfg.n || !newer || d.is_genesis() {
            return false;
        }
        self.stats.decisions_applied += 1;
        self.last_decision_subrun = Some(d.subrun);
        self.missed_decisions = 0;
        self.view.merge_from_decision(&d.process_state);

        if !d.process_state[self.me.index()] {
            // The group has declared us crashed: commit suicide.
            self.last_decision = d.clone();
            self.transition(ProcessStatus::Suicided, StatusReason::DeclaredCrashed);
            return true;
        }

        if d.full_group {
            let report = if self.broken_purge_enabled() {
                // Checker-only deliberate bug (see the config field docs):
                // purge to the group *maximum* instead of the stable
                // minimum, so any lagging process loses its recovery source.
                let maxed: Vec<u64> = d.max_processed.iter().map(|m| m.seq).collect();
                self.history.advance_stability(&StableVector::new(&maxed))
            } else if let Some(delta) = hint {
                self.history
                    .advance_stability_hinted(&StableVector::new(&d.stable), delta)
            } else {
                self.history
                    .advance_stability(&StableVector::new(&d.stable))
            };
            self.stats.purged_messages += report.messages as u64;
            self.stats.purged_segments += report.segments_freed as u64;
            // Orphan-sequence destruction: only acted upon on full_group
            // decisions, when min_waiting/max_processed reflect the whole
            // (alive) group.
            let mut doomed_all: Vec<Mid> = Vec::new();
            for q in 0..self.cfg.n {
                let q = ProcessId::from_index(q);
                if d.orphan_gap(q) {
                    let from_seq = d.max_processed[q.index()].seq + 1;
                    doomed_all.extend(self.waiting.discard_origin_suffix(q, from_seq));
                }
            }
            if !doomed_all.is_empty() {
                doomed_all.sort();
                doomed_all.dedup();
                self.stats.discarded += doomed_all.len() as u64;
                self.outbox
                    .push_back(Output::Discarded { mids: doomed_all });
            }
        }
        self.last_decision = d.clone();
        true
    }

    // ------------------------------------------------------------------
    // Recovery from history
    // ------------------------------------------------------------------

    /// Serves a peer's recovery request out of our history.
    fn handle_recovery_rq(&mut self, from: ProcessId, rq: RecoveryRq) {
        if rq.origin.index() >= self.cfg.n {
            return;
        }
        let messages = self.history.range(rq.origin, rq.after_seq, rq.upto_seq);
        if messages.is_empty() {
            return;
        }
        self.outbox.push_back(Output::Send {
            to: from,
            pdu: Box::new(Pdu::RecoveryReply(RecoveryReply {
                responder: self.me,
                origin: rq.origin,
                messages,
            })),
        });
    }

    fn handle_recovery_reply(&mut self, rep: RecoveryReply) {
        for msg in rep.messages {
            self.handle_data(msg, true);
        }
    }

    /// Serves a batched recovery request: every requested origin's range is
    /// sliced from history and the non-empty runs are coalesced into a
    /// single [`RecoveryBatch`] frame back to the requester.
    fn handle_recovery_batch_rq(&mut self, from: ProcessId, rq: RecoveryBatchRq) {
        let runs: Vec<RecoveryRun> = rq
            .wants
            .iter()
            .filter(|w| w.origin.index() < self.cfg.n)
            .map(|w| RecoveryRun {
                origin: w.origin,
                messages: self.history.range(w.origin, w.after_seq, w.upto_seq),
            })
            .filter(|r| !r.messages.is_empty())
            .collect();
        if runs.is_empty() {
            return;
        }
        self.outbox.push_back(Output::Send {
            to: from,
            pdu: Box::new(Pdu::RecoveryBatch(RecoveryBatch {
                responder: self.me,
                runs,
            })),
        });
    }

    /// Unpacks a batched recovery answer; each run feeds the ordinary data
    /// path, exactly as the equivalent per-origin replies would.
    fn handle_recovery_batch(&mut self, batch: RecoveryBatch) {
        for run in batch.runs {
            for msg in run.messages {
                self.handle_data(msg, true);
            }
        }
    }

    /// Once per subrun (decision round): if the latest decision shows some
    /// process has processed further than we have on any sequence
    /// (`max_processed[q] > last_processed[q]` — how Lemma 4.1 says a
    /// process "learns the omission"), ask that most-updated process for
    /// the gap. This covers both parked messages waiting on missing causes
    /// *and* tail losses where nothing later arrived to park. Counts
    /// consecutive attempts without processing progress; `R` of them and
    /// the entity leaves the group.
    fn attempt_recovery(&mut self) {
        let processed = self.tracker.processed_count();
        if processed > self.processed_at_last_recovery {
            self.recovery_attempts = 0;
        }
        self.processed_at_last_recovery = processed;

        let mut sent_any = false;
        // Batched framing groups the per-origin asks by holder: one
        // RecoveryBatchRq per distinct most-updated peer instead of one
        // RecoveryRq per origin. Holders are visited in origin order, so
        // the per-holder want lists stay origin-sorted deterministically.
        let mut batches: Vec<(ProcessId, Vec<RecoveryWant>)> = Vec::new();
        for q in 0..self.cfg.n {
            let q = ProcessId::from_index(q);
            let maxp = self.last_decision.max_processed[q.index()];
            let lp = self.tracker.last_processed(q);
            if maxp.seq <= lp || maxp.holder == self.me || !self.view.is_alive(maxp.holder) {
                continue;
            }
            self.stats.recovery_requests += 1;
            sent_any = true;
            if self.cfg.batched_recovery {
                let want = RecoveryWant {
                    origin: q,
                    after_seq: lp,
                    upto_seq: maxp.seq,
                };
                match batches.iter_mut().find(|(h, _)| *h == maxp.holder) {
                    Some((_, wants)) => wants.push(want),
                    None => batches.push((maxp.holder, vec![want])),
                }
            } else {
                self.outbox.push_back(Output::Send {
                    to: maxp.holder,
                    pdu: Box::new(Pdu::RecoveryRq(RecoveryRq {
                        requester: self.me,
                        origin: q,
                        after_seq: lp,
                        upto_seq: maxp.seq,
                    })),
                });
            }
        }
        for (holder, wants) in batches {
            self.outbox.push_back(Output::Send {
                to: holder,
                pdu: Box::new(Pdu::RecoveryBatchRq(RecoveryBatchRq {
                    requester: self.me,
                    wants,
                })),
            });
        }
        if sent_any {
            self.recovery_attempts += 1;
            if self.recovery_attempts > self.cfg.r {
                self.transition(ProcessStatus::Left, StatusReason::RecoveryExhausted);
            }
        } else {
            self.recovery_attempts = 0;
        }
    }

    // ------------------------------------------------------------------

    fn transition(&mut self, status: ProcessStatus, reason: StatusReason) {
        if self.status == status {
            return;
        }
        self.status = status;
        self.status_reason = Some(reason);
        self.outbox
            .push_back(Output::StatusChanged { status, reason });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urcgc_types::MaxProcessed;

    const N: usize = 3;

    fn cfg() -> ProtocolConfig {
        ProtocolConfig::new(N)
    }

    /// The paper's literal per-origin recovery framing, for tests that
    /// assert on `RecoveryRq` shapes (batching is the default now).
    fn unbatched_cfg() -> ProtocolConfig {
        cfg().with_unbatched_recovery()
    }

    fn engines() -> Vec<Engine> {
        (0..N)
            .map(|i| Engine::new(ProcessId::from_index(i), cfg()))
            .collect()
    }

    /// Drains every engine's outbox and routes Send/Broadcast to peers,
    /// collecting local effects. One call ≈ instantaneous network.
    #[allow(clippy::needless_range_loop)] // mutate one engine while fanning to others
    fn route(engines: &mut [Engine]) -> Vec<(ProcessId, Output)> {
        let mut effects = Vec::new();
        loop {
            let mut moved = false;
            for i in 0..engines.len() {
                let me = engines[i].me();
                while let Some(out) = engines[i].poll_output() {
                    moved = true;
                    match out {
                        Output::Send { to, pdu } => engines[to.index()].on_pdu(me, *pdu),
                        Output::Broadcast { pdu } => {
                            for j in 0..engines.len() {
                                if j != i {
                                    // Shallow: Pdu::Data carries an Arc.
                                    engines[j].on_pdu(me, Pdu::clone(&pdu));
                                }
                            }
                        }
                        other => effects.push((me, other)),
                    }
                }
            }
            if !moved {
                return effects;
            }
        }
    }

    fn run_round(engines: &mut [Engine], round: u64) -> Vec<(ProcessId, Output)> {
        for e in engines.iter_mut() {
            e.begin_round(Round(round));
        }
        route(engines)
    }

    #[test]
    fn submit_broadcast_deliver_confirm() {
        let mut es = engines();
        let mid = es[0].submit(Bytes::from_static(b"hi"), &[]).unwrap();
        assert_eq!(mid, Mid::new(ProcessId(0), 1));
        let effects = run_round(&mut es, 0);
        let delivered: Vec<ProcessId> = effects
            .iter()
            .filter(|(_, o)| matches!(o, Output::Deliver { msg } if msg.mid == mid))
            .map(|&(p, _)| p)
            .collect();
        assert_eq!(delivered.len(), N, "all three processes processed it");
        assert!(effects.iter().any(
            |(p, o)| *p == ProcessId(0) && matches!(o, Output::Confirm { mid: m } if *m == mid)
        ));
        for e in &es {
            assert!(e.has_processed(mid));
            assert_eq!(e.gauges().history_len, 1);
        }
    }

    #[test]
    fn causal_chain_waits_for_predecessor() {
        let mut es = engines();
        // p0 submits two chained messages; deliver m2 to p1 before m1.
        let m1 = es[0].submit(Bytes::from_static(b"1"), &[]).unwrap();
        let m2 = es[0].submit(Bytes::from_static(b"2"), &[]).unwrap();
        // Extract the data PDUs manually (p0 sends one per round).
        es[0].begin_round(Round(0));
        let mut pdus = Vec::new();
        while let Some(o) = es[0].poll_output() {
            if let Output::Broadcast { pdu } = o {
                if let Pdu::Data(d) = &*pdu {
                    pdus.push(Arc::clone(d));
                }
            }
        }
        es[0].begin_round(Round(1));
        while let Some(o) = es[0].poll_output() {
            if let Output::Broadcast { pdu } = o {
                if let Pdu::Data(d) = &*pdu {
                    pdus.push(Arc::clone(d));
                }
            }
        }
        assert_eq!(pdus.len(), 2);
        // Out-of-order arrival at p1.
        es[1].on_pdu(ProcessId(0), Pdu::Data(Arc::clone(&pdus[1])));
        assert!(!es[1].has_processed(m2), "m2 must wait for m1");
        assert_eq!(es[1].gauges().waiting_len, 1);
        es[1].on_pdu(ProcessId(0), Pdu::Data(Arc::clone(&pdus[0])));
        assert!(es[1].has_processed(m1));
        assert!(es[1].has_processed(m2), "waiting m2 released after m1");
        // Delivery order: m1 then m2.
        let mut order = Vec::new();
        while let Some(o) = es[1].poll_output() {
            if let Output::Deliver { msg } = o {
                order.push(msg.mid);
            }
        }
        assert_eq!(order, vec![m1, m2]);
    }

    #[test]
    fn duplicates_are_suppressed() {
        let mut es = engines();
        es[0].submit(Bytes::from_static(b"x"), &[]).unwrap();
        run_round(&mut es, 0);
        let before = es[1].stats().processed;
        // Replay the same data message.
        let replay = DataMsg {
            mid: Mid::new(ProcessId(0), 1),
            deps: vec![],
            round: Round(0),
            payload: Bytes::from_static(b"x"),
        };
        es[1].on_pdu(ProcessId(0), Pdu::data(replay));
        assert_eq!(es[1].stats().processed, before);
        assert_eq!(
            es[1].gauges().waiting_len,
            0,
            "a replay must not park either"
        );
    }

    #[test]
    fn coordinator_produces_full_group_decision() {
        let mut es = engines();
        // Round 0 (request phase of subrun 0, coordinator p0).
        run_round(&mut es, 0);
        // Round 1: decision phase.
        let effects = run_round(&mut es, 1);
        let _ = effects;
        for e in &es {
            let d = e.last_decision();
            assert_eq!(d.subrun, Subrun(0));
            assert_eq!(d.coordinator, ProcessId(0));
            assert!(d.full_group, "all three requests reached p0");
        }
        assert_eq!(es[0].stats().decisions_made, 1);
    }

    #[test]
    fn history_cleans_after_stability() {
        let mut es = engines();
        es[0].submit(Bytes::from_static(b"a"), &[]).unwrap();
        run_round(&mut es, 0); // broadcast + requests (lp not yet counting a)
        run_round(&mut es, 1); // decision of subrun 0
        assert!(es.iter().all(|e| e.gauges().history_len == 1));
        // Subrun 1: requests now report last_processed = 1 for origin 0.
        run_round(&mut es, 2);
        run_round(&mut es, 3); // decision of subrun 1: stable[0] = 1
        for e in &es {
            assert_eq!(
                e.gauges().history_len,
                0,
                "{} should have cleaned after stability",
                e.me()
            );
        }
    }

    #[test]
    fn rotating_coordinator_changes_each_subrun() {
        let mut es = engines();
        for r in 0..6 {
            run_round(&mut es, r);
        }
        // After subruns 0,1,2 the coordinators were p0,p1,p2.
        assert_eq!(es[0].stats().decisions_made, 1);
        assert_eq!(es[1].stats().decisions_made, 1);
        assert_eq!(es[2].stats().decisions_made, 1);
    }

    #[test]
    fn suicide_on_declared_crashed() {
        let mut e = Engine::new(ProcessId(1), cfg());
        let mut d = Decision::genesis(N);
        d.subrun = Subrun(3);
        d.process_state[1] = false;
        e.on_pdu(ProcessId(0), Pdu::Decision(d));
        assert_eq!(e.status(), ProcessStatus::Suicided);
        let mut saw = false;
        while let Some(o) = e.poll_output() {
            if let Output::StatusChanged { status, reason } = o {
                assert_eq!(status, ProcessStatus::Suicided);
                assert_eq!(reason, StatusReason::DeclaredCrashed);
                saw = true;
            }
        }
        assert!(saw);
        // A dead entity accepts nothing.
        assert!(e.submit(Bytes::new(), &[]).is_err());
    }

    #[test]
    fn leaves_after_missing_k_decisions() {
        // Isolated engine in a group of 6: drives rounds but never receives
        // any decision. Miss budget = K + f allowance = 2 + 1 = 3.
        let mut e = Engine::new(ProcessId(1), ProtocolConfig::new(6).with_k(2));
        let mut left = false;
        for r in 0..30 {
            e.begin_round(Round(r));
            while let Some(o) = e.poll_output() {
                if let Output::StatusChanged { status, reason } = o {
                    assert_eq!(status, ProcessStatus::Left);
                    assert_eq!(reason, StatusReason::MissedKDecisions);
                    left = true;
                }
            }
            if left {
                // p1 coordinates subrun 1 itself (resetting its own clock
                // with its self-made decision); the miss streak then runs
                // over subruns 2, 3, 4 and hits the K + f = 3 budget at the
                // request phase of subrun 5 (round 10).
                assert_eq!(r, 10);
                break;
            }
        }
        assert!(left);
    }

    #[test]
    fn stale_decision_is_ignored() {
        let mut e = Engine::new(ProcessId(0), cfg());
        let mut newer = Decision::genesis(N);
        newer.subrun = Subrun(5);
        assert!(e.apply_decision(&newer));
        let mut stale = Decision::genesis(N);
        stale.subrun = Subrun(2);
        stale.process_state[0] = false; // malicious staleness
        assert!(!e.apply_decision(&stale));
        assert_eq!(e.status(), ProcessStatus::Active);
    }

    #[test]
    fn recovery_request_targets_most_updated() {
        let mut e = Engine::new(ProcessId(2), unbatched_cfg());
        // A message from p0 with seq 2 arrives; seq 1 was missed.
        let msg = DataMsg {
            mid: Mid::new(ProcessId(0), 2),
            deps: vec![Mid::new(ProcessId(0), 1)],
            round: Round(0),
            payload: Bytes::new(),
        };
        e.on_pdu(ProcessId(0), Pdu::data(msg));
        assert_eq!(e.gauges().waiting_len, 1);
        // A decision names p1 as most updated for origin 0.
        let mut d = Decision::genesis(N);
        d.subrun = Subrun(1);
        d.max_processed[0] = MaxProcessed {
            holder: ProcessId(1),
            seq: 2,
        };
        e.on_pdu(ProcessId(0), Pdu::Decision(d));
        // Decision round triggers the recovery ask.
        e.begin_round(Round(3));
        let mut asked = None;
        while let Some(o) = e.poll_output() {
            if let Output::Send { to, pdu } = o {
                if let Pdu::RecoveryRq(rq) = *pdu {
                    asked = Some((to, rq));
                }
            }
        }
        let (to, rq) = asked.expect("recovery request sent");
        assert_eq!(to, ProcessId(1));
        assert_eq!(rq.origin, ProcessId(0));
        assert_eq!(rq.after_seq, 0);
        assert_eq!(rq.upto_seq, 2);
    }

    #[test]
    fn recovery_is_served_from_history_and_heals() {
        let mut es = engines();
        // p0 processes two of its own messages.
        es[0].submit(Bytes::from_static(b"1"), &[]).unwrap();
        es[0].submit(Bytes::from_static(b"2"), &[]).unwrap();
        es[0].begin_round(Round(0));
        es[0].begin_round(Round(1));
        while es[0].poll_output().is_some() {}
        // p2 asks p0 for the range.
        es[0].on_pdu(
            ProcessId(2),
            Pdu::RecoveryRq(RecoveryRq {
                requester: ProcessId(2),
                origin: ProcessId(0),
                after_seq: 0,
                upto_seq: 2,
            }),
        );
        let mut reply = None;
        while let Some(o) = es[0].poll_output() {
            if let Output::Send { to, pdu } = o {
                if let Pdu::RecoveryReply(r) = *pdu {
                    assert_eq!(to, ProcessId(2));
                    reply = Some(r);
                }
            }
        }
        let reply = reply.expect("recovery served");
        assert_eq!(reply.messages.len(), 2);
        // Feeding the reply processes both in order.
        let mut e2 = Engine::new(ProcessId(2), cfg());
        e2.on_pdu(ProcessId(0), Pdu::RecoveryReply(reply));
        assert_eq!(e2.last_processed(ProcessId(0)), 2);
        assert_eq!(e2.stats().recovered, 2);
    }

    #[test]
    fn batched_recovery_coalesces_asks_and_heals() {
        // p2 lags on two origins whose most-updated holder is p0: batched
        // framing must emit ONE RecoveryBatchRq (instead of two
        // RecoveryRqs), and the served RecoveryBatch must heal both gaps.
        let cfg = ProtocolConfig::new(N).with_batched_recovery();
        let mut holder = Engine::new(ProcessId(0), cfg.clone());
        holder.submit(Bytes::from_static(b"a1"), &[]).unwrap();
        holder.begin_round(Round(0));
        while holder.poll_output().is_some() {}
        // Hand-feed p1's message so p0's history also holds origin 1.
        holder.on_pdu(
            ProcessId(1),
            Pdu::data(DataMsg {
                mid: Mid::new(ProcessId(1), 1),
                deps: vec![],
                round: Round(0),
                payload: Bytes::from_static(b"b1"),
            }),
        );
        while holder.poll_output().is_some() {}

        let mut lagger = Engine::new(ProcessId(2), cfg);
        let mut d = Decision::genesis(N);
        d.subrun = Subrun(1);
        d.max_processed[0] = MaxProcessed {
            holder: ProcessId(0),
            seq: 1,
        };
        d.max_processed[1] = MaxProcessed {
            holder: ProcessId(0),
            seq: 1,
        };
        lagger.on_pdu(ProcessId(0), Pdu::Decision(d));
        lagger.begin_round(Round(3));
        let mut batch_rqs = Vec::new();
        while let Some(o) = lagger.poll_output() {
            if let Output::Send { to, pdu } = o {
                match *pdu {
                    Pdu::RecoveryBatchRq(rq) => batch_rqs.push((to, rq)),
                    Pdu::RecoveryRq(_) => panic!("batched config must not emit per-origin asks"),
                    _ => {}
                }
            }
        }
        assert_eq!(batch_rqs.len(), 1, "one frame per holder");
        let (to, rq) = batch_rqs.pop().unwrap();
        assert_eq!(to, ProcessId(0));
        assert_eq!(rq.wants.len(), 2);
        assert_eq!(lagger.stats().recovery_requests, 2, "stats count origins");

        holder.on_pdu(ProcessId(2), Pdu::RecoveryBatchRq(rq));
        let mut batch = None;
        while let Some(o) = holder.poll_output() {
            if let Output::Send { to, pdu } = o {
                if let Pdu::RecoveryBatch(b) = *pdu {
                    assert_eq!(to, ProcessId(2));
                    batch = Some(b);
                }
            }
        }
        let batch = batch.expect("batched recovery served");
        assert_eq!(batch.runs.len(), 2, "both origins in one frame");
        lagger.on_pdu(ProcessId(0), Pdu::RecoveryBatch(batch));
        assert_eq!(lagger.last_processed(ProcessId(0)), 1);
        assert_eq!(lagger.last_processed(ProcessId(1)), 1);
        assert_eq!(lagger.stats().recovered, 2);
    }

    #[test]
    fn unbatched_config_never_emits_batch_pdus() {
        let mut e = Engine::new(ProcessId(2), unbatched_cfg());
        let mut d = Decision::genesis(N);
        d.subrun = Subrun(1);
        d.max_processed[0] = MaxProcessed {
            holder: ProcessId(0),
            seq: 1,
        };
        d.max_processed[1] = MaxProcessed {
            holder: ProcessId(0),
            seq: 1,
        };
        e.on_pdu(ProcessId(0), Pdu::Decision(d));
        e.begin_round(Round(3));
        let mut rqs = 0;
        while let Some(o) = e.poll_output() {
            if let Output::Send { pdu, .. } = o {
                match *pdu {
                    Pdu::RecoveryRq(_) => rqs += 1,
                    Pdu::RecoveryBatchRq(_) => panic!("unbatched config emits per-origin frames"),
                    _ => {}
                }
            }
        }
        assert_eq!(rqs, 2);
    }

    #[test]
    fn purge_stats_track_stability_cleaning() {
        let mut es = engines();
        es[0].submit(Bytes::from_static(b"a"), &[]).unwrap();
        run_round(&mut es, 0);
        run_round(&mut es, 1);
        run_round(&mut es, 2);
        run_round(&mut es, 3); // decision of subrun 1: stable[0] = 1 → purge
        for e in &es {
            assert_eq!(e.stats().purged_messages, 1, "{}", e.me());
            assert_eq!(
                e.stats().purged_segments,
                1,
                "drained boundary segment freed"
            );
            assert_eq!(
                e.gauges().purge_lag,
                0,
                "processing and stability agree at quiescence"
            );
        }
    }

    #[test]
    fn leaves_after_r_fruitless_recovery_attempts() {
        let cfg = ProtocolConfig::new(N).with_k(1); // R = 2K + f + 1 = 4
        let mut e = Engine::new(ProcessId(2), cfg);
        // Park a message blocked on a missing cause.
        e.on_pdu(
            ProcessId(0),
            Pdu::data(DataMsg {
                mid: Mid::new(ProcessId(0), 2),
                deps: vec![Mid::new(ProcessId(0), 1)],
                round: Round(0),
                payload: Bytes::new(),
            }),
        );
        let mut left = false;
        for s in 1..20u64 {
            // Feed a decision every subrun (so missed-K never fires) naming
            // p1 as most updated; p1 never answers.
            let mut d = Decision::genesis(N);
            d.subrun = Subrun(s);
            d.max_processed[0] = MaxProcessed {
                holder: ProcessId(1),
                seq: 2,
            };
            e.on_pdu(ProcessId(1), Pdu::Decision(d));
            e.begin_round(Subrun(s).request_round());
            e.begin_round(Subrun(s).decision_round());
            while let Some(o) = e.poll_output() {
                if let Output::StatusChanged { status, reason } = o {
                    assert_eq!(status, ProcessStatus::Left);
                    assert_eq!(reason, StatusReason::RecoveryExhausted);
                    left = true;
                }
            }
            if left {
                break;
            }
        }
        assert!(left, "entity must leave after R attempts");
    }

    #[test]
    fn orphan_destruction_discards_waiting_suffix() {
        let mut e = Engine::new(ProcessId(1), cfg());
        // Waiting: p0#3 (depends on p0#2, lost) and p2#1 depending on p0#3.
        e.on_pdu(
            ProcessId(0),
            Pdu::data(DataMsg {
                mid: Mid::new(ProcessId(0), 3),
                deps: vec![Mid::new(ProcessId(0), 2)],
                round: Round(0),
                payload: Bytes::new(),
            }),
        );
        e.on_pdu(
            ProcessId(2),
            Pdu::data(DataMsg {
                mid: Mid::new(ProcessId(2), 1),
                deps: vec![Mid::new(ProcessId(0), 3)],
                round: Round(0),
                payload: Bytes::new(),
            }),
        );
        assert_eq!(e.gauges().waiting_len, 2);
        // Full-group decision: p0 crashed, best alive holder has seq 1,
        // min_waiting 3 → gap.
        let mut d = Decision::genesis(N);
        d.subrun = Subrun(2);
        d.full_group = true;
        d.process_state[0] = false;
        d.max_processed[0] = MaxProcessed {
            holder: ProcessId(1),
            seq: 1,
        };
        d.min_waiting[0] = 3;
        e.on_pdu(ProcessId(2), Pdu::Decision(d));
        assert_eq!(e.gauges().waiting_len, 0, "orphan suffix destroyed");
        let mut discarded = Vec::new();
        while let Some(o) = e.poll_output() {
            if let Output::Discarded { mids } = o {
                discarded = mids;
            }
        }
        assert_eq!(
            discarded,
            vec![Mid::new(ProcessId(0), 3), Mid::new(ProcessId(2), 1)]
        );
        assert_eq!(e.stats().discarded, 2);
    }

    #[test]
    fn flow_control_defers_generation() {
        let cfg = ProtocolConfig::new(N).with_history_threshold(1);
        let mut e = Engine::new(ProcessId(0), cfg);
        e.submit(Bytes::from_static(b"a"), &[]).unwrap();
        e.submit(Bytes::from_static(b"b"), &[]).unwrap();
        e.begin_round(Round(0));
        // First send went out; history now holds 1 ≥ threshold.
        assert_eq!(e.gauges().pending_len, 1);
        e.begin_round(Round(1));
        assert_eq!(
            e.gauges().pending_len,
            1,
            "second send blocked by flow control"
        );
        assert!(e.stats().flow_blocked_rounds >= 1);
        // Simulate cleaning: a full-group decision with stable[0] = 1.
        let mut d = Decision::genesis(N);
        d.subrun = Subrun(1);
        d.stable = vec![1, 0, 0];
        e.on_pdu(ProcessId(1), Pdu::Decision(d));
        assert_eq!(e.gauges().history_len, 0);
        e.begin_round(Round(2));
        assert_eq!(e.gauges().pending_len, 0, "unblocked after cleaning");
    }

    #[test]
    fn single_process_group_self_coordinates() {
        let mut e = Engine::new(ProcessId(0), ProtocolConfig::new(1));
        e.submit(Bytes::from_static(b"solo"), &[]).unwrap();
        for r in 0..6 {
            e.begin_round(Round(r));
            while e.poll_output().is_some() {}
        }
        assert_eq!(e.status(), ProcessStatus::Active);
        assert_eq!(e.last_processed(ProcessId(0)), 1);
        assert_eq!(e.gauges().history_len, 0, "self-stability cleans history");
        assert_eq!(e.stats().decisions_made, 3);
    }

    #[test]
    #[should_panic(expected = "outside group")]
    fn engine_owner_must_be_in_group() {
        let _ = Engine::new(ProcessId(9), cfg());
    }
}
