#![warn(missing_docs)]

//! # urcgc — Uniform Reliable Causal Group Communication
//!
//! A faithful implementation of the algorithm of Aiello, Pagani & Rossi,
//! *Causal Ordering in Reliable Group Communications* (SIGCOMM 1993).
//!
//! The protocol solves the **URCGC problem** (Definition 3.2): application
//! messages carry explicit causal-dependency labels, and the algorithm
//! guarantees — under crash *and* send/receive-omission failures — that
//!
//! * **Uniform Atomicity**: a message processed by any active process is
//!   processed by all active processes in the group, or by none, within a
//!   bounded time;
//! * **Uniform Ordering**: causally related messages are processed in their
//!   causal order everywhere, while concurrent sequences proceed
//!   independently.
//!
//! Its distinguishing feature against CBCAST/Psync is that failure handling
//! is *embedded*: a rotating coordinator collects per-subrun requests and
//! circulates decisions that simultaneously settle message stability
//! (history cleaning), group composition (crash detection via `attempts`
//! counters) and recovery hints — normal message processing is never
//! suspended, no separate view-change/flush protocol exists.
//!
//! ## Architecture
//!
//! The protocol lives in [`Engine`], a **sans-I/O state machine**: you feed
//! it rounds ([`Engine::begin_round`]), decoded PDUs ([`Engine::on_pdu`] /
//! [`Engine::on_frame`]) and application submissions ([`Engine::submit`]),
//! and drain effects from [`Engine::poll_output`] — frames to transmit,
//! application deliveries, confirmations, status changes. The engine never
//! touches a socket or a clock, which makes it deterministic, directly
//! property-testable, and equally at home on the discrete-event simulator
//! ([`sim`]) and on real UDP sockets (`urcgc-runtime`).
//!
//! ## Quickstart
//!
//! ```
//! use bytes::Bytes;
//! use urcgc::sim::{GroupHarness, Workload};
//! use urcgc_types::ProtocolConfig;
//!
//! // Five processes, each multicasting 10 causally-chained messages.
//! let cfg = ProtocolConfig::new(5);
//! let mut harness = GroupHarness::builder(cfg)
//!     .workload(Workload::fixed_count(10, 16))
//!     .seed(7)
//!     .build();
//! let report = harness.run_to_completion(1_000);
//! assert!(report.all_processed_everything());
//! ```

pub mod clock;
pub mod engine;
pub mod groups;
pub mod node;
pub mod output;
pub mod sim;
pub mod trace;

pub use clock::{Clock, Deadlines, ManualClock, RoundPacer, WallClock};
pub use engine::Engine;
pub use node::{Node, NodeError, NodeGauges};
pub use output::{
    EngineGauges, EngineSnapshot, EngineStats, Output, ProcessStatus, StatusReason, SubmitError,
};
pub use trace::{TraceEvent, Tracer};

pub use urcgc_types::{
    CausalityMode, DataMsg, Decision, GroupId, Mid, Pdu, ProcessId, ProtocolConfig, Round, Subrun,
};
