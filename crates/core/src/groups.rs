//! Client-server and diffusion group structures (Section 3).
//!
//! The paper presents urcgc over *peer groups* but notes it "may apply to
//! client server groups, through a proper management of the reply
//! messages, and to diffusion groups, by multicasting messages to the full
//! set of server and client processes" (following Birman's group
//! taxonomy). This module supplies that management:
//!
//! * **client-server group** — a core of servers runs the urcgc protocol
//!   among themselves; clients submit requests to a *home server*, which
//!   injects them into the group and sends the reply once it has processed
//!   the resulting message (the client-side analogue of `urcgc.data.Conf`);
//! * **diffusion group** — additionally, every message a server processes
//!   is forwarded to all clients, so passive clients observe the same
//!   causally ordered stream the servers agree on.
//!
//! Process-id space: servers occupy `0..servers`, clients
//! `servers..servers+clients`. Only servers run [`Engine`]s; the engine's
//! group cardinality is the *server* count.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use urcgc_simnet::{FaultPlan, NetCtx, Node, SimNet, SimOptions};
use urcgc_types::wire::encode_pdu_into;
use urcgc_types::{
    decode_pdu, DataMsg, FrameCache, Mid, Pdu, ProcessId, ProtocolConfig, Round, WireDecode,
    WireEncode,
};

use crate::engine::Engine;
use crate::output::Output;

/// Parameters of a client-server (or diffusion) deployment.
#[derive(Clone, Debug)]
pub struct ClientServerConfig {
    /// Number of servers (the urcgc group).
    pub servers: usize,
    /// Number of clients.
    pub clients: usize,
    /// Diffusion mode: forward every processed message to all clients.
    pub diffusion: bool,
    /// Requests each client issues (one per round until exhausted).
    pub requests_per_client: u64,
    /// Request payload size.
    pub payload_size: usize,
    /// urcgc parameters for the server core (its `n` must equal `servers`).
    pub protocol: ProtocolConfig,
}

impl ClientServerConfig {
    /// A deployment with `servers` servers and `clients` clients using the
    /// default protocol parameters.
    pub fn new(servers: usize, clients: usize) -> Self {
        ClientServerConfig {
            servers,
            clients,
            diffusion: false,
            requests_per_client: 5,
            payload_size: 16,
            protocol: ProtocolConfig::new(servers),
        }
    }

    /// Enables diffusion mode.
    pub fn with_diffusion(mut self) -> Self {
        self.diffusion = true;
        self
    }

    /// Sets the per-client request budget.
    pub fn with_requests(mut self, requests: u64) -> Self {
        self.requests_per_client = requests;
        self
    }

    /// Total simulated processes.
    pub fn total(&self) -> usize {
        self.servers + self.clients
    }

    /// The home server of a client (round-robin by client index).
    pub fn home_server(&self, client: ProcessId) -> ProcessId {
        debug_assert!(client.index() >= self.servers);
        ProcessId::from_index((client.index() - self.servers) % self.servers)
    }
}

/// Frames on the client-server wire. Server↔server traffic carries urcgc
/// PDUs; the remaining variants implement the reply/diffusion management.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CsFrame {
    /// Server ↔ server urcgc protocol traffic.
    Urcgc(Pdu),
    /// Client → home server: please multicast this payload.
    ClientRq {
        /// Client-local request identifier.
        req_id: u64,
        /// The payload to multicast.
        payload: Bytes,
    },
    /// Home server → client: your request was processed as `mid`.
    Reply {
        /// Echoed request identifier.
        req_id: u64,
        /// The mid the group processed it under.
        mid: Mid,
    },
    /// Server → client (diffusion groups): a processed message, shared
    /// with the server engine's history (encoded once per diffusion).
    Diffusion(Arc<DataMsg>),
}

const TAG_URCGC: u8 = 0x40;
const TAG_CLIENT_RQ: u8 = 0x41;
const TAG_REPLY: u8 = 0x42;
const TAG_DIFFUSION: u8 = 0x43;

impl CsFrame {
    /// Appends the encoding of the frame to `b`.
    ///
    /// The urcgc arm encodes the PDU *directly* into the buffer — no
    /// intermediate frame allocation and copy.
    pub fn encode_into(&self, b: &mut BytesMut) {
        match self {
            CsFrame::Urcgc(pdu) => {
                b.put_u8(TAG_URCGC);
                encode_pdu_into(pdu, b);
            }
            CsFrame::ClientRq { req_id, payload } => {
                b.put_u8(TAG_CLIENT_RQ);
                b.put_u64_le(*req_id);
                b.put_u32_le(payload.len() as u32);
                b.put_slice(payload);
            }
            CsFrame::Reply { req_id, mid } => {
                b.put_u8(TAG_REPLY);
                b.put_u64_le(*req_id);
                mid.encode(b);
            }
            CsFrame::Diffusion(msg) => {
                b.put_u8(TAG_DIFFUSION);
                msg.encode(b);
            }
        }
    }

    /// Encodes the frame into a fresh allocation. One-shot convenience;
    /// send paths on the server go through the node's [`FrameCache`].
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::new();
        self.encode_into(&mut b);
        b.freeze()
    }

    /// Decodes a frame; `None` on malformed input.
    pub fn decode(mut frame: Bytes) -> Option<CsFrame> {
        if frame.remaining() < 1 {
            return None;
        }
        match frame.get_u8() {
            TAG_URCGC => decode_pdu(&frame).ok().map(CsFrame::Urcgc),
            TAG_CLIENT_RQ => {
                if frame.remaining() < 12 {
                    return None;
                }
                let req_id = frame.get_u64_le();
                let len = frame.get_u32_le() as usize;
                if frame.remaining() < len {
                    return None;
                }
                Some(CsFrame::ClientRq {
                    req_id,
                    payload: frame.split_to(len),
                })
            }
            TAG_REPLY => {
                if frame.remaining() < 18 {
                    return None;
                }
                let req_id = frame.get_u64_le();
                let mid = Mid::decode(&mut frame).ok()?;
                Some(CsFrame::Reply { req_id, mid })
            }
            TAG_DIFFUSION => Arc::decode(&mut frame).ok().map(CsFrame::Diffusion),
            _ => None,
        }
    }
}

/// A server: an urcgc engine plus reply/diffusion management.
pub struct ServerNode {
    engine: Engine,
    cfg: ClientServerConfig,
    /// Submitted-on-behalf bookkeeping: mid → (client, req_id).
    on_behalf: HashMap<Mid, (ProcessId, u64)>,
    /// Requests already accepted, and the reply if already confirmed:
    /// (client, req_id) → Some(mid). Lets retried requests be answered
    /// idempotently instead of multicast twice.
    accepted: HashMap<(ProcessId, u64), Option<Mid>>,
    /// Processed mids, for inspection.
    processed: Vec<Mid>,
    /// Reused encode arena: one allocation per outgoing frame, shared
    /// across every destination of a core broadcast or diffusion.
    frames: FrameCache,
}

impl ServerNode {
    fn new(me: ProcessId, cfg: ClientServerConfig) -> Self {
        ServerNode {
            engine: Engine::new(me, cfg.protocol.clone()),
            cfg,
            on_behalf: HashMap::new(),
            accepted: HashMap::new(),
            processed: Vec::new(),
            frames: FrameCache::new(),
        }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Messages processed by this server, in causal order.
    pub fn processed(&self) -> &[Mid] {
        &self.processed
    }

    fn flush(&mut self, net: &mut NetCtx<'_>) {
        let servers = self.cfg.servers;
        while let Some(out) = self.engine.poll_output() {
            match out {
                Output::Send { to, pdu } => {
                    let label = pdu.kind().label();
                    let cs = CsFrame::Urcgc(*pdu);
                    let frame = self.frames.encode_with(|b| cs.encode_into(b));
                    net.send(to, label, frame);
                }
                Output::Broadcast { pdu } => {
                    // urcgc traffic goes to the *server* core only.
                    let me = self.engine.me();
                    let label = pdu.kind().label();
                    // Shallow clone: Pdu::Data holds an Arc, and the frame
                    // is encoded exactly once for the whole fan-out; every
                    // copy after the first is a refcount bump, counted as
                    // shared bytes.
                    let cs = CsFrame::Urcgc(Pdu::clone(&pdu));
                    let frame = self.frames.encode_with(|b| cs.encode_into(b));
                    let mut first = true;
                    for i in 0..servers {
                        let to = ProcessId::from_index(i);
                        if to != me {
                            if first {
                                net.send(to, label, frame.clone());
                                first = false;
                            } else {
                                net.send_shared(to, label, frame.clone());
                            }
                        }
                    }
                }
                Output::Deliver { msg } => {
                    self.processed.push(msg.mid);
                    if self.cfg.diffusion {
                        let cs = CsFrame::Diffusion(Arc::clone(&msg));
                        let frame = self.frames.encode_with(|b| cs.encode_into(b));
                        let mut first = true;
                        for c in 0..self.cfg.clients {
                            // Each client receives the diffusion from its
                            // home server only (one copy, not one per
                            // server).
                            let client = ProcessId::from_index(servers + c);
                            if self.cfg.home_server(client) == self.engine.me() {
                                if first {
                                    net.send(client, "diffusion", frame.clone());
                                    first = false;
                                } else {
                                    net.send_shared(client, "diffusion", frame.clone());
                                }
                            }
                        }
                    }
                }
                Output::Confirm { mid } => {
                    if let Some((client, req_id)) = self.on_behalf.remove(&mid) {
                        self.accepted.insert((client, req_id), Some(mid));
                        let frame = self
                            .frames
                            .encode_with(|b| CsFrame::Reply { req_id, mid }.encode_into(b));
                        net.send(client, "reply", frame);
                    }
                }
                Output::Discarded { .. } | Output::StatusChanged { .. } => {}
            }
        }
    }
}

/// A client: issues requests to its home server and records replies (and,
/// in diffusion mode, the observed message stream).
pub struct ClientNode {
    me: ProcessId,
    cfg: ClientServerConfig,
    next_req: u64,
    /// req_id → (issue round, last transmission round).
    outstanding: HashMap<u64, (Round, Round)>,
    /// (req_id, mid, rtt in rounds) for completed requests.
    completed: Vec<(u64, Mid, u64)>,
    /// Diffusion stream observed (mids in arrival order).
    observed: Vec<Mid>,
}

impl ClientNode {
    fn new(me: ProcessId, cfg: ClientServerConfig) -> Self {
        ClientNode {
            me,
            cfg,
            next_req: 0,
            outstanding: HashMap::new(),
            completed: Vec::new(),
            observed: Vec::new(),
        }
    }

    /// Completed requests: (req_id, assigned mid, round-trip in rounds).
    pub fn completed(&self) -> &[(u64, Mid, u64)] {
        &self.completed
    }

    /// Requests still awaiting replies.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// The diffusion stream observed by this client.
    pub fn observed(&self) -> &[Mid] {
        &self.observed
    }
}

/// A node in a client-server deployment.
pub enum CsNode {
    /// A member of the urcgc server core (boxed: it dwarfs the client).
    Server(Box<ServerNode>),
    /// A protocol-external client.
    Client(ClientNode),
}

impl CsNode {
    /// The server variant, if this is one.
    pub fn as_server(&self) -> Option<&ServerNode> {
        match self {
            CsNode::Server(s) => Some(s),
            CsNode::Client(_) => None,
        }
    }

    /// The client variant, if this is one.
    pub fn as_client(&self) -> Option<&ClientNode> {
        match self {
            CsNode::Server(_) => None,
            CsNode::Client(c) => Some(c),
        }
    }
}

impl Node for CsNode {
    fn on_round(&mut self, round: Round, net: &mut NetCtx<'_>) {
        match self {
            CsNode::Server(s) => {
                s.engine.begin_round(round);
                s.flush(net);
            }
            CsNode::Client(c) => {
                if c.next_req < c.cfg.requests_per_client {
                    let req_id = c.next_req;
                    c.next_req += 1;
                    c.outstanding.insert(req_id, (round, round));
                    let frame = CsFrame::ClientRq {
                        req_id,
                        payload: Bytes::from(vec![0u8; c.cfg.payload_size]),
                    }
                    .encode();
                    net.send(c.cfg.home_server(c.me), "client-rq", frame);
                }
                // Reply management: retransmit requests that have gone
                // unanswered for a few subruns (the request or its reply
                // was lost; server-side submission is idempotent per
                // req_id only if the server never saw it — a duplicate
                // submit yields a second mid but the client keeps only the
                // first reply, so at-least-once semantics hold).
                let home = c.cfg.home_server(c.me);
                let mut retries: Vec<u64> = Vec::new();
                for (&req_id, &(_, last_tx)) in &c.outstanding {
                    if round.0 >= last_tx.0 + 8 {
                        retries.push(req_id);
                    }
                }
                for req_id in retries {
                    if let Some(entry) = c.outstanding.get_mut(&req_id) {
                        entry.1 = round;
                    }
                    let frame = CsFrame::ClientRq {
                        req_id,
                        payload: Bytes::from(vec![0u8; c.cfg.payload_size]),
                    }
                    .encode();
                    net.send(home, "client-rq-retry", frame);
                }
            }
        }
    }

    fn on_frame(&mut self, from: ProcessId, frame: Bytes, net: &mut NetCtx<'_>) {
        let Some(frame) = CsFrame::decode(frame) else {
            return;
        };
        match (self, frame) {
            (CsNode::Server(s), CsFrame::Urcgc(pdu)) => {
                s.engine.on_pdu(from, pdu);
                s.flush(net);
            }
            (CsNode::Server(s), CsFrame::ClientRq { req_id, payload }) => {
                match s.accepted.get(&(from, req_id)) {
                    Some(Some(mid)) => {
                        // Retry of an already-confirmed request: re-send
                        // the reply (the first one was lost).
                        let frame = CsFrame::Reply { req_id, mid: *mid }.encode();
                        net.send(from, "reply", frame);
                    }
                    Some(None) => {
                        // Already submitted, confirmation pending: drop the
                        // duplicate.
                    }
                    None => {
                        if let Ok(mid) = s.engine.submit(payload, &[]) {
                            s.on_behalf.insert(mid, (from, req_id));
                            s.accepted.insert((from, req_id), None);
                        }
                        // The broadcast happens at the next round boundary;
                        // the reply follows the Confirm.
                    }
                }
            }
            (CsNode::Client(c), CsFrame::Reply { req_id, mid }) => {
                if let Some((issued, _)) = c.outstanding.remove(&req_id) {
                    let rtt = net.round().0.saturating_sub(issued.0);
                    c.completed.push((req_id, mid, rtt));
                }
            }
            (CsNode::Client(c), CsFrame::Diffusion(msg)) => {
                c.observed.push(msg.mid);
            }
            _ => {}
        }
    }

    fn is_done(&self) -> bool {
        match self {
            CsNode::Server(s) => s.engine.gauges().is_drained(),
            CsNode::Client(c) => {
                c.next_req >= c.cfg.requests_per_client && c.outstanding.is_empty()
            }
        }
    }
}

/// Outcome of a client-server run.
pub struct CsReport {
    /// Rounds executed.
    pub rounds: u64,
    /// Per-server processed logs (causal order).
    pub server_logs: Vec<Vec<Mid>>,
    /// Per-client completed requests (req_id, mid, rtt rounds).
    pub client_completed: Vec<Vec<(u64, Mid, u64)>>,
    /// Per-client diffusion streams.
    pub client_observed: Vec<Vec<Mid>>,
}

impl CsReport {
    /// Whether every server processed the same message sequence per origin
    /// (agreement inside the core).
    pub fn servers_agree(&self) -> bool {
        let mut sorted: Vec<Vec<Mid>> = self
            .server_logs
            .iter()
            .map(|log| {
                let mut v = log.clone();
                v.sort();
                v
            })
            .collect();
        sorted.dedup();
        sorted.len() <= 1
    }

    /// Total completed client requests.
    pub fn total_completed(&self) -> usize {
        self.client_completed.iter().map(Vec::len).sum()
    }
}

/// Runs a client-server (or diffusion) deployment to quiescence.
pub fn run_client_server(
    cfg: ClientServerConfig,
    faults: FaultPlan,
    seed: u64,
    max_rounds: u64,
) -> CsReport {
    assert_eq!(
        cfg.protocol.n, cfg.servers,
        "protocol cardinality must equal the server count"
    );
    let total = cfg.total();
    let nodes: Vec<CsNode> = (0..total)
        .map(|i| {
            let me = ProcessId::from_index(i);
            if i < cfg.servers {
                CsNode::Server(Box::new(ServerNode::new(me, cfg.clone())))
            } else {
                CsNode::Client(ClientNode::new(me, cfg.clone()))
            }
        })
        .collect();
    let mut net = SimNet::new(
        nodes,
        faults,
        SimOptions {
            max_rounds,
            seed,
            ..SimOptions::default()
        },
    );
    let mut rounds = 0;
    let mut idle = 0;
    while rounds < max_rounds {
        net.step();
        rounds += 1;
        if net.all_done() {
            idle += 1;
            if idle >= 8 {
                break;
            }
        } else {
            idle = 0;
        }
    }
    let server_logs = net
        .nodes()
        .iter()
        .filter_map(|n| n.as_server())
        .map(|s| s.processed().to_vec())
        .collect();
    let client_completed = net
        .nodes()
        .iter()
        .filter_map(|n| n.as_client())
        .map(|c| c.completed().to_vec())
        .collect();
    let client_observed = net
        .nodes()
        .iter()
        .filter_map(|n| n.as_client())
        .map(|c| c.observed().to_vec())
        .collect();
    CsReport {
        rounds,
        server_logs,
        client_completed,
        client_observed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrips() {
        let frames = [
            CsFrame::Urcgc(Pdu::data(DataMsg {
                mid: Mid::new(ProcessId(0), 1),
                deps: vec![],
                round: Round(0),
                payload: Bytes::from_static(b"x"),
            })),
            CsFrame::ClientRq {
                req_id: 9,
                payload: Bytes::from_static(b"req"),
            },
            CsFrame::Reply {
                req_id: 9,
                mid: Mid::new(ProcessId(1), 4),
            },
            CsFrame::Diffusion(Arc::new(DataMsg {
                mid: Mid::new(ProcessId(2), 2),
                deps: vec![Mid::new(ProcessId(2), 1)],
                round: Round(3),
                payload: Bytes::from_static(b"d"),
            })),
        ];
        for f in frames {
            assert_eq!(CsFrame::decode(f.encode()), Some(f));
        }
        assert_eq!(CsFrame::decode(Bytes::from_static(&[0x99])), None);
        assert_eq!(CsFrame::decode(Bytes::new()), None);
    }

    #[test]
    fn home_server_round_robins() {
        let cfg = ClientServerConfig::new(3, 5);
        assert_eq!(cfg.home_server(ProcessId(3)), ProcessId(0));
        assert_eq!(cfg.home_server(ProcessId(4)), ProcessId(1));
        assert_eq!(cfg.home_server(ProcessId(5)), ProcessId(2));
        assert_eq!(cfg.home_server(ProcessId(6)), ProcessId(0));
    }

    #[test]
    fn client_requests_are_processed_and_replied() {
        let cfg = ClientServerConfig::new(3, 4).with_requests(3);
        let report = run_client_server(cfg, FaultPlan::none(), 5, 2_000);
        assert_eq!(report.total_completed(), 4 * 3, "every request replied");
        assert!(report.servers_agree());
        // Every server processed all 12 client messages.
        for log in &report.server_logs {
            assert_eq!(log.len(), 12);
        }
        // Round trips are small (rq → submit → broadcast → confirm → reply).
        for c in &report.client_completed {
            for &(_, _, rtt) in c {
                assert!((2..=8).contains(&rtt), "rtt {rtt} out of range");
            }
        }
    }

    #[test]
    fn diffusion_clients_observe_the_agreed_stream() {
        let cfg = ClientServerConfig::new(3, 3)
            .with_requests(4)
            .with_diffusion();
        let report = run_client_server(cfg, FaultPlan::none(), 7, 2_000);
        assert!(report.servers_agree());
        let server_set: std::collections::HashSet<Mid> =
            report.server_logs[0].iter().copied().collect();
        for (i, obs) in report.client_observed.iter().enumerate() {
            let obs_set: std::collections::HashSet<Mid> = obs.iter().copied().collect();
            assert_eq!(obs_set, server_set, "client {i} saw a different stream");
            // The home server forwards in its processing (= causal) order.
            let mut per_origin: HashMap<ProcessId, Vec<u64>> = HashMap::new();
            for m in obs {
                per_origin.entry(m.origin).or_default().push(m.seq);
            }
            for (origin, seqs) in per_origin {
                let mut sorted = seqs.clone();
                sorted.sort();
                assert_eq!(seqs, sorted, "client {i} out of order for {origin}");
            }
        }
    }

    #[test]
    fn server_crash_is_survivable_for_clients_of_other_servers() {
        let mut cfg = ClientServerConfig::new(4, 4).with_requests(3);
        cfg.protocol = ProtocolConfig::new(4).with_k(2);
        // Server p3 crashes early; its client (p7) loses service, but the
        // other clients' requests all complete.
        let faults = FaultPlan::none().crash_at(ProcessId(3), Round(4));
        let report = run_client_server(cfg, faults, 11, 4_000);
        for (i, completed) in report.client_completed[..3].iter().enumerate() {
            assert_eq!(completed.len(), 3, "client {i} lost requests");
        }
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use urcgc_simnet::FaultPlan;

    #[test]
    fn diffusion_survives_omissions() {
        let mut cfg = ClientServerConfig::new(3, 3)
            .with_requests(5)
            .with_diffusion();
        cfg.protocol = ProtocolConfig::new(3).with_k(3);
        let faults = FaultPlan::none().omission_rate(0.01);
        let report = run_client_server(cfg, faults, 13, 6_000);
        assert!(report.servers_agree());
        assert_eq!(report.total_completed(), 3 * 5, "all requests replied");
        // Diffusion is best-effort per home server (no client-side
        // recovery), so clients may miss a frame under loss — but the
        // server core itself must be complete and agreed.
        for log in &report.server_logs {
            assert_eq!(log.len(), 15);
        }
    }

    #[test]
    fn client_requests_retry_is_not_needed_for_duplicate_replies() {
        // A client never sees two replies for the same req_id (the server
        // keys replies by mid and removes the binding on first Confirm).
        let cfg = ClientServerConfig::new(2, 2).with_requests(6);
        let report = run_client_server(cfg, FaultPlan::none(), 17, 4_000);
        for completed in &report.client_completed {
            let mut ids: Vec<u64> = completed.iter().map(|&(id, _, _)| id).collect();
            let before = ids.len();
            ids.dedup();
            assert_eq!(ids.len(), before, "duplicate replies observed");
        }
    }
}
