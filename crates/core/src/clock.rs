//! Wall-clock surfaces for driving the engine outside the simulator.
//!
//! The [`Engine`](crate::Engine) is a sans-I/O state machine paced by
//! [`begin_round`](crate::Engine::begin_round): the simulator calls it from
//! its discrete event loop, and a real-network runtime must call it from
//! *wall-clock time*. This module is the small, testable bridge between the
//! two:
//!
//! * [`Clock`] abstracts a monotonic time source ([`WallClock`] for
//!   deployments, [`ManualClock`] for deterministic tests);
//! * [`RoundPacer`] maps elapsed wall-clock time onto the engine's round
//!   counter — including burst catch-up after a stall (a descheduled
//!   process owes every missed `begin_round`, because the recovery and
//!   failure-detection machinery count rounds, not seconds) and
//!   fast-forward when the group's decision stream shows the local round
//!   clock is behind;
//! * [`Deadlines`] is a tiny deadline table for timer-per-key state such
//!   as partial reassembly eviction in the UDP runtime.
//!
//! None of this is used by the simulator: simulated rounds remain the
//! loop-variable of `urcgc-simnet`, so every digest-gated document is
//! byte-identical with or without this module.

use std::time::Duration;

use urcgc_types::Round;

/// A monotonic time source, read as elapsed time since an arbitrary epoch
/// fixed at construction.
pub trait Clock {
    /// Time elapsed since this clock's epoch.
    fn now(&self) -> Duration;
}

/// The real monotonic clock ([`std::time::Instant`]-backed).
#[derive(Clone, Copy, Debug)]
pub struct WallClock {
    epoch: std::time::Instant,
}

impl WallClock {
    /// A clock whose epoch is "now".
    pub fn new() -> Self {
        WallClock {
            epoch: std::time::Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }
}

/// A hand-cranked clock for deterministic tests.
#[derive(Clone, Debug, Default)]
pub struct ManualClock {
    now: std::cell::Cell<Duration>,
}

impl ManualClock {
    /// A clock stopped at its epoch.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Advances the clock by `dt`.
    pub fn advance(&self, dt: Duration) {
        self.now.set(self.now.get() + dt);
    }

    /// Jumps the clock to an absolute elapsed time (must not go backwards).
    pub fn set(&self, t: Duration) {
        assert!(t >= self.now.get(), "ManualClock must be monotonic");
        self.now.set(t);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        self.now.get()
    }
}

/// Maps wall-clock time onto the engine's round counter.
///
/// The contract mirrors the simulator's: rounds are consecutive, every
/// round is begun exactly once, and a process that falls behind (GC pause,
/// descheduling, slow peer handling) *bursts* through the rounds it owes
/// rather than silently stretching them — `K`-subrun failure detection and
/// retransmission cadence are counted in rounds, so dropping rounds would
/// dilate every protocol timeout.
///
/// [`fast_forward`](RoundPacer::fast_forward) additionally lets a runtime
/// adopt the group's subrun clock: independently started OS processes boot
/// at round 0, and the first coordinator decision they receive tells them
/// which round the group is actually in.
#[derive(Clone, Debug)]
pub struct RoundPacer {
    period: Duration,
    /// Next round to hand out.
    next: u64,
    /// Wall-clock deadline at which `next` becomes due.
    due: Duration,
}

impl RoundPacer {
    /// A pacer that makes round 0 due `period` after `now`.
    pub fn new(now: Duration, period: Duration) -> Self {
        assert!(!period.is_zero(), "round period must be positive");
        RoundPacer {
            period,
            next: 0,
            due: now + period,
        }
    }

    /// The round cadence.
    pub fn period(&self) -> Duration {
        self.period
    }

    /// The next round this pacer will emit.
    pub fn next_round(&self) -> Round {
        Round(self.next)
    }

    /// Returns the next due round, or `None` if no round is due at `now`.
    /// Call in a loop to burst through owed rounds after a stall.
    pub fn poll(&mut self, now: Duration) -> Option<Round> {
        if now < self.due {
            return None;
        }
        let round = Round(self.next);
        self.next += 1;
        self.due += self.period;
        // After a long stall, re-anchor instead of emitting an unbounded
        // burst: owe at most the rounds that fit in the stall, then resume
        // the cadence from the current instant.
        if self.due + self.period < now {
            return Some(round); // caller keeps polling; next is due already
        }
        Some(round)
    }

    /// How long until the next round is due (zero if already due).
    pub fn until_due(&self, now: Duration) -> Duration {
        self.due.saturating_sub(now)
    }

    /// Jumps the pacer forward so the next emitted round is at least
    /// `round` (no-op if already past it). Used when a received decision
    /// shows the group's round clock is ahead of ours; never rewinds.
    pub fn fast_forward(&mut self, round: Round) {
        if round.0 > self.next {
            self.next = round.0;
        }
    }
}

/// A small deadline table: each key owes an action at an absolute
/// [`Clock`] time; [`expired`](Deadlines::expired) drains everything due.
///
/// Used by the UDP runtime to evict partially reassembled frames whose
/// remaining fragments were lost on the wire (the urcgc layer re-recovers
/// the payload from history, so eviction is safe — holding the partial
/// forever would leak).
#[derive(Clone, Debug, Default)]
pub struct Deadlines<K: Ord + Clone> {
    by_key: std::collections::BTreeMap<K, Duration>,
}

impl<K: Ord + Clone> Deadlines<K> {
    /// An empty table.
    pub fn new() -> Self {
        Deadlines {
            by_key: std::collections::BTreeMap::new(),
        }
    }

    /// Arms (or re-arms) `key` to expire at `deadline`.
    pub fn arm(&mut self, key: K, deadline: Duration) {
        self.by_key.insert(key, deadline);
    }

    /// Disarms `key` (no-op if absent).
    pub fn disarm(&mut self, key: &K) {
        self.by_key.remove(key);
    }

    /// Removes and returns every key whose deadline is `<= now`, in key
    /// order (deterministic for tests).
    pub fn expired(&mut self, now: Duration) -> Vec<K> {
        let due: Vec<K> = self
            .by_key
            .iter()
            .filter(|(_, &d)| d <= now)
            .map(|(k, _)| k.clone())
            .collect();
        for k in &due {
            self.by_key.remove(k);
        }
        due
    }

    /// Armed-key count.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// Whether no key is armed.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// The earliest armed deadline, if any (for sizing poll timeouts).
    pub fn next_deadline(&self) -> Option<Duration> {
        self.by_key.values().min().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: Duration = Duration::from_millis(1);

    #[test]
    fn pacer_emits_consecutive_rounds_on_cadence() {
        let mut p = RoundPacer::new(Duration::ZERO, 10 * MS);
        assert_eq!(p.poll(5 * MS), None);
        assert_eq!(p.poll(10 * MS), Some(Round(0)));
        assert_eq!(p.poll(10 * MS), None, "round 1 not due yet");
        assert_eq!(p.poll(20 * MS), Some(Round(1)));
        assert_eq!(p.next_round(), Round(2));
    }

    #[test]
    fn pacer_bursts_through_owed_rounds() {
        let mut p = RoundPacer::new(Duration::ZERO, 10 * MS);
        // A 55 ms stall owes rounds 0..=4.
        let now = 55 * MS;
        let mut got = Vec::new();
        while let Some(r) = p.poll(now) {
            got.push(r.0);
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(p.poll(60 * MS), Some(Round(5)));
    }

    #[test]
    fn pacer_fast_forward_never_rewinds() {
        let mut p = RoundPacer::new(Duration::ZERO, 10 * MS);
        p.fast_forward(Round(7));
        assert_eq!(p.next_round(), Round(7));
        p.fast_forward(Round(3));
        assert_eq!(p.next_round(), Round(7), "fast_forward never rewinds");
        assert_eq!(p.poll(10 * MS), Some(Round(7)));
    }

    #[test]
    fn pacer_until_due_saturates() {
        let p = RoundPacer::new(Duration::ZERO, 10 * MS);
        assert_eq!(p.until_due(2 * MS), 8 * MS);
        assert_eq!(p.until_due(20 * MS), Duration::ZERO);
    }

    #[test]
    fn manual_clock_advances_and_rejects_rewind() {
        let c = ManualClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        c.advance(5 * MS);
        c.set(9 * MS);
        assert_eq!(c.now(), 9 * MS);
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn manual_clock_set_backwards_panics() {
        let c = ManualClock::new();
        c.advance(5 * MS);
        c.set(2 * MS);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn deadlines_expire_in_key_order_and_disarm() {
        let mut d: Deadlines<u32> = Deadlines::new();
        d.arm(3, 10 * MS);
        d.arm(1, 10 * MS);
        d.arm(2, 30 * MS);
        assert_eq!(d.next_deadline(), Some(10 * MS));
        assert_eq!(d.expired(5 * MS), Vec::<u32>::new());
        assert_eq!(d.expired(10 * MS), vec![1, 3]);
        assert_eq!(d.len(), 1);
        d.disarm(&2);
        assert!(d.is_empty());
        assert_eq!(d.next_deadline(), None);
    }

    #[test]
    fn deadlines_rearm_replaces() {
        let mut d: Deadlines<&'static str> = Deadlines::new();
        d.arm("x", 10 * MS);
        d.arm("x", 50 * MS);
        assert_eq!(d.expired(20 * MS), Vec::<&str>::new());
        assert_eq!(d.expired(50 * MS), vec!["x"]);
    }
}
