//! Edge-case and adversarial-input tests for the engine: malformed or
//! out-of-protocol PDUs, tiny groups, stale and duplicate traffic, and
//! life-cycle corner cases. The engine must stay consistent (or ignore the
//! input) in every case — a group member cannot crash its peers with a
//! weird but well-formed PDU.

use bytes::Bytes;
use urcgc::{Engine, Output, ProcessStatus};
use urcgc_types::{
    DataMsg, Decision, MaxProcessed, Mid, Pdu, ProcessId, ProtocolConfig, RecoveryReply,
    RecoveryRq, RequestMsg, Round, Subrun, NO_SEQ,
};

fn drain(e: &mut Engine) -> Vec<Output> {
    std::iter::from_fn(|| e.poll_output()).collect()
}

fn data(p: u16, s: u64, deps: Vec<Mid>) -> Pdu {
    Pdu::data(DataMsg {
        mid: Mid::new(ProcessId(p), s),
        deps,
        round: Round(0),
        payload: Bytes::from_static(b"x"),
    })
}

#[test]
fn two_process_group_works() {
    let cfg = ProtocolConfig::new(2);
    let mut a = Engine::new(ProcessId(0), cfg.clone());
    let mut b = Engine::new(ProcessId(1), cfg);
    a.submit(Bytes::from_static(b"ping"), &[]).unwrap();
    let route = |src: &mut Engine, dst: &mut Engine, src_id: u16| {
        for o in drain(src) {
            match o {
                Output::Send { pdu, .. } => dst.on_pdu(ProcessId(src_id), *pdu),
                Output::Broadcast { pdu } => dst.on_pdu(ProcessId(src_id), Pdu::clone(&pdu)),
                _ => {}
            }
        }
    };
    for r in 0..6u64 {
        a.begin_round(Round(r));
        b.begin_round(Round(r));
        route(&mut a, &mut b, 0);
        route(&mut b, &mut a, 1);
        // One more pass so same-round replies (e.g. decisions prompted by
        // just-delivered requests) also cross.
        route(&mut a, &mut b, 0);
        route(&mut b, &mut a, 1);
    }
    assert_eq!(b.last_processed(ProcessId(0)), 1);
    assert_eq!(a.status(), ProcessStatus::Active);
    assert_eq!(b.status(), ProcessStatus::Active);
    // Stability reached: histories cleaned on both sides.
    assert_eq!(a.gauges().history_len, 0);
    assert_eq!(b.gauges().history_len, 0);
}

#[test]
fn data_from_out_of_group_origin_is_ignored_without_panic() {
    let mut e = Engine::new(ProcessId(0), ProtocolConfig::new(3));
    // Origin p9 does not exist in a group of 3. The message must not be
    // processed (its origin has no history slot) and must not panic.
    e.on_pdu(ProcessId(1), data(9, 1, vec![]));
    assert_eq!(e.stats().processed, 0);
    // It parks forever in the waiting list at worst; nothing delivers.
    let delivered = drain(&mut e)
        .iter()
        .filter(|o| matches!(o, Output::Deliver { .. }))
        .count();
    assert_eq!(delivered, 0);
}

#[test]
fn decision_of_wrong_width_is_ignored() {
    let mut e = Engine::new(ProcessId(0), ProtocolConfig::new(3));
    let mut d = Decision::genesis(7); // wrong group size
    d.subrun = Subrun(5);
    d.process_state[0] = false; // would otherwise kill us
    e.on_pdu(ProcessId(1), Pdu::Decision(d));
    assert_eq!(e.status(), ProcessStatus::Active);
    assert_eq!(e.last_decision().subrun, Subrun(0));
}

#[test]
fn duplicate_decision_is_idempotent() {
    let mut e = Engine::new(ProcessId(0), ProtocolConfig::new(3));
    let mut d = Decision::genesis(3);
    d.subrun = Subrun(2);
    d.stable = vec![0, 0, 0];
    e.on_pdu(ProcessId(1), Pdu::Decision(d.clone()));
    let applied_once = e.stats().decisions_applied;
    e.on_pdu(ProcessId(1), Pdu::Decision(d.clone()));
    e.on_pdu(ProcessId(2), Pdu::Decision(d));
    assert_eq!(e.stats().decisions_applied, applied_once);
}

#[test]
fn request_for_foreign_subrun_still_circulates_its_decision() {
    // A request arrives while we are NOT the coordinator (or for a
    // different subrun): the matrix ignores it, but the embedded previous
    // decision must still be adopted — that is the decision-circulation
    // mechanism working through any channel.
    let mut e = Engine::new(ProcessId(0), ProtocolConfig::new(3));
    let mut carried = Decision::genesis(3);
    carried.subrun = Subrun(9);
    let req = RequestMsg {
        sender: ProcessId(2),
        subrun: Subrun(10),
        last_processed: vec![0; 3],
        waiting: vec![NO_SEQ; 3],
        prev_decision: carried,
        forwarded: false,
    };
    e.on_pdu(ProcessId(2), Pdu::Request(req));
    assert_eq!(e.last_decision().subrun, Subrun(9));
}

#[test]
fn recovery_rq_for_unknown_origin_is_ignored() {
    let mut e = Engine::new(ProcessId(0), ProtocolConfig::new(2));
    e.on_pdu(
        ProcessId(1),
        Pdu::RecoveryRq(RecoveryRq {
            requester: ProcessId(1),
            origin: ProcessId(7),
            after_seq: 0,
            upto_seq: 100,
        }),
    );
    assert!(drain(&mut e).is_empty());
}

#[test]
fn recovery_rq_with_empty_history_yields_no_reply() {
    let mut e = Engine::new(ProcessId(0), ProtocolConfig::new(2));
    e.on_pdu(
        ProcessId(1),
        Pdu::RecoveryRq(RecoveryRq {
            requester: ProcessId(1),
            origin: ProcessId(0),
            after_seq: 0,
            upto_seq: 5,
        }),
    );
    assert!(drain(&mut e).is_empty(), "nothing held ⇒ nothing sent");
}

#[test]
fn recovery_reply_with_already_processed_messages_is_harmless() {
    let mut e = Engine::new(ProcessId(1), ProtocolConfig::new(2));
    e.on_pdu(ProcessId(0), data(0, 1, vec![]));
    let processed_before = e.stats().processed;
    e.on_pdu(
        ProcessId(0),
        Pdu::RecoveryReply(RecoveryReply {
            responder: ProcessId(0),
            origin: ProcessId(0),
            messages: vec![std::sync::Arc::new(DataMsg {
                mid: Mid::new(ProcessId(0), 1),
                deps: vec![],
                round: Round(0),
                payload: Bytes::from_static(b"x"),
            })],
        }),
    );
    assert_eq!(e.stats().processed, processed_before);
    assert_eq!(
        e.stats().recovered,
        0,
        "duplicates do not count as recovered"
    );
}

#[test]
fn inputs_after_suicide_are_inert() {
    let mut e = Engine::new(ProcessId(1), ProtocolConfig::new(3));
    let mut d = Decision::genesis(3);
    d.subrun = Subrun(1);
    d.process_state[1] = false;
    e.on_pdu(ProcessId(0), Pdu::Decision(d));
    assert_eq!(e.status(), ProcessStatus::Suicided);
    let _ = drain(&mut e);
    // Everything after death is ignored.
    e.begin_round(Round(10));
    e.on_pdu(ProcessId(0), data(0, 1, vec![]));
    assert!(drain(&mut e).is_empty());
    assert!(e.submit(Bytes::new(), &[]).is_err());
    assert_eq!(e.stats().processed, 0);
}

#[test]
fn bad_dependency_submission_is_rejected_and_seq_not_burned() {
    let mut e = Engine::new(ProcessId(0), ProtocolConfig::new(3));
    let unknown = Mid::new(ProcessId(2), 5);
    let err = e.submit(Bytes::new(), &[unknown]).unwrap_err();
    assert!(err.to_string().contains("invalid causal label"));
    // The next successful submission still gets seq 1.
    let mid = e.submit(Bytes::new(), &[]).unwrap();
    assert_eq!(mid, Mid::new(ProcessId(0), 1));
}

#[test]
fn self_data_replay_does_not_reprocess() {
    let mut e = Engine::new(ProcessId(0), ProtocolConfig::new(2));
    let mid = e.submit(Bytes::from_static(b"m"), &[]).unwrap();
    e.begin_round(Round(0));
    let _ = drain(&mut e);
    let before = e.stats().processed;
    // Our own broadcast echoed back at us (some transports do this).
    e.on_pdu(ProcessId(1), data(0, mid.seq, vec![]));
    assert_eq!(e.stats().processed, before);
}

#[test]
fn stale_decision_cannot_unclean_history() {
    let mut e = Engine::new(ProcessId(0), ProtocolConfig::new(2));
    // Process p1's messages 1..=3.
    for s in 1..=3u64 {
        let deps = if s > 1 {
            vec![Mid::new(ProcessId(1), s - 1)]
        } else {
            vec![]
        };
        e.on_pdu(ProcessId(1), data(1, s, deps));
    }
    assert_eq!(e.gauges().history_len, 3);
    // Fresh decision cleans up to 3.
    let mut d = Decision::genesis(2);
    d.subrun = Subrun(5);
    d.stable = vec![0, 3];
    e.on_pdu(ProcessId(1), Pdu::Decision(d));
    assert_eq!(e.gauges().history_len, 0);
    // A late re-arrival of message 2 must not re-enter the history.
    e.on_pdu(ProcessId(1), data(1, 2, vec![Mid::new(ProcessId(1), 1)]));
    assert_eq!(e.gauges().history_len, 0);
}

#[test]
fn waiting_gauge_reflects_parked_messages() {
    let mut e = Engine::new(ProcessId(0), ProtocolConfig::new(3));
    e.on_pdu(ProcessId(1), data(1, 2, vec![Mid::new(ProcessId(1), 1)]));
    e.on_pdu(ProcessId(2), data(2, 2, vec![Mid::new(ProcessId(2), 1)]));
    let st = e.stats();
    assert_eq!(st.waiting, 2);
    assert_eq!(st.history_len, 0);
    e.on_pdu(ProcessId(1), data(1, 1, vec![]));
    assert_eq!(e.stats().waiting, 1);
    assert_eq!(e.stats().processed, 2);
}

#[test]
fn future_decision_is_adopted_monotonically() {
    // Decisions may skip subruns (we missed some); adoption is monotone in
    // subrun number regardless of gaps.
    let mut e = Engine::new(ProcessId(0), ProtocolConfig::new(3));
    for s in [3u64, 7, 5, 9] {
        let mut d = Decision::genesis(3);
        d.subrun = Subrun(s);
        e.on_pdu(ProcessId(1), Pdu::Decision(d));
    }
    assert_eq!(e.last_decision().subrun, Subrun(9));
    assert_eq!(e.stats().decisions_applied, 3, "3, 7, 9 applied; 5 stale");
}

#[test]
fn max_processed_pointing_at_self_never_self_recovers() {
    let mut e = Engine::new(ProcessId(1), ProtocolConfig::new(2));
    // Decision claims WE are most updated but with a seq we don't have
    // (inconsistent/stale info). We must not send a recovery request to
    // ourselves.
    let mut d = Decision::genesis(2);
    d.subrun = Subrun(1);
    d.max_processed[0] = MaxProcessed {
        holder: ProcessId(1),
        seq: 4,
    };
    e.on_pdu(ProcessId(0), Pdu::Decision(d));
    e.begin_round(Round(3)); // decision phase triggers recovery scan
    let sends: Vec<Output> = drain(&mut e)
        .into_iter()
        .filter(|o| {
            matches!(
                o,
                Output::Send { pdu, .. }
                    if matches!(**pdu, Pdu::RecoveryRq(_) | Pdu::RecoveryBatchRq(_))
            )
        })
        .collect();
    assert!(sends.is_empty(), "self-recovery attempted: {sends:?}");
}

#[test]
fn engine_stats_snapshot_is_consistent() {
    let mut e = Engine::new(ProcessId(0), ProtocolConfig::new(1));
    e.submit(Bytes::from_static(b"a"), &[]).unwrap();
    e.submit(Bytes::from_static(b"b"), &[]).unwrap();
    for r in 0..4 {
        e.begin_round(Round(r));
        let _ = drain(&mut e);
    }
    let st = e.stats();
    assert_eq!(st.processed, 2);
    assert_eq!(st.decisions_made, 2);
    assert_eq!(st.decisions_applied, 2);
    assert_eq!(st.recovery_requests, 0);
    assert_eq!(st.discarded, 0);
}

#[test]
fn snapshot_reflects_engine_state() {
    let mut e = Engine::new(ProcessId(0), ProtocolConfig::new(3));
    e.submit(Bytes::from_static(b"snap"), &[]).unwrap();
    e.begin_round(Round(0));
    let _ = drain(&mut e);
    e.on_pdu(ProcessId(1), data(1, 2, vec![Mid::new(ProcessId(1), 1)]));
    let snap = e.snapshot();
    assert_eq!(snap.me, 0);
    assert_eq!(snap.status, "Active");
    assert_eq!(snap.frontier, vec![1, 0, 0]);
    assert_eq!(snap.gauges.history_len, 1);
    assert!(snap.gauges.history_bytes >= 4);
    assert_eq!(snap.gauges.waiting_len, 1);
    assert_eq!(snap.alive, vec![true, true, true]);
    assert_eq!(snap.stats.processed, 1);
}
