//! Adversarial fuzz of the engine surface: arbitrary (decodable but
//! arbitrarily-valued) PDUs interleaved with rounds and submissions must
//! never panic the engine, kill it spuriously, or wedge its outputs.

use bytes::Bytes;
use proptest::prelude::*;
use urcgc::{Engine, ProcessStatus};
use urcgc_types::{
    DataMsg, Decision, MaxProcessed, Mid, Pdu, ProcessId, ProtocolConfig, RecoveryReply,
    RecoveryRq, RequestMsg, Round, Subrun,
};

/// Unconstrained process ids — most will be outside the group.
fn wild_pid() -> impl Strategy<Value = ProcessId> {
    any::<u16>().prop_map(ProcessId)
}

fn wild_mid() -> impl Strategy<Value = Mid> {
    (wild_pid(), any::<u64>()).prop_map(|(origin, seq)| Mid { origin, seq })
}

fn wild_data() -> impl Strategy<Value = DataMsg> {
    (
        wild_mid(),
        prop::collection::vec(wild_mid(), 0..4),
        any::<u64>(),
        prop::collection::vec(any::<u8>(), 0..32),
    )
        .prop_map(|(mid, deps, round, payload)| DataMsg {
            mid,
            deps,
            round: Round(round),
            payload: Bytes::from(payload),
        })
}

fn wild_decision() -> impl Strategy<Value = Decision> {
    (0usize..8).prop_flat_map(|n| {
        (
            any::<u64>(),
            wild_pid(),
            any::<bool>(),
            prop::collection::vec(any::<u64>(), n),
            prop::collection::vec(any::<u32>(), n),
            prop::collection::vec(any::<bool>(), n),
            prop::collection::vec((wild_pid(), any::<u64>()), n),
            (
                prop::collection::vec(any::<u64>(), n),
                prop::collection::vec(any::<bool>(), n),
            ),
        )
            .prop_map(
                |(subrun, coordinator, full_group, stable, attempts, state, maxp, (minw, cov))| {
                    Decision {
                        subrun: Subrun(subrun),
                        coordinator,
                        full_group,
                        stable,
                        attempts,
                        process_state: state,
                        max_processed: maxp
                            .into_iter()
                            .map(|(holder, seq)| MaxProcessed { holder, seq })
                            .collect(),
                        min_waiting: minw,
                        covered: cov,
                    }
                },
            )
    })
}

fn wild_pdu() -> impl Strategy<Value = Pdu> {
    prop_oneof![
        wild_data().prop_map(Pdu::data),
        (
            wild_pid(),
            any::<u64>(),
            prop::collection::vec(any::<u64>(), 0..8),
            prop::collection::vec(any::<u64>(), 0..8),
            wild_decision()
        )
            .prop_map(|(sender, subrun, lp, w, d)| Pdu::Request(RequestMsg {
                sender,
                subrun: Subrun(subrun),
                last_processed: lp,
                waiting: w,
                prev_decision: d,
                forwarded: false,
            })),
        wild_decision().prop_map(Pdu::Decision),
        (wild_pid(), wild_pid(), any::<u64>(), any::<u64>()).prop_map(
            |(requester, origin, a, b)| Pdu::RecoveryRq(RecoveryRq {
                requester,
                origin,
                after_seq: a,
                upto_seq: b,
            })
        ),
        (
            wild_pid(),
            wild_pid(),
            prop::collection::vec(wild_data(), 0..3)
        )
            .prop_map(
                |(responder, origin, messages)| Pdu::RecoveryReply(RecoveryReply {
                    responder,
                    origin,
                    messages: messages.into_iter().map(std::sync::Arc::new).collect(),
                })
            ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 128,
        ..ProptestConfig::default()
    })]

    /// The engine survives any interleaving of hostile PDUs, rounds and
    /// submissions without panicking, and the only way it dies is a
    /// well-formed decision that declares it dead.
    #[test]
    fn engine_survives_hostile_pdu_streams(
        pdus in prop::collection::vec((wild_pid(), wild_pdu()), 0..40),
        submit_every in 1usize..5,
        rounds in 1u64..16,
    ) {
        let n = 4;
        let mut e = Engine::new(ProcessId(1), ProtocolConfig::new(n));
        let mut pdus = pdus.into_iter();
        for r in 0..rounds {
            e.begin_round(Round(r));
            if (r as usize).is_multiple_of(submit_every) && e.status().is_active() {
                let _ = e.submit(Bytes::from_static(b"f"), &[]);
            }
            for _ in 0..3 {
                if let Some((from, pdu)) = pdus.next() {
                    e.on_pdu(from, pdu);
                }
            }
            // Outputs must always drain (no infinite loops / wedges).
            let mut drained = 0;
            while e.poll_output().is_some() {
                drained += 1;
                prop_assert!(drained < 10_000, "output storm");
            }
        }
        // A hostile stream may legitimately have killed us only through a
        // well-formed decision with process_state[me] = false; any status
        // is acceptable, but internal counters must stay coherent.
        let st = e.stats();
        prop_assert!(st.history_len <= st.processed as usize);
        if e.status() == ProcessStatus::Active {
            // A live engine must still accept submissions.
            prop_assert!(e.submit(Bytes::new(), &[]).is_ok());
        }
    }

    /// Random bytes fed through the frame path never panic (decode errors
    /// are surfaced as Err, hostile-but-decodable frames are dropped by
    /// validation).
    #[test]
    fn engine_survives_random_frames(
        frames in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..32),
    ) {
        let mut e = Engine::new(ProcessId(0), ProtocolConfig::new(3));
        for (i, raw) in frames.iter().enumerate() {
            let _ = e.on_frame(ProcessId((i % 3) as u16), &Bytes::from(raw.clone()));
        }
        while e.poll_output().is_some() {}
    }
}
