//! The history table, stored as fixed-span **segments** per origin.
//!
//! Each origin's processed messages are split into segments of
//! [`SEGMENT_SPAN`] consecutive sequence numbers, indexed by sequence
//! range. The segmented layout serves the three operations the protocol
//! leans on at soak scale:
//!
//! * [`History::range`] (recovery replies) slices whole segments instead
//!   of walking a comparison-based map;
//! * [`History::advance_stability`] (cleaning) drops whole segments in
//!   O(segments-freed) driven by the group's stability vector, touching
//!   individual slots only in the one boundary segment;
//! * residency gauges ([`History::len`], [`History::payload_bytes`],
//!   [`History::segments_live`]) are maintained incrementally and cost
//!   O(1), so the soak harness can sample them every window for free.
//!
//! The previous flat `BTreeMap`-per-origin layout survives as
//! [`FlatHistory`](crate::FlatHistory), the executable specification the
//! differential proptest compares against.

use std::collections::BTreeMap;
use std::sync::Arc;

use urcgc_types::{DataMsg, Mid, ProcessId, NO_SEQ};

/// Sequence numbers per segment. Sixty-four keeps a segment's slot array
/// in one or two cache lines of pointers while letting a purge over a
/// soak-sized backlog (thousands of sequences) free storage segment-wise.
pub const SEGMENT_SPAN: u64 = 64;

/// A borrowed view of the group-agreed stability vector (`stable[q]` is
/// origin `q`'s group-stable frontier), the sole input of
/// [`History::advance_stability`]. Origins beyond the slice's length are
/// treated as having no stable prefix ([`NO_SEQ`]).
#[derive(Clone, Copy, Debug)]
pub struct StableVector<'a> {
    values: &'a [u64],
}

impl<'a> StableVector<'a> {
    /// Wraps a per-origin stable-frontier slice.
    pub fn new(values: &'a [u64]) -> Self {
        StableVector { values }
    }

    /// The stable frontier for origin index `q` ([`NO_SEQ`] when absent).
    pub fn get(&self, q: usize) -> u64 {
        self.values.get(q).copied().unwrap_or(NO_SEQ)
    }

    /// Width of the underlying vector.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl<'a> From<&'a [u64]> for StableVector<'a> {
    fn from(values: &'a [u64]) -> Self {
        StableVector::new(values)
    }
}

impl<'a> From<&'a Vec<u64>> for StableVector<'a> {
    fn from(values: &'a Vec<u64>) -> Self {
        StableVector::new(values)
    }
}

/// What one [`History::advance_stability`] call cleaned away.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PurgeReport {
    /// Messages dropped.
    pub messages: usize,
    /// Payload bytes released.
    pub bytes: usize,
    /// Whole segments freed (boundary segments that drained to empty
    /// included) — the unit the purge cost is linear in.
    pub segments_freed: usize,
    /// Origins whose stable frontier advanced.
    pub origins_advanced: usize,
}

impl PurgeReport {
    /// Whether the call purged nothing.
    pub fn is_noop(&self) -> bool {
        self.messages == 0 && self.origins_advanced == 0
    }
}

/// One span of [`SEGMENT_SPAN`] sequence numbers for a single origin.
/// Slot `i` holds sequence `index * SEGMENT_SPAN + i + 1`.
#[derive(Clone, Debug)]
struct Segment {
    live: u32,
    slots: Box<[Option<Arc<DataMsg>>]>,
}

impl Segment {
    fn empty() -> Self {
        Segment {
            live: 0,
            slots: vec![None; SEGMENT_SPAN as usize].into_boxed_slice(),
        }
    }
}

/// Segment index holding sequence `seq` (seqs start at 1; [`NO_SEQ`] = 0
/// is never stored).
fn seg_index(seq: u64) -> u64 {
    (seq - 1) / SEGMENT_SPAN
}

/// Slot within the segment for sequence `seq`.
fn seg_slot(seq: u64) -> usize {
    ((seq - 1) % SEGMENT_SPAN) as usize
}

/// First sequence covered by segment `index`.
fn seg_base(index: u64) -> u64 {
    index * SEGMENT_SPAN + 1
}

/// One origin's entry: its segments, the purge frontier (everything
/// `<= purged_to` has been cleaned away), and incremental gauges.
#[derive(Clone, Debug, Default)]
struct Entry {
    purged_to: u64,
    live: usize,
    bytes: usize,
    segments: BTreeMap<u64, Segment>,
}

/// The per-process history buffer: processed messages of every origin, kept
/// until the group agrees they are stable.
#[derive(Clone, Debug)]
pub struct History {
    entries: Vec<Entry>,
    live: usize,
    bytes: usize,
    segments: usize,
}

impl History {
    /// An empty history for a group of `n`.
    pub fn new(n: usize) -> Self {
        History {
            entries: (0..n).map(|_| Entry::default()).collect(),
            live: 0,
            bytes: 0,
            segments: 0,
        }
    }

    /// Group cardinality.
    pub fn n(&self) -> usize {
        self.entries.len()
    }

    /// Saves a processed message. Returns `false` (and stores nothing) if
    /// the message was already present or already purged — both happen
    /// routinely when recovery duplicates traffic. The stored handle is
    /// shared with the caller (and with recovery replies served later) —
    /// saving never copies the message body.
    pub fn save(&mut self, msg: Arc<DataMsg>) -> bool {
        let i = msg.mid.origin.index();
        assert!(i < self.n(), "origin {} outside group", msg.mid.origin);
        assert_ne!(msg.mid.seq, NO_SEQ, "NO_SEQ is not a message");
        let entry = &mut self.entries[i];
        if msg.mid.seq <= entry.purged_to {
            return false;
        }
        let seg = entry
            .segments
            .entry(seg_index(msg.mid.seq))
            .or_insert_with(|| {
                self.segments += 1;
                Segment::empty()
            });
        let slot = &mut seg.slots[seg_slot(msg.mid.seq)];
        if slot.is_some() {
            return false;
        }
        let payload_len = msg.payload.len();
        *slot = Some(msg);
        seg.live += 1;
        entry.live += 1;
        entry.bytes += payload_len;
        self.live += 1;
        self.bytes += payload_len;
        true
    }

    /// Whether `mid` is currently held.
    pub fn contains(&self, mid: Mid) -> bool {
        self.get(mid).is_some()
    }

    /// Retrieves a held message.
    pub fn get(&self, mid: Mid) -> Option<&Arc<DataMsg>> {
        if mid.seq == NO_SEQ {
            return None;
        }
        self.entries
            .get(mid.origin.index())?
            .segments
            .get(&seg_index(mid.seq))?
            .slots[seg_slot(mid.seq)]
        .as_ref()
    }

    /// Messages of `origin` with `after_seq < seq <= upto_seq`, in order —
    /// the payload of a recovery reply, shared straight out of the buffer
    /// (each element is an `Arc` handle; nothing is deep-copied). The reply
    /// is assembled by slicing the overlapping segments — never by scanning
    /// the whole origin. Messages already purged or never processed are
    /// simply absent (the requester retries elsewhere or, past `R`
    /// attempts, leaves the group); an origin outside the group yields the
    /// same empty result as a purged range.
    pub fn range(&self, origin: ProcessId, after_seq: u64, upto_seq: u64) -> Vec<Arc<DataMsg>> {
        let Some(entry) = self.entries.get(origin.index()) else {
            return Vec::new();
        };
        if after_seq >= upto_seq {
            return Vec::new();
        }
        let lo = after_seq + 1; // > NO_SEQ, no overflow: after_seq < upto_seq
        let hi = upto_seq;
        let mut out = Vec::new();
        for (&index, seg) in entry.segments.range(seg_index(lo)..=seg_index(hi)) {
            let base = seg_base(index);
            let first = lo.max(base);
            let last = hi.min(base + SEGMENT_SPAN - 1);
            for m in seg.slots[(first - base) as usize..=(last - base) as usize]
                .iter()
                .flatten()
            {
                out.push(Arc::clone(m));
            }
        }
        out
    }

    /// Advances every origin's purge frontier to the group-agreed stability
    /// vector, dropping everything at or below it. This is the single purge
    /// entry point: segments entirely below a frontier are freed whole
    /// (O(segments-freed)); only the one boundary segment per origin has
    /// its slots cleared individually. Frontiers never regress — a stale
    /// vector is a per-origin no-op.
    pub fn advance_stability(&mut self, stable: &StableVector<'_>) -> PurgeReport {
        let mut report = PurgeReport::default();
        for q in 0..self.n() {
            let upto = stable.get(q);
            if upto <= self.entries[q].purged_to {
                continue;
            }
            report.origins_advanced += 1;
            self.purge_origin(q, upto, &mut report);
        }
        self.live -= report.messages;
        self.bytes -= report.bytes;
        report
    }

    /// Advances one origin's frontier to `upto` (caller checked `upto` is
    /// ahead of it), folding the freed storage into `report`. The caller
    /// settles the table-wide `live`/`bytes` gauges from the report.
    fn purge_origin(&mut self, q: usize, upto: u64, report: &mut PurgeReport) {
        let entry = &mut self.entries[q];
        entry.purged_to = upto;
        // Segments covering only sequences <= upto: all indexes below
        // upto / SPAN (segment `i` ends at (i+1) * SPAN).
        let first_kept = upto / SEGMENT_SPAN;
        if entry
            .segments
            .first_key_value()
            .is_some_and(|(&i, _)| i < first_kept)
        {
            let keep = entry.segments.split_off(&first_kept);
            for seg in std::mem::replace(&mut entry.segments, keep).into_values() {
                report.segments_freed += 1;
                self.segments -= 1;
                report.messages += seg.live as usize;
                entry.live -= seg.live as usize;
                for m in seg.slots.iter().flatten() {
                    report.bytes += m.payload.len();
                    entry.bytes -= m.payload.len();
                }
            }
        }
        // Boundary segment: upto lands mid-segment unless it is an
        // exact multiple of the span.
        if !upto.is_multiple_of(SEGMENT_SPAN) {
            if let Some(seg) = entry.segments.get_mut(&first_kept) {
                for slot in &mut seg.slots[..=seg_slot(upto)] {
                    if let Some(m) = slot.take() {
                        seg.live -= 1;
                        report.messages += 1;
                        report.bytes += m.payload.len();
                        entry.live -= 1;
                        entry.bytes -= m.payload.len();
                    }
                }
                if seg.live == 0 {
                    entry.segments.remove(&first_kept);
                    report.segments_freed += 1;
                    self.segments -= 1;
                }
            }
        }
    }

    /// Like [`advance_stability`](Self::advance_stability), but driven by
    /// the [`StabilityDelta`](crate::StabilityDelta) ranges the stability
    /// matrix emitted while building this decision, so the purge touches
    /// only the origins that actually advanced instead of scanning all `n`
    /// frontiers. The caller must have established that the delta exactly
    /// reconstructs `stable` (see
    /// [`StabilityMatrix::delta_exact`](crate::StabilityMatrix::delta_exact));
    /// debug builds verify it.
    pub fn advance_stability_hinted(
        &mut self,
        stable: &StableVector<'_>,
        delta: &crate::StabilityDelta,
    ) -> PurgeReport {
        let mut report = PurgeReport::default();
        for r in delta.ranges() {
            let q = r.origin.index();
            if q < self.n() && r.upto_seq > self.entries[q].purged_to {
                report.origins_advanced += 1;
                self.purge_origin(q, r.upto_seq, &mut report);
            }
        }
        self.live -= report.messages;
        self.bytes -= report.bytes;
        debug_assert!(
            (0..self.n()).all(|q| stable.get(q) <= self.entries[q].purged_to),
            "stability delta failed to cover the stable vector: stable={:?} purged={:?} ranges={:?}",
            (0..self.n()).map(|q| stable.get(q)).collect::<Vec<_>>(),
            (0..self.n()).map(|q| self.entries[q].purged_to).collect::<Vec<_>>(),
            delta.ranges()
        );
        report
    }

    /// The stable (purge) frontier for origin `q`: everything at or below
    /// it has been cleaned away. [`NO_SEQ`] for an origin outside the group
    /// or one never purged.
    pub fn stable_frontier(&self, q: ProcessId) -> u64 {
        self.entries.get(q.index()).map_or(NO_SEQ, |e| e.purged_to)
    }

    /// Total number of messages currently held — the "history length"
    /// plotted in Figure 6. O(1): maintained incrementally.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the history holds no messages.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of messages held for one origin.
    pub fn len_for(&self, q: ProcessId) -> usize {
        self.entries.get(q.index()).map_or(0, |e| e.live)
    }

    /// Highest held sequence number for origin `q` ([`NO_SEQ`] if none).
    pub fn highest_seq(&self, q: ProcessId) -> u64 {
        let Some(entry) = self.entries.get(q.index()) else {
            return NO_SEQ;
        };
        // Segments are never left empty (purge removes drained boundary
        // segments), so the last segment holds the answer.
        let Some((&index, seg)) = entry.segments.last_key_value() else {
            return NO_SEQ;
        };
        let slot = seg
            .slots
            .iter()
            .rposition(Option::is_some)
            .expect("segments are never empty");
        seg_base(index) + slot as u64
    }

    /// Total payload bytes currently held — the memory-footprint view of
    /// the history length (Section 6 worries that "the required memory
    /// could be unacceptable for small systems"). O(1): maintained
    /// incrementally.
    pub fn payload_bytes(&self) -> usize {
        self.bytes
    }

    /// Number of segments currently allocated across all origins — the
    /// residency gauge the soak harness samples per window.
    pub fn segments_live(&self) -> usize {
        self.segments
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use urcgc_types::Round;

    fn msg(p: u16, s: u64) -> Arc<DataMsg> {
        Arc::new(DataMsg {
            mid: Mid::new(ProcessId(p), s),
            deps: vec![],
            round: Round(0),
            payload: Bytes::from(format!("m{p}-{s}")),
        })
    }

    fn mid(p: u16, s: u64) -> Mid {
        Mid::new(ProcessId(p), s)
    }

    /// `advance_stability` for one origin of a width-`n` table.
    fn purge_one(h: &mut History, q: u16, upto: u64) -> PurgeReport {
        let mut stable = vec![NO_SEQ; h.n()];
        stable[q as usize] = upto;
        h.advance_stability(&StableVector::new(&stable))
    }

    #[test]
    fn save_and_get() {
        let mut h = History::new(2);
        assert!(h.save(msg(0, 1)));
        assert!(h.contains(mid(0, 1)));
        assert_eq!(h.get(mid(0, 1)).unwrap().payload, Bytes::from("m0-1"));
        assert_eq!(h.len(), 1);
        assert_eq!(h.len_for(ProcessId(0)), 1);
        assert_eq!(h.len_for(ProcessId(1)), 0);
    }

    #[test]
    fn duplicate_save_is_rejected() {
        let mut h = History::new(1);
        assert!(h.save(msg(0, 1)));
        assert!(!h.save(msg(0, 1)));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn range_extraction_for_recovery() {
        let mut h = History::new(1);
        for s in 1..=5 {
            h.save(msg(0, s));
        }
        let got = h.range(ProcessId(0), 1, 4);
        let seqs: Vec<u64> = got.iter().map(|m| m.mid.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert!(h.range(ProcessId(0), 5, 9).is_empty());
        assert!(h.range(ProcessId(3), 0, 9).is_empty(), "unknown origin");
    }

    #[test]
    fn range_crosses_segment_boundaries() {
        let mut h = History::new(1);
        // Three segments' worth, with holes.
        for s in 1..=(3 * SEGMENT_SPAN) {
            if s % 3 != 0 {
                h.save(msg(0, s));
            }
        }
        let lo = SEGMENT_SPAN - 2;
        let hi = 2 * SEGMENT_SPAN + 2;
        let seqs: Vec<u64> = h
            .range(ProcessId(0), lo, hi)
            .iter()
            .map(|m| m.mid.seq)
            .collect();
        let expect: Vec<u64> = (lo + 1..=hi).filter(|s| s % 3 != 0).collect();
        assert_eq!(seqs, expect);
    }

    #[test]
    fn range_boundary_cases_share_one_empty_shape() {
        let mut h = History::new(2);
        for s in 1..=4 {
            h.save(msg(0, s));
        }
        purge_one(&mut h, 0, 4);
        // Fully purged window, absent origin inside the group, origin
        // outside the group, and inverted/empty windows all produce the
        // same empty Vec<Arc<DataMsg>> — no caller can tell them apart,
        // and none of them deep-copies anything.
        assert!(h.range(ProcessId(0), 0, 4).is_empty(), "fully purged");
        assert!(h.range(ProcessId(1), 0, 9).is_empty(), "never processed");
        assert!(h.range(ProcessId(7), 0, 9).is_empty(), "outside group");
        assert!(h.range(ProcessId(0), 3, 3).is_empty(), "empty window");
        assert!(h.range(ProcessId(0), 9, 2).is_empty(), "inverted window");
        assert!(
            h.range(ProcessId(0), u64::MAX, 1).is_empty(),
            "NO_SEQ-adjacent after_seq must not overflow"
        );
    }

    #[test]
    fn range_shares_storage_with_the_table() {
        let mut h = History::new(1);
        h.save(msg(0, 1));
        let got = h.range(ProcessId(0), 0, 1);
        // The reply holds the same allocation the table does.
        assert!(Arc::ptr_eq(
            &got[0],
            h.get(Mid::new(ProcessId(0), 1)).unwrap()
        ));
    }

    #[test]
    fn range_with_holes_returns_what_exists() {
        let mut h = History::new(1);
        h.save(msg(0, 1));
        h.save(msg(0, 3));
        let seqs: Vec<u64> = h
            .range(ProcessId(0), 0, 3)
            .iter()
            .map(|m| m.mid.seq)
            .collect();
        assert_eq!(seqs, vec![1, 3]);
    }

    #[test]
    fn purge_drops_prefix_and_blocks_resave() {
        let mut h = History::new(1);
        for s in 1..=4 {
            h.save(msg(0, s));
        }
        assert_eq!(purge_one(&mut h, 0, 2).messages, 2);
        assert_eq!(h.len(), 2);
        assert!(!h.contains(mid(0, 1)));
        assert!(h.contains(mid(0, 3)));
        // A stale duplicate of a purged message must not resurrect it.
        assert!(!h.save(msg(0, 2)));
        assert_eq!(h.stable_frontier(ProcessId(0)), 2);
    }

    #[test]
    fn purge_never_regresses() {
        let mut h = History::new(1);
        for s in 1..=4 {
            h.save(msg(0, s));
        }
        purge_one(&mut h, 0, 3);
        let report = purge_one(&mut h, 0, 2);
        assert!(report.is_noop());
        assert_eq!(h.stable_frontier(ProcessId(0)), 3);
    }

    #[test]
    fn advance_stability_applies_whole_vector() {
        let mut h = History::new(2);
        h.save(msg(0, 1));
        h.save(msg(0, 2));
        h.save(msg(1, 1));
        let report = h.advance_stability(&StableVector::new(&[1, 1]));
        assert_eq!(report.messages, 2);
        assert_eq!(report.origins_advanced, 2);
        assert_eq!(h.len(), 1);
        assert!(h.contains(mid(0, 2)));
    }

    #[test]
    fn purge_frees_whole_segments_and_counts_them() {
        let mut h = History::new(1);
        let per = 4 * SEGMENT_SPAN;
        for s in 1..=per {
            h.save(msg(0, s));
        }
        assert_eq!(h.segments_live(), 4);
        // Frontier mid-way into the third segment: two whole segments
        // freed, the boundary segment partially cleared (still live).
        let report = purge_one(&mut h, 0, 2 * SEGMENT_SPAN + 10);
        assert_eq!(report.segments_freed, 2);
        assert_eq!(report.messages as u64, 2 * SEGMENT_SPAN + 10);
        assert_eq!(h.segments_live(), 2);
        assert_eq!(h.len() as u64, per - (2 * SEGMENT_SPAN + 10));
        // Draining the boundary segment exactly frees it too.
        let report = purge_one(&mut h, 0, 3 * SEGMENT_SPAN);
        assert_eq!(report.segments_freed, 1);
        assert_eq!(h.segments_live(), 1);
    }

    #[test]
    fn highest_seq_tracks_tail() {
        let mut h = History::new(1);
        assert_eq!(h.highest_seq(ProcessId(0)), NO_SEQ);
        h.save(msg(0, 2));
        h.save(msg(0, 7));
        assert_eq!(h.highest_seq(ProcessId(0)), 7);
        h.save(msg(0, SEGMENT_SPAN + 5));
        assert_eq!(h.highest_seq(ProcessId(0)), SEGMENT_SPAN + 5);
        purge_one(&mut h, 0, SEGMENT_SPAN + 5);
        assert_eq!(h.highest_seq(ProcessId(0)), NO_SEQ);
    }

    #[test]
    #[should_panic(expected = "outside group")]
    fn save_outside_group_panics() {
        let mut h = History::new(1);
        h.save(msg(3, 1));
    }

    #[test]
    fn payload_bytes_tracks_save_and_purge() {
        let mut h = History::new(2);
        for s in 1..=3u64 {
            h.save(Arc::new(DataMsg {
                mid: Mid::new(ProcessId(0), s),
                deps: vec![],
                round: Round(0),
                payload: Bytes::from(vec![0u8; 10]),
            }));
        }
        assert_eq!(h.payload_bytes(), 30);
        let report = purge_one(&mut h, 0, 2);
        assert_eq!(report.bytes, 20);
        assert_eq!(h.payload_bytes(), 10);
    }

    #[test]
    fn stable_vector_reads_past_the_end_as_no_seq() {
        let sv = StableVector::new(&[3]);
        assert_eq!(sv.get(0), 3);
        assert_eq!(sv.get(9), NO_SEQ);
        assert_eq!(sv.len(), 1);
        assert!(!sv.is_empty());
    }
}
