//! The history table.

use std::collections::BTreeMap;
use std::sync::Arc;

use urcgc_types::{DataMsg, Mid, ProcessId, NO_SEQ};

/// One origin's entry: processed messages keyed by sequence number, plus the
/// purge frontier (everything `<= purged_to` has been cleaned away).
#[derive(Clone, Debug, Default)]
struct Entry {
    purged_to: u64,
    messages: BTreeMap<u64, Arc<DataMsg>>,
}

/// The per-process history buffer: processed messages of every origin, kept
/// until the group agrees they are stable.
#[derive(Clone, Debug)]
pub struct History {
    entries: Vec<Entry>,
}

impl History {
    /// An empty history for a group of `n`.
    pub fn new(n: usize) -> Self {
        History {
            entries: (0..n).map(|_| Entry::default()).collect(),
        }
    }

    /// Group cardinality.
    pub fn n(&self) -> usize {
        self.entries.len()
    }

    /// Saves a processed message. Returns `false` (and stores nothing) if
    /// the message was already present or already purged — both happen
    /// routinely when recovery duplicates traffic. The stored handle is
    /// shared with the caller (and with recovery replies served later) —
    /// saving never copies the message body.
    pub fn save(&mut self, msg: Arc<DataMsg>) -> bool {
        let i = msg.mid.origin.index();
        assert!(i < self.n(), "origin {} outside group", msg.mid.origin);
        assert_ne!(msg.mid.seq, NO_SEQ, "NO_SEQ is not a message");
        let entry = &mut self.entries[i];
        if msg.mid.seq <= entry.purged_to || entry.messages.contains_key(&msg.mid.seq) {
            return false;
        }
        entry.messages.insert(msg.mid.seq, msg);
        true
    }

    /// Whether `mid` is currently held.
    pub fn contains(&self, mid: Mid) -> bool {
        self.entries
            .get(mid.origin.index())
            .is_some_and(|e| e.messages.contains_key(&mid.seq))
    }

    /// Retrieves a held message.
    pub fn get(&self, mid: Mid) -> Option<&Arc<DataMsg>> {
        self.entries.get(mid.origin.index())?.messages.get(&mid.seq)
    }

    /// Messages of `origin` with `after_seq < seq <= upto_seq`, in order —
    /// the payload of a recovery reply, shared straight out of the buffer
    /// (each element is an `Arc` handle; nothing is deep-copied). Messages
    /// already purged or never processed are simply absent (the requester
    /// retries elsewhere or, past `R` attempts, leaves the group); an origin
    /// outside the group yields the same empty result as a purged range.
    pub fn range(&self, origin: ProcessId, after_seq: u64, upto_seq: u64) -> Vec<Arc<DataMsg>> {
        let Some(entry) = self.entries.get(origin.index()) else {
            return Vec::new();
        };
        if after_seq >= upto_seq {
            return Vec::new();
        }
        entry
            .messages
            .range(after_seq + 1..=upto_seq)
            .map(|(_, m)| Arc::clone(m))
            .collect()
    }

    /// Purges origin `q`'s messages with `seq <= upto` (the group-agreed
    /// stability frontier). Returns how many messages were dropped. Purging
    /// never regresses: a frontier older than a previous purge is a no-op.
    pub fn purge_up_to(&mut self, q: ProcessId, upto: u64) -> usize {
        let Some(entry) = self.entries.get_mut(q.index()) else {
            return 0;
        };
        if upto <= entry.purged_to {
            return 0;
        }
        let keep = entry.messages.split_off(&(upto + 1));
        let dropped = entry.messages.len();
        entry.messages = keep;
        entry.purged_to = upto;
        dropped
    }

    /// Applies a whole stability vector (`stable[q]` per origin), returning
    /// the total number of purged messages.
    pub fn purge_stable(&mut self, stable: &[u64]) -> usize {
        stable
            .iter()
            .enumerate()
            .map(|(i, &s)| self.purge_up_to(ProcessId::from_index(i), s))
            .sum()
    }

    /// Total number of messages currently held — the "history length"
    /// plotted in Figure 6.
    pub fn len(&self) -> usize {
        self.entries.iter().map(|e| e.messages.len()).sum()
    }

    /// Whether the history holds no messages.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of messages held for one origin.
    pub fn len_for(&self, q: ProcessId) -> usize {
        self.entries.get(q.index()).map_or(0, |e| e.messages.len())
    }

    /// The purge frontier for origin `q`.
    pub fn purged_to(&self, q: ProcessId) -> u64 {
        self.entries.get(q.index()).map_or(NO_SEQ, |e| e.purged_to)
    }

    /// Highest held sequence number for origin `q` ([`NO_SEQ`] if none).
    pub fn highest_seq(&self, q: ProcessId) -> u64 {
        self.entries
            .get(q.index())
            .and_then(|e| e.messages.keys().next_back().copied())
            .unwrap_or(NO_SEQ)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use urcgc_types::Round;

    fn msg(p: u16, s: u64) -> Arc<DataMsg> {
        Arc::new(DataMsg {
            mid: Mid::new(ProcessId(p), s),
            deps: vec![],
            round: Round(0),
            payload: Bytes::from(format!("m{p}-{s}")),
        })
    }

    fn mid(p: u16, s: u64) -> Mid {
        Mid::new(ProcessId(p), s)
    }

    #[test]
    fn save_and_get() {
        let mut h = History::new(2);
        assert!(h.save(msg(0, 1)));
        assert!(h.contains(mid(0, 1)));
        assert_eq!(h.get(mid(0, 1)).unwrap().payload, Bytes::from("m0-1"));
        assert_eq!(h.len(), 1);
        assert_eq!(h.len_for(ProcessId(0)), 1);
        assert_eq!(h.len_for(ProcessId(1)), 0);
    }

    #[test]
    fn duplicate_save_is_rejected() {
        let mut h = History::new(1);
        assert!(h.save(msg(0, 1)));
        assert!(!h.save(msg(0, 1)));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn range_extraction_for_recovery() {
        let mut h = History::new(1);
        for s in 1..=5 {
            h.save(msg(0, s));
        }
        let got = h.range(ProcessId(0), 1, 4);
        let seqs: Vec<u64> = got.iter().map(|m| m.mid.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert!(h.range(ProcessId(0), 5, 9).is_empty());
        assert!(h.range(ProcessId(3), 0, 9).is_empty(), "unknown origin");
    }

    #[test]
    fn range_boundary_cases_share_one_empty_shape() {
        let mut h = History::new(2);
        for s in 1..=4 {
            h.save(msg(0, s));
        }
        h.purge_up_to(ProcessId(0), 4);
        // Fully purged window, absent origin inside the group, origin
        // outside the group, and inverted/empty windows all produce the
        // same empty Vec<Arc<DataMsg>> — no caller can tell them apart,
        // and none of them deep-copies anything.
        assert!(h.range(ProcessId(0), 0, 4).is_empty(), "fully purged");
        assert!(h.range(ProcessId(1), 0, 9).is_empty(), "never processed");
        assert!(h.range(ProcessId(7), 0, 9).is_empty(), "outside group");
        assert!(h.range(ProcessId(0), 3, 3).is_empty(), "empty window");
        assert!(h.range(ProcessId(0), 9, 2).is_empty(), "inverted window");
        assert!(
            h.range(ProcessId(0), u64::MAX, 1).is_empty(),
            "NO_SEQ-adjacent after_seq must not overflow"
        );
    }

    #[test]
    fn range_shares_storage_with_the_table() {
        let mut h = History::new(1);
        h.save(msg(0, 1));
        let got = h.range(ProcessId(0), 0, 1);
        // The reply holds the same allocation the table does.
        assert!(Arc::ptr_eq(
            &got[0],
            h.get(Mid::new(ProcessId(0), 1)).unwrap()
        ));
    }

    #[test]
    fn range_with_holes_returns_what_exists() {
        let mut h = History::new(1);
        h.save(msg(0, 1));
        h.save(msg(0, 3));
        let seqs: Vec<u64> = h
            .range(ProcessId(0), 0, 3)
            .iter()
            .map(|m| m.mid.seq)
            .collect();
        assert_eq!(seqs, vec![1, 3]);
    }

    #[test]
    fn purge_drops_prefix_and_blocks_resave() {
        let mut h = History::new(1);
        for s in 1..=4 {
            h.save(msg(0, s));
        }
        assert_eq!(h.purge_up_to(ProcessId(0), 2), 2);
        assert_eq!(h.len(), 2);
        assert!(!h.contains(mid(0, 1)));
        assert!(h.contains(mid(0, 3)));
        // A stale duplicate of a purged message must not resurrect it.
        assert!(!h.save(msg(0, 2)));
        assert_eq!(h.purged_to(ProcessId(0)), 2);
    }

    #[test]
    fn purge_never_regresses() {
        let mut h = History::new(1);
        for s in 1..=4 {
            h.save(msg(0, s));
        }
        h.purge_up_to(ProcessId(0), 3);
        assert_eq!(h.purge_up_to(ProcessId(0), 2), 0);
        assert_eq!(h.purged_to(ProcessId(0)), 3);
    }

    #[test]
    fn purge_stable_applies_whole_vector() {
        let mut h = History::new(2);
        h.save(msg(0, 1));
        h.save(msg(0, 2));
        h.save(msg(1, 1));
        let dropped = h.purge_stable(&[1, 1]);
        assert_eq!(dropped, 2);
        assert_eq!(h.len(), 1);
        assert!(h.contains(mid(0, 2)));
    }

    #[test]
    fn highest_seq_tracks_tail() {
        let mut h = History::new(1);
        assert_eq!(h.highest_seq(ProcessId(0)), NO_SEQ);
        h.save(msg(0, 2));
        h.save(msg(0, 7));
        assert_eq!(h.highest_seq(ProcessId(0)), 7);
    }

    #[test]
    #[should_panic(expected = "outside group")]
    fn save_outside_group_panics() {
        let mut h = History::new(1);
        h.save(msg(3, 1));
    }
}

impl History {
    /// Total payload bytes currently held — the memory-footprint view of
    /// the history length (Section 6 worries that "the required memory
    /// could be unacceptable for small systems").
    pub fn payload_bytes(&self) -> usize {
        self.entries
            .iter()
            .flat_map(|e| e.messages.values())
            .map(|m| m.payload.len())
            .sum()
    }
}

#[cfg(test)]
mod bytes_tests {
    use super::*;
    use bytes::Bytes;
    use urcgc_types::Round;

    #[test]
    fn payload_bytes_tracks_save_and_purge() {
        let mut h = History::new(2);
        for s in 1..=3u64 {
            h.save(Arc::new(DataMsg {
                mid: Mid::new(ProcessId(0), s),
                deps: vec![],
                round: Round(0),
                payload: Bytes::from(vec![0u8; 10]),
            }));
        }
        assert_eq!(h.payload_bytes(), 30);
        h.purge_up_to(ProcessId(0), 2);
        assert_eq!(h.payload_bytes(), 10);
    }
}
