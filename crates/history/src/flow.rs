//! Distributed flow control (Section 6, Figure 6 b).
//!
//! "When the local history length reaches a given threshold (set to 8n in
//! our simulations), a process refrains from generating new messages until
//! the history length decreases." The policy is purely local — it exploits
//! the fact that, because cleaning follows a *global* agreement, all
//! histories have roughly the same length, so local back-pressure bounds
//! every history in the group.

/// Threshold gate on message generation.
#[derive(Clone, Copy, Debug)]
pub struct FlowControl {
    /// Stop generating when the history length reaches this value; `None`
    /// disables the gate (Figure 6 a).
    threshold: Option<usize>,
    /// Resume once the length drops strictly below this value. Defaults to
    /// `threshold` (the paper's policy: resume as soon as the length
    /// decreases); a lower value adds hysteresis.
    resume_below: usize,
    /// Whether the gate is currently closed.
    blocked: bool,
}

impl FlowControl {
    /// A disabled gate: generation is always allowed.
    pub fn disabled() -> Self {
        FlowControl {
            threshold: None,
            resume_below: 0,
            blocked: false,
        }
    }

    /// The paper's policy: block at `threshold`, resume below it.
    pub fn with_threshold(threshold: usize) -> Self {
        FlowControl {
            threshold: Some(threshold),
            resume_below: threshold,
            blocked: false,
        }
    }

    /// Adds hysteresis: block at `threshold`, resume only once the length
    /// falls strictly below `resume_below`.
    pub fn with_hysteresis(threshold: usize, resume_below: usize) -> Self {
        assert!(resume_below <= threshold, "resume level above threshold");
        FlowControl {
            threshold: Some(threshold),
            resume_below,
            blocked: false,
        }
    }

    /// Whether flow control is configured at all.
    pub fn is_enabled(&self) -> bool {
        self.threshold.is_some()
    }

    /// The configured threshold, if enabled.
    pub fn threshold(&self) -> Option<usize> {
        self.threshold
    }

    /// Updates the gate with the current history length and reports whether
    /// the process may generate a new message *now*.
    pub fn may_generate(&mut self, history_len: usize) -> bool {
        let Some(threshold) = self.threshold else {
            return true;
        };
        if self.blocked {
            if history_len < self.resume_below {
                self.blocked = false;
            }
        } else if history_len >= threshold {
            self.blocked = true;
        }
        !self.blocked
    }

    /// Whether the gate is currently closed (as of the last
    /// [`FlowControl::may_generate`] call).
    pub fn is_blocked(&self) -> bool {
        self.blocked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_gate_always_allows() {
        let mut fc = FlowControl::disabled();
        assert!(fc.may_generate(0));
        assert!(fc.may_generate(1_000_000));
        assert!(!fc.is_enabled());
    }

    #[test]
    fn blocks_at_threshold_and_resumes_below() {
        let mut fc = FlowControl::with_threshold(8);
        assert!(fc.may_generate(7));
        assert!(!fc.may_generate(8), "reaching the threshold blocks");
        assert!(fc.is_blocked());
        assert!(!fc.may_generate(8), "still at threshold: stays blocked");
        assert!(fc.may_generate(7), "decrease below threshold resumes");
        assert!(!fc.is_blocked());
    }

    #[test]
    fn hysteresis_requires_deeper_drain() {
        let mut fc = FlowControl::with_hysteresis(8, 4);
        assert!(!fc.may_generate(9));
        assert!(!fc.may_generate(5), "above resume level: still blocked");
        assert!(fc.may_generate(3));
        // And it re-blocks at the threshold again.
        assert!(!fc.may_generate(8));
    }

    #[test]
    #[should_panic(expected = "resume level")]
    fn invalid_hysteresis_panics() {
        let _ = FlowControl::with_hysteresis(4, 8);
    }

    #[test]
    fn zero_threshold_blocks_immediately() {
        let mut fc = FlowControl::with_threshold(0);
        assert!(!fc.may_generate(0));
    }
}
