//! The retired flat history layout, kept as an executable specification.
//!
//! [`FlatHistory`] is the pre-segmentation table — one `BTreeMap` per
//! origin — exposed through the same API as the sharded
//! [`History`](crate::History). It exists for two jobs (the same pattern
//! as `RescanWaitingList`, and as the flat-wire simulator before its
//! retirement):
//!
//! * the differential proptest replays random insert/purge interleavings
//!   on both tables and requires observable equivalence;
//! * the purge benchmarks use it as the O(messages) baseline the
//!   O(segments-freed) claim is measured against.
//!
//! It is not exported for production use.

use std::collections::BTreeMap;
use std::sync::Arc;

use urcgc_types::{DataMsg, Mid, ProcessId, NO_SEQ};

use crate::table::{PurgeReport, StableVector};

#[derive(Clone, Debug, Default)]
struct Entry {
    purged_to: u64,
    messages: BTreeMap<u64, Arc<DataMsg>>,
}

/// The flat (scan-based) history table — specification twin of
/// [`History`](crate::History).
#[derive(Clone, Debug)]
pub struct FlatHistory {
    entries: Vec<Entry>,
}

impl FlatHistory {
    /// An empty history for a group of `n`.
    pub fn new(n: usize) -> Self {
        FlatHistory {
            entries: (0..n).map(|_| Entry::default()).collect(),
        }
    }

    /// Group cardinality.
    pub fn n(&self) -> usize {
        self.entries.len()
    }

    /// Saves a processed message (see [`History::save`](crate::History::save)).
    pub fn save(&mut self, msg: Arc<DataMsg>) -> bool {
        let i = msg.mid.origin.index();
        assert!(i < self.n(), "origin {} outside group", msg.mid.origin);
        assert_ne!(msg.mid.seq, NO_SEQ, "NO_SEQ is not a message");
        let entry = &mut self.entries[i];
        if msg.mid.seq <= entry.purged_to || entry.messages.contains_key(&msg.mid.seq) {
            return false;
        }
        entry.messages.insert(msg.mid.seq, msg);
        true
    }

    /// Whether `mid` is currently held.
    pub fn contains(&self, mid: Mid) -> bool {
        self.entries
            .get(mid.origin.index())
            .is_some_and(|e| e.messages.contains_key(&mid.seq))
    }

    /// Retrieves a held message.
    pub fn get(&self, mid: Mid) -> Option<&Arc<DataMsg>> {
        self.entries.get(mid.origin.index())?.messages.get(&mid.seq)
    }

    /// Messages of `origin` with `after_seq < seq <= upto_seq`, in order.
    pub fn range(&self, origin: ProcessId, after_seq: u64, upto_seq: u64) -> Vec<Arc<DataMsg>> {
        let Some(entry) = self.entries.get(origin.index()) else {
            return Vec::new();
        };
        if after_seq >= upto_seq {
            return Vec::new();
        }
        entry
            .messages
            .range(after_seq + 1..=upto_seq)
            .map(|(_, m)| Arc::clone(m))
            .collect()
    }

    /// Advances every origin's purge frontier to the stability vector —
    /// the flat rendition of
    /// [`History::advance_stability`](crate::History::advance_stability).
    /// `segments_freed` is reported as 0: the flat layout has no segments,
    /// which is exactly why its purge cost is O(messages).
    pub fn advance_stability(&mut self, stable: &StableVector<'_>) -> PurgeReport {
        let mut report = PurgeReport::default();
        for q in 0..self.n() {
            let upto = stable.get(q);
            let entry = &mut self.entries[q];
            if upto <= entry.purged_to {
                continue;
            }
            report.origins_advanced += 1;
            let keep = entry.messages.split_off(&(upto + 1));
            let dropped = std::mem::replace(&mut entry.messages, keep);
            report.messages += dropped.len();
            report.bytes += dropped.values().map(|m| m.payload.len()).sum::<usize>();
            entry.purged_to = upto;
        }
        report
    }

    /// The stable (purge) frontier for origin `q`.
    pub fn stable_frontier(&self, q: ProcessId) -> u64 {
        self.entries.get(q.index()).map_or(NO_SEQ, |e| e.purged_to)
    }

    /// Total number of messages currently held. O(n + messages).
    pub fn len(&self) -> usize {
        self.entries.iter().map(|e| e.messages.len()).sum()
    }

    /// Whether the history holds no messages.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of messages held for one origin.
    pub fn len_for(&self, q: ProcessId) -> usize {
        self.entries.get(q.index()).map_or(0, |e| e.messages.len())
    }

    /// Highest held sequence number for origin `q` ([`NO_SEQ`] if none).
    pub fn highest_seq(&self, q: ProcessId) -> u64 {
        self.entries
            .get(q.index())
            .and_then(|e| e.messages.keys().next_back().copied())
            .unwrap_or(NO_SEQ)
    }

    /// Total payload bytes currently held. O(messages).
    pub fn payload_bytes(&self) -> usize {
        self.entries
            .iter()
            .flat_map(|e| e.messages.values())
            .map(|m| m.payload.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use urcgc_types::Round;

    fn msg(p: u16, s: u64) -> Arc<DataMsg> {
        Arc::new(DataMsg {
            mid: Mid::new(ProcessId(p), s),
            deps: vec![],
            round: Round(0),
            payload: Bytes::from(format!("m{p}-{s}")),
        })
    }

    #[test]
    fn flat_purge_matches_documented_semantics() {
        let mut h = FlatHistory::new(2);
        for s in 1..=4 {
            h.save(msg(0, s));
        }
        h.save(msg(1, 1));
        let report = h.advance_stability(&StableVector::new(&[2, 0]));
        assert_eq!(report.messages, 2);
        assert_eq!(report.origins_advanced, 1);
        assert_eq!(report.segments_freed, 0, "flat layout has no segments");
        assert_eq!(h.stable_frontier(ProcessId(0)), 2);
        assert!(!h.save(msg(0, 1)), "purged seqs stay purged");
        assert_eq!(h.len(), 3);
        assert_eq!(h.highest_seq(ProcessId(0)), 4);
    }
}
