//! Coordinator-side decision making (Section 4, Figure 2).
//!
//! During the first round of its subrun the coordinator collects
//! [`RequestMsg`](urcgc_types::RequestMsg)-equivalents — each member's
//! `last_processed` vector, its oldest-waiting vector, and the freshest
//! previous decision the member has seen. [`StabilityMatrix::compute`] then
//! performs the "local processing on a set of data structures that allow the
//! coordinator to figure the global knowledge about the whole system":
//!
//! * **stability** — per origin, the minimum `last_processed` over the
//!   contributors, continued across subruns through the decision's
//!   `covered` set until every alive process has been heard from
//!   (`full_group`);
//! * **failure detection** — `attempts[i]` incremented for every alive
//!   process that did not contribute, reset for those that did; reaching
//!   `K` declares the process crashed;
//! * **recovery hints** — `max_processed[q]`: the most updated *alive*
//!   process per sequence;
//! * **orphan detection** — `min_waiting[q]`: the group-wide oldest waiting
//!   sequence number per origin.

use urcgc_types::{Decision, MaxProcessed, ProcessId, Subrun, NO_SEQ};

/// One member's contribution to the current subrun.
#[derive(Clone, Debug)]
struct Contribution {
    last_processed: Vec<u64>,
    waiting: Vec<u64>,
}

/// Accumulates member requests for one subrun and computes the decision.
#[derive(Clone, Debug)]
pub struct StabilityMatrix {
    n: usize,
    contributions: Vec<Option<Contribution>>,
    /// The freshest previous decision seen in any request (decision
    /// circulation: with resilience `t = (n−1)/2` at least one copy of the
    /// previous decision reaches the current coordinator).
    freshest_prev: Option<Decision>,
}

impl StabilityMatrix {
    /// An empty matrix for a group of `n`.
    pub fn new(n: usize) -> Self {
        StabilityMatrix {
            n,
            contributions: vec![None; n],
            freshest_prev: None,
        }
    }

    /// Group cardinality.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Records `sender`'s request. Later duplicates (retransmissions)
    /// overwrite earlier ones — `last_processed` is monotone so the newest
    /// copy is the most informative. The carried previous decision is cloned
    /// only when it is the freshest seen so far; stale copies (the common
    /// case — every member carries the same previous decision) cost nothing.
    pub fn record(
        &mut self,
        sender: ProcessId,
        last_processed: Vec<u64>,
        waiting: Vec<u64>,
        prev_decision: &Decision,
    ) {
        assert_eq!(last_processed.len(), self.n, "last_processed width");
        assert_eq!(waiting.len(), self.n, "waiting width");
        self.contributions[sender.index()] = Some(Contribution {
            last_processed,
            waiting,
        });
        let fresher = match &self.freshest_prev {
            None => true,
            Some(cur) => prev_decision.is_newer_than(cur),
        };
        if fresher {
            self.freshest_prev = Some(prev_decision.clone());
        }
    }

    /// Whether `p` has contributed this subrun.
    pub fn has_contribution(&self, p: ProcessId) -> bool {
        self.contributions
            .get(p.index())
            .is_some_and(Option::is_some)
    }

    /// Number of contributors so far.
    pub fn contributor_count(&self) -> usize {
        self.contributions.iter().flatten().count()
    }

    /// The freshest previous decision carried by any contributor, if any.
    pub fn freshest_prev(&self) -> Option<&Decision> {
        self.freshest_prev.as_ref()
    }

    /// Computes this subrun's decision.
    ///
    /// (Index-based loops below are deliberate: several same-width vectors
    /// are updated in lockstep by process index.)
    ///
    /// `fallback_prev` is the coordinator's *own* latest decision, used when
    /// no contributor carried a fresher one (the coordinator is itself a
    /// group member and always "contributes" its own state via
    /// [`StabilityMatrix::record`], so in practice the previous decision is
    /// always available — exactly the resilience argument of Section 4).
    #[allow(clippy::needless_range_loop)]
    pub fn compute(
        &self,
        subrun: Subrun,
        coordinator: ProcessId,
        k: u32,
        fallback_prev: &Decision,
    ) -> Decision {
        let prev = match &self.freshest_prev {
            Some(p) if p.is_newer_than(fallback_prev) => p,
            _ => fallback_prev,
        };
        let n = self.n;
        debug_assert_eq!(prev.n(), n, "previous decision width");

        // --- Failure detection: attempts / process_state ------------------
        let mut attempts = prev.attempts.clone();
        let mut process_state = prev.process_state.clone();
        for i in 0..n {
            if !process_state[i] {
                continue; // crashed processes stay crashed, counters frozen
            }
            if self.contributions[i].is_some() {
                attempts[i] = 0;
            } else {
                attempts[i] = attempts[i].saturating_add(1);
                if attempts[i] >= k {
                    process_state[i] = false;
                }
            }
        }

        // --- Stability: min of last_processed, continued across subruns ---
        // If the previous decision was full_group, its coverage was consumed
        // (histories were cleaned); start a fresh accumulation from this
        // subrun's contributors. Otherwise continue accumulating on top of
        // the previous partial result.
        let continuing = !prev.full_group;
        let mut covered = if continuing {
            prev.covered.clone()
        } else {
            vec![false; n]
        };
        let mut stable = if continuing {
            prev.stable.clone()
        } else {
            vec![u64::MAX; n]
        };
        for (i, c) in self.contributions.iter().enumerate() {
            let Some(c) = c else { continue };
            covered[i] = true;
            for q in 0..n {
                stable[q] = stable[q].min(c.last_processed[q]);
            }
        }
        // Origins nobody has reported on yet.
        for s in stable.iter_mut() {
            if *s == u64::MAX {
                *s = NO_SEQ;
            }
        }
        // full_group: every process alive in the *new* view has entered the
        // accumulation. Crashed processes no longer gate cleaning — that is
        // precisely how urcgc keeps cleaning while CBCAST would block on a
        // view-change protocol.
        let full_group = (0..n).all(|i| !process_state[i] || covered[i]);

        // --- Recovery hints: most updated alive process per origin --------
        let mut max_processed: Vec<MaxProcessed> = (0..n)
            .map(|q| {
                let prev_rec = prev.max_processed[q];
                // Keep the previous holder only while it is still alive in
                // the new view; a crashed holder's knowledge is gone and the
                // hint must regress to the best alive candidate (this is
                // what exposes orphan gaps).
                if process_state[prev_rec.holder.index()] {
                    prev_rec
                } else {
                    MaxProcessed::none(ProcessId::from_index(q))
                }
            })
            .collect();
        for (i, c) in self.contributions.iter().enumerate() {
            let Some(c) = c else { continue };
            if !process_state[i] {
                continue;
            }
            let holder = ProcessId::from_index(i);
            for q in 0..n {
                let better = c.last_processed[q] > max_processed[q].seq
                    || (c.last_processed[q] == max_processed[q].seq
                        && !process_state[max_processed[q].holder.index()]);
                if better {
                    max_processed[q] = MaxProcessed {
                        holder,
                        seq: c.last_processed[q],
                    };
                }
            }
        }

        // --- Orphan detection: group-wide oldest waiting per origin -------
        let mut min_waiting = vec![NO_SEQ; n];
        for c in self.contributions.iter().flatten() {
            for q in 0..n {
                let w = c.waiting[q];
                if w == NO_SEQ {
                    continue;
                }
                if min_waiting[q] == NO_SEQ || w < min_waiting[q] {
                    min_waiting[q] = w;
                }
            }
        }

        Decision {
            subrun,
            coordinator,
            full_group,
            stable,
            attempts,
            process_state,
            max_processed,
            min_waiting,
            covered,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u16) -> ProcessId {
        ProcessId(i)
    }

    fn record_simple(m: &mut StabilityMatrix, i: u16, lp: Vec<u64>, prev: &Decision) {
        let n = lp.len();
        m.record(pid(i), lp, vec![NO_SEQ; n], prev);
    }

    #[test]
    fn full_group_stability_is_min_of_last_processed() {
        let prev = Decision::genesis(3);
        let mut m = StabilityMatrix::new(3);
        record_simple(&mut m, 0, vec![5, 2, 1], &prev);
        record_simple(&mut m, 1, vec![4, 3, 1], &prev);
        record_simple(&mut m, 2, vec![5, 3, 0], &prev);
        let d = m.compute(Subrun(1), pid(1), 3, &prev);
        assert!(d.full_group);
        assert_eq!(d.stable, vec![4, 2, 0]);
        assert!(d.process_state.iter().all(|&s| s));
        assert_eq!(d.attempts, vec![0, 0, 0]);
    }

    #[test]
    fn partial_contribution_is_not_full_group() {
        let prev = Decision::genesis(3);
        let mut m = StabilityMatrix::new(3);
        record_simple(&mut m, 0, vec![5, 2, 1], &prev);
        record_simple(&mut m, 1, vec![4, 3, 1], &prev);
        let d = m.compute(Subrun(1), pid(1), 3, &prev);
        assert!(!d.full_group);
        assert_eq!(d.covered, vec![true, true, false]);
        assert_eq!(d.attempts, vec![0, 0, 1]);
    }

    #[test]
    fn coverage_accumulates_across_subruns() {
        // Subrun 1: p0, p1 contribute. Subrun 2: p2 contributes. The second
        // decision completes the accumulation and goes full_group.
        let genesis = Decision::genesis(3);
        let mut m1 = StabilityMatrix::new(3);
        record_simple(&mut m1, 0, vec![5, 2, 1], &genesis);
        record_simple(&mut m1, 1, vec![4, 3, 1], &genesis);
        let d1 = m1.compute(Subrun(1), pid(1), 3, &genesis);
        assert!(!d1.full_group);

        let mut m2 = StabilityMatrix::new(3);
        record_simple(&mut m2, 2, vec![5, 3, 2], &d1);
        let d2 = m2.compute(Subrun(2), pid(2), 3, &d1);
        assert!(d2.full_group);
        // min over {p0(4,2,1 taken at s1… actually 5,2,1), p1(4,3,1), p2(5,3,2)}
        assert_eq!(d2.stable, vec![4, 2, 1]);
    }

    #[test]
    fn full_group_decision_resets_coverage() {
        let genesis = Decision::genesis(2);
        let mut m1 = StabilityMatrix::new(2);
        record_simple(&mut m1, 0, vec![3, 3], &genesis);
        record_simple(&mut m1, 1, vec![3, 3], &genesis);
        let d1 = m1.compute(Subrun(1), pid(1), 3, &genesis);
        assert!(d1.full_group);

        // Next subrun only p0 contributes: accumulation restarts.
        let mut m2 = StabilityMatrix::new(2);
        record_simple(&mut m2, 0, vec![4, 3], &d1);
        let d2 = m2.compute(Subrun(2), pid(0), 3, &d1);
        assert!(!d2.full_group);
        assert_eq!(d2.covered, vec![true, false]);
        assert_eq!(d2.stable, vec![4, 3]);
    }

    #[test]
    fn attempts_accumulate_until_k_then_crash() {
        let k = 2;
        let mut prev = Decision::genesis(2);
        for s in 1..=2u64 {
            let mut m = StabilityMatrix::new(2);
            record_simple(&mut m, 0, vec![0, 0], &prev);
            prev = m.compute(Subrun(s), pid(0), k, &prev);
        }
        assert_eq!(prev.attempts[1], 2);
        assert!(!prev.process_state[1], "declared crashed after K misses");
        // Crashed process's counter freezes.
        let mut m = StabilityMatrix::new(2);
        record_simple(&mut m, 0, vec![0, 0], &prev);
        let d = m.compute(Subrun(3), pid(0), k, &prev);
        assert_eq!(d.attempts[1], 2);
        assert!(!d.process_state[1]);
    }

    #[test]
    fn contribution_resets_attempts() {
        let k = 3;
        let genesis = Decision::genesis(2);
        let mut m = StabilityMatrix::new(2);
        record_simple(&mut m, 0, vec![0, 0], &genesis);
        let d1 = m.compute(Subrun(1), pid(0), k, &genesis);
        assert_eq!(d1.attempts[1], 1);
        let mut m = StabilityMatrix::new(2);
        record_simple(&mut m, 0, vec![0, 0], &d1);
        record_simple(&mut m, 1, vec![0, 0], &d1);
        let d2 = m.compute(Subrun(2), pid(1), k, &d1);
        assert_eq!(d2.attempts[1], 0, "contact resets the counter");
        assert!(d2.process_state[1]);
    }

    #[test]
    fn crashed_processes_do_not_gate_full_group() {
        let mut prev = Decision::genesis(2);
        prev.process_state[1] = false;
        let mut m = StabilityMatrix::new(2);
        record_simple(&mut m, 0, vec![7, 7], &prev);
        let d = m.compute(Subrun(4), pid(0), 3, &prev);
        assert!(d.full_group, "only alive members gate cleaning");
        assert_eq!(d.stable, vec![7, 7]);
    }

    #[test]
    fn max_processed_prefers_most_updated_alive() {
        let genesis = Decision::genesis(3);
        let mut m = StabilityMatrix::new(3);
        record_simple(&mut m, 0, vec![5, 0, 0], &genesis);
        record_simple(&mut m, 1, vec![9, 0, 0], &genesis);
        record_simple(&mut m, 2, vec![7, 0, 0], &genesis);
        let d = m.compute(Subrun(1), pid(0), 3, &genesis);
        assert_eq!(d.max_processed[0].holder, pid(1));
        assert_eq!(d.max_processed[0].seq, 9);
    }

    #[test]
    fn max_processed_regresses_when_holder_crashes() {
        // p1 was the most updated for origin 0 but is now declared crashed:
        // the hint must fall back to the best alive contributor.
        let mut prev = Decision::genesis(3);
        prev.max_processed[0] = MaxProcessed {
            holder: pid(1),
            seq: 9,
        };
        prev.attempts[1] = 2;
        let k = 3;
        let mut m = StabilityMatrix::new(3);
        record_simple(&mut m, 0, vec![5, 0, 0], &prev);
        record_simple(&mut m, 2, vec![4, 0, 0], &prev);
        let d = m.compute(Subrun(2), pid(2), k, &prev);
        assert!(!d.process_state[1], "p1 crossed K");
        assert_eq!(d.max_processed[0].holder, pid(0));
        assert_eq!(d.max_processed[0].seq, 5);
    }

    #[test]
    fn min_waiting_is_groupwide_minimum() {
        let genesis = Decision::genesis(2);
        let mut m = StabilityMatrix::new(2);
        m.record(pid(0), vec![0, 0], vec![NO_SEQ, 7], &genesis);
        m.record(pid(1), vec![0, 0], vec![NO_SEQ, 4], &genesis);
        let d = m.compute(Subrun(1), pid(0), 3, &genesis);
        assert_eq!(d.min_waiting, vec![NO_SEQ, 4]);
    }

    #[test]
    fn freshest_prev_decision_wins() {
        let genesis = Decision::genesis(2);
        let mut newer = genesis.clone();
        newer.subrun = Subrun(5);
        newer.stable = vec![3, 3];
        newer.full_group = false;
        newer.covered = vec![true, true];
        let mut m = StabilityMatrix::new(2);
        m.record(pid(0), vec![9, 9], vec![NO_SEQ; 2], &genesis);
        m.record(pid(1), vec![9, 9], vec![NO_SEQ; 2], &newer);
        assert_eq!(m.freshest_prev().unwrap().subrun, Subrun(5));
        // compute() continues from the newer (partial) decision, so mins
        // include its stable values.
        let d = m.compute(Subrun(6), pid(0), 3, &genesis);
        assert_eq!(d.stable, vec![3, 3]);
    }

    #[test]
    fn duplicate_record_overwrites() {
        let genesis = Decision::genesis(1);
        let mut m = StabilityMatrix::new(1);
        record_simple(&mut m, 0, vec![1], &genesis);
        record_simple(&mut m, 0, vec![2], &genesis);
        assert_eq!(m.contributor_count(), 1);
        let d = m.compute(Subrun(1), pid(0), 3, &genesis);
        assert_eq!(d.stable, vec![2]);
    }
}
