//! Coordinator-side decision making (Section 4, Figure 2).
//!
//! During the first round of its subrun the coordinator collects
//! [`RequestMsg`](urcgc_types::RequestMsg)-equivalents — each member's
//! `last_processed` vector, its oldest-waiting vector, and the freshest
//! previous decision the member has seen. [`StabilityMatrix::compute`] then
//! performs the "local processing on a set of data structures that allow the
//! coordinator to figure the global knowledge about the whole system":
//!
//! * **stability** — per origin, the minimum `last_processed` over the
//!   contributors, continued across subruns through the decision's
//!   `covered` set until every alive process has been heard from
//!   (`full_group`);
//! * **failure detection** — `attempts[i]` incremented for every alive
//!   process that did not contribute, reset for those that did; reaching
//!   `K` declares the process crashed;
//! * **recovery hints** — `max_processed[q]`: the most updated *alive*
//!   process per sequence;
//! * **orphan detection** — `min_waiting[q]`: the group-wide oldest waiting
//!   sequence number per origin.

use urcgc_types::{Decision, MaxProcessed, ProcessId, Subrun, NO_SEQ};

/// One member's contribution to the current subrun.
#[derive(Clone, Debug)]
struct Contribution {
    last_processed: Vec<u64>,
    waiting: Vec<u64>,
}

/// A half-open sequence range `(after_seq, upto_seq]` of one origin that
/// just became group-stable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StableRange {
    /// Origin whose messages became stable.
    pub origin: ProcessId,
    /// Stability held through this sequence already.
    pub after_seq: u64,
    /// … and now holds through this one.
    pub upto_seq: u64,
}

/// The typed result of [`StabilityMatrix::record`]: the (origin, seq)
/// ranges that became group-stable with this contribution, so the purge
/// path consumes ranges directly instead of re-diffing whole stable
/// vectors. Empty until every process alive in the baseline decision has
/// contributed — stability is only actionable at full coverage, exactly
/// when [`StabilityMatrix::compute`] would emit a `full_group` decision.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StabilityDelta {
    ranges: Vec<StableRange>,
}

impl StabilityDelta {
    /// Whether no new ranges became stable.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The newly stable ranges, at most one per origin.
    pub fn ranges(&self) -> &[StableRange] {
        &self.ranges
    }

    /// Folds another delta in (later calls extend earlier ones).
    pub fn merge(&mut self, other: StabilityDelta) {
        self.ranges.extend(other.ranges);
    }
}

/// Incremental mirror of the stability part of
/// [`StabilityMatrix::compute`], maintained by `record` so deltas can be
/// emitted without recomputing the whole matrix.
#[derive(Clone, Debug)]
struct DeltaAcc {
    /// The baseline decision's stable vector and alive view.
    baseline_stable: Vec<u64>,
    baseline_alive: Vec<bool>,
    /// Accumulated coverage/min, exactly as `compute` would build them on
    /// top of the baseline.
    covered: Vec<bool>,
    stable: Vec<u64>,
    /// Highest stable value already emitted as a delta, per origin.
    reported: Vec<u64>,
    /// A later contribution pulled a min below an emitted value (a
    /// declared-dead straggler can do this); emitted ranges can no longer
    /// be trusted as a purge hint.
    overclaimed: bool,
}

/// Accumulates member requests for one subrun and computes the decision.
#[derive(Clone, Debug)]
pub struct StabilityMatrix {
    n: usize,
    contributions: Vec<Option<Contribution>>,
    /// The freshest previous decision seen in any request (decision
    /// circulation: with resilience `t = (n−1)/2` at least one copy of the
    /// previous decision reaches the current coordinator).
    freshest_prev: Option<Decision>,
    delta: Option<DeltaAcc>,
}

impl StabilityMatrix {
    /// An empty matrix for a group of `n`.
    pub fn new(n: usize) -> Self {
        StabilityMatrix {
            n,
            contributions: vec![None; n],
            freshest_prev: None,
            delta: None,
        }
    }

    /// Group cardinality.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Records `sender`'s request. Later duplicates (retransmissions)
    /// overwrite earlier ones — `last_processed` is monotone so the newest
    /// copy is the most informative. The carried previous decision is cloned
    /// only when it is the freshest seen so far; stale copies (the common
    /// case — every member carries the same previous decision) cost nothing.
    ///
    /// Returns the [`StabilityDelta`] this contribution unlocked: empty
    /// while coverage of the baseline's alive set is incomplete, then the
    /// per-origin ranges by which the group-stable frontier advanced.
    pub fn record(
        &mut self,
        sender: ProcessId,
        last_processed: Vec<u64>,
        waiting: Vec<u64>,
        prev_decision: &Decision,
    ) -> StabilityDelta {
        assert_eq!(last_processed.len(), self.n, "last_processed width");
        assert_eq!(waiting.len(), self.n, "waiting width");
        let overwrite = self.contributions[sender.index()].is_some();
        self.contributions[sender.index()] = Some(Contribution {
            last_processed,
            waiting,
        });
        let fresher = match &self.freshest_prev {
            None => true,
            Some(cur) => prev_decision.is_newer_than(cur),
        };
        if fresher {
            self.freshest_prev = Some(prev_decision.clone());
        }
        match self.delta.as_mut() {
            Some(acc) if !fresher && !overwrite => {
                let c = self.contributions[sender.index()].as_ref().expect("set");
                acc.covered[sender.index()] = true;
                for (s, lp) in acc.stable.iter_mut().zip(&c.last_processed) {
                    *s = (*s).min(*lp);
                }
            }
            // The baseline changed, or an overwrite may have raised a min
            // the running accumulation can't retract: rebuild from the
            // stored contributions (rare; O(n²) with small constants).
            _ => self.rebuild_delta(),
        }
        self.drain_delta()
    }

    /// Rebuilds the incremental stability accumulation from scratch against
    /// the current `freshest_prev` baseline, preserving what was already
    /// reported (emitted ranges cannot be retracted).
    fn rebuild_delta(&mut self) {
        let p = self.freshest_prev.as_ref().expect("record sets it first");
        let n = self.n;
        let continuing = !p.full_group;
        let mut covered = if continuing {
            p.covered.clone()
        } else {
            vec![false; n]
        };
        let mut stable = if continuing {
            p.stable.clone()
        } else {
            vec![u64::MAX; n]
        };
        for (i, c) in self.contributions.iter().enumerate() {
            let Some(c) = c else { continue };
            covered[i] = true;
            for (s, lp) in stable.iter_mut().zip(&c.last_processed) {
                *s = (*s).min(*lp);
            }
        }
        let old = self.delta.take();
        let mut reported = p.stable.clone();
        let overclaimed = old.as_ref().is_some_and(|d| d.overclaimed);
        if let Some(old) = &old {
            for (r, o) in reported.iter_mut().zip(&old.reported) {
                *r = (*r).max(*o);
            }
        }
        self.delta = Some(DeltaAcc {
            baseline_stable: p.stable.clone(),
            baseline_alive: p.process_state.clone(),
            covered,
            stable,
            reported,
            overclaimed,
        });
    }

    /// Emits the ranges that became stable since the last emission, if the
    /// accumulation has full coverage of the baseline's alive set.
    fn drain_delta(&mut self) -> StabilityDelta {
        let n = self.n;
        let Some(acc) = self.delta.as_mut() else {
            return StabilityDelta::default();
        };
        for q in 0..n {
            let s = if acc.stable[q] == u64::MAX {
                NO_SEQ
            } else {
                acc.stable[q]
            };
            if acc.reported[q] > acc.baseline_stable[q] && s < acc.reported[q] {
                acc.overclaimed = true;
            }
        }
        let complete = (0..n).all(|i| !acc.baseline_alive[i] || acc.covered[i]);
        if !complete || acc.overclaimed {
            return StabilityDelta::default();
        }
        let mut ranges = Vec::new();
        for q in 0..n {
            let s = if acc.stable[q] == u64::MAX {
                NO_SEQ
            } else {
                acc.stable[q]
            };
            if s > acc.reported[q] {
                ranges.push(StableRange {
                    origin: ProcessId::from_index(q),
                    after_seq: acc.reported[q],
                    upto_seq: s,
                });
                acc.reported[q] = s;
            }
        }
        StabilityDelta { ranges }
    }

    /// Whether the emitted deltas exactly describe the stable vector
    /// [`compute`](Self::compute) would produce right now (full coverage of
    /// the baseline's alive set, nothing over-claimed). When this holds —
    /// and the caller's own latest decision is not fresher than
    /// [`freshest_prev`](Self::freshest_prev) — the deltas can drive the
    /// purge directly; otherwise callers must fall back to the vector.
    pub fn delta_exact(&self) -> bool {
        self.delta.as_ref().is_some_and(|acc| {
            !acc.overclaimed && (0..self.n).all(|i| !acc.baseline_alive[i] || acc.covered[i])
        })
    }

    /// Whether `p` has contributed this subrun.
    pub fn has_contribution(&self, p: ProcessId) -> bool {
        self.contributions
            .get(p.index())
            .is_some_and(Option::is_some)
    }

    /// Number of contributors so far.
    pub fn contributor_count(&self) -> usize {
        self.contributions.iter().flatten().count()
    }

    /// The freshest previous decision carried by any contributor, if any.
    pub fn freshest_prev(&self) -> Option<&Decision> {
        self.freshest_prev.as_ref()
    }

    /// Computes this subrun's decision.
    ///
    /// (Index-based loops below are deliberate: several same-width vectors
    /// are updated in lockstep by process index.)
    ///
    /// `fallback_prev` is the coordinator's *own* latest decision, used when
    /// no contributor carried a fresher one (the coordinator is itself a
    /// group member and always "contributes" its own state via
    /// [`StabilityMatrix::record`], so in practice the previous decision is
    /// always available — exactly the resilience argument of Section 4).
    #[allow(clippy::needless_range_loop)]
    pub fn compute(
        &self,
        subrun: Subrun,
        coordinator: ProcessId,
        k: u32,
        fallback_prev: &Decision,
    ) -> Decision {
        let prev = match &self.freshest_prev {
            Some(p) if p.is_newer_than(fallback_prev) => p,
            _ => fallback_prev,
        };
        let n = self.n;
        debug_assert_eq!(prev.n(), n, "previous decision width");

        // --- Failure detection: attempts / process_state ------------------
        let mut attempts = prev.attempts.clone();
        let mut process_state = prev.process_state.clone();
        for i in 0..n {
            if !process_state[i] {
                continue; // crashed processes stay crashed, counters frozen
            }
            if self.contributions[i].is_some() {
                attempts[i] = 0;
            } else {
                attempts[i] = attempts[i].saturating_add(1);
                if attempts[i] >= k {
                    process_state[i] = false;
                }
            }
        }

        // --- Stability: min of last_processed, continued across subruns ---
        // If the previous decision was full_group, its coverage was consumed
        // (histories were cleaned); start a fresh accumulation from this
        // subrun's contributors. Otherwise continue accumulating on top of
        // the previous partial result.
        let continuing = !prev.full_group;
        let mut covered = if continuing {
            prev.covered.clone()
        } else {
            vec![false; n]
        };
        let mut stable = if continuing {
            prev.stable.clone()
        } else {
            vec![u64::MAX; n]
        };
        for (i, c) in self.contributions.iter().enumerate() {
            let Some(c) = c else { continue };
            covered[i] = true;
            for (s, lp) in stable.iter_mut().zip(&c.last_processed) {
                *s = (*s).min(*lp);
            }
        }
        // Origins nobody has reported on yet.
        for s in stable.iter_mut() {
            if *s == u64::MAX {
                *s = NO_SEQ;
            }
        }
        // full_group: every process alive in the *new* view has entered the
        // accumulation. Crashed processes no longer gate cleaning — that is
        // precisely how urcgc keeps cleaning while CBCAST would block on a
        // view-change protocol.
        let full_group = (0..n).all(|i| !process_state[i] || covered[i]);

        // --- Recovery hints: most updated alive process per origin --------
        let mut max_processed: Vec<MaxProcessed> = (0..n)
            .map(|q| {
                let prev_rec = prev.max_processed[q];
                // Keep the previous holder only while it is still alive in
                // the new view; a crashed holder's knowledge is gone and the
                // hint must regress to the best alive candidate (this is
                // what exposes orphan gaps).
                if process_state[prev_rec.holder.index()] {
                    prev_rec
                } else {
                    MaxProcessed::none(ProcessId::from_index(q))
                }
            })
            .collect();
        for (i, c) in self.contributions.iter().enumerate() {
            let Some(c) = c else { continue };
            if !process_state[i] {
                continue;
            }
            let holder = ProcessId::from_index(i);
            for q in 0..n {
                let better = c.last_processed[q] > max_processed[q].seq
                    || (c.last_processed[q] == max_processed[q].seq
                        && !process_state[max_processed[q].holder.index()]);
                if better {
                    max_processed[q] = MaxProcessed {
                        holder,
                        seq: c.last_processed[q],
                    };
                }
            }
        }

        // --- Orphan detection: group-wide oldest waiting per origin -------
        let mut min_waiting = vec![NO_SEQ; n];
        for c in self.contributions.iter().flatten() {
            for q in 0..n {
                let w = c.waiting[q];
                if w == NO_SEQ {
                    continue;
                }
                if min_waiting[q] == NO_SEQ || w < min_waiting[q] {
                    min_waiting[q] = w;
                }
            }
        }

        Decision {
            subrun,
            coordinator,
            full_group,
            stable,
            attempts,
            process_state,
            max_processed,
            min_waiting,
            covered,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u16) -> ProcessId {
        ProcessId(i)
    }

    fn record_simple(m: &mut StabilityMatrix, i: u16, lp: Vec<u64>, prev: &Decision) {
        let n = lp.len();
        m.record(pid(i), lp, vec![NO_SEQ; n], prev);
    }

    #[test]
    fn full_group_stability_is_min_of_last_processed() {
        let prev = Decision::genesis(3);
        let mut m = StabilityMatrix::new(3);
        record_simple(&mut m, 0, vec![5, 2, 1], &prev);
        record_simple(&mut m, 1, vec![4, 3, 1], &prev);
        record_simple(&mut m, 2, vec![5, 3, 0], &prev);
        let d = m.compute(Subrun(1), pid(1), 3, &prev);
        assert!(d.full_group);
        assert_eq!(d.stable, vec![4, 2, 0]);
        assert!(d.process_state.iter().all(|&s| s));
        assert_eq!(d.attempts, vec![0, 0, 0]);
    }

    #[test]
    fn partial_contribution_is_not_full_group() {
        let prev = Decision::genesis(3);
        let mut m = StabilityMatrix::new(3);
        record_simple(&mut m, 0, vec![5, 2, 1], &prev);
        record_simple(&mut m, 1, vec![4, 3, 1], &prev);
        let d = m.compute(Subrun(1), pid(1), 3, &prev);
        assert!(!d.full_group);
        assert_eq!(d.covered, vec![true, true, false]);
        assert_eq!(d.attempts, vec![0, 0, 1]);
    }

    #[test]
    fn coverage_accumulates_across_subruns() {
        // Subrun 1: p0, p1 contribute. Subrun 2: p2 contributes. The second
        // decision completes the accumulation and goes full_group.
        let genesis = Decision::genesis(3);
        let mut m1 = StabilityMatrix::new(3);
        record_simple(&mut m1, 0, vec![5, 2, 1], &genesis);
        record_simple(&mut m1, 1, vec![4, 3, 1], &genesis);
        let d1 = m1.compute(Subrun(1), pid(1), 3, &genesis);
        assert!(!d1.full_group);

        let mut m2 = StabilityMatrix::new(3);
        record_simple(&mut m2, 2, vec![5, 3, 2], &d1);
        let d2 = m2.compute(Subrun(2), pid(2), 3, &d1);
        assert!(d2.full_group);
        // min over {p0(4,2,1 taken at s1… actually 5,2,1), p1(4,3,1), p2(5,3,2)}
        assert_eq!(d2.stable, vec![4, 2, 1]);
    }

    #[test]
    fn full_group_decision_resets_coverage() {
        let genesis = Decision::genesis(2);
        let mut m1 = StabilityMatrix::new(2);
        record_simple(&mut m1, 0, vec![3, 3], &genesis);
        record_simple(&mut m1, 1, vec![3, 3], &genesis);
        let d1 = m1.compute(Subrun(1), pid(1), 3, &genesis);
        assert!(d1.full_group);

        // Next subrun only p0 contributes: accumulation restarts.
        let mut m2 = StabilityMatrix::new(2);
        record_simple(&mut m2, 0, vec![4, 3], &d1);
        let d2 = m2.compute(Subrun(2), pid(0), 3, &d1);
        assert!(!d2.full_group);
        assert_eq!(d2.covered, vec![true, false]);
        assert_eq!(d2.stable, vec![4, 3]);
    }

    #[test]
    fn attempts_accumulate_until_k_then_crash() {
        let k = 2;
        let mut prev = Decision::genesis(2);
        for s in 1..=2u64 {
            let mut m = StabilityMatrix::new(2);
            record_simple(&mut m, 0, vec![0, 0], &prev);
            prev = m.compute(Subrun(s), pid(0), k, &prev);
        }
        assert_eq!(prev.attempts[1], 2);
        assert!(!prev.process_state[1], "declared crashed after K misses");
        // Crashed process's counter freezes.
        let mut m = StabilityMatrix::new(2);
        record_simple(&mut m, 0, vec![0, 0], &prev);
        let d = m.compute(Subrun(3), pid(0), k, &prev);
        assert_eq!(d.attempts[1], 2);
        assert!(!d.process_state[1]);
    }

    #[test]
    fn contribution_resets_attempts() {
        let k = 3;
        let genesis = Decision::genesis(2);
        let mut m = StabilityMatrix::new(2);
        record_simple(&mut m, 0, vec![0, 0], &genesis);
        let d1 = m.compute(Subrun(1), pid(0), k, &genesis);
        assert_eq!(d1.attempts[1], 1);
        let mut m = StabilityMatrix::new(2);
        record_simple(&mut m, 0, vec![0, 0], &d1);
        record_simple(&mut m, 1, vec![0, 0], &d1);
        let d2 = m.compute(Subrun(2), pid(1), k, &d1);
        assert_eq!(d2.attempts[1], 0, "contact resets the counter");
        assert!(d2.process_state[1]);
    }

    #[test]
    fn crashed_processes_do_not_gate_full_group() {
        let mut prev = Decision::genesis(2);
        prev.process_state[1] = false;
        let mut m = StabilityMatrix::new(2);
        record_simple(&mut m, 0, vec![7, 7], &prev);
        let d = m.compute(Subrun(4), pid(0), 3, &prev);
        assert!(d.full_group, "only alive members gate cleaning");
        assert_eq!(d.stable, vec![7, 7]);
    }

    #[test]
    fn max_processed_prefers_most_updated_alive() {
        let genesis = Decision::genesis(3);
        let mut m = StabilityMatrix::new(3);
        record_simple(&mut m, 0, vec![5, 0, 0], &genesis);
        record_simple(&mut m, 1, vec![9, 0, 0], &genesis);
        record_simple(&mut m, 2, vec![7, 0, 0], &genesis);
        let d = m.compute(Subrun(1), pid(0), 3, &genesis);
        assert_eq!(d.max_processed[0].holder, pid(1));
        assert_eq!(d.max_processed[0].seq, 9);
    }

    #[test]
    fn max_processed_regresses_when_holder_crashes() {
        // p1 was the most updated for origin 0 but is now declared crashed:
        // the hint must fall back to the best alive contributor.
        let mut prev = Decision::genesis(3);
        prev.max_processed[0] = MaxProcessed {
            holder: pid(1),
            seq: 9,
        };
        prev.attempts[1] = 2;
        let k = 3;
        let mut m = StabilityMatrix::new(3);
        record_simple(&mut m, 0, vec![5, 0, 0], &prev);
        record_simple(&mut m, 2, vec![4, 0, 0], &prev);
        let d = m.compute(Subrun(2), pid(2), k, &prev);
        assert!(!d.process_state[1], "p1 crossed K");
        assert_eq!(d.max_processed[0].holder, pid(0));
        assert_eq!(d.max_processed[0].seq, 5);
    }

    #[test]
    fn min_waiting_is_groupwide_minimum() {
        let genesis = Decision::genesis(2);
        let mut m = StabilityMatrix::new(2);
        m.record(pid(0), vec![0, 0], vec![NO_SEQ, 7], &genesis);
        m.record(pid(1), vec![0, 0], vec![NO_SEQ, 4], &genesis);
        let d = m.compute(Subrun(1), pid(0), 3, &genesis);
        assert_eq!(d.min_waiting, vec![NO_SEQ, 4]);
    }

    #[test]
    fn freshest_prev_decision_wins() {
        let genesis = Decision::genesis(2);
        let mut newer = genesis.clone();
        newer.subrun = Subrun(5);
        newer.stable = vec![3, 3];
        newer.full_group = false;
        newer.covered = vec![true, true];
        let mut m = StabilityMatrix::new(2);
        m.record(pid(0), vec![9, 9], vec![NO_SEQ; 2], &genesis);
        m.record(pid(1), vec![9, 9], vec![NO_SEQ; 2], &newer);
        assert_eq!(m.freshest_prev().unwrap().subrun, Subrun(5));
        // compute() continues from the newer (partial) decision, so mins
        // include its stable values.
        let d = m.compute(Subrun(6), pid(0), 3, &genesis);
        assert_eq!(d.stable, vec![3, 3]);
    }

    #[test]
    fn duplicate_record_overwrites() {
        let genesis = Decision::genesis(1);
        let mut m = StabilityMatrix::new(1);
        record_simple(&mut m, 0, vec![1], &genesis);
        record_simple(&mut m, 0, vec![2], &genesis);
        assert_eq!(m.contributor_count(), 1);
        let d = m.compute(Subrun(1), pid(0), 3, &genesis);
        assert_eq!(d.stable, vec![2]);
    }

    #[test]
    fn delta_empty_until_full_coverage_then_matches_compute() {
        let prev = Decision::genesis(3);
        let mut m = StabilityMatrix::new(3);
        let d1 = m.record(pid(0), vec![5, 2, 1], vec![NO_SEQ; 3], &prev);
        assert!(d1.is_empty(), "one contributor cannot stabilize anything");
        assert!(!m.delta_exact());
        let d2 = m.record(pid(1), vec![4, 3, 1], vec![NO_SEQ; 3], &prev);
        assert!(d2.is_empty());
        let d3 = m.record(pid(2), vec![5, 3, 2], vec![NO_SEQ; 3], &prev);
        assert!(m.delta_exact());
        let decision = m.compute(Subrun(1), pid(0), 3, &prev);
        assert!(decision.full_group);
        // The emitted ranges reconstruct exactly compute's stable vector.
        let mut from_delta = prev.stable.clone();
        for r in d3.ranges() {
            assert_eq!(r.after_seq, from_delta[r.origin.index()]);
            from_delta[r.origin.index()] = r.upto_seq;
        }
        assert_eq!(from_delta, decision.stable);
    }

    #[test]
    fn delta_increments_after_coverage() {
        let prev = Decision::genesis(2);
        let mut m = StabilityMatrix::new(2);
        let _ = m.record(pid(0), vec![5, 5], vec![NO_SEQ; 2], &prev);
        let d = m.record(pid(1), vec![3, 9], vec![NO_SEQ; 2], &prev);
        assert_eq!(
            d.ranges(),
            &[
                StableRange {
                    origin: pid(0),
                    after_seq: 0,
                    upto_seq: 3
                },
                StableRange {
                    origin: pid(1),
                    after_seq: 0,
                    upto_seq: 5
                }
            ]
        );
        // An overwrite with a fresher (higher) vector extends the ranges.
        let d = m.record(pid(1), vec![4, 9], vec![NO_SEQ; 2], &prev);
        assert_eq!(
            d.ranges(),
            &[StableRange {
                origin: pid(0),
                after_seq: 3,
                upto_seq: 4
            }]
        );
        assert!(m.delta_exact());
        assert_eq!(
            m.compute(Subrun(1), pid(0), 3, &prev).stable,
            vec![4, 5],
            "delta and compute stay in lockstep"
        );
    }

    #[test]
    fn delta_never_emits_during_a_continuing_accumulation() {
        // A partial (non-full-group) baseline continues accumulating: mins
        // can only stay or fall, so nothing new becomes purgeable.
        let genesis = Decision::genesis(3);
        let mut m1 = StabilityMatrix::new(3);
        record_simple(&mut m1, 0, vec![5, 2, 1], &genesis);
        let d1 = m1.compute(Subrun(1), pid(1), 3, &genesis);
        assert!(!d1.full_group);
        let mut m2 = StabilityMatrix::new(3);
        let delta = m2.record(pid(1), vec![9, 9, 9], vec![NO_SEQ; 3], &d1);
        assert!(delta.is_empty());
        let delta = m2.record(pid(2), vec![9, 9, 9], vec![NO_SEQ; 3], &d1);
        assert!(delta.is_empty());
        let delta = m2.record(pid(0), vec![9, 9, 9], vec![NO_SEQ; 3], &d1);
        // Coverage completes here (continuation covered p0 already), and
        // the full-coverage emission matches compute.
        let d2 = m2.compute(Subrun(2), pid(2), 3, &d1);
        assert!(d2.full_group);
        let mut from_delta = d1.stable.clone();
        for r in delta.ranges() {
            from_delta[r.origin.index()] = r.upto_seq;
        }
        assert_eq!(from_delta, d2.stable);
    }

    #[test]
    fn dead_straggler_below_emitted_value_poisons_the_delta() {
        // p1 is declared crashed in the baseline; coverage completes
        // without it and ranges are emitted. Its late, lower contribution
        // pulls the min below the emitted value — the delta must stop
        // claiming exactness (compute's stable would now be lower).
        let mut prev = Decision::genesis(2);
        prev.process_state[1] = false;
        let mut m = StabilityMatrix::new(2);
        let d = m.record(pid(0), vec![9, 9], vec![NO_SEQ; 2], &prev);
        assert!(!d.is_empty(), "p0 alone covers the alive set");
        assert!(m.delta_exact());
        let d = m.record(pid(1), vec![2, 2], vec![NO_SEQ; 2], &prev);
        assert!(d.is_empty());
        assert!(!m.delta_exact(), "over-claimed deltas are poisoned");
        // compute still gives the true (lower) answer.
        assert_eq!(m.compute(Subrun(1), pid(0), 3, &prev).stable, vec![2, 2]);
    }

    #[test]
    fn fresher_baseline_rebuilds_the_accumulation() {
        let genesis = Decision::genesis(2);
        let mut full = genesis.clone();
        full.subrun = Subrun(3);
        full.full_group = true;
        full.stable = vec![4, 4];
        let mut m = StabilityMatrix::new(2);
        let _ = m.record(pid(0), vec![9, 9], vec![NO_SEQ; 2], &genesis);
        // p1 carries a fresher full-group baseline: accumulation restarts
        // on top of it, and emitted ranges start from its stable vector.
        let d = m.record(pid(1), vec![8, 8], vec![NO_SEQ; 2], &full);
        assert!(m.delta_exact());
        assert_eq!(
            d.ranges(),
            &[
                StableRange {
                    origin: pid(0),
                    after_seq: 4,
                    upto_seq: 8
                },
                StableRange {
                    origin: pid(1),
                    after_seq: 4,
                    upto_seq: 8
                }
            ]
        );
        assert_eq!(m.compute(Subrun(4), pid(0), 3, &genesis).stable, vec![8, 8]);
    }
}
