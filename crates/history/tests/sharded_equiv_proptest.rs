//! Differential property test: the sharded [`History`] is observably
//! equivalent to the retired flat layout ([`FlatHistory`], the executable
//! specification) under random insert/purge interleavings — the same
//! pattern as the waiting-list differential of the indexed-drain rewrite.
//!
//! Every operation's return value and every observable (`range`,
//! `advance_stability`, `stable_frontier`, `len`, `len_for`,
//! `highest_seq`, `payload_bytes`, `contains`, `get`) must agree, except
//! `PurgeReport::segments_freed`, which only the segmented layout has.

use bytes::Bytes;
use proptest::prelude::*;
use urcgc_history::{FlatHistory, History, StableVector, SEGMENT_SPAN};
use urcgc_types::{DataMsg, Mid, ProcessId, Round, NO_SEQ};

fn msg(p: u16, s: u64) -> std::sync::Arc<DataMsg> {
    std::sync::Arc::new(DataMsg {
        mid: Mid::new(ProcessId(p), s),
        deps: vec![],
        round: Round(0),
        // Distinct payload sizes so byte accounting divergence shows up.
        payload: Bytes::from(vec![0u8; (s % 17) as usize]),
    })
}

#[derive(Clone, Debug)]
enum Op {
    /// Save (origin, seq).
    Save(u16, u64),
    /// Advance the whole stability vector.
    Advance(Vec<u64>),
    /// Probe a recovery range (origin, after, upto).
    Range(u16, u64, u64),
}

fn op_strategy(n: u16, max_seq: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..n, 1..max_seq + 1).prop_map(|(p, s)| Op::Save(p, s)),
        (0..n, 1..max_seq + 1).prop_map(|(p, s)| Op::Save(p, s.saturating_mul(2))),
        prop::collection::vec(0..max_seq + 1, n as usize).prop_map(Op::Advance),
        (0..n + 1, 0..max_seq + 1, 0..max_seq + 1).prop_map(|(p, a, u)| Op::Range(p, a, u)),
    ]
}

proptest! {
    #[test]
    fn sharded_table_matches_flat_specification(
        ops in prop::collection::vec(op_strategy(3, 3 * SEGMENT_SPAN + 7), 1..120)
    ) {
        let n = 3;
        let mut sharded = History::new(n);
        let mut flat = FlatHistory::new(n);
        for op in ops {
            match op {
                Op::Save(p, s) => {
                    let m = msg(p, s);
                    prop_assert_eq!(
                        sharded.save(std::sync::Arc::clone(&m)),
                        flat.save(m),
                        "save(p{}#{})", p, s
                    );
                }
                Op::Advance(stable) => {
                    let a = sharded.advance_stability(&StableVector::new(&stable));
                    let b = flat.advance_stability(&StableVector::new(&stable));
                    prop_assert_eq!(a.messages, b.messages);
                    prop_assert_eq!(a.bytes, b.bytes);
                    prop_assert_eq!(a.origins_advanced, b.origins_advanced);
                }
                Op::Range(p, after, upto) => {
                    let a = sharded.range(ProcessId(p), after, upto);
                    let b = flat.range(ProcessId(p), after, upto);
                    prop_assert_eq!(a.len(), b.len());
                    for (x, y) in a.iter().zip(&b) {
                        prop_assert!(std::sync::Arc::ptr_eq(x, y) || x.mid == y.mid);
                        prop_assert_eq!(x.mid, y.mid);
                    }
                }
            }
            // Observables agree after every step.
            prop_assert_eq!(sharded.len(), flat.len());
            prop_assert_eq!(sharded.is_empty(), flat.is_empty());
            prop_assert_eq!(sharded.payload_bytes(), flat.payload_bytes());
            for q in 0..n as u16 {
                let q = ProcessId(q);
                prop_assert_eq!(sharded.stable_frontier(q), flat.stable_frontier(q));
                prop_assert_eq!(sharded.len_for(q), flat.len_for(q));
                prop_assert_eq!(sharded.highest_seq(q), flat.highest_seq(q));
            }
            // Out-of-group probes share the same shape too.
            let out = ProcessId(9);
            prop_assert_eq!(sharded.stable_frontier(out), NO_SEQ);
            prop_assert_eq!(sharded.len_for(out), 0);
        }
        // Full-table sweep: identical contents, element by element.
        for q in 0..n as u16 {
            let a = sharded.range(ProcessId(q), NO_SEQ, u64::MAX);
            let b = flat.range(ProcessId(q), NO_SEQ, u64::MAX);
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                prop_assert!(std::sync::Arc::ptr_eq(x, y));
                prop_assert!(sharded.contains(x.mid) && flat.contains(y.mid));
                prop_assert!(sharded.get(x.mid).is_some());
            }
        }
    }
}
