//! Property tests for history management: purge/save invariants and
//! monotonicity of the coordinator's stability computation.

use bytes::Bytes;
use proptest::prelude::*;
use urcgc_history::{History, StabilityMatrix, StableVector};
use urcgc_types::{DataMsg, Decision, Mid, ProcessId, Round, Subrun, NO_SEQ};

/// `advance_stability` for a single origin of a width-3 table.
fn purge_one(h: &mut History, p: u16, upto: u64) -> usize {
    let mut stable = [NO_SEQ; 3];
    stable[p as usize] = upto;
    h.advance_stability(&StableVector::new(&stable)).messages
}

fn msg(p: u16, s: u64) -> std::sync::Arc<DataMsg> {
    std::sync::Arc::new(DataMsg {
        mid: Mid::new(ProcessId(p), s),
        deps: vec![],
        round: Round(0),
        payload: Bytes::new(),
    })
}

proptest! {
    /// Interleaved saves and purges: the history never resurrects a purged
    /// message, never double-counts, and its length always equals the live
    /// message population.
    #[test]
    fn save_purge_interleaving_is_consistent(
        ops in prop::collection::vec(
            prop_oneof![
                (0u16..3, 1u64..30).prop_map(|(p, s)| (false, p, s)), // save
                (0u16..3, 0u64..30).prop_map(|(p, s)| (true, p, s)),  // purge
            ],
            1..80,
        )
    ) {
        let n = 3;
        let mut h = History::new(n);
        // Reference model: live set + purge frontier per origin.
        let mut live: std::collections::HashSet<Mid> = Default::default();
        let mut frontier = [NO_SEQ; 3];
        for (is_purge, p, s) in ops {
            if is_purge {
                let dropped = purge_one(&mut h, p, s);
                let expect: Vec<Mid> = live
                    .iter()
                    .filter(|m| m.origin == ProcessId(p) && m.seq <= s)
                    .copied()
                    .collect();
                prop_assert_eq!(dropped, expect.len());
                for m in expect {
                    live.remove(&m);
                }
                frontier[p as usize] = frontier[p as usize].max(s);
            } else {
                let stored = h.save(msg(p, s));
                let expect = s > frontier[p as usize]
                    && !live.contains(&Mid::new(ProcessId(p), s));
                prop_assert_eq!(stored, expect, "save(p{}#{})", p, s);
                if expect {
                    live.insert(Mid::new(ProcessId(p), s));
                }
            }
            prop_assert_eq!(h.len(), live.len());
            for q in 0..3u16 {
                prop_assert_eq!(h.stable_frontier(ProcessId(q)), frontier[q as usize]);
            }
        }
        // Ranges only ever return live messages in order.
        for q in 0..3u16 {
            let r = h.range(ProcessId(q), 0, u64::MAX);
            let mut seqs: Vec<u64> = r.iter().map(|m| m.mid.seq).collect();
            let sorted = {
                let mut s2 = seqs.clone();
                s2.sort();
                s2
            };
            prop_assert_eq!(&seqs, &sorted);
            seqs.dedup();
            prop_assert_eq!(seqs.len(), h.len_for(ProcessId(q)));
        }
    }

    /// The stability value a coordinator computes never exceeds any
    /// contributor's reported frontier, and with full contribution it
    /// equals the exact minimum.
    #[test]
    fn stability_is_the_min_over_contributors(
        frontiers in prop::collection::vec(
            prop::collection::vec(0u64..50, 4),
            4,
        )
    ) {
        let n = 4;
        let prev = Decision::genesis(n);
        let mut m = StabilityMatrix::new(n);
        for (i, f) in frontiers.iter().enumerate() {
            m.record(ProcessId::from_index(i), f.clone(), vec![NO_SEQ; n], &prev);
        }
        let d = m.compute(Subrun(1), ProcessId(0), 3, &prev);
        prop_assert!(d.full_group);
        for q in 0..n {
            let exact = frontiers.iter().map(|f| f[q]).min().unwrap();
            prop_assert_eq!(d.stable[q], exact);
            for f in &frontiers {
                prop_assert!(d.stable[q] <= f[q]);
            }
        }
    }

    /// Splitting contributors across two subruns computes a stability value
    /// that is ≤ the single-subrun value (staleness is conservative), and
    /// still covers everyone (full_group on the second decision).
    #[test]
    fn split_contribution_is_conservative(
        frontiers in prop::collection::vec(prop::collection::vec(1u64..50, 4), 4),
        at in 1usize..4,
    ) {
        let n = 4;
        let genesis = Decision::genesis(n);
        // One-shot computation.
        let mut all = StabilityMatrix::new(n);
        for (i, f) in frontiers.iter().enumerate() {
            all.record(ProcessId::from_index(i), f.clone(), vec![NO_SEQ; n], &genesis);
        }
        let one_shot = all.compute(Subrun(1), ProcessId(0), 9, &genesis);

        // Two-subrun computation with the same (stale) frontiers.
        let mut m1 = StabilityMatrix::new(n);
        for (i, f) in frontiers.iter().enumerate().take(at) {
            m1.record(ProcessId::from_index(i), f.clone(), vec![NO_SEQ; n], &genesis);
        }
        let d1 = m1.compute(Subrun(1), ProcessId(0), 9, &genesis);
        let mut m2 = StabilityMatrix::new(n);
        for (i, f) in frontiers.iter().enumerate().skip(at) {
            m2.record(ProcessId::from_index(i), f.clone(), vec![NO_SEQ; n], &d1);
        }
        // Also re-record one early contributor so the coordinator itself is
        // covered (as in the real protocol every member sends each subrun).
        m2.record(ProcessId::from_index(0), frontiers[0].clone(), vec![NO_SEQ; n], &d1);
        let d2 = m2.compute(Subrun(2), ProcessId(1), 9, &d1);
        prop_assert!(d2.full_group, "coverage incomplete: {:?}", d2.covered);
        for q in 0..n {
            prop_assert!(d2.stable[q] <= one_shot.stable[q] || d2.stable[q] == one_shot.stable[q]);
            prop_assert_eq!(d2.stable[q], one_shot.stable[q], "same inputs, same min");
        }
    }
}
