//! Time series sampling (Figures 6 a/b: history length vs simulation time).

/// An append-only `(time, value)` series.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample. Times should be non-decreasing; the renderer does
    /// not sort.
    pub fn push(&mut self, time: f64, value: f64) {
        debug_assert!(
            self.points.last().is_none_or(|&(t, _)| t <= time),
            "time regression in series"
        );
        self.points.push((time, value));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The samples.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Largest value seen.
    pub fn max_value(&self) -> Option<f64> {
        self.points.iter().map(|&(_, v)| v).reduce(f64::max)
    }

    /// Value at the latest time.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Down-samples to at most `max_points` by keeping every k-th point
    /// (always keeping the last) — for compact terminal output.
    pub fn thin(&self, max_points: usize) -> TimeSeries {
        assert!(max_points >= 2, "need at least first and last point");
        if self.points.len() <= max_points {
            return self.clone();
        }
        let step = self.points.len().div_ceil(max_points);
        let mut points: Vec<(f64, f64)> = self.points.iter().copied().step_by(step).collect();
        let last = *self.points.last().expect("non-empty");
        if points.last() != Some(&last) {
            points.push(last);
        }
        TimeSeries { points }
    }

    /// Renders a one-line-per-sample `t value` listing.
    pub fn render(&self, t_label: &str, v_label: &str) -> String {
        let mut out = format!("{t_label:>10}  {v_label}\n");
        for &(t, v) in &self.points {
            out.push_str(&format!("{t:>10.1}  {v:.1}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_inspect() {
        let mut s = TimeSeries::new();
        s.push(0.0, 1.0);
        s.push(1.0, 5.0);
        s.push(2.0, 3.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.max_value(), Some(5.0));
        assert_eq!(s.last_value(), Some(3.0));
    }

    #[test]
    fn empty_series_has_no_extremes() {
        let s = TimeSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.max_value(), None);
        assert_eq!(s.last_value(), None);
    }

    #[test]
    fn thin_keeps_endpoints_and_bounds_size() {
        let mut s = TimeSeries::new();
        for t in 0..100 {
            s.push(t as f64, (t * 2) as f64);
        }
        let thinned = s.thin(10);
        assert!(thinned.len() <= 11, "got {}", thinned.len());
        assert_eq!(thinned.points()[0], (0.0, 0.0));
        assert_eq!(*thinned.points().last().unwrap(), (99.0, 198.0));
    }

    #[test]
    fn thin_noop_when_small() {
        let mut s = TimeSeries::new();
        s.push(0.0, 1.0);
        let t = s.thin(10);
        assert_eq!(t.points(), s.points());
    }

    #[test]
    fn render_contains_labels_and_values() {
        let mut s = TimeSeries::new();
        s.push(1.0, 40.0);
        let out = s.render("rtd", "history");
        assert!(out.contains("rtd"));
        assert!(out.contains("history"));
        assert!(out.contains("40.0"));
    }
}

impl TimeSeries {
    /// Renders as two-column CSV with the given headers.
    pub fn to_csv(&self, t_label: &str, v_label: &str) -> String {
        let mut out = format!("{t_label},{v_label}\n");
        for &(t, v) in &self.points {
            out.push_str(&format!("{t},{v}\n"));
        }
        out
    }
}

#[cfg(test)]
mod csv_tests {
    use super::*;

    #[test]
    fn csv_lists_points_in_order() {
        let mut s = TimeSeries::new();
        s.push(0.5, 3.0);
        s.push(1.0, 4.0);
        let csv = s.to_csv("rtd", "len");
        assert_eq!(csv, "rtd,len\n0.5,3\n1,4\n");
    }
}

impl TimeSeries {
    /// Renders the series as a compact ASCII chart: one column per bucket,
    /// `height` rows, `#` marks. Times are bucketed uniformly over the
    /// series' span; each bucket shows its maximum value. Returns an empty
    /// string for an empty series.
    pub fn render_ascii_chart(&self, width: usize, height: usize) -> String {
        assert!(width >= 2 && height >= 1, "chart too small");
        if self.points.is_empty() {
            return String::new();
        }
        let t0 = self.points.first().unwrap().0;
        let t1 = self.points.last().unwrap().0.max(t0 + f64::EPSILON);
        let vmax = self.max_value().unwrap().max(1e-9);
        let mut buckets = vec![0.0f64; width];
        for &(t, v) in &self.points {
            let x = (((t - t0) / (t1 - t0)) * (width as f64 - 1.0)).round() as usize;
            buckets[x] = buckets[x].max(v);
        }
        let mut out = String::new();
        for row in (1..=height).rev() {
            let threshold = vmax * (row as f64 - 0.5) / height as f64;
            let label = if row == height {
                format!("{vmax:>8.0} |")
            } else if row == 1 {
                format!("{:>8.0} |", 0.0)
            } else {
                "         |".to_string()
            };
            out.push_str(&label);
            for &b in &buckets {
                out.push(if b >= threshold { '#' } else { ' ' });
            }
            out.push('\n');
        }
        out.push_str("         +");
        out.push_str(&"-".repeat(width));
        out.push('\n');
        out.push_str(&format!(
            "          {t0:<10.1}{:>w$.1}\n",
            t1,
            w = width.saturating_sub(10)
        ));
        out
    }
}

#[cfg(test)]
mod chart_tests {
    use super::*;

    #[test]
    fn chart_shape_tracks_the_series() {
        let mut s = TimeSeries::new();
        for t in 0..50 {
            // Triangle: rises then falls.
            let v = if t < 25 { t } else { 50 - t };
            s.push(t as f64, v as f64);
        }
        let chart = s.render_ascii_chart(25, 6);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 6 + 2);
        // The top row is only populated near the middle; the bottom data
        // row nearly everywhere.
        let top_marks = lines[0].matches('#').count();
        let bottom_marks = lines[5].matches('#').count();
        assert!(top_marks >= 1 && top_marks < bottom_marks);
    }

    #[test]
    fn empty_series_renders_empty() {
        assert_eq!(TimeSeries::new().render_ascii_chart(10, 3), "");
    }

    #[test]
    #[should_panic(expected = "chart too small")]
    fn degenerate_dimensions_panic() {
        let mut s = TimeSeries::new();
        s.push(0.0, 1.0);
        let _ = s.render_ascii_chart(1, 0);
    }
}
