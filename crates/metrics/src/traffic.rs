//! Wire-traffic accounting (Table 1: amount and size of control messages).

use std::collections::BTreeMap;

/// Per-category message count and byte totals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Tally {
    /// Messages sent.
    pub count: u64,
    /// Total encoded bytes.
    pub bytes: u64,
}

impl Tally {
    /// Mean message size, or 0 for an empty tally.
    pub fn mean_size(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.bytes as f64 / self.count as f64
        }
    }
}

/// Counts messages and bytes per category label.
#[derive(Clone, Debug, Default)]
pub struct TrafficMeter {
    tallies: BTreeMap<String, Tally>,
}

impl TrafficMeter {
    /// An empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one message of `size` bytes under `category`.
    pub fn record(&mut self, category: &str, size: usize) {
        let t = self.tallies.entry(category.to_owned()).or_default();
        t.count += 1;
        t.bytes += size as u64;
    }

    /// The tally for `category` (zero if never recorded).
    pub fn get(&self, category: &str) -> Tally {
        self.tallies.get(category).copied().unwrap_or_default()
    }

    /// Sum over a set of categories.
    pub fn sum<'a>(&self, categories: impl IntoIterator<Item = &'a str>) -> Tally {
        let mut out = Tally::default();
        for c in categories {
            let t = self.get(c);
            out.count += t.count;
            out.bytes += t.bytes;
        }
        out
    }

    /// Grand total over all categories.
    pub fn total(&self) -> Tally {
        let mut out = Tally::default();
        for t in self.tallies.values() {
            out.count += t.count;
            out.bytes += t.bytes;
        }
        out
    }

    /// Iterates categories in lexical order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Tally)> {
        self.tallies.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Merges another meter into this one.
    pub fn merge(&mut self, other: &TrafficMeter) {
        for (k, v) in &other.tallies {
            let t = self.tallies.entry(k.clone()).or_default();
            t.count += v.count;
            t.bytes += v.bytes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_count_and_bytes() {
        let mut m = TrafficMeter::new();
        m.record("request", 100);
        m.record("request", 50);
        m.record("decision", 200);
        assert_eq!(
            m.get("request"),
            Tally {
                count: 2,
                bytes: 150
            }
        );
        assert_eq!(m.get("request").mean_size(), 75.0);
        assert_eq!(m.get("absent"), Tally::default());
    }

    #[test]
    fn total_and_sum() {
        let mut m = TrafficMeter::new();
        m.record("a", 1);
        m.record("b", 2);
        m.record("c", 3);
        assert_eq!(m.total(), Tally { count: 3, bytes: 6 });
        assert_eq!(m.sum(["a", "c"]), Tally { count: 2, bytes: 4 });
    }

    #[test]
    fn empty_tally_mean_is_zero() {
        assert_eq!(Tally::default().mean_size(), 0.0);
    }

    #[test]
    fn iteration_is_lexical() {
        let mut m = TrafficMeter::new();
        m.record("z", 1);
        m.record("a", 1);
        let keys: Vec<&str> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "z"]);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = TrafficMeter::new();
        a.record("x", 10);
        let mut b = TrafficMeter::new();
        b.record("x", 5);
        b.record("y", 1);
        a.merge(&b);
        assert_eq!(
            a.get("x"),
            Tally {
                count: 2,
                bytes: 15
            }
        );
        assert_eq!(a.get("y").count, 1);
    }
}
