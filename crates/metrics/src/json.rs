//! Minimal JSON document model: build, render, parse.
//!
//! The workspace carries no serialization dependency, so the sweep runner's
//! `--json` output goes through this hand-rolled module instead. Two design
//! points matter for the experiment pipeline:
//!
//! * **Deterministic rendering** — object members keep insertion order and
//!   floats use Rust's shortest-roundtrip `Display`, so the same results
//!   always serialize to the same bytes (the sweep determinism tests compare
//!   emitted documents bitwise).
//! * **Non-finite floats become `null`** — JSON has no NaN/∞; a metric that
//!   produced no samples serializes as `null` rather than poisoning the
//!   document.
//!
//! The parser accepts standard JSON (objects, arrays, strings with the
//! common escapes, numbers, booleans, null) and exists so tests and tools
//! can validate emitted documents without external dependencies.

use std::fmt;

/// A JSON value. Objects preserve member insertion order.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (always carried as `f64`; non-finite renders as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds (or replaces) a member; builder-style.
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.set(key, value);
        self
    }

    /// Adds (or replaces) a member in place. Panics on non-objects.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) {
        match self {
            Json::Obj(members) => {
                let value = value.into();
                match members.iter_mut().find(|(k, _)| k == key) {
                    Some((_, v)) => *v = value,
                    None => members.push((key.to_string(), value)),
                }
            }
            other => panic!("set {key:?} on non-object {other:?}"),
        }
    }

    /// Member lookup on objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn items(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Two-space-indented multi-line rendering (for humans and git diffs).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, d: usize| out.push_str(&"  ".repeat(d));
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    pad(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                pad(out, depth);
                out.push(']');
            }
            Json::Obj(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    pad(out, depth + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                pad(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn write_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        // Integral values render without a fractional part so counts stay
        // readable as integers to downstream tools.
        out.push_str(&format!("{}", v as i64));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Num(v as f64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Parses a JSON document. Errors carry a byte offset and a short message.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {pos}", b as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let rest = &bytes[*pos..];
                let s = unsafe { std::str::from_utf8_unchecked(rest) };
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_render() {
        let doc = Json::obj()
            .with("name", "fig4")
            .with("seed", 404u64)
            .with("ok", true)
            .with("items", vec![Json::Num(1.5), Json::Null]);
        assert_eq!(
            doc.render(),
            r#"{"name":"fig4","seed":404,"ok":true,"items":[1.5,null]}"#
        );
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let doc = Json::obj()
            .with("mean", 1.23456789)
            .with("counts", vec![Json::Num(3.0), Json::Num(4.0)])
            .with("label", "a \"quoted\"\nstring");
        let parsed = parse(&doc.render()).unwrap();
        assert_eq!(parsed, doc);
        let pretty = parse(&doc.render_pretty()).unwrap();
        assert_eq!(pretty, doc);
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn parser_accepts_standard_documents() {
        let doc = parse(r#" { "a" : [ 1 , 2.5e1 , -3 ] , "b" : { } , "c": "A" } "#).unwrap();
        assert_eq!(
            doc.get("a").unwrap().items().unwrap()[1].as_f64(),
            Some(25.0)
        );
        assert_eq!(doc.get("c").unwrap().as_str(), Some("A"));
    }

    #[test]
    fn set_replaces_existing_member() {
        let mut doc = Json::obj().with("x", 1u64);
        doc.set("x", 2u64);
        assert_eq!(doc.render(), r#"{"x":2}"#);
    }
}
