//! Versioned document-schema identifiers.
//!
//! Every JSON document this workspace emits is self-describing: a top-level
//! `"schema": "family/version"` field names the producer and pins the
//! layout, so validators and downstream tooling can reject documents they
//! do not understand instead of misreading them. [`Schema`] is the one
//! implementation of that convention — emitters tag documents with
//! [`Schema::tag`] and parsers gate on [`Schema::expect`], instead of each
//! crate hand-rolling its own `"urcgc-…/1"` string comparisons.

use crate::json::Json;

/// One versioned document schema, e.g. `urcgc-node/1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Schema {
    family: &'static str,
    version: u32,
}

impl Schema {
    /// Defines a schema. `family` is the document kind (conventionally
    /// `urcgc-<kind>`); `version` bumps on any layout change.
    pub const fn new(family: &'static str, version: u32) -> Schema {
        Schema { family, version }
    }

    /// The document kind.
    pub const fn family(&self) -> &'static str {
        self.family
    }

    /// The layout version.
    pub const fn version(&self) -> u32 {
        self.version
    }

    /// The wire identifier, `family/version`.
    pub fn id(&self) -> String {
        format!("{}/{}", self.family, self.version)
    }

    /// Stamps the identifier onto a document under construction.
    pub fn tag(&self, j: Json) -> Json {
        j.with("schema", self.id())
    }

    /// Validates a parsed document's `schema` field against this schema.
    /// Rejects missing fields, other families, and other versions.
    pub fn expect(&self, j: &Json) -> Result<(), String> {
        let got = j
            .get("schema")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("missing schema field (expected {:?})", self.id()))?;
        if got != self.id() {
            return Err(format!(
                "unexpected schema {got:?} (expected {:?})",
                self.id()
            ));
        }
        Ok(())
    }
}

impl core::fmt::Display for Schema {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}/{}", self.family, self.version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NODE: Schema = Schema::new("urcgc-node", 1);

    #[test]
    fn id_and_display_agree() {
        assert_eq!(NODE.id(), "urcgc-node/1");
        assert_eq!(NODE.to_string(), "urcgc-node/1");
        assert_eq!(NODE.family(), "urcgc-node");
        assert_eq!(NODE.version(), 1);
    }

    #[test]
    fn tag_then_expect_roundtrips() {
        let doc = NODE.tag(Json::obj().with("x", 1u64));
        assert_eq!(NODE.expect(&doc), Ok(()));
        let text = doc.render();
        let back = crate::json::parse(&text).unwrap();
        assert_eq!(NODE.expect(&back), Ok(()));
    }

    #[test]
    fn expect_rejects_wrong_family_version_and_absence() {
        assert!(NODE.expect(&Json::obj()).unwrap_err().contains("missing"));
        let other = Schema::new("urcgc-cluster", 1).tag(Json::obj());
        assert!(NODE.expect(&other).unwrap_err().contains("unexpected"));
        let v2 = Schema::new("urcgc-node", 2).tag(Json::obj());
        assert!(NODE.expect(&v2).unwrap_err().contains("unexpected"));
    }
}
