//! Replicate aggregation: mean / stddev / min / max / 95% confidence
//! interval over a set of per-replicate measurements.
//!
//! The sweep runner (`urcgc-bench::sweep`) runs each scenario `R` times
//! with derived seeds and aggregates every metric through [`Summary::of`].
//! The confidence interval uses the Student-t critical value for small
//! sample counts (the common case: 2–30 replicates) and the normal 1.96
//! beyond the table.

/// Aggregate statistics over one metric's replicate values.
///
/// Non-finite inputs (a replicate that produced `NaN`, e.g. "no delay
/// samples") are excluded; `n` counts only the finite values that entered
/// the aggregate.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Summary {
    /// Number of finite samples aggregated.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 when `n < 2`).
    pub stddev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Lower edge of the 95% confidence interval for the mean.
    pub ci95_lo: f64,
    /// Upper edge of the 95% confidence interval for the mean.
    pub ci95_hi: f64,
}

/// Two-sided 95% Student-t critical values by degrees of freedom (1-based
/// index; `T95[df - 1]`). Past the table the normal approximation is fine.
const T95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// 95% two-sided critical value for `df` degrees of freedom.
fn t95(df: usize) -> f64 {
    if df == 0 {
        f64::NAN
    } else if df <= T95.len() {
        T95[df - 1]
    } else {
        1.96
    }
}

impl Summary {
    /// Aggregates `values`, ignoring non-finite entries.
    pub fn of(values: &[f64]) -> Summary {
        let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        let n = finite.len();
        if n == 0 {
            return Summary {
                n: 0,
                mean: f64::NAN,
                stddev: f64::NAN,
                min: f64::NAN,
                max: f64::NAN,
                ci95_lo: f64::NAN,
                ci95_hi: f64::NAN,
            };
        }
        let mean = finite.iter().sum::<f64>() / n as f64;
        let stddev = if n < 2 {
            0.0
        } else {
            let ss: f64 = finite.iter().map(|v| (v - mean) * (v - mean)).sum();
            (ss / (n - 1) as f64).sqrt()
        };
        let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
        let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let (ci95_lo, ci95_hi) = if n < 2 {
            (mean, mean)
        } else {
            let half = t95(n - 1) * stddev / (n as f64).sqrt();
            (mean - half, mean + half)
        };
        Summary {
            n,
            mean,
            stddev,
            min,
            max,
            ci95_lo,
            ci95_hi,
        }
    }

    /// `mean ± half-width` rendering, or `mean` alone when `n < 2`.
    pub fn render(&self) -> String {
        if self.n == 0 {
            "-".to_string()
        } else if self.n < 2 {
            format!("{:.2}", self.mean)
        } else {
            format!("{:.2} ±{:.2}", self.mean, self.ci95_hi - self.mean)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() < eps
    }

    #[test]
    fn hand_computed_fixture_five_samples() {
        // Values 2, 4, 4, 4, 6: mean 4, sample variance (4+0+0+0+4)/4 = 2,
        // stddev √2 ≈ 1.41421. CI half-width t(4)·s/√5 = 2.776·1.41421/2.23607
        // ≈ 1.75575.
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 6.0]);
        assert_eq!(s.n, 5);
        assert!(close(s.mean, 4.0, 1e-12));
        assert!(close(s.stddev, 2.0f64.sqrt(), 1e-12));
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 6.0);
        assert!(close(s.ci95_lo, 4.0 - 1.75575, 1e-4), "lo = {}", s.ci95_lo);
        assert!(close(s.ci95_hi, 4.0 + 1.75575, 1e-4), "hi = {}", s.ci95_hi);
    }

    #[test]
    fn hand_computed_fixture_two_samples() {
        // Values 1, 3: mean 2, stddev √2, CI half-width 12.706·√2/√2 = 12.706.
        let s = Summary::of(&[1.0, 3.0]);
        assert_eq!(s.n, 2);
        assert!(close(s.mean, 2.0, 1e-12));
        assert!(close(s.stddev, 2.0f64.sqrt(), 1e-12));
        assert!(close(s.ci95_hi, 2.0 + 12.706, 1e-9));
        assert!(close(s.ci95_lo, 2.0 - 12.706, 1e-9));
    }

    #[test]
    fn single_sample_degenerates() {
        let s = Summary::of(&[7.5]);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 7.5);
        assert_eq!(s.stddev, 0.0);
        assert_eq!((s.ci95_lo, s.ci95_hi), (7.5, 7.5));
    }

    #[test]
    fn nan_samples_excluded() {
        let s = Summary::of(&[1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(s.n, 2);
        assert!(close(s.mean, 2.0, 1e-12));
    }

    #[test]
    fn empty_is_all_nan() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert!(s.mean.is_nan() && s.ci95_hi.is_nan());
        assert_eq!(s.render(), "-");
    }

    #[test]
    fn large_sample_uses_normal_critical_value() {
        let vals: Vec<f64> = (0..100).map(|i| (i % 2) as f64).collect();
        let s = Summary::of(&vals);
        // stddev ≈ 0.50252, half-width ≈ 1.96·0.50252/10 ≈ 0.09849.
        assert!(close(s.ci95_hi - s.mean, 0.09849, 1e-4));
    }
}
