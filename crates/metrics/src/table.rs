//! Minimal ASCII table renderer for the experiment binaries.

/// A right-padded ASCII table with a header row.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must have exactly as many cells as there are headers.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with a separator line under the header.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<w$}", cells[i], w = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&render_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["x", "1"]).row(["longer", "23"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("x"));
        // Columns align: "value" starts at the same offset in all rows.
        let col = lines[0].find("value").unwrap();
        assert_eq!(&lines[3][col..col + 2], "23");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(["a"]);
        assert!(t.is_empty());
        let out = t.render();
        assert_eq!(out.lines().count(), 2);
    }
}

impl Table {
    /// Renders as CSV (RFC-4180-ish: fields containing commas or quotes are
    /// quoted, quotes doubled).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let mut write_row = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| field(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_row(&self.headers);
        for row in &self.rows {
            write_row(row);
        }
        out
    }
}

#[cfg(test)]
mod csv_tests {
    use super::*;

    #[test]
    fn csv_is_comma_separated_with_header() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]).row(["x,y", "q\"uote"]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "1,2");
        assert_eq!(lines[2], "\"x,y\",\"q\"\"uote\"");
    }
}
