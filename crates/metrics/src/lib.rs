#![warn(missing_docs)]

//! Measurement and reporting kit for the experiment harness.
//!
//! Section 6 of the paper analyzes four quantities; each has a module here:
//!
//! * mean end-to-end delay `D` — [`DelayStats`] (Figure 4);
//! * the time `T` for group-composition + stability decisions — also
//!   [`DelayStats`], in subrun units (Figure 5);
//! * the amount and size of control messages — [`TrafficMeter`] (Table 1);
//! * the history length over time — [`TimeSeries`] (Figures 6 a/b).
//!
//! [`Table`] renders the ASCII tables and series every `fig*`/`table*`
//! binary prints.

//! ```
//! use urcgc_metrics::{DelayStats, Table, TrafficMeter};
//!
//! let mut d = DelayStats::new();
//! d.record(0.5);
//! d.record(1.5);
//! assert_eq!(d.mean(), Some(1.0));
//!
//! let mut traffic = TrafficMeter::new();
//! traffic.record("request", 294);
//! traffic.record("decision", 196);
//! assert_eq!(traffic.total().count, 2);
//!
//! let mut t = Table::new(["metric", "value"]);
//! t.row(["mean D (rtd)", "1.0"]);
//! assert!(t.render().contains("mean D"));
//! ```

pub mod delay;
pub mod json;
pub mod schema;
pub mod series;
pub mod stats;
pub mod table;
pub mod traffic;

pub use delay::DelayStats;
pub use json::Json;
pub use schema::Schema;
pub use series::TimeSeries;
pub use stats::Summary;
pub use table::Table;
pub use traffic::TrafficMeter;
