//! Oracle false-positive corpus: every property oracle runs over the
//! scenarios the repo's existing suites already certify as correct —
//! the `tests/failure_scenarios.rs` fault plans (minus the deliberate
//! out-of-model split-brain scenario), soak-grid-shaped cells, and clean
//! baseline-comparison runs — and must stay silent on all of them. An
//! oracle that fires here is unsound and would poison every checker
//! verdict, so this corpus gates oracle changes in CI.

use urcgc::sim::{GroupHarness, Workload};
use urcgc_bench::soak::{baseline_soak_faults, soak_faults};
use urcgc_check::oracle::{self, Violation};
use urcgc_simnet::FaultPlan;
use urcgc_types::{ProcessId, ProtocolConfig, Round, Subrun};

/// Runs one (config, plan) scenario to quiescence exactly like the
/// checker does — per-round stability oracle, terminal oracles at the
/// end — and returns everything that fired.
fn oracle_violations(
    cfg: ProtocolConfig,
    faults: FaultPlan,
    msgs: u64,
    seed: u64,
    max_rounds: u64,
) -> Vec<Violation> {
    let mut h = GroupHarness::builder(cfg)
        .workload(Workload::fixed_count(msgs, 8))
        .faults(faults)
        .seed(seed)
        .max_rounds(max_rounds)
        .build();
    let mut violations = Vec::new();
    let mut rounds = 0u64;
    let mut streak = 0u64;
    while rounds < max_rounds {
        h.step();
        rounds += 1;
        if violations.is_empty() {
            if let Some(v) = oracle::check_stability(&h, rounds) {
                violations.push(v);
            }
        }
        if h.net().all_done() {
            streak += 1;
            if streak >= 8 {
                break;
            }
        } else {
            streak = 0;
        }
    }
    let report = h.report(rounds);
    if let Some(v) = oracle::check_ordering(h.net().nodes()) {
        violations.push(v);
    }
    violations.extend(oracle::check_final(&report));
    violations
}

fn assert_clean(name: &str, violations: Vec<Violation>) {
    assert!(
        violations.is_empty(),
        "oracle false positive on known-good scenario {name:?}: {violations:?}"
    );
}

/// Clean baseline-comparison runs: no faults at all, several group sizes
/// and seeds. The cheapest possible soundness floor.
#[test]
fn clean_baseline_runs_pass_every_oracle() {
    for &(n, msgs, seed) in &[(3usize, 8u64, 1u64), (5, 8, 2), (7, 6, 3)] {
        let violations =
            oracle_violations(ProtocolConfig::new(n), FaultPlan::none(), msgs, seed, 4_000);
        assert_clean(&format!("clean n={n} seed={seed}"), violations);
    }
}

/// The harness-driven `tests/failure_scenarios.rs` plans, replayed under
/// the oracles. The long-minority-partition scenario is deliberately
/// absent: split-brain is the documented out-of-model behaviour (the
/// paper's resilience bound excludes partitions longer than the miss
/// budget), and the divergence oracle is *supposed* to reject it.
#[test]
fn failure_scenario_plans_pass_every_oracle() {
    // Crash detection: one member crashes entering subrun 2 (n=6, K=2).
    assert_clean(
        "crash_detection",
        oracle_violations(
            ProtocolConfig::new(6).with_k(2),
            FaultPlan::none().crash_at(ProcessId(4), Subrun(2).request_round()),
            6,
            3,
            2_000,
        ),
    );

    // Suicide: p4's outgoing links all cut — declared crashed, hears the
    // verdict, suicides; survivors keep atomicity (n=5, K=2, seed 8).
    let mut suicide = FaultPlan::none();
    for i in 0..4u16 {
        suicide = suicide.cut_link(ProcessId(4), ProcessId(i));
    }
    assert_clean(
        "suicide_after_send_mute",
        oracle_violations(ProtocolConfig::new(5).with_k(2), suicide, 5, 8, 2_000),
    );

    // Autonomous leave: p5 fully isolated both ways (n=6, K=2, f=1).
    let mut isolated = FaultPlan::none();
    for i in 0..5u16 {
        isolated = isolated
            .cut_link(ProcessId(5), ProcessId(i))
            .cut_link(ProcessId(i), ProcessId(5));
    }
    assert_clean(
        "isolated_process_leaves",
        oracle_violations(
            ProtocolConfig::new(6).with_k(2).with_f_allowance(1),
            isolated,
            4,
            21,
            2_000,
        ),
    );

    // Detection-latency cells: victim crash plus f consecutive
    // coordinator crashes at n=11, the Figure-5 sweep's shape.
    for &(k, f) in &[(1u32, 0u32), (2, 2), (3, 3)] {
        let n = 11;
        let first_crash_subrun = 2u64;
        let faults = FaultPlan::none()
            .crash_at(
                ProcessId::from_index(n - 1),
                Subrun(first_crash_subrun).request_round(),
            )
            .consecutive_coordinator_crashes(first_crash_subrun, f, n);
        assert_clean(
            &format!("detection_latency K={k} f={f}"),
            oracle_violations(
                ProtocolConfig::new(n).with_k(k).with_f_allowance(f.max(1)),
                faults,
                4,
                1000 + (k * 10 + f) as u64,
                4_000,
            ),
        );
    }

    // Short healing partition: 2 subruns of partition inside the K+f
    // miss budget — ridden out without casualties (n=7, K=3, seed 45).
    let minority = [ProcessId(5), ProcessId(6)];
    assert_clean(
        "short_partition_heals",
        oracle_violations(
            ProtocolConfig::new(7).with_k(3).with_f_allowance(2),
            FaultPlan::none().partition_during(&minority, 7, Round(6), Round(10)),
            8,
            45,
            4_000,
        ),
    );

    // Straggler sweep: a 2-round-slow sender either suicides (K=1) or is
    // absorbed (K=3); both ends are legal protocol behaviour.
    for k in [1u32, 3] {
        assert_clean(
            &format!("straggler K={k}"),
            oracle_violations(
                ProtocolConfig::new(5).with_k(k),
                FaultPlan::none().slow_sender(ProcessId(4), 2),
                8,
                71,
                8_000,
            ),
        );
    }
}

/// Soak-grid-shaped cells, scaled to test budgets: the soak workload's
/// fault plan (slow sender plus a late crash) and the baselines' plan
/// (slow sender only) on the protocol under check.
#[test]
fn soak_shaped_cells_pass_every_oracle() {
    for &(n, msgs, seed) in &[(10usize, 40u64, 7u64), (10, 80, 8), (6, 60, 9)] {
        assert_clean(
            &format!("soak cell n={n} msgs={msgs}"),
            oracle_violations(
                ProtocolConfig::new(n),
                soak_faults(n, msgs),
                msgs,
                seed,
                msgs * 8 + 4_000,
            ),
        );
        assert_clean(
            &format!("baseline cell n={n} msgs={msgs}"),
            oracle_violations(
                ProtocolConfig::new(n),
                baseline_soak_faults(),
                msgs,
                seed,
                msgs * 8 + 4_000,
            ),
        );
    }
}
