//! End-to-end self-test of the whole checker pipeline on the
//! deliberately-broken purge variant: explore finds the bug, shrinks it,
//! the repro document round-trips through JSON, and the parsed spec still
//! reproduces the violation — the exact path CI's `checker-smoke` job
//! relies on to prove the oracles have teeth.

use urcgc_check::explore::{explore, summary_doc, ExploreOpts};
use urcgc_check::oracle::OracleKind;
use urcgc_check::repro::{parse_repro, repro_doc};
use urcgc_check::run::run_spec;

#[test]
fn broken_purge_is_found_shrunk_and_replayable() {
    let opts = ExploreOpts {
        runs: 60,
        msgs: 10,
        jobs: 2,
        broken_purge: true,
        ..ExploreOpts::default()
    };
    let outcome = explore(&opts);
    assert!(
        outcome.violating_runs > 0,
        "60 adversarial runs never caught the purge-before-stability bug"
    );
    let cx = outcome
        .counterexample
        .clone()
        .expect("violating exploration must produce a counterexample");
    assert!(
        cx.violations
            .iter()
            .any(|v| v.kind == OracleKind::StabilitySafety),
        "expected a stability-safety violation, got {:?}",
        cx.violations
    );

    // The shrunk spec is no more complex than the generated one.
    assert!(cx.shrunk.msgs <= cx.original.msgs);
    assert!(cx.shrunk.plan.crashes.len() <= cx.original.plan.crashes.len());

    // Repro document round-trips and still reproduces.
    let rendered = repro_doc(&cx.shrunk, &cx.violations).render_pretty();
    let parsed = parse_repro(&rendered).expect("repro parses back");
    assert_eq!(parsed, cx.shrunk);
    let replay = run_spec(&parsed);
    assert!(
        replay.violated(),
        "parsed repro no longer reproduces: {:?}",
        replay
    );

    // The urcgc-check/1 summary carries the counterexample.
    let summary = summary_doc(&opts, &outcome, Some("cx.json")).render_pretty();
    let doc = urcgc_metrics::json::parse(&summary).expect("summary parses");
    assert_eq!(
        doc.get("schema").and_then(urcgc_metrics::Json::as_str),
        Some("urcgc-check/1")
    );
    assert!(doc
        .get("counterexample")
        .is_some_and(|c| c.get("seed").is_some()));
}
