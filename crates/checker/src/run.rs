//! Executes one [`CheckSpec`] and returns every oracle violation it
//! provokes.

use urcgc::sim::{GroupHarness, UrcgcNode, Workload};
use urcgc_simnet::{FlatWireSimNet, SimOptions};
use urcgc_types::ProcessId;

use crate::oracle::{self, Violation};
use crate::sched::ScheduleAdversary;
use crate::spec::CheckSpec;

/// Payload size of checker-generated messages (value is irrelevant to the
/// properties; small keeps runs fast).
const PAYLOAD: usize = 16;

/// Outcome of one checked run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Every violation observed, mid-run stability breaches first.
    pub violations: Vec<Violation>,
    /// Rounds executed.
    pub rounds: u64,
    /// Whether the run quiesced.
    pub quiesced: bool,
    /// Messages generated group-wide.
    pub generated: u64,
}

impl RunResult {
    /// Whether any oracle fired.
    pub fn violated(&self) -> bool {
        !self.violations.is_empty()
    }
}

/// Runs `spec` to quiescence (or its round budget), checking the mid-run
/// stability oracle every round and the terminal oracles at the end. With
/// `differential` set, the same (seed, plan, schedule) triple is replayed
/// on [`FlatWireSimNet`] and the two engines' delivery logs and counters
/// must match exactly.
pub fn run_spec(spec: &CheckSpec, differential: bool) -> RunResult {
    let max_rounds = spec.max_rounds();
    let mut h = GroupHarness::builder(spec.config())
        .workload(Workload::fixed_count(spec.msgs, PAYLOAD))
        .faults(spec.plan.to_fault_plan(spec.n))
        .seed(spec.seed)
        .max_rounds(max_rounds)
        .adversary(Box::new(ScheduleAdversary::new(&spec.sched)))
        .build();

    let mut violations = Vec::new();
    let mut rounds = 0u64;
    let mut streak = 0u64;
    while rounds < max_rounds {
        h.step();
        rounds += 1;
        if violations.is_empty() {
            if let Some(v) = oracle::check_stability(&h, rounds) {
                violations.push(v);
            }
        }
        if h.net().all_done() {
            streak += 1;
            // Same drain as GroupHarness::run_to_completion: two more
            // decision subruns settle stability and gap detection.
            if streak >= 8 {
                break;
            }
        } else {
            streak = 0;
        }
    }
    let report = h.report(rounds);
    if let Some(v) = oracle::check_ordering(h.net().nodes()) {
        violations.push(v);
    }
    violations.extend(oracle::check_final(&report));
    if differential {
        if let Some(v) = differential_check(spec, rounds, &h) {
            violations.push(v);
        }
    }
    RunResult {
        violations,
        rounds,
        quiesced: report.quiesced,
        generated: report.generated_total,
    }
}

/// Replays the spec on the legacy flat-wire engine for the same number of
/// rounds and compares per-node delivery logs and delivery counters
/// against the calendar-queue run. The two engines are contractually
/// bit-for-bit identical (same fault-RNG draw order, same delivery order),
/// which is why `FlatWireSimNet`'s retirement is deferred: it is the
/// differential target that would catch a scheduling bug in either.
fn differential_check(spec: &CheckSpec, rounds: u64, h: &GroupHarness) -> Option<Violation> {
    let cfg = spec.config();
    let workload = Workload::fixed_count(spec.msgs, PAYLOAD);
    let nodes: Vec<UrcgcNode> = (0..spec.n)
        .map(|i| {
            UrcgcNode::new(
                ProcessId::from_index(i),
                cfg.clone(),
                workload.clone(),
                spec.seed,
            )
        })
        .collect();
    let mut flat = FlatWireSimNet::new(
        nodes,
        spec.plan.to_fault_plan(spec.n),
        SimOptions {
            seed: spec.seed,
            max_rounds: spec.max_rounds(),
            ..SimOptions::default()
        },
    );
    flat.set_adversary(Box::new(ScheduleAdversary::new(&spec.sched)));
    flat.run_rounds(rounds);

    let main_stats = h.net().stats();
    let flat_stats = flat.stats();
    if main_stats.delivered != flat_stats.delivered
        || main_stats.adversary_dropped != flat_stats.adversary_dropped
    {
        return Some(oracle::differential_violation(format!(
            "engine counters diverged after {rounds} rounds: calendar delivered {} \
             (adversary dropped {}), flat-wire delivered {} (adversary dropped {})",
            main_stats.delivered,
            main_stats.adversary_dropped,
            flat_stats.delivered,
            flat_stats.adversary_dropped
        )));
    }
    for (a, b) in h.net().nodes().iter().zip(flat.nodes()) {
        if a.delivery_log() != b.delivery_log() {
            return Some(oracle::differential_violation(format!(
                "p{}'s processing log diverged between engines after {rounds} rounds \
                 ({} vs {} entries)",
                a.engine().me().0,
                a.delivery_log().len(),
                b.delivery_log().len()
            )));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_specs_pass_all_oracles() {
        for seed in 0..12u64 {
            let spec = CheckSpec::generate(seed, 5, 8, false);
            let result = run_spec(&spec, true);
            assert!(
                !result.violated(),
                "seed {seed}: {:?} (spec {spec:?})",
                result.violations
            );
            assert!(result.quiesced);
            assert!(result.generated > 0);
        }
    }

    #[test]
    fn broken_purge_variant_is_caught() {
        let caught = (0..40u64).any(|seed| {
            let spec = CheckSpec::generate(seed, 5, 10, true);
            run_spec(&spec, false)
                .violations
                .iter()
                .any(|v| v.kind == crate::oracle::OracleKind::StabilitySafety)
        });
        assert!(
            caught,
            "40 adversarial runs never caught the purge-before-stability bug"
        );
    }
}
