//! Executes one [`CheckSpec`] and returns every oracle violation it
//! provokes.

use urcgc::sim::{GroupHarness, Workload};

use crate::oracle::{self, Violation};
use crate::sched::ScheduleAdversary;
use crate::spec::CheckSpec;

/// Payload size of checker-generated messages (value is irrelevant to the
/// properties; small keeps runs fast).
const PAYLOAD: usize = 16;

/// Outcome of one checked run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Every violation observed, mid-run stability breaches first.
    pub violations: Vec<Violation>,
    /// Rounds executed.
    pub rounds: u64,
    /// Whether the run quiesced.
    pub quiesced: bool,
    /// Messages generated group-wide.
    pub generated: u64,
}

impl RunResult {
    /// Whether any oracle fired.
    pub fn violated(&self) -> bool {
        !self.violations.is_empty()
    }
}

/// Runs `spec` to quiescence (or its round budget), checking the mid-run
/// stability oracle every round and the terminal oracles at the end.
pub fn run_spec(spec: &CheckSpec) -> RunResult {
    let max_rounds = spec.max_rounds();
    let mut h = GroupHarness::builder(spec.config())
        .workload(Workload::fixed_count(spec.msgs, PAYLOAD))
        .faults(spec.plan.to_fault_plan(spec.n))
        .seed(spec.seed)
        .max_rounds(max_rounds)
        .adversary(Box::new(ScheduleAdversary::new(&spec.sched)))
        .build();

    let mut violations = Vec::new();
    let mut rounds = 0u64;
    let mut streak = 0u64;
    while rounds < max_rounds {
        h.step();
        rounds += 1;
        if violations.is_empty() {
            if let Some(v) = oracle::check_stability(&h, rounds) {
                violations.push(v);
            }
        }
        if h.net().all_done() {
            streak += 1;
            // Same drain as GroupHarness::run_to_completion: two more
            // decision subruns settle stability and gap detection.
            if streak >= 8 {
                break;
            }
        } else {
            streak = 0;
        }
    }
    let report = h.report(rounds);
    if let Some(v) = oracle::check_ordering(h.net().nodes()) {
        violations.push(v);
    }
    violations.extend(oracle::check_final(&report));
    RunResult {
        violations,
        rounds,
        quiesced: report.quiesced,
        generated: report.generated_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_specs_pass_all_oracles() {
        for seed in 0..12u64 {
            let spec = CheckSpec::generate(seed, 5, 8, false);
            let result = run_spec(&spec);
            assert!(
                !result.violated(),
                "seed {seed}: {:?} (spec {spec:?})",
                result.violations
            );
            assert!(result.quiesced);
            assert!(result.generated > 0);
        }
    }

    #[test]
    fn broken_purge_variant_is_caught() {
        let caught = (0..40u64).any(|seed| {
            let spec = CheckSpec::generate(seed, 5, 10, true);
            run_spec(&spec)
                .violations
                .iter()
                .any(|v| v.kind == crate::oracle::OracleKind::StabilitySafety)
        });
        assert!(
            caught,
            "40 adversarial runs never caught the purge-before-stability bug"
        );
    }
}
