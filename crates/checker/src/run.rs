//! Executes one [`CheckSpec`] and returns every oracle violation it
//! provokes.

use urcgc::sim::{GroupHarness, Workload};

use crate::oracle::{self, Violation};
use crate::sched::ScheduleAdversary;
use crate::spec::CheckSpec;

/// Payload size of checker-generated messages (value is irrelevant to the
/// properties; small keeps runs fast).
const PAYLOAD: usize = 16;

/// Outcome of one checked run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Every violation observed, mid-run stability breaches first.
    pub violations: Vec<Violation>,
    /// Rounds executed.
    pub rounds: u64,
    /// Whether the run quiesced.
    pub quiesced: bool,
    /// Messages generated group-wide.
    pub generated: u64,
}

impl RunResult {
    /// Whether any oracle fired.
    pub fn violated(&self) -> bool {
        !self.violations.is_empty()
    }
}

/// Runs `spec` to quiescence (or its round budget), checking the mid-run
/// stability oracle every round and the terminal oracles at the end.
pub fn run_spec(spec: &CheckSpec) -> RunResult {
    let max_rounds = spec.max_rounds();
    let mut builder = GroupHarness::builder(spec.config())
        .workload(Workload::fixed_count(spec.msgs, PAYLOAD))
        .faults(spec.plan.to_fault_plan(spec.n))
        .seed(spec.seed)
        .max_rounds(max_rounds)
        .adversary(Box::new(ScheduleAdversary::new(&spec.sched)));
    if let Some(ov) = &spec.overlay {
        builder = builder.overlay(ov.to_config());
    }
    let mut h = builder.build();

    let mut violations = Vec::new();
    let mut rounds = 0u64;
    let mut streak = 0u64;
    while rounds < max_rounds {
        h.step();
        rounds += 1;
        if violations.is_empty() {
            if let Some(v) = oracle::check_stability(&h, rounds) {
                violations.push(v);
            }
        }
        if h.net().all_done() {
            streak += 1;
            // Same drain as GroupHarness::run_to_completion: two more
            // decision subruns settle stability and gap detection.
            if streak >= 8 {
                break;
            }
        } else {
            streak = 0;
        }
    }
    let report = h.report(rounds);
    if let Some(v) = oracle::check_ordering(h.net().nodes()) {
        violations.push(v);
    }
    if spec.is_loss_free() {
        if let Some(v) = oracle::check_membership(&h) {
            violations.push(v);
        }
    }
    violations.extend(oracle::check_final(&report));
    RunResult {
        violations,
        rounds,
        quiesced: report.quiesced,
        generated: report.generated_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_specs_pass_all_oracles() {
        for seed in 0..12u64 {
            let spec = CheckSpec::generate(seed, 5, 8, false);
            let result = run_spec(&spec);
            assert!(
                !result.violated(),
                "seed {seed}: {:?} (spec {spec:?})",
                result.violations
            );
            assert!(result.quiesced);
            assert!(result.generated > 0);
        }
    }

    #[test]
    fn clean_overlay_specs_pass_all_oracles() {
        for seed in 0..12u64 {
            let spec = CheckSpec::generate_overlay(seed, 5, 8, false);
            let result = run_spec(&spec);
            assert!(
                !result.violated(),
                "seed {seed}: {:?} (spec {spec:?})",
                result.violations
            );
            assert!(result.quiesced);
            assert!(result.generated > 0);
        }
    }

    #[test]
    fn loss_free_overlay_specs_keep_every_survivor_active() {
        // Soundness of the membership oracle: with a *working* relay, a
        // loss-free genome — relay crashes, slow senders and shuffles, but
        // nothing dropped — must never eject a process that did not crash,
        // even at the depth where the broken relay is caught (n=9).
        for seed in 0..20u64 {
            let mut spec = CheckSpec::generate_overlay(seed, 9, 10, false);
            spec.strip_loss_faults();
            assert!(spec.is_loss_free());
            let result = run_spec(&spec);
            assert!(
                !result.violated(),
                "seed {seed}: {:?} (spec {spec:?})",
                result.violations
            );
        }
    }

    #[test]
    fn broken_relay_variant_is_caught() {
        // The relay delivers decisions locally but never forwards them, so
        // processes deep in the tree only see a decision when they sit
        // within one hop of its coordinator. At n=9 the rotation leaves
        // some process decision-starved for more than K+f consecutive
        // subruns and it silently ejects itself — which the membership
        // oracle (armed because broken-relay genomes are loss-free)
        // condemns.
        let caught = (0..40u64).any(|seed| {
            let spec = CheckSpec::generate_overlay(seed, 9, 16, true);
            run_spec(&spec)
                .violations
                .iter()
                .any(|v| v.kind == crate::oracle::OracleKind::Membership)
        });
        assert!(
            caught,
            "40 adversarial runs never caught the decision-dropping relay"
        );
    }

    #[test]
    fn broken_purge_variant_is_caught() {
        let caught = (0..40u64).any(|seed| {
            let spec = CheckSpec::generate(seed, 5, 10, true);
            run_spec(&spec)
                .violations
                .iter()
                .any(|v| v.kind == crate::oracle::OracleKind::StabilitySafety)
        });
        assert!(
            caught,
            "40 adversarial runs never caught the purge-before-stability bug"
        );
    }
}
