#![warn(missing_docs)]

//! Adversarial schedule explorer for the urcgc protocol.
//!
//! The hand-written scenarios in `tests/failure_scenarios.rs` each pin one
//! interesting point of the fault space; this crate *searches* it. An
//! exploration run repeatedly:
//!
//! 1. **generates** a random [`CheckSpec`](spec::CheckSpec) — a fault-plan
//!    genome (crashes, omission rates, timed link cuts, targeted cuts
//!    around coordinator handoffs) plus a delivery-schedule perturbation
//!    ([`SchedSpec`](spec::SchedSpec), realized as a PCT-style
//!    [`Adversary`](urcgc_simnet::Adversary)) — all within the paper's
//!    failure model, so the protocol's guarantees must hold;
//! 2. **runs** it on the probed [`GroupHarness`](urcgc::sim::GroupHarness)
//!    and checks every round and the final report against the typed
//!    property [`oracle`]s: Uniform Atomicity, Uniform Ordering,
//!    stability-safety (no history entry purged before it is stable),
//!    frontier agreement, and termination;
//! 3. on violation, **shrinks** the spec to a locally-minimal
//!    counterexample ([`shrink`]) and serializes it as a replayable
//!    `urcgc-repro/1` JSON document ([`repro`]).
//!
//! The `checker` binary drives [`explore`] with a run budget, an optional
//! wall-clock budget, and `--jobs` fan-out over the sweep job pool, and
//! emits a `urcgc-check/1` summary document.
//!
//! The [`cluster`] module restates the end-of-run oracles (quiescence,
//! uniform agreement, ordering) over *real-network* member reports, so the
//! `loopback-cluster` harness in `urcgc-runtime` gates multi-process UDP
//! runs on the same properties the explorer checks in-model.

pub mod cluster;
pub mod explore;
pub mod multigroup;
pub mod oracle;
pub mod repro;
pub mod run;
pub mod sched;
pub mod shrink;
pub mod spec;

pub use cluster::{check_cluster, check_genuineness, fnv1a_stream, NodeObservation};
pub use explore::{explore, ExploreOpts, ExploreOutcome};
pub use multigroup::{run_multigroup, MultigroupReport, MultigroupSpec, MULTIGROUP_SCHEMA};
pub use oracle::{OracleKind, Violation};
pub use run::{run_spec, RunResult};
pub use spec::{CheckSpec, PlanSpec, SchedSpec};
