//! Oracle reuse on **real-network** cluster reports.
//!
//! The in-model oracles ([`crate::oracle`]) inspect live
//! [`GroupHarness`](urcgc::sim::GroupHarness) state — engines, delivery
//! logs, views. A loopback/LAN cluster run (the `loopback-cluster` binary
//! in `urcgc-runtime`) has no such luxury: each member is a separate OS
//! process that can only *report* what it observed. This module states the
//! same end-of-run properties over those reports:
//!
//! * **Termination / quiescence** (the paper's bounded-time claim): every
//!   member reached workload quiescence inside the wall-clock budget —
//!   the report-level analogue of [`OracleKind::Stall`];
//! * **Uniform Atomicity + frontier agreement**: all members that ended
//!   `Active` processed *identical* per-origin message streams, compared
//!   via processed-frontier vectors ([`OracleKind::Divergence`]) and
//!   order-sensitive per-origin digests ([`OracleKind::Atomicity`]);
//! * **Uniform Ordering**: each member checks its own delivery log
//!   in-process (it has the full log; the report carries only the
//!   verdict) — a `false` here surfaces as [`OracleKind::Ordering`].
//!
//! The digest is order-sensitive FNV-1a over each origin's delivered
//! sequence numbers in local delivery order ([`fnv1a_stream`]), so two
//! members agree iff they processed the same set of an origin's messages
//! in the same relative order — equality of frontiers alone would miss a
//! gap that a later recovery happened to paper over.

use urcgc_types::Fnv64;

use crate::oracle::{OracleKind, Violation};

/// Order-sensitive FNV-1a digest over a stream of sequence numbers
/// (little-endian bytes). Used by cluster members to summarize each
/// origin's delivered-sequence stream for cross-member comparison.
pub fn fnv1a_stream(seqs: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = Fnv64::new();
    for seq in seqs {
        h.update(&seq.to_le_bytes());
    }
    h.finish()
}

/// What one cluster member reported at the end of its run — the minimum
/// the end-of-run oracles need, all computable inside the member process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeObservation {
    /// The member's process id.
    pub me: u16,
    /// Final life-cycle status (`Active` | `Suicided` | `Left`, the
    /// `Debug` rendering of `ProcessStatus`).
    pub status: String,
    /// Whether the member reached workload quiescence (budget generated,
    /// no backlog, frontier covering the last decision's recovery hints).
    pub quiesced: bool,
    /// Messages the member submitted.
    pub submitted: u64,
    /// Messages the member processed (own + foreign).
    pub delivered: u64,
    /// Per-origin contiguous processed frontier (`last_processed`).
    pub frontier: Vec<u64>,
    /// Per-origin [`fnv1a_stream`] digest of delivered sequence numbers,
    /// in local delivery order.
    pub order_digest: Vec<u64>,
    /// The member's own check of its delivery log: every declared cause
    /// processed first, every origin's sequence strictly ascending.
    pub ordering_ok: bool,
    /// Specifics when `ordering_ok` is false.
    pub ordering_detail: Option<String>,
}

impl NodeObservation {
    fn is_active(&self) -> bool {
        self.status == "Active"
    }
}

/// End-of-run oracles over a cluster's member reports. Returns every
/// violation found (empty = clean run). Mirrors
/// [`check_final`](crate::oracle::check_final): stall first (agreement is
/// only claimed *at quiescence*), then per-member ordering verdicts, then
/// pairwise uniform agreement over the members that ended `Active`.
pub fn check_cluster(obs: &[NodeObservation]) -> Vec<Violation> {
    let mut violations = Vec::new();
    let laggards: Vec<u16> = obs.iter().filter(|o| !o.quiesced).map(|o| o.me).collect();
    if !laggards.is_empty() {
        violations.push(Violation {
            kind: OracleKind::Stall,
            round: None,
            detail: format!(
                "{} of {} members did not quiesce inside the budget: {:?}",
                laggards.len(),
                obs.len(),
                laggards
            ),
        });
        return violations;
    }
    for o in obs {
        if !o.ordering_ok {
            violations.push(Violation {
                kind: OracleKind::Ordering,
                round: None,
                detail: format!(
                    "p{} reports an inconsistent delivery log: {}",
                    o.me,
                    o.ordering_detail.as_deref().unwrap_or("no detail")
                ),
            });
        }
    }
    let active: Vec<&NodeObservation> = obs.iter().filter(|o| o.is_active()).collect();
    if let Some(first) = active.first() {
        for other in &active[1..] {
            if other.frontier != first.frontier {
                violations.push(Violation {
                    kind: OracleKind::Divergence,
                    round: None,
                    detail: format!(
                        "p{} and p{} ended with different processed frontiers: {:?} vs {:?}",
                        first.me, other.me, first.frontier, other.frontier
                    ),
                });
            } else if other.order_digest != first.order_digest {
                let origin = first
                    .order_digest
                    .iter()
                    .zip(&other.order_digest)
                    .position(|(a, b)| a != b)
                    .unwrap_or(0);
                violations.push(Violation {
                    kind: OracleKind::Atomicity,
                    round: None,
                    detail: format!(
                        "p{} and p{} agree on frontiers but processed different \
                         streams for origin p{origin} (order digests differ)",
                        first.me, other.me
                    ),
                });
            }
        }
    }
    violations
}

/// The multi-group **genuineness** oracle: only a message's destination
/// groups take protocol steps (the group-envelope demux drops every other
/// frame after a header read, before any PDU decode).
///
/// * `misrouted` — frames a harness observed being accepted by an engine
///   other than the envelope's destination group. The `Node` façade makes
///   this structurally impossible, so any nonzero count means the demux
///   itself is broken.
/// * `foreign_frames` — frames that arrived at a node which does not host
///   their destination group. The node dropped them correctly, but their
///   existence means the *routing* layer pushed traffic at a non-member —
///   a non-destination process took a receive step it never should have
///   seen.
pub fn check_genuineness(misrouted: u64, foreign_frames: u64) -> Vec<Violation> {
    let mut violations = Vec::new();
    if misrouted > 0 {
        violations.push(Violation {
            kind: OracleKind::Genuineness,
            round: None,
            detail: format!(
                "{misrouted} frame(s) accepted by an engine other than their \
                 destination group"
            ),
        });
    }
    if foreign_frames > 0 {
        violations.push(Violation {
            kind: OracleKind::Genuineness,
            round: None,
            detail: format!(
                "{foreign_frames} frame(s) routed to nodes that do not host \
                 their destination group"
            ),
        });
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean(me: u16) -> NodeObservation {
        NodeObservation {
            me,
            status: "Active".to_string(),
            quiesced: true,
            submitted: 10,
            delivered: 30,
            frontier: vec![10, 10, 10],
            order_digest: vec![1111, 2222, 3333],
            ordering_ok: true,
            ordering_detail: None,
        }
    }

    #[test]
    fn clean_cluster_has_no_violations() {
        let obs: Vec<_> = (0..3).map(clean).collect();
        assert!(check_cluster(&obs).is_empty());
    }

    #[test]
    fn genuineness_fires_on_either_counter() {
        assert!(check_genuineness(0, 0).is_empty());
        let v = check_genuineness(3, 0);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, OracleKind::Genuineness);
        assert!(
            v[0].detail.contains("3 frame(s) accepted"),
            "{}",
            v[0].detail
        );
        let v = check_genuineness(0, 2);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("routed to nodes"), "{}", v[0].detail);
        assert_eq!(check_genuineness(1, 1).len(), 2);
    }

    #[test]
    fn stall_short_circuits_agreement() {
        let mut obs: Vec<_> = (0..3).map(clean).collect();
        obs[1].quiesced = false;
        obs[2].frontier = vec![9, 9, 9]; // would be divergence…
        let v = check_cluster(&obs);
        assert_eq!(v.len(), 1, "agreement only claimed at quiescence");
        assert_eq!(v[0].kind, OracleKind::Stall);
        assert!(v[0].detail.contains("[1]"), "{}", v[0].detail);
    }

    #[test]
    fn frontier_mismatch_is_divergence() {
        let mut obs: Vec<_> = (0..3).map(clean).collect();
        obs[2].frontier = vec![10, 9, 10];
        let v = check_cluster(&obs);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, OracleKind::Divergence);
        assert!(v[0].detail.contains("p0") && v[0].detail.contains("p2"));
    }

    #[test]
    fn digest_mismatch_with_equal_frontiers_is_atomicity() {
        let mut obs: Vec<_> = (0..3).map(clean).collect();
        obs[1].order_digest = vec![1111, 9999, 3333];
        let v = check_cluster(&obs);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, OracleKind::Atomicity);
        assert!(v[0].detail.contains("origin p1"), "{}", v[0].detail);
    }

    #[test]
    fn non_active_members_are_exempt_from_agreement() {
        let mut obs: Vec<_> = (0..3).map(clean).collect();
        obs[2].status = "Left".to_string();
        obs[2].frontier = vec![3, 3, 3]; // a departed member's valid prefix
        assert!(check_cluster(&obs).is_empty());
    }

    #[test]
    fn local_ordering_verdict_surfaces() {
        let mut obs: Vec<_> = (0..2).map(clean).collect();
        obs[0].ordering_ok = false;
        obs[0].ordering_detail = Some("p0 processed p1#4 before p1#3".to_string());
        let v = check_cluster(&obs);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, OracleKind::Ordering);
        assert!(v[0].detail.contains("p1#4"));
    }

    #[test]
    fn fnv_digest_is_order_sensitive_and_stable() {
        assert_eq!(fnv1a_stream([]), urcgc_types::fnv::FNV64_OFFSET);
        let a = fnv1a_stream([1, 2, 3]);
        let b = fnv1a_stream([1, 3, 2]);
        assert_ne!(a, b, "digest must be order-sensitive");
        assert_eq!(a, fnv1a_stream([1, 2, 3]), "digest must be stable");
    }
}
