//! Budgeted exploration: generate → run → (on violation) shrink.
//!
//! Specs for run `i` are generated from `derive_seed(base_seed, i)` — the
//! sweep runner's seed schedule — so a budget of `R` runs checks the same
//! `R` specs whatever `--jobs` is, and any violation is reported for the
//! lowest-indexed violating run deterministically. Runs execute in waves
//! over the sweep job pool; an optional wall-clock budget is checked
//! between waves.

use std::time::Instant;

use urcgc_bench::sweep::{derive_seed, run_pool};
use urcgc_metrics::Json;

use crate::oracle::Violation;
use crate::run::{run_spec, RunResult};
use crate::shrink::shrink;
use crate::spec::CheckSpec;

/// Exploration budget and scenario shape.
#[derive(Clone, Debug)]
pub struct ExploreOpts {
    /// Base seed of the run schedule.
    pub base_seed: u64,
    /// Run budget.
    pub runs: usize,
    /// Group sizes, cycled run by run.
    pub ns: Vec<usize>,
    /// Per-process message budget ceiling (each spec samples below it).
    pub msgs: u64,
    /// Worker threads for the run fan-out.
    pub jobs: usize,
    /// Optional wall-clock budget in seconds (checked between waves).
    pub secs: Option<f64>,
    /// Candidate-run cap for shrinking.
    pub max_shrink: u32,
    /// Explore the deliberately-broken purge variant (oracle self-test).
    pub broken_purge: bool,
    /// Explore overlay-dissemination specs (relay-targeted crashes,
    /// multi-hop routing) instead of direct n-unicast.
    pub overlay: bool,
    /// Explore the deliberately-broken relay that drops decision forwards
    /// (oracle self-test; implies `overlay`).
    pub broken_relay: bool,
}

impl Default for ExploreOpts {
    fn default() -> ExploreOpts {
        ExploreOpts {
            base_seed: 1,
            runs: 200,
            ns: vec![3, 5],
            msgs: 12,
            jobs: 1,
            secs: None,
            max_shrink: 300,
            broken_purge: false,
            overlay: false,
            broken_relay: false,
        }
    }
}

/// A shrunk, replayable counterexample.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// Index of the violating run in the schedule.
    pub run_index: usize,
    /// The spec as generated.
    pub original: CheckSpec,
    /// The spec after shrinking (what the repro file carries).
    pub shrunk: CheckSpec,
    /// Violations the shrunk spec provokes.
    pub violations: Vec<Violation>,
    /// Candidate runs spent shrinking.
    pub shrink_attempts: u32,
}

/// Outcome of one exploration.
#[derive(Clone, Debug)]
pub struct ExploreOutcome {
    /// Runs actually executed (≤ the budget if a violation or the clock
    /// stopped exploration early).
    pub executed: usize,
    /// Violating runs among those executed.
    pub violating_runs: usize,
    /// The first (lowest-index) counterexample, shrunk.
    pub counterexample: Option<Counterexample>,
    /// Exploration + shrinking wall-clock.
    pub wall_secs: f64,
}

/// The spec of run `i` under `opts` (exposed so a repro can be traced
/// back to its schedule position).
pub fn spec_for_run(opts: &ExploreOpts, i: usize) -> CheckSpec {
    let seed = derive_seed(opts.base_seed, i);
    let n = opts.ns[i % opts.ns.len()];
    if opts.overlay || opts.broken_relay {
        CheckSpec::generate_overlay(seed, n, opts.msgs, opts.broken_relay)
    } else {
        CheckSpec::generate(seed, n, opts.msgs, opts.broken_purge)
    }
}

/// Runs the exploration loop. Stops at the run budget, the wall-clock
/// budget, or the first violating wave (whose lowest-indexed violation is
/// shrunk into the counterexample).
pub fn explore(opts: &ExploreOpts) -> ExploreOutcome {
    assert!(!opts.ns.is_empty(), "need at least one group size");
    let started = Instant::now();
    let wave = (opts.jobs.max(1) * 4).min(64);
    let mut executed = 0usize;
    let mut violating_runs = 0usize;
    let mut counterexample = None;

    while executed < opts.runs && counterexample.is_none() {
        if let Some(secs) = opts.secs {
            if started.elapsed().as_secs_f64() >= secs {
                break;
            }
        }
        let count = wave.min(opts.runs - executed);
        let base = executed;
        let results: Vec<(CheckSpec, RunResult)> = run_pool(count, opts.jobs, |i| {
            let spec = spec_for_run(opts, base + i);
            let result = run_spec(&spec);
            (spec, result)
        });
        executed += count;
        for (i, (spec, result)) in results.into_iter().enumerate() {
            if !result.violated() {
                continue;
            }
            violating_runs += 1;
            if counterexample.is_none() {
                let (shrunk, violations, stats) = shrink(&spec, opts.max_shrink);
                counterexample = Some(Counterexample {
                    run_index: base + i,
                    original: spec,
                    shrunk,
                    violations,
                    shrink_attempts: stats.attempts,
                });
            }
        }
    }
    ExploreOutcome {
        executed,
        violating_runs,
        counterexample,
        wall_secs: started.elapsed().as_secs_f64(),
    }
}

/// Builds the `urcgc-check/1` summary document.
pub fn summary_doc(opts: &ExploreOpts, outcome: &ExploreOutcome, repro_path: Option<&str>) -> Json {
    let ns: Vec<Json> = opts.ns.iter().map(|&n| Json::Num(n as f64)).collect();
    let counterexample = match &outcome.counterexample {
        None => Json::Null,
        Some(cx) => {
            let violations: Vec<Json> = cx
                .violations
                .iter()
                .map(|v| {
                    Json::obj()
                        .with("kind", v.kind.label())
                        .with(
                            "round",
                            match v.round {
                                Some(r) => Json::Num(r as f64),
                                None => Json::Null,
                            },
                        )
                        .with("detail", v.detail.as_str())
                })
                .collect();
            Json::obj()
                .with("run_index", cx.run_index)
                .with("seed", cx.shrunk.seed.to_string())
                .with("n", cx.shrunk.n)
                .with("shrink_attempts", cx.shrink_attempts)
                .with("violations", Json::Arr(violations))
                .with(
                    "repro_path",
                    match repro_path {
                        Some(p) => Json::Str(p.to_string()),
                        None => Json::Null,
                    },
                )
        }
    };
    Json::obj()
        .with("schema", "urcgc-check/1")
        .with("base_seed", opts.base_seed.to_string())
        .with("runs_requested", opts.runs)
        .with("runs_executed", outcome.executed)
        .with("ns", Json::Arr(ns))
        .with("msgs", opts.msgs)
        .with("jobs", opts.jobs)
        .with("broken_purge", opts.broken_purge)
        .with("overlay", opts.overlay || opts.broken_relay)
        .with("broken_relay", opts.broken_relay)
        .with("violating_runs", outcome.violating_runs)
        .with("wall_secs", outcome.wall_secs)
        .with("counterexample", counterexample)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_exploration_of_the_real_protocol_is_clean() {
        let opts = ExploreOpts {
            runs: 20,
            msgs: 8,
            jobs: 2,
            ..ExploreOpts::default()
        };
        let outcome = explore(&opts);
        assert_eq!(outcome.executed, 20);
        assert_eq!(outcome.violating_runs, 0);
        assert!(outcome.counterexample.is_none());
        let doc = summary_doc(&opts, &outcome, None);
        let text = doc.render_pretty();
        assert!(text.contains("urcgc-check/1"));
        urcgc_metrics::json::parse(&text).expect("summary parses");
    }

    #[test]
    fn small_overlay_exploration_is_clean() {
        let opts = ExploreOpts {
            runs: 12,
            msgs: 6,
            jobs: 2,
            overlay: true,
            ..ExploreOpts::default()
        };
        let outcome = explore(&opts);
        assert_eq!(outcome.executed, 12);
        assert_eq!(outcome.violating_runs, 0);
        assert!(outcome.counterexample.is_none());
        let text = summary_doc(&opts, &outcome, None).render_pretty();
        assert!(text.contains("\"overlay\": true"));
    }

    #[test]
    fn exploration_is_deterministic_across_job_counts() {
        let run = |jobs: usize| {
            let opts = ExploreOpts {
                runs: 12,
                msgs: 6,
                jobs,
                ..ExploreOpts::default()
            };
            let outcome = explore(&opts);
            (outcome.executed, outcome.violating_runs)
        };
        assert_eq!(run(1), run(4));
    }
}
