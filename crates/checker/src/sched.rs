//! PCT-style schedule adversary realizing a [`SchedSpec`].

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use urcgc_simnet::{Adversary, FrameView};
use urcgc_types::Round;

use crate::spec::SchedSpec;

/// A randomized delivery-schedule adversary: with probability
/// `shuffle_permille`‰ per round it Fisher-Yates-shuffles the round's
/// arrival order, and each arriving frame is dropped with probability
/// `drop_permille`‰ up to a hard `max_drops` cap. Deterministic given the
/// spec — it owns its RNG and never touches the engine's fault stream, so
/// the same spec replays identically on both simulation engines.
pub struct ScheduleAdversary {
    rng: ChaCha8Rng,
    shuffle_permille: u32,
    drop_permille: u32,
    drops_left: u32,
}

impl ScheduleAdversary {
    /// Builds the adversary for one run of `spec`.
    pub fn new(spec: &SchedSpec) -> ScheduleAdversary {
        ScheduleAdversary {
            rng: ChaCha8Rng::seed_from_u64(spec.seed),
            shuffle_permille: spec.shuffle_permille,
            drop_permille: spec.drop_permille,
            drops_left: spec.max_drops,
        }
    }
}

impl Adversary for ScheduleAdversary {
    fn reorder(&mut self, _round: Round, frames: &[FrameView]) -> Option<Vec<usize>> {
        if frames.len() < 2 || !self.rng.gen_bool(self.shuffle_permille as f64 / 1000.0) {
            return None;
        }
        let mut perm: Vec<usize> = (0..frames.len()).collect();
        for i in (1..perm.len()).rev() {
            perm.swap(i, self.rng.gen_range(0..i + 1));
        }
        Some(perm)
    }

    fn drop_arrival(&mut self, _round: Round, _frame: &FrameView) -> bool {
        if self.drops_left == 0 || !self.rng.gen_bool(self.drop_permille as f64 / 1000.0) {
            return false;
        }
        self.drops_left -= 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_cap_is_respected() {
        let spec = SchedSpec {
            seed: 9,
            shuffle_permille: 0,
            drop_permille: 1000,
            max_drops: 3,
        };
        let mut adv = ScheduleAdversary::new(&spec);
        let frame = FrameView {
            from: urcgc_types::ProcessId(0),
            to: urcgc_types::ProcessId(1),
            len: 8,
        };
        let dropped = (0..100)
            .filter(|_| adv.drop_arrival(Round(1), &frame))
            .count();
        assert_eq!(dropped, 3);
    }

    #[test]
    fn same_spec_gives_same_decisions() {
        let spec = SchedSpec {
            seed: 77,
            shuffle_permille: 500,
            drop_permille: 100,
            max_drops: 5,
        };
        let frames: Vec<FrameView> = (0..6)
            .map(|i| FrameView {
                from: urcgc_types::ProcessId(i),
                to: urcgc_types::ProcessId((i + 1) % 6),
                len: 4,
            })
            .collect();
        let mut a = ScheduleAdversary::new(&spec);
        let mut b = ScheduleAdversary::new(&spec);
        for round in 0..50 {
            assert_eq!(
                a.reorder(Round(round), &frames),
                b.reorder(Round(round), &frames)
            );
            assert_eq!(
                a.drop_arrival(Round(round), &frames[0]),
                b.drop_arrival(Round(round), &frames[0])
            );
        }
    }
}
