//! Greedy counterexample shrinking.
//!
//! Given a violating [`CheckSpec`], repeatedly tries simpler variants —
//! fewer messages, fewer faults, weaker schedule perturbation — keeping a
//! variant whenever it still violates *some* oracle. The result is
//! locally minimal: no single simplification step preserves the failure.
//! Every candidate re-runs the full deterministic check, so the shrunk
//! spec is replayable by construction.

use crate::oracle::Violation;
use crate::run::run_spec;
use crate::spec::{CheckSpec, SchedSpec};

/// Shrinking effort accounting.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShrinkStats {
    /// Candidate runs executed.
    pub attempts: u32,
    /// Simplification steps that preserved the violation.
    pub accepted: u32,
}

/// Single-step simplifications of `spec`, most-impactful first.
fn candidates(spec: &CheckSpec) -> Vec<CheckSpec> {
    let mut out = Vec::new();
    let mut push = |f: &dyn Fn(&mut CheckSpec)| {
        let mut c = spec.clone();
        f(&mut c);
        if c != *spec {
            out.push(c);
        }
    };
    push(&|c| c.msgs = (c.msgs / 2).max(2));
    push(&|c| c.msgs = (c.msgs - 1).max(2));
    // Dropping the overlay tells the reader the failure is not a relay
    // artifact. Never dropped when it carries the injected broken-relay
    // knob — like `broken_purge`, the deliberate bug must survive
    // shrinking.
    if spec.overlay.as_ref().is_some_and(|ov| !ov.drop_decisions) {
        push(&|c| c.overlay = None);
    }
    for i in 0..spec.plan.crashes.len() {
        push(&|c| {
            c.plan.crashes.remove(i);
        });
    }
    push(&|c| c.plan.coordinator_crashes = None);
    for i in 0..spec.plan.handoff_cuts.len() {
        push(&|c| {
            c.plan.handoff_cuts.remove(i);
        });
    }
    for i in 0..spec.plan.cuts.len() {
        push(&|c| {
            c.plan.cuts.remove(i);
        });
    }
    push(&|c| c.plan.slow_sender = None);
    push(&|c| c.plan.send_omission = 0.0);
    push(&|c| c.plan.recv_omission = 0.0);
    push(&|c| c.sched.shuffle_permille = 0);
    push(&|c| {
        c.sched.drop_permille = 0;
        c.sched.max_drops = 0;
    });
    push(&|c| c.sched = SchedSpec::none());
    out
}

/// Shrinks a violating spec. Returns the minimal spec, the violations it
/// still provokes, and the effort spent. `max_attempts` bounds the total
/// candidate runs (shrinking is best-effort; the original spec is already
/// a valid repro).
pub fn shrink(spec: &CheckSpec, max_attempts: u32) -> (CheckSpec, Vec<Violation>, ShrinkStats) {
    let mut current = spec.clone();
    let mut current_violations = run_spec(&current).violations;
    assert!(
        !current_violations.is_empty(),
        "shrink called on a passing spec"
    );
    let mut stats = ShrinkStats::default();
    'outer: loop {
        for candidate in candidates(&current) {
            if stats.attempts >= max_attempts {
                break 'outer;
            }
            stats.attempts += 1;
            let result = run_spec(&candidate);
            if result.violated() {
                current = candidate;
                current_violations = result.violations;
                stats.accepted += 1;
                continue 'outer; // restart from the strongest reductions
            }
        }
        break;
    }
    (current, current_violations, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_broken_purge_counterexample_to_a_simpler_spec() {
        // Find a violating seed first (same search as the run tests).
        let original = (0..40u64)
            .map(|seed| CheckSpec::generate(seed, 5, 10, true))
            .find(|spec| run_spec(spec).violated())
            .expect("no violating seed found");
        let (shrunk, violations, stats) = shrink(&original, 150);
        assert!(!violations.is_empty());
        assert!(run_spec(&shrunk).violated(), "shrunk spec replays");
        assert!(stats.attempts > 0);
        // The shrunk spec is no more complex than the original on every
        // axis the candidates reduce.
        assert!(shrunk.msgs <= original.msgs);
        assert!(shrunk.plan.crashes.len() <= original.plan.crashes.len());
        assert!(shrunk.plan.cuts.len() <= original.plan.cuts.len());
    }

    #[test]
    fn shrinks_broken_relay_counterexample_and_keeps_the_knob() {
        let original = (0..40u64)
            .map(|seed| CheckSpec::generate_overlay(seed, 9, 16, true))
            .find(|spec| run_spec(spec).violated())
            .expect("no violating broken-relay seed found");
        let (shrunk, violations, stats) = shrink(&original, 150);
        assert!(!violations.is_empty());
        assert!(run_spec(&shrunk).violated(), "shrunk spec replays");
        assert!(stats.attempts > 0);
        // The injected bug is the point of the repro: shrinking must not
        // simplify it away.
        assert!(shrunk.overlay.as_ref().is_some_and(|ov| ov.drop_decisions));
        assert!(shrunk.msgs <= original.msgs);
    }
}
