//! Replayable counterexample documents (`urcgc-repro/1`).
//!
//! A repro file carries one shrunk [`CheckSpec`] plus the violations it
//! provokes. `checker --replay FILE` parses the spec, re-runs it, and
//! reports whether the violation still reproduces — the violations array
//! is informational (what the original run saw), the spec is normative.

use urcgc_metrics::Json;

use crate::oracle::Violation;
use crate::spec::CheckSpec;

/// Builds a `urcgc-repro/1` document for a (shrunk) violating spec.
pub fn repro_doc(spec: &CheckSpec, violations: &[Violation]) -> Json {
    let violations: Vec<Json> = violations
        .iter()
        .map(|v| {
            Json::obj()
                .with("kind", v.kind.label())
                .with(
                    "round",
                    match v.round {
                        Some(r) => Json::Num(r as f64),
                        None => Json::Null,
                    },
                )
                .with("detail", v.detail.as_str())
        })
        .collect();
    Json::obj()
        .with("schema", "urcgc-repro/1")
        .with("spec", spec.to_json())
        .with("violations", Json::Arr(violations))
}

/// Parses a `urcgc-repro/1` document back into its spec.
pub fn parse_repro(text: &str) -> Result<CheckSpec, String> {
    let doc = urcgc_metrics::json::parse(text)?;
    match doc.get("schema").and_then(Json::as_str) {
        Some("urcgc-repro/1") => {}
        other => return Err(format!("not a urcgc-repro/1 document (schema {other:?})")),
    }
    CheckSpec::from_json(doc.get("spec").ok_or("repro missing \"spec\"")?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::OracleKind;

    #[test]
    fn repro_documents_round_trip() {
        let spec = CheckSpec::generate(11, 3, 8, true);
        let violations = vec![Violation {
            kind: OracleKind::StabilitySafety,
            round: Some(42),
            detail: "p0 purged too far".to_string(),
        }];
        let rendered = repro_doc(&spec, &violations).render_pretty();
        assert!(rendered.contains("urcgc-repro/1"));
        assert!(rendered.contains("stability_safety"));
        assert_eq!(parse_repro(&rendered).expect("parses"), spec);
        assert!(parse_repro("{\"schema\":\"urcgc-sweep/1\"}").is_err());
    }
}
