//! Check specifications: the replayable genome of one adversarial run.
//!
//! A [`CheckSpec`] is everything needed to reproduce a run bit for bit:
//! the engine seed, the group size and per-process budget, a fault-plan
//! genome ([`PlanSpec`]) rebuilt through [`FaultPlan`]'s own builders, and
//! a schedule-perturbation genome ([`SchedSpec`]). Generation samples only
//! *in-model* faults — crash counts within the resilience bound
//! `t = (n−1)/2`, a config sized for the sampled coordinator-crash burst,
//! modest omission rates, bounded healing cuts, no partitions — so any
//! oracle violation it provokes is a protocol bug, not an out-of-model
//! scenario.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use urcgc_metrics::Json;
use urcgc_simnet::FaultPlan;
use urcgc_types::{ProcessId, ProtocolConfig, Round, Subrun};

/// Fault-plan genome: the arguments to replay through [`FaultPlan`]'s
/// builders. Plain data (no `FaultPlan` serialization needed).
#[derive(Clone, Debug, PartialEq)]
pub struct PlanSpec {
    /// Individual fail-stop crashes: `(process, round)`.
    pub crashes: Vec<(u16, u64)>,
    /// A burst of `f` consecutive coordinator crashes starting at the
    /// given subrun (the Figure 5 scenario shape).
    pub coordinator_crashes: Option<(u64, u32)>,
    /// I.i.d. per-frame send-omission probability.
    pub send_omission: f64,
    /// I.i.d. per-frame receive-omission probability.
    pub recv_omission: f64,
    /// One slow sender: `(process, extra rounds of delay)`.
    pub slow_sender: Option<(u16, u64)>,
    /// Timed directional link cuts: `(from, to, from_round, to_round)`.
    pub cuts: Vec<(u16, u16, u64, u64)>,
    /// Targeted cuts around a coordinator handoff: `(subrun, member)`
    /// severs member→coordinator during the request round and
    /// coordinator→member during the decision round of that subrun.
    pub handoff_cuts: Vec<(u64, u16)>,
}

impl PlanSpec {
    /// A fault-free plan.
    pub fn none() -> PlanSpec {
        PlanSpec {
            crashes: Vec::new(),
            coordinator_crashes: None,
            send_omission: 0.0,
            recv_omission: 0.0,
            slow_sender: None,
            cuts: Vec::new(),
            handoff_cuts: Vec::new(),
        }
    }

    /// Realizes the genome as a [`FaultPlan`] for a group of `n`.
    pub fn to_fault_plan(&self, n: usize) -> FaultPlan {
        let mut plan = FaultPlan::none()
            .send_omissions(self.send_omission)
            .recv_omissions(self.recv_omission);
        for &(p, r) in &self.crashes {
            plan = plan.crash_at(ProcessId(p), Round(r));
        }
        if let Some((first_subrun, f)) = self.coordinator_crashes {
            plan = plan.consecutive_coordinator_crashes(first_subrun, f, n);
        }
        if let Some((p, extra)) = self.slow_sender {
            plan = plan.slow_sender(ProcessId(p), extra);
        }
        for &(from, to, from_round, to_round) in &self.cuts {
            plan = plan.cut_link_during(
                ProcessId(from),
                ProcessId(to),
                Round(from_round),
                Round(to_round),
            );
        }
        for &(s, member) in &self.handoff_cuts {
            let subrun = Subrun(s);
            let coord = ProcessId::coordinator_for(subrun, n);
            let member = ProcessId(member);
            if member == coord {
                continue;
            }
            // Inbound contribution lost in the request round, outbound
            // decision lost in the decision round: the handoff shapes the
            // detection/recovery machinery has to ride out.
            plan = plan
                .cut_link_during(
                    member,
                    coord,
                    subrun.request_round(),
                    subrun.decision_round(),
                )
                .cut_link_during(
                    coord,
                    member,
                    subrun.decision_round(),
                    Round(subrun.decision_round().0 + 1),
                );
        }
        plan
    }

    /// Number of distinct processes this genome crashes.
    pub fn crashed_processes(&self, n: usize) -> usize {
        self.to_fault_plan(n).crash_count()
    }
}

/// Schedule-perturbation genome, realized as a
/// [`ScheduleAdversary`](crate::sched::ScheduleAdversary).
#[derive(Clone, Debug, PartialEq)]
pub struct SchedSpec {
    /// Seed of the adversary's own RNG (never the engine's).
    pub seed: u64,
    /// Per-round probability (‰) of shuffling the arrival order.
    pub shuffle_permille: u32,
    /// Per-frame probability (‰) of a targeted drop.
    pub drop_permille: u32,
    /// Hard cap on total drops (keeps the run in-model: a bounded number
    /// of extra omissions, not a permanent link failure).
    pub max_drops: u32,
}

impl SchedSpec {
    /// The identity perturbation.
    pub fn none() -> SchedSpec {
        SchedSpec {
            seed: 0,
            shuffle_permille: 0,
            drop_permille: 0,
            max_drops: 0,
        }
    }

    /// Whether this genome perturbs anything at all.
    pub fn is_noop(&self) -> bool {
        self.shuffle_permille == 0 && (self.drop_permille == 0 || self.max_drops == 0)
    }
}

/// Everything needed to replay one adversarial run.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckSpec {
    /// Engine/workload seed (drives the fault RNG and per-node workload
    /// RNGs exactly as in every other harness run).
    pub seed: u64,
    /// Group cardinality.
    pub n: usize,
    /// Per-process message budget.
    pub msgs: u64,
    /// Runs the deliberately-broken purge-before-stability protocol
    /// variant (oracle self-test; see
    /// `ProtocolConfig::with_broken_purge_before_stability`).
    pub broken_purge: bool,
    /// Fault-plan genome.
    pub plan: PlanSpec,
    /// Schedule-perturbation genome.
    pub sched: SchedSpec,
}

impl CheckSpec {
    /// Samples a spec from `seed`. All draws come from one ChaCha8 stream,
    /// so the spec is a pure function of `(seed, n, max_msgs,
    /// broken_purge)`.
    pub fn generate(seed: u64, n: usize, max_msgs: u64, broken_purge: bool) -> CheckSpec {
        assert!(n >= 2, "checker needs a group of at least 2");
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xC0DE_C0DE_C0DE_C0DE);
        let msgs = rng.gen_range(2..max_msgs.max(3));
        let horizon = msgs * 2 + 24; // rounds within which faults land

        let resilience = (n - 1) / 2;
        let mut plan = PlanSpec::none();
        // Either a coordinator-crash burst or individual crashes — mixing
        // the two could exceed the resilience bound when a burst coincides
        // with an individually-crashed process.
        if resilience > 0 && rng.gen_bool(0.25) {
            let f = rng.gen_range(1..resilience.min(2) as u32 + 1);
            plan.coordinator_crashes = Some((rng.gen_range(0..6), f));
        } else if resilience > 0 {
            let count = rng.gen_range(0..resilience + 1);
            let mut victims: Vec<u16> = (0..n as u16).collect();
            for _ in 0..count {
                let at = rng.gen_range(0..victims.len());
                let victim = victims.swap_remove(at);
                plan.crashes.push((victim, rng.gen_range(2..horizon)));
            }
        }
        if rng.gen_bool(0.5) {
            plan.send_omission = rng.gen_range(0.0..0.02);
        }
        if rng.gen_bool(0.5) {
            plan.recv_omission = rng.gen_range(0.0..0.02);
        }
        if rng.gen_bool(1.0 / 3.0) {
            plan.slow_sender = Some((rng.gen_range(0..n as u16), rng.gen_range(1..3)));
        }
        for _ in 0..rng.gen_range(0..3usize) {
            let from = rng.gen_range(0..n as u16);
            let to = rng.gen_range(0..n as u16);
            if from == to {
                continue;
            }
            let start = rng.gen_range(0..horizon);
            plan.cuts
                .push((from, to, start, start + rng.gen_range(1..8)));
        }
        for _ in 0..rng.gen_range(0..3usize) {
            plan.handoff_cuts
                .push((rng.gen_range(0..8), rng.gen_range(0..n as u16)));
        }

        let sched = SchedSpec {
            seed: rng.gen(),
            shuffle_permille: rng.gen_range(0..1001),
            drop_permille: if rng.gen_bool(0.5) {
                rng.gen_range(1..40)
            } else {
                0
            },
            max_drops: rng.gen_range(0..7),
        };

        CheckSpec {
            seed,
            n,
            msgs,
            broken_purge,
            plan,
            sched,
        }
    }

    /// The protocol configuration this spec runs under: paper defaults
    /// with the `f` allowance sized to the sampled coordinator-crash
    /// burst (so `R > 2K + f` holds for the scenario by construction).
    pub fn config(&self) -> ProtocolConfig {
        let f = self
            .plan
            .coordinator_crashes
            .map(|(_, f)| f)
            .unwrap_or(1)
            .max(1);
        let cfg = ProtocolConfig::new(self.n).with_f_allowance(f);
        if self.broken_purge {
            cfg.with_broken_purge_before_stability()
        } else {
            cfg
        }
    }

    /// Round budget: generous enough that the stall oracle only fires on
    /// genuine non-termination, not a slow-but-progressing run.
    pub fn max_rounds(&self) -> u64 {
        self.msgs * 40 + 4_000
    }

    /// Serializes the spec (the `spec` member of a `urcgc-repro/1`
    /// document). Seeds render as decimal strings — u64 does not round
    /// through f64.
    pub fn to_json(&self) -> Json {
        let crashes: Vec<Json> = self
            .plan
            .crashes
            .iter()
            .map(|&(p, r)| Json::obj().with("process", u64::from(p)).with("round", r))
            .collect();
        let cuts: Vec<Json> = self
            .plan
            .cuts
            .iter()
            .map(|&(from, to, a, b)| {
                Json::obj()
                    .with("from", u64::from(from))
                    .with("to", u64::from(to))
                    .with("from_round", a)
                    .with("to_round", b)
            })
            .collect();
        let handoffs: Vec<Json> = self
            .plan
            .handoff_cuts
            .iter()
            .map(|&(s, m)| Json::obj().with("subrun", s).with("member", u64::from(m)))
            .collect();
        let mut plan = Json::obj()
            .with("crashes", Json::Arr(crashes))
            .with("send_omission", self.plan.send_omission)
            .with("recv_omission", self.plan.recv_omission)
            .with("cuts", Json::Arr(cuts))
            .with("handoff_cuts", Json::Arr(handoffs));
        match self.plan.coordinator_crashes {
            Some((s, f)) => plan.set(
                "coordinator_crashes",
                Json::obj().with("first_subrun", s).with("f", f),
            ),
            None => plan.set("coordinator_crashes", Json::Null),
        }
        match self.plan.slow_sender {
            Some((p, extra)) => plan.set(
                "slow_sender",
                Json::obj()
                    .with("process", u64::from(p))
                    .with("extra_rounds", extra),
            ),
            None => plan.set("slow_sender", Json::Null),
        }
        Json::obj()
            .with("seed", self.seed.to_string())
            .with("n", self.n)
            .with("msgs", self.msgs)
            .with("broken_purge", self.broken_purge)
            .with("plan", plan)
            .with(
                "sched",
                Json::obj()
                    .with("seed", self.sched.seed.to_string())
                    .with("shuffle_permille", self.sched.shuffle_permille)
                    .with("drop_permille", self.sched.drop_permille)
                    .with("max_drops", self.sched.max_drops),
            )
    }

    /// Parses a spec previously produced by [`CheckSpec::to_json`].
    pub fn from_json(doc: &Json) -> Result<CheckSpec, String> {
        let plan_doc = doc.get("plan").ok_or("spec missing \"plan\"")?;
        let sched_doc = doc.get("sched").ok_or("spec missing \"sched\"")?;
        let mut plan = PlanSpec::none();
        for c in req_items(plan_doc, "crashes")? {
            plan.crashes
                .push((num(c, "process")? as u16, num(c, "round")? as u64));
        }
        plan.send_omission = num(plan_doc, "send_omission")?;
        plan.recv_omission = num(plan_doc, "recv_omission")?;
        for c in req_items(plan_doc, "cuts")? {
            plan.cuts.push((
                num(c, "from")? as u16,
                num(c, "to")? as u16,
                num(c, "from_round")? as u64,
                num(c, "to_round")? as u64,
            ));
        }
        for c in req_items(plan_doc, "handoff_cuts")? {
            plan.handoff_cuts
                .push((num(c, "subrun")? as u64, num(c, "member")? as u16));
        }
        if let Some(cc) = plan_doc.get("coordinator_crashes") {
            if *cc != Json::Null {
                plan.coordinator_crashes =
                    Some((num(cc, "first_subrun")? as u64, num(cc, "f")? as u32));
            }
        }
        if let Some(ss) = plan_doc.get("slow_sender") {
            if *ss != Json::Null {
                plan.slow_sender =
                    Some((num(ss, "process")? as u16, num(ss, "extra_rounds")? as u64));
            }
        }
        Ok(CheckSpec {
            seed: seed_str(doc, "seed")?,
            n: num(doc, "n")? as usize,
            msgs: num(doc, "msgs")? as u64,
            broken_purge: matches!(doc.get("broken_purge"), Some(Json::Bool(true))),
            plan,
            sched: SchedSpec {
                seed: seed_str(sched_doc, "seed")?,
                shuffle_permille: num(sched_doc, "shuffle_permille")? as u32,
                drop_permille: num(sched_doc, "drop_permille")? as u32,
                max_drops: num(sched_doc, "max_drops")? as u32,
            },
        })
    }
}

fn num(doc: &Json, key: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn seed_str(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing seed string {key:?}"))?
        .parse()
        .map_err(|e| format!("bad seed {key:?}: {e}"))
}

fn req_items<'a>(doc: &'a Json, key: &str) -> Result<&'a [Json], String> {
    doc.get(key)
        .and_then(Json::items)
        .ok_or_else(|| format!("missing array field {key:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_in_model() {
        for seed in 0..200u64 {
            for n in [3usize, 5] {
                let a = CheckSpec::generate(seed, n, 12, false);
                let b = CheckSpec::generate(seed, n, 12, false);
                assert_eq!(a, b, "seed {seed} n {n}");
                a.config().validate().expect("generated config is valid");
                assert!(
                    a.plan.crashed_processes(n) <= (n - 1) / 2,
                    "seed {seed} n {n}: crashes exceed the resilience bound"
                );
                assert!((2..12).contains(&a.msgs));
            }
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        for seed in [0u64, 7, 42, u64::MAX - 3] {
            let spec = CheckSpec::generate(seed, 5, 10, seed % 2 == 0);
            let doc = spec.to_json();
            let parsed = urcgc_metrics::json::parse(&doc.render_pretty()).expect("parses");
            assert_eq!(CheckSpec::from_json(&parsed).expect("decodes"), spec);
        }
    }

    #[test]
    fn handoff_cuts_target_the_coordinator() {
        let mut spec = CheckSpec::generate(3, 5, 8, false);
        spec.plan = PlanSpec::none();
        spec.plan.handoff_cuts = vec![(2, 0)];
        // Subrun 2's coordinator in n=5 is p2; the member side is p0.
        let plan = spec.plan.to_fault_plan(5);
        assert!(plan.link_cut_at(ProcessId(0), ProcessId(2), Round(4)));
        assert!(plan.link_cut_at(ProcessId(2), ProcessId(0), Round(5)));
        assert!(!plan.link_cut_at(ProcessId(0), ProcessId(2), Round(5)));
        // A handoff cut naming the coordinator itself is skipped.
        spec.plan.handoff_cuts = vec![(2, 2)];
        let plan = spec.plan.to_fault_plan(5);
        assert!(!plan.link_cut_at(ProcessId(2), ProcessId(2), Round(4)));
    }
}
