//! Check specifications: the replayable genome of one adversarial run.
//!
//! A [`CheckSpec`] is everything needed to reproduce a run bit for bit:
//! the engine seed, the group size and per-process budget, a fault-plan
//! genome ([`PlanSpec`]) rebuilt through [`FaultPlan`]'s own builders, and
//! a schedule-perturbation genome ([`SchedSpec`]). Generation samples only
//! *in-model* faults — crash counts within the resilience bound
//! `t = (n−1)/2`, a config sized for the sampled coordinator-crash burst,
//! modest omission rates, bounded healing cuts, no partitions — so any
//! oracle violation it provokes is a protocol bug, not an out-of-model
//! scenario.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use urcgc_metrics::Json;
use urcgc_overlay::{OverlayConfig, OverlayMode, Plan};
use urcgc_simnet::FaultPlan;
use urcgc_types::{ProcessId, ProtocolConfig, Round, Subrun};

/// Fault-plan genome: the arguments to replay through [`FaultPlan`]'s
/// builders. Plain data (no `FaultPlan` serialization needed).
#[derive(Clone, Debug, PartialEq)]
pub struct PlanSpec {
    /// Individual fail-stop crashes: `(process, round)`.
    pub crashes: Vec<(u16, u64)>,
    /// A burst of `f` consecutive coordinator crashes starting at the
    /// given subrun (the Figure 5 scenario shape).
    pub coordinator_crashes: Option<(u64, u32)>,
    /// I.i.d. per-frame send-omission probability.
    pub send_omission: f64,
    /// I.i.d. per-frame receive-omission probability.
    pub recv_omission: f64,
    /// One slow sender: `(process, extra rounds of delay)`.
    pub slow_sender: Option<(u16, u64)>,
    /// Timed directional link cuts: `(from, to, from_round, to_round)`.
    pub cuts: Vec<(u16, u16, u64, u64)>,
    /// Targeted cuts around a coordinator handoff: `(subrun, member)`
    /// severs member→coordinator during the request round and
    /// coordinator→member during the decision round of that subrun.
    pub handoff_cuts: Vec<(u64, u16)>,
}

impl PlanSpec {
    /// A fault-free plan.
    pub fn none() -> PlanSpec {
        PlanSpec {
            crashes: Vec::new(),
            coordinator_crashes: None,
            send_omission: 0.0,
            recv_omission: 0.0,
            slow_sender: None,
            cuts: Vec::new(),
            handoff_cuts: Vec::new(),
        }
    }

    /// Realizes the genome as a [`FaultPlan`] for a group of `n`.
    pub fn to_fault_plan(&self, n: usize) -> FaultPlan {
        let mut plan = FaultPlan::none()
            .send_omissions(self.send_omission)
            .recv_omissions(self.recv_omission);
        for &(p, r) in &self.crashes {
            plan = plan.crash_at(ProcessId(p), Round(r));
        }
        if let Some((first_subrun, f)) = self.coordinator_crashes {
            plan = plan.consecutive_coordinator_crashes(first_subrun, f, n);
        }
        if let Some((p, extra)) = self.slow_sender {
            plan = plan.slow_sender(ProcessId(p), extra);
        }
        for &(from, to, from_round, to_round) in &self.cuts {
            plan = plan.cut_link_during(
                ProcessId(from),
                ProcessId(to),
                Round(from_round),
                Round(to_round),
            );
        }
        for &(s, member) in &self.handoff_cuts {
            let subrun = Subrun(s);
            let coord = ProcessId::coordinator_for(subrun, n);
            let member = ProcessId(member);
            if member == coord {
                continue;
            }
            // Inbound contribution lost in the request round, outbound
            // decision lost in the decision round: the handoff shapes the
            // detection/recovery machinery has to ride out.
            plan = plan
                .cut_link_during(
                    member,
                    coord,
                    subrun.request_round(),
                    subrun.decision_round(),
                )
                .cut_link_during(
                    coord,
                    member,
                    subrun.decision_round(),
                    Round(subrun.decision_round().0 + 1),
                );
        }
        plan
    }

    /// Number of distinct processes this genome crashes.
    pub fn crashed_processes(&self, n: usize) -> usize {
        self.to_fault_plan(n).crash_count()
    }
}

/// Overlay-dissemination genome: when present, every process routes its
/// `data`/`decision` broadcasts over the shared overlay instead of direct
/// n-unicast (see [`urcgc_overlay`]), so the oracles run against multi-hop
/// relay semantics — relay crashes, re-parenting, recovery through the
/// gap.
#[derive(Clone, Debug, PartialEq)]
pub struct OverlaySpec {
    /// Dissemination strategy.
    pub mode: OverlayMode,
    /// Fan-out bound (tree arity / gossip targets).
    pub degree: usize,
    /// Overlay permutation seed (group-shared, like the protocol config).
    pub seed: u64,
    /// Runs the deliberately-broken relay that delivers decision frames
    /// locally but never forwards them (oracle self-test; see
    /// `OverlayConfig::with_drop_decision_forwards`).
    pub drop_decisions: bool,
}

impl OverlaySpec {
    /// Realizes the genome as an [`OverlayConfig`].
    pub fn to_config(&self) -> OverlayConfig {
        let cfg = match self.mode {
            OverlayMode::Tree => OverlayConfig::tree(self.degree, self.seed),
            OverlayMode::Gossip => OverlayConfig::gossip(self.degree, self.seed),
        };
        if self.drop_decisions {
            cfg.with_drop_decision_forwards()
        } else {
            cfg
        }
    }
}

/// Schedule-perturbation genome, realized as a
/// [`ScheduleAdversary`](crate::sched::ScheduleAdversary).
#[derive(Clone, Debug, PartialEq)]
pub struct SchedSpec {
    /// Seed of the adversary's own RNG (never the engine's).
    pub seed: u64,
    /// Per-round probability (‰) of shuffling the arrival order.
    pub shuffle_permille: u32,
    /// Per-frame probability (‰) of a targeted drop.
    pub drop_permille: u32,
    /// Hard cap on total drops (keeps the run in-model: a bounded number
    /// of extra omissions, not a permanent link failure).
    pub max_drops: u32,
}

impl SchedSpec {
    /// The identity perturbation.
    pub fn none() -> SchedSpec {
        SchedSpec {
            seed: 0,
            shuffle_permille: 0,
            drop_permille: 0,
            max_drops: 0,
        }
    }

    /// Whether this genome perturbs anything at all.
    pub fn is_noop(&self) -> bool {
        self.shuffle_permille == 0 && (self.drop_permille == 0 || self.max_drops == 0)
    }
}

/// Everything needed to replay one adversarial run.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckSpec {
    /// Engine/workload seed (drives the fault RNG and per-node workload
    /// RNGs exactly as in every other harness run).
    pub seed: u64,
    /// Group cardinality.
    pub n: usize,
    /// Per-process message budget.
    pub msgs: u64,
    /// Runs the deliberately-broken purge-before-stability protocol
    /// variant (oracle self-test; see
    /// `ProtocolConfig::with_broken_purge_before_stability`).
    pub broken_purge: bool,
    /// Overlay-dissemination genome (`None` = the paper's direct
    /// n-unicast).
    pub overlay: Option<OverlaySpec>,
    /// Fault-plan genome.
    pub plan: PlanSpec,
    /// Schedule-perturbation genome.
    pub sched: SchedSpec,
}

impl CheckSpec {
    /// Samples a spec from `seed`. All draws come from one ChaCha8 stream,
    /// so the spec is a pure function of `(seed, n, max_msgs,
    /// broken_purge)`.
    pub fn generate(seed: u64, n: usize, max_msgs: u64, broken_purge: bool) -> CheckSpec {
        assert!(n >= 2, "checker needs a group of at least 2");
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xC0DE_C0DE_C0DE_C0DE);
        let msgs = rng.gen_range(2..max_msgs.max(3));
        let horizon = msgs * 2 + 24; // rounds within which faults land

        let resilience = (n - 1) / 2;
        let mut plan = PlanSpec::none();
        // Either a coordinator-crash burst or individual crashes — mixing
        // the two could exceed the resilience bound when a burst coincides
        // with an individually-crashed process.
        if resilience > 0 && rng.gen_bool(0.25) {
            let f = rng.gen_range(1..resilience.min(2) as u32 + 1);
            plan.coordinator_crashes = Some((rng.gen_range(0..6), f));
        } else if resilience > 0 {
            let count = rng.gen_range(0..resilience + 1);
            let mut victims: Vec<u16> = (0..n as u16).collect();
            for _ in 0..count {
                let at = rng.gen_range(0..victims.len());
                let victim = victims.swap_remove(at);
                plan.crashes.push((victim, rng.gen_range(2..horizon)));
            }
        }
        if rng.gen_bool(0.5) {
            plan.send_omission = rng.gen_range(0.0..0.02);
        }
        if rng.gen_bool(0.5) {
            plan.recv_omission = rng.gen_range(0.0..0.02);
        }
        if rng.gen_bool(1.0 / 3.0) {
            plan.slow_sender = Some((rng.gen_range(0..n as u16), rng.gen_range(1..3)));
        }
        for _ in 0..rng.gen_range(0..3usize) {
            let from = rng.gen_range(0..n as u16);
            let to = rng.gen_range(0..n as u16);
            if from == to {
                continue;
            }
            let start = rng.gen_range(0..horizon);
            plan.cuts
                .push((from, to, start, start + rng.gen_range(1..8)));
        }
        for _ in 0..rng.gen_range(0..3usize) {
            plan.handoff_cuts
                .push((rng.gen_range(0..8), rng.gen_range(0..n as u16)));
        }

        let sched = SchedSpec {
            seed: rng.gen(),
            shuffle_permille: rng.gen_range(0..1001),
            drop_permille: if rng.gen_bool(0.5) {
                rng.gen_range(1..40)
            } else {
                0
            },
            max_drops: rng.gen_range(0..7),
        };

        CheckSpec {
            seed,
            n,
            msgs,
            broken_purge,
            overlay: None,
            plan,
            sched,
        }
    }

    /// Samples an overlay spec from `seed`: the [`CheckSpec::generate`]
    /// genome plus overlay parameters, with the crash machinery re-aimed
    /// at the overlay's weak point — an interior (relay) node of a sampled
    /// origin's tree — so most runs exercise re-parenting and recovery
    /// through the dissemination gap, not just leaf crashes. A pure
    /// function of `(seed, n, max_msgs, broken_relay)`.
    pub fn generate_overlay(seed: u64, n: usize, max_msgs: u64, broken_relay: bool) -> CheckSpec {
        let mut spec = CheckSpec::generate(seed, n, max_msgs, false);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0E71_0E71_0E71_0E71);
        let overlay = OverlaySpec {
            mode: if rng.gen_bool(0.75) {
                OverlayMode::Tree
            } else {
                OverlayMode::Gossip
            },
            degree: rng.gen_range(2..4).min(n.saturating_sub(1)).max(1),
            seed: rng.gen(),
            drop_decisions: broken_relay,
        };
        if broken_relay {
            // The decision-dropping relay is caught by the membership
            // oracle, which is only sound when nothing else can cost a
            // process its decisions: strip every loss fault (crashes stay —
            // the oracle accounts for them) so any ejection indicts the
            // relay.
            spec.strip_loss_faults();
        }
        let resilience = (n - 1) / 2;
        if spec.plan.coordinator_crashes.is_none() && resilience > 0 {
            // Find the relays (interior nodes) of a sampled origin's tree
            // from the same deterministic plan every process will compute,
            // and make sure one of them crashes — displacing a sampled
            // leaf crash if the resilience budget is already spent.
            let probe = Plan::build(overlay.to_config(), &vec![true; n]);
            let origin = ProcessId(rng.gen_range(0..n as u16));
            let relays: Vec<u16> = (0..n as u16)
                .filter(|&p| p != origin.0 && !probe.fanout(origin, 0, ProcessId(p)).is_empty())
                .collect();
            if !relays.is_empty() {
                let relay = relays[rng.gen_range(0..relays.len())];
                let round = rng.gen_range(2..spec.msgs * 2 + 24);
                spec.plan.crashes.retain(|&(p, _)| p != relay);
                while spec.plan.crashes.len() >= resilience {
                    spec.plan.crashes.pop();
                }
                spec.plan.crashes.push((relay, round));
            }
        }
        spec.overlay = Some(overlay);
        spec
    }

    /// Removes every fault that loses frames (omissions, cuts, schedule
    /// drops), leaving crashes, slow senders and shuffles. The result
    /// satisfies [`CheckSpec::is_loss_free`], arming the membership
    /// oracle.
    pub fn strip_loss_faults(&mut self) {
        self.plan.send_omission = 0.0;
        self.plan.recv_omission = 0.0;
        self.plan.cuts.clear();
        self.plan.handoff_cuts.clear();
        self.sched.drop_permille = 0;
        self.sched.max_drops = 0;
    }

    /// Whether this genome can lose a frame some process needed: omission
    /// faults, link cuts, or targeted schedule drops. Loss-free specs arm
    /// the membership oracle (crashes do not count — a crashed process is
    /// an expected ejection, and the `K` sizing covers the relay gaps a
    /// crash opens).
    pub fn is_loss_free(&self) -> bool {
        self.plan.send_omission == 0.0
            && self.plan.recv_omission == 0.0
            && self.plan.cuts.is_empty()
            && self.plan.handoff_cuts.is_empty()
            && (self.sched.drop_permille == 0 || self.sched.max_drops == 0)
    }

    /// The protocol configuration this spec runs under: paper defaults
    /// with the `f` allowance sized to the sampled coordinator-crash
    /// burst (so `R > 2K + f` holds for the scenario by construction).
    pub fn config(&self) -> ProtocolConfig {
        let f = self
            .plan
            .coordinator_crashes
            .map(|(_, f)| f)
            .unwrap_or(1)
            .max(1);
        let cfg = ProtocolConfig::new(self.n).with_f_allowance(f);
        // Overlay runs size K up: until a crashed relay is declared failed
        // and the tree re-parents, downstream processes can miss several
        // consecutive decisions through no fault of their own
        // (PROTOCOL.md §8).
        let cfg = if self.overlay.is_some() {
            cfg.with_k(4)
        } else {
            cfg
        };
        if self.broken_purge {
            cfg.with_broken_purge_before_stability()
        } else {
            cfg
        }
    }

    /// Round budget: generous enough that the stall oracle only fires on
    /// genuine non-termination, not a slow-but-progressing run.
    pub fn max_rounds(&self) -> u64 {
        self.msgs * 40 + 4_000
    }

    /// Serializes the spec (the `spec` member of a `urcgc-repro/1`
    /// document). Seeds render as decimal strings — u64 does not round
    /// through f64.
    pub fn to_json(&self) -> Json {
        let crashes: Vec<Json> = self
            .plan
            .crashes
            .iter()
            .map(|&(p, r)| Json::obj().with("process", u64::from(p)).with("round", r))
            .collect();
        let cuts: Vec<Json> = self
            .plan
            .cuts
            .iter()
            .map(|&(from, to, a, b)| {
                Json::obj()
                    .with("from", u64::from(from))
                    .with("to", u64::from(to))
                    .with("from_round", a)
                    .with("to_round", b)
            })
            .collect();
        let handoffs: Vec<Json> = self
            .plan
            .handoff_cuts
            .iter()
            .map(|&(s, m)| Json::obj().with("subrun", s).with("member", u64::from(m)))
            .collect();
        let mut plan = Json::obj()
            .with("crashes", Json::Arr(crashes))
            .with("send_omission", self.plan.send_omission)
            .with("recv_omission", self.plan.recv_omission)
            .with("cuts", Json::Arr(cuts))
            .with("handoff_cuts", Json::Arr(handoffs));
        match self.plan.coordinator_crashes {
            Some((s, f)) => plan.set(
                "coordinator_crashes",
                Json::obj().with("first_subrun", s).with("f", f),
            ),
            None => plan.set("coordinator_crashes", Json::Null),
        }
        match self.plan.slow_sender {
            Some((p, extra)) => plan.set(
                "slow_sender",
                Json::obj()
                    .with("process", u64::from(p))
                    .with("extra_rounds", extra),
            ),
            None => plan.set("slow_sender", Json::Null),
        }
        let overlay = match &self.overlay {
            Some(ov) => Json::obj()
                .with("mode", ov.mode.label())
                .with("degree", ov.degree)
                .with("seed", ov.seed.to_string())
                .with("drop_decisions", ov.drop_decisions),
            None => Json::Null,
        };
        Json::obj()
            .with("seed", self.seed.to_string())
            .with("n", self.n)
            .with("msgs", self.msgs)
            .with("broken_purge", self.broken_purge)
            .with("overlay", overlay)
            .with("plan", plan)
            .with(
                "sched",
                Json::obj()
                    .with("seed", self.sched.seed.to_string())
                    .with("shuffle_permille", self.sched.shuffle_permille)
                    .with("drop_permille", self.sched.drop_permille)
                    .with("max_drops", self.sched.max_drops),
            )
    }

    /// Parses a spec previously produced by [`CheckSpec::to_json`].
    pub fn from_json(doc: &Json) -> Result<CheckSpec, String> {
        let plan_doc = doc.get("plan").ok_or("spec missing \"plan\"")?;
        let sched_doc = doc.get("sched").ok_or("spec missing \"sched\"")?;
        let mut plan = PlanSpec::none();
        for c in req_items(plan_doc, "crashes")? {
            plan.crashes
                .push((num(c, "process")? as u16, num(c, "round")? as u64));
        }
        plan.send_omission = num(plan_doc, "send_omission")?;
        plan.recv_omission = num(plan_doc, "recv_omission")?;
        for c in req_items(plan_doc, "cuts")? {
            plan.cuts.push((
                num(c, "from")? as u16,
                num(c, "to")? as u16,
                num(c, "from_round")? as u64,
                num(c, "to_round")? as u64,
            ));
        }
        for c in req_items(plan_doc, "handoff_cuts")? {
            plan.handoff_cuts
                .push((num(c, "subrun")? as u64, num(c, "member")? as u16));
        }
        if let Some(cc) = plan_doc.get("coordinator_crashes") {
            if *cc != Json::Null {
                plan.coordinator_crashes =
                    Some((num(cc, "first_subrun")? as u64, num(cc, "f")? as u32));
            }
        }
        if let Some(ss) = plan_doc.get("slow_sender") {
            if *ss != Json::Null {
                plan.slow_sender =
                    Some((num(ss, "process")? as u16, num(ss, "extra_rounds")? as u64));
            }
        }
        // Absent or Null = direct unicast: repro files predating the
        // overlay dimension keep parsing.
        let overlay = match doc.get("overlay") {
            None | Some(Json::Null) => None,
            Some(ov) => {
                let label = ov
                    .get("mode")
                    .and_then(Json::as_str)
                    .ok_or("overlay missing \"mode\"")?;
                Some(OverlaySpec {
                    mode: OverlayMode::from_label(label)
                        .ok_or_else(|| format!("unknown overlay mode {label:?}"))?,
                    degree: num(ov, "degree")? as usize,
                    seed: seed_str(ov, "seed")?,
                    drop_decisions: matches!(ov.get("drop_decisions"), Some(Json::Bool(true))),
                })
            }
        };
        Ok(CheckSpec {
            seed: seed_str(doc, "seed")?,
            n: num(doc, "n")? as usize,
            msgs: num(doc, "msgs")? as u64,
            broken_purge: matches!(doc.get("broken_purge"), Some(Json::Bool(true))),
            overlay,
            plan,
            sched: SchedSpec {
                seed: seed_str(sched_doc, "seed")?,
                shuffle_permille: num(sched_doc, "shuffle_permille")? as u32,
                drop_permille: num(sched_doc, "drop_permille")? as u32,
                max_drops: num(sched_doc, "max_drops")? as u32,
            },
        })
    }
}

fn num(doc: &Json, key: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn seed_str(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing seed string {key:?}"))?
        .parse()
        .map_err(|e| format!("bad seed {key:?}: {e}"))
}

fn req_items<'a>(doc: &'a Json, key: &str) -> Result<&'a [Json], String> {
    doc.get(key)
        .and_then(Json::items)
        .ok_or_else(|| format!("missing array field {key:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_in_model() {
        for seed in 0..200u64 {
            for n in [3usize, 5] {
                let a = CheckSpec::generate(seed, n, 12, false);
                let b = CheckSpec::generate(seed, n, 12, false);
                assert_eq!(a, b, "seed {seed} n {n}");
                a.config().validate().expect("generated config is valid");
                assert!(
                    a.plan.crashed_processes(n) <= (n - 1) / 2,
                    "seed {seed} n {n}: crashes exceed the resilience bound"
                );
                assert!((2..12).contains(&a.msgs));
            }
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        for seed in [0u64, 7, 42, u64::MAX - 3] {
            let spec = CheckSpec::generate(seed, 5, 10, seed % 2 == 0);
            let doc = spec.to_json();
            let parsed = urcgc_metrics::json::parse(&doc.render_pretty()).expect("parses");
            assert_eq!(CheckSpec::from_json(&parsed).expect("decodes"), spec);
        }
    }

    #[test]
    fn overlay_generation_is_deterministic_and_in_model() {
        for seed in 0..100u64 {
            for n in [5usize, 7] {
                let a = CheckSpec::generate_overlay(seed, n, 12, false);
                let b = CheckSpec::generate_overlay(seed, n, 12, false);
                assert_eq!(a, b, "seed {seed} n {n}");
                a.config().validate().expect("generated config is valid");
                assert!(
                    a.plan.crashed_processes(n) <= (n - 1) / 2,
                    "seed {seed} n {n}: crashes exceed the resilience bound"
                );
                let ov = a.overlay.as_ref().expect("overlay genome present");
                assert!(!ov.drop_decisions);
                assert!((1..n).contains(&ov.degree));
                // The crash machinery is re-aimed at the overlay: unless a
                // coordinator burst claimed the whole resilience budget,
                // some individual crash lands on a relay node.
                assert!(
                    a.plan.coordinator_crashes.is_some() || !a.plan.crashes.is_empty(),
                    "seed {seed} n {n}: no crash targets the overlay"
                );
            }
        }
    }

    #[test]
    fn overlay_specs_round_trip_through_json() {
        for seed in [1u64, 9, 42, 77] {
            let spec = CheckSpec::generate_overlay(seed, 5, 10, seed % 2 == 0);
            let doc = spec.to_json();
            let parsed = urcgc_metrics::json::parse(&doc.render_pretty()).expect("parses");
            assert_eq!(CheckSpec::from_json(&parsed).expect("decodes"), spec);
        }
        // Pre-overlay repro documents (overlay key null or missing) still
        // parse, as the direct-unicast spec they always meant.
        let direct = CheckSpec::generate(3, 5, 8, false);
        let doc = direct.to_json();
        let parsed = urcgc_metrics::json::parse(&doc.render_pretty()).expect("parses");
        let decoded = CheckSpec::from_json(&parsed).expect("decodes");
        assert_eq!(decoded.overlay, None);
        assert_eq!(decoded, direct);
    }

    #[test]
    fn handoff_cuts_target_the_coordinator() {
        let mut spec = CheckSpec::generate(3, 5, 8, false);
        spec.plan = PlanSpec::none();
        spec.plan.handoff_cuts = vec![(2, 0)];
        // Subrun 2's coordinator in n=5 is p2; the member side is p0.
        let plan = spec.plan.to_fault_plan(5);
        assert!(plan.link_cut_at(ProcessId(0), ProcessId(2), Round(4)));
        assert!(plan.link_cut_at(ProcessId(2), ProcessId(0), Round(5)));
        assert!(!plan.link_cut_at(ProcessId(0), ProcessId(2), Round(5)));
        // A handoff cut naming the coordinator itself is skipped.
        spec.plan.handoff_cuts = vec![(2, 2)];
        let plan = spec.plan.to_fault_plan(5);
        assert!(!plan.link_cut_at(ProcessId(2), ProcessId(2), Round(4)));
    }
}
