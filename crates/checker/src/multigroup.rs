//! Multi-group soak: thousands of shared-nothing URCGC groups per process,
//! driven through the [`Node`] façade and gated on the per-group cluster
//! oracles plus the multi-group *genuineness* oracle.
//!
//! The paper runs one group; the scaling question for a deployment is how
//! many **independent** groups one process can serve. This harness answers
//! it structurally:
//!
//! * Groups are sharded across the sweep job pool
//!   ([`urcgc_bench::sweep::run_pool`]) by the deterministic assignment
//!   [`GroupId::shard`] — shard `s` of `S` hosts exactly the groups with
//!   `id % S == s`, so the workload is reproducible whatever the job
//!   count.
//! * Within a shard, `members` [`Node`]s each host *all* of the shard's
//!   groups — the worst case for demux pressure: every wire frame carries
//!   a group envelope and must find exactly its destination group among
//!   thousands.
//! * The workload targets a random subset of groups (`active_fraction`),
//!   with per-group start rounds scattered so submissions cross group
//!   boundaries in time; the remaining *idle* groups measure the standing
//!   cost of group residency.
//! * At quiescence every group is checked with the same end-of-run
//!   oracles as a real-network cluster run ([`check_cluster`]), and the
//!   run as a whole with [`check_genuineness`]: zero frames accepted by a
//!   non-destination engine, zero frames routed to a non-hosting node.
//!
//! The `multigroup` binary wraps this in a CLI and emits a
//! `urcgc-multigroup/1` document.

use std::collections::HashMap;
use std::time::Instant;

use bytes::Bytes;
use urcgc::{Node, Output};
use urcgc_bench::sweep::run_pool;
use urcgc_metrics::{Json, Schema};
use urcgc_types::{group_of, GroupId, Mid, ProcessId, ProtocolConfig, Round};

use crate::cluster::{check_cluster, check_genuineness, fnv1a_stream, NodeObservation};
use crate::oracle::Violation;

/// Schema of the multigroup soak document.
pub const MULTIGROUP_SCHEMA: Schema = Schema::new("urcgc-multigroup", 1);

/// Parameters of one multigroup soak run.
#[derive(Clone, Debug)]
pub struct MultigroupSpec {
    /// Total group count (ids `0..groups`).
    pub groups: usize,
    /// Members per group; every member of a shard hosts all its groups.
    pub members: usize,
    /// Messages submitted into each *active* group, round-robin across
    /// its members.
    pub msgs_per_group: u64,
    /// Application payload bytes per message.
    pub payload: usize,
    /// Fraction of groups the workload targets; the rest stay idle.
    pub active_fraction: f64,
    /// Probability that a submission declares the submitter's latest
    /// delivered foreign message (in the same group) as a causal
    /// dependency.
    pub dep_prob: f64,
    /// Shards = jobs on the sweep pool; group→shard assignment is
    /// [`GroupId::shard`].
    pub shards: usize,
    /// Base seed (workload selection and scheduling derive from it).
    pub seed: u64,
    /// Per-shard round budget; exceeding it is a Stall for every group
    /// still incomplete.
    pub max_rounds: u64,
}

impl Default for MultigroupSpec {
    fn default() -> MultigroupSpec {
        MultigroupSpec {
            groups: 1000,
            members: 3,
            msgs_per_group: 4,
            payload: 32,
            active_fraction: 0.5,
            dep_prob: 0.5,
            shards: 1,
            seed: 0x00C0_FFEE,
            max_rounds: 4_000,
        }
    }
}

/// Outcome of one multigroup soak run.
#[derive(Clone, Debug)]
pub struct MultigroupReport {
    /// The spec that produced this report.
    pub spec: MultigroupSpec,
    /// Groups the workload targeted.
    pub active_groups: usize,
    /// Groups that received no submissions.
    pub idle_groups: usize,
    /// Max rounds executed by any shard.
    pub rounds: u64,
    /// Messages submitted across all groups.
    pub submissions: u64,
    /// Delivery events across all groups and members.
    pub deliveries: u64,
    /// Enveloped frames handed to node demux (per destination).
    pub frames: u64,
    /// Wall-clock for the sharded run (excludes oracle evaluation).
    pub wall_secs: f64,
    /// Aggregate delivery throughput, `deliveries / wall_secs`.
    pub agg_msgs_per_sec: f64,
    /// Median delivery latency in rounds (submission to local delivery).
    pub latency_p50_rounds: u64,
    /// 99th-percentile delivery latency in rounds.
    pub latency_p99_rounds: u64,
    /// Worst delivery latency in rounds.
    pub latency_max_rounds: u64,
    /// Frames accepted by an engine other than their destination group
    /// (genuineness; must be 0).
    pub misrouted: u64,
    /// Frames routed to a node not hosting their destination group
    /// (genuineness; must be 0 — shard members host every shard group).
    pub foreign_frames: u64,
    /// Heap bytes per idle group per member, when measured by the caller
    /// (the binary measures it with a counting allocator).
    pub idle_group_bytes: Option<f64>,
    /// Per-group oracle violations plus run-wide genuineness violations
    /// (tagged with the offending group, or `None` for run-wide).
    pub violations: Vec<(Option<u32>, Violation)>,
}

impl MultigroupReport {
    /// Whether every per-group oracle and the genuineness oracle passed.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Serializes as a `urcgc-multigroup/1` document.
    pub fn to_json(&self) -> Json {
        let mut j = MULTIGROUP_SCHEMA
            .tag(Json::obj())
            .with("groups", self.spec.groups)
            .with("members", self.spec.members)
            .with("msgs_per_group", self.spec.msgs_per_group)
            .with("payload", self.spec.payload)
            .with("active_fraction", self.spec.active_fraction)
            .with("dep_prob", self.spec.dep_prob)
            .with("shards", self.spec.shards)
            .with("seed", self.spec.seed)
            .with("active_groups", self.active_groups)
            .with("idle_groups", self.idle_groups)
            .with("rounds", self.rounds)
            .with("submissions", self.submissions)
            .with("deliveries", self.deliveries)
            .with("frames", self.frames)
            .with("wall_secs", self.wall_secs)
            .with("agg_msgs_per_sec", self.agg_msgs_per_sec)
            .with("latency_p50_rounds", self.latency_p50_rounds)
            .with("latency_p99_rounds", self.latency_p99_rounds)
            .with("latency_max_rounds", self.latency_max_rounds)
            .with("misrouted", self.misrouted)
            .with("foreign_frames", self.foreign_frames)
            .with("ok", self.ok());
        if let Some(b) = self.idle_group_bytes {
            j.set("idle_group_bytes", b);
        }
        j.set(
            "violations",
            self.violations
                .iter()
                .map(|(group, v)| {
                    let mut vj = Json::obj()
                        .with("kind", v.kind.label())
                        .with("detail", v.detail.as_str());
                    if let Some(g) = group {
                        vj.set("group", u64::from(*g));
                    }
                    vj
                })
                .collect::<Vec<_>>(),
        );
        j
    }
}

/// splitmix64 — the per-group deterministic scheduling hash (independent
/// of shard count and iteration order).
fn mix(seed: u64, group: u32) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(u64::from(group).wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(v: u64) -> f64 {
    (v >> 11) as f64 / (1u64 << 53) as f64
}

/// Whether the workload targets `group`, derived from the seed alone.
pub fn is_active(spec: &MultigroupSpec, group: u32) -> bool {
    unit(mix(spec.seed, group)) < spec.active_fraction
}

/// One member's delivery log entry for one group.
type LogEntry = (Mid, Vec<Mid>);

struct GroupState {
    id: GroupId,
    active: bool,
    /// First submission round (active groups are scattered in time).
    start_round: u64,
    /// Submissions so far.
    submitted: u64,
    /// Who submitted how much, per member.
    submitted_by: Vec<u64>,
    /// Per-member delivery logs (mid + declared deps, in local order).
    logs: Vec<Vec<LogEntry>>,
    /// Per-member latest delivered foreign mid (dependency source).
    latest_foreign: Vec<Option<Mid>>,
    /// Submission round per mid, for latency accounting.
    submit_round: HashMap<Mid, u64>,
}

struct ShardOutcome {
    rounds: u64,
    submissions: u64,
    deliveries: u64,
    frames: u64,
    misrouted: u64,
    foreign_frames: u64,
    latencies: Vec<u64>,
    violations: Vec<(Option<u32>, Violation)>,
}

/// Runs the spec's groups sharded over the sweep job pool and aggregates
/// shard outcomes into one report (without `idle_group_bytes`; callers
/// with a measuring allocator fill that in).
pub fn run_multigroup(spec: &MultigroupSpec) -> MultigroupReport {
    assert!(
        spec.groups > 0 && spec.members >= 2,
        "need groups and peers"
    );
    let shards = spec.shards.clamp(1, spec.groups);
    let start = Instant::now();
    let outcomes = run_pool(shards, shards, |s| run_shard(spec, s, shards));
    let wall_secs = start.elapsed().as_secs_f64();

    let mut rounds = 0;
    let mut submissions = 0;
    let mut deliveries = 0;
    let mut frames = 0;
    let mut misrouted = 0;
    let mut foreign = 0;
    let mut latencies: Vec<u64> = Vec::new();
    let mut violations: Vec<(Option<u32>, Violation)> = Vec::new();
    for o in outcomes {
        rounds = rounds.max(o.rounds);
        submissions += o.submissions;
        deliveries += o.deliveries;
        frames += o.frames;
        misrouted += o.misrouted;
        foreign += o.foreign_frames;
        latencies.extend(o.latencies);
        violations.extend(o.violations);
    }
    violations.extend(
        check_genuineness(misrouted, foreign)
            .into_iter()
            .map(|v| (None, v)),
    );
    violations.sort_by_key(|(g, _)| *g);
    latencies.sort_unstable();
    let pct = |q: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() - 1) as f64 * q).round() as usize;
        latencies[idx]
    };
    let active_groups = (0..spec.groups as u32)
        .filter(|&g| is_active(spec, g))
        .count();
    MultigroupReport {
        active_groups,
        idle_groups: spec.groups - active_groups,
        rounds,
        submissions,
        deliveries,
        frames,
        wall_secs,
        agg_msgs_per_sec: if wall_secs > 0.0 {
            deliveries as f64 / wall_secs
        } else {
            0.0
        },
        latency_p50_rounds: pct(0.50),
        latency_p99_rounds: pct(0.99),
        latency_max_rounds: latencies.last().copied().unwrap_or(0),
        misrouted,
        foreign_frames: foreign,
        idle_group_bytes: None,
        violations,
        spec: spec.clone(),
    }
}

/// Runs one shard: `members` nodes, each hosting every group with
/// `id % shards == shard`, driven in lockstep rounds with synchronous
/// in-memory frame exchange.
#[allow(clippy::needless_range_loop)]
fn run_shard(spec: &MultigroupSpec, shard: usize, shards: usize) -> ShardOutcome {
    let cfg = ProtocolConfig::new(spec.members);
    let mut nodes: Vec<Node> = (0..spec.members)
        .map(|m| Node::new(ProcessId::from_index(m)))
        .collect();
    let mut groups: Vec<GroupState> = Vec::new();
    for gid in 0..spec.groups as u32 {
        let id = GroupId(gid);
        if id.shard(shards) != shard {
            continue;
        }
        for node in &mut nodes {
            node.join(id, cfg.clone()).expect("fresh group table");
        }
        let active = is_active(spec, gid);
        // Scatter active groups' start rounds over a modest window so the
        // cross-group workload overlaps rather than marching in lockstep.
        let start_round = mix(spec.seed ^ 0xA5A5, gid) % 64;
        groups.push(GroupState {
            id,
            active,
            start_round,
            submitted: 0,
            submitted_by: vec![0; spec.members],
            logs: vec![Vec::new(); spec.members],
            latest_foreign: vec![None; spec.members],
            submit_round: HashMap::new(),
        });
    }

    let gindex: HashMap<GroupId, usize> =
        groups.iter().enumerate().map(|(i, g)| (g.id, i)).collect();
    let mut out = ShardOutcome {
        rounds: 0,
        submissions: 0,
        deliveries: 0,
        frames: 0,
        misrouted: 0,
        foreign_frames: 0,
        latencies: Vec::new(),
        violations: Vec::new(),
    };
    let expected_deliveries: u64 = groups
        .iter()
        .filter(|g| g.active)
        .map(|_| spec.msgs_per_group * spec.members as u64)
        .sum();

    // In-flight enveloped frames: (destination member, sender, frame).
    // Frames sent during round r arrive at the start of round r+1 — a
    // one-round network, so delivery latency is measured in protocol
    // rounds rather than collapsing to zero inside a synchronous exchange.
    let mut wire: Vec<(usize, ProcessId, Bytes)> = Vec::new();
    let mut round: u64 = 0;
    while round < spec.max_rounds {
        // Deliver last round's frames.
        for (dest, from, frame) in std::mem::take(&mut wire) {
            out.frames += 1;
            let want = group_of(&frame).ok();
            let got = nodes[dest].on_frame(from, &frame);
            if let (Some(w), Some(g)) = (want, got) {
                if w != g {
                    out.misrouted += 1;
                }
            }
        }

        // Submissions due this round: one message per active group every
        // two rounds (one per subrun), round-robin over members.
        for g in &mut groups {
            if !g.active || g.submitted >= spec.msgs_per_group {
                continue;
            }
            let due = round >= g.start_round && (round - g.start_round).is_multiple_of(2);
            if !due {
                continue;
            }
            let m = (g.submitted as usize) % spec.members;
            let deps: Vec<Mid> =
                if unit(mix(spec.seed ^ 0x5A5A, g.id.0 ^ (round as u32))) < spec.dep_prob {
                    g.latest_foreign[m].into_iter().collect()
                } else {
                    Vec::new()
                };
            let payload = Bytes::from(vec![0u8; spec.payload]);
            if let Ok(mid) = nodes[m].submit(g.id, payload, &deps) {
                g.submitted += 1;
                g.submitted_by[m] += 1;
                g.submit_round.insert(mid, round);
                out.submissions += 1;
            }
        }

        for node in &mut nodes {
            node.begin_round(Round(round));
        }

        // Drain every output this round produced (including those the
        // arriving frames triggered); Sends/Broadcasts go onto the wire
        // for the next round.
        for m in 0..spec.members {
            while let Some((gid, o)) = nodes[m].poll_output() {
                match o {
                    Output::Send { to, pdu } => {
                        let frame = nodes[m].encode(gid, &pdu);
                        wire.push((to.index(), ProcessId::from_index(m), frame));
                    }
                    Output::Broadcast { pdu } => {
                        let frame = nodes[m].encode(gid, &pdu);
                        for dest in 0..spec.members {
                            if dest != m {
                                wire.push((dest, ProcessId::from_index(m), frame.clone()));
                            }
                        }
                    }
                    Output::Deliver { msg } => {
                        let g = &mut groups[gindex[&gid]];
                        g.logs[m].push((msg.mid, msg.deps.clone()));
                        if msg.mid.origin.index() != m {
                            g.latest_foreign[m] = Some(msg.mid);
                        }
                        if let Some(&s) = g.submit_round.get(&msg.mid) {
                            out.latencies.push(round.saturating_sub(s).max(1));
                        }
                        out.deliveries += 1;
                    }
                    _ => {}
                }
            }
        }

        round += 1;
        out.rounds = round;
        // Completion probe: all deliveries in and engines drained (the
        // gauges walk only runs once the cheap counter gate passes). The
        // wire is deliberately NOT required to be empty — per-subrun
        // control traffic never stops, exactly like the transported
        // harness's quiescence rule.
        if out.deliveries >= expected_deliveries
            && nodes.iter().all(|n| {
                let t = n.gauges().totals;
                t.pending_len == 0 && t.waiting_len == 0
            })
        {
            break;
        }
    }

    for node in &nodes {
        let g = node.gauges();
        out.foreign_frames += g.foreign_frames;
    }

    // Per-group end-of-run oracles: the same checks a real-network cluster
    // run is gated on, once per group.
    for g in &groups {
        let obs: Vec<NodeObservation> = (0..spec.members)
            .map(|m| {
                let engine = nodes[m].engine(g.id).expect("hosted");
                let expected = if g.active { spec.msgs_per_group } else { 0 };
                let (ordering_ok, ordering_detail) = check_log(&g.logs[m]);
                NodeObservation {
                    me: m as u16,
                    status: format!("{:?}", engine.status()),
                    quiesced: g.submitted >= expected
                        && g.logs[m].len() as u64 == g.submitted
                        && engine.gauges().is_drained(),
                    submitted: g.submitted_by[m],
                    delivered: g.logs[m].len() as u64,
                    frontier: (0..spec.members)
                        .map(|q| engine.last_processed(ProcessId::from_index(q)))
                        .collect(),
                    order_digest: order_digests(spec.members, &g.logs[m]),
                    ordering_ok,
                    ordering_detail,
                }
            })
            .collect();
        out.violations
            .extend(check_cluster(&obs).into_iter().map(|v| (Some(g.id.0), v)));
    }
    out
}

/// Per-origin [`fnv1a_stream`] digests over one member's delivery log.
fn order_digests(n: usize, log: &[LogEntry]) -> Vec<u64> {
    let mut per_origin: Vec<Vec<u64>> = vec![Vec::new(); n];
    for (mid, _) in log {
        if mid.origin.index() < n {
            per_origin[mid.origin.index()].push(mid.seq);
        }
    }
    per_origin.into_iter().map(fnv1a_stream).collect()
}

/// Local Uniform Ordering check over one delivery log: every declared
/// cause delivered first, every origin's sequence strictly ascending.
fn check_log(log: &[LogEntry]) -> (bool, Option<String>) {
    let mut seen: std::collections::HashSet<Mid> = std::collections::HashSet::new();
    let mut last_seq: HashMap<u16, u64> = HashMap::new();
    for (mid, deps) in log {
        for dep in deps {
            if !seen.contains(dep) {
                return (
                    false,
                    Some(format!(
                        "delivered p{}#{} before its cause p{}#{}",
                        mid.origin.0, mid.seq, dep.origin.0, dep.seq
                    )),
                );
            }
        }
        let last = last_seq.entry(mid.origin.0).or_insert(0);
        if mid.seq <= *last {
            return (
                false,
                Some(format!(
                    "delivered p{}#{} after p{}#{}",
                    mid.origin.0, mid.seq, mid.origin.0, *last
                )),
            );
        }
        *last = mid.seq;
        seen.insert(*mid);
    }
    (true, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_multigroup_run_is_clean() {
        let spec = MultigroupSpec {
            groups: 24,
            members: 3,
            msgs_per_group: 3,
            shards: 2,
            ..MultigroupSpec::default()
        };
        let r = run_multigroup(&spec);
        assert!(r.ok(), "violations: {:?}", r.violations);
        assert_eq!(r.misrouted, 0);
        assert_eq!(r.foreign_frames, 0);
        assert_eq!(r.active_groups + r.idle_groups, 24);
        assert!(r.active_groups > 0, "seeded subset should hit some groups");
        assert_eq!(
            r.deliveries,
            r.active_groups as u64 * spec.msgs_per_group * spec.members as u64
        );
        assert!(r.latency_p99_rounds >= r.latency_p50_rounds);
    }

    #[test]
    fn shard_count_does_not_change_the_workload() {
        let base = MultigroupSpec {
            groups: 16,
            members: 3,
            msgs_per_group: 2,
            shards: 1,
            ..MultigroupSpec::default()
        };
        let one = run_multigroup(&base);
        let four = run_multigroup(&MultigroupSpec { shards: 4, ..base });
        assert_eq!(one.submissions, four.submissions);
        assert_eq!(one.deliveries, four.deliveries);
        assert_eq!(one.active_groups, four.active_groups);
        assert!(one.ok() && four.ok());
    }

    #[test]
    fn document_carries_the_schema_and_verdict() {
        let spec = MultigroupSpec {
            groups: 8,
            members: 2,
            msgs_per_group: 2,
            ..MultigroupSpec::default()
        };
        let r = run_multigroup(&spec);
        let j = r.to_json();
        assert_eq!(MULTIGROUP_SCHEMA.expect(&j), Ok(()));
        let text = j.render_pretty();
        let back = urcgc_metrics::json::parse(&text).unwrap();
        assert_eq!(back.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(back.get("misrouted").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn idle_groups_hold_no_protocol_state() {
        let spec = MultigroupSpec {
            groups: 12,
            members: 2,
            msgs_per_group: 2,
            active_fraction: 0.3,
            ..MultigroupSpec::default()
        };
        let r = run_multigroup(&spec);
        assert!(r.ok(), "violations: {:?}", r.violations);
        assert!(
            r.idle_groups > 0,
            "fraction 0.3 of 12 must leave idle groups"
        );
    }
}
