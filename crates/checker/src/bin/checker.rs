//! Adversarial checker CLI (`urcgc-check/1` summaries, `urcgc-repro/1`
//! counterexamples).
//!
//! Explore: `cargo run --release -p urcgc-check --bin checker -- \
//!           --runs 500 --n 3,5 --seed 1 --jobs 4 --json CHECK.json`
//! Replay:  `... --bin checker -- --replay counterexample.json`
//!
//! Exit status: 0 when every run passed every oracle, 1 when a violation
//! was found (or a replayed repro still reproduces), 2 on usage errors.

use urcgc_check::explore::{explore, summary_doc, ExploreOpts};
use urcgc_check::repro::{parse_repro, repro_doc};
use urcgc_check::run::run_spec;

const HELP: &str = "\
checker — adversarial schedule explorer with property oracles

USAGE:
  checker [OPTIONS]
  checker --replay FILE

OPTIONS:
  --runs N          run budget (default 200)
  --n LIST          comma-separated group sizes, cycled per run (default 3,5)
  --msgs M          per-process message budget ceiling (default 12)
  --seed S          base seed of the run schedule (default 1)
  --jobs J          worker threads (default 1; results independent of J)
  --secs S          wall-clock budget in seconds (checked between waves)
  --max-shrink K    candidate-run cap while shrinking (default 300)
  --json PATH       write the urcgc-check/1 summary to PATH
  --repro-dir DIR   where to write counterexample JSON (default .)
  --broken-purge    check the deliberately-broken purge variant (self-test)
  --overlay         route broadcasts over the tree/gossip overlay, with
                    crashes aimed at relay nodes
  --broken-relay    check the deliberately-broken relay that drops decision
                    forwards (self-test; implies --overlay)
  --replay FILE     re-run a urcgc-repro/1 file and report the verdict
  --help            print this help
";

struct Cli {
    opts: ExploreOpts,
    json: Option<String>,
    repro_dir: String,
    replay: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        opts: ExploreOpts::default(),
        json: None,
        repro_dir: ".".to_string(),
        replay: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} expects a value"))
        };
        match arg.as_str() {
            "--runs" => {
                cli.opts.runs = value("--runs")?
                    .parse()
                    .map_err(|e| format!("--runs: {e}"))?
            }
            "--n" => {
                cli.opts.ns = value("--n")?
                    .split(',')
                    .map(|s| s.trim().parse::<usize>().map_err(|e| format!("--n: {e}")))
                    .collect::<Result<Vec<_>, _>>()?;
                if cli.opts.ns.iter().any(|&n| n < 2) {
                    return Err("--n: group sizes must be at least 2".to_string());
                }
            }
            "--msgs" => {
                cli.opts.msgs = value("--msgs")?
                    .parse()
                    .map_err(|e| format!("--msgs: {e}"))?
            }
            "--seed" => {
                cli.opts.base_seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--jobs" => {
                cli.opts.jobs = value("--jobs")?
                    .parse::<usize>()
                    .map_err(|e| format!("--jobs: {e}"))?
                    .max(1)
            }
            "--secs" => {
                cli.opts.secs = Some(
                    value("--secs")?
                        .parse()
                        .map_err(|e| format!("--secs: {e}"))?,
                )
            }
            "--max-shrink" => {
                cli.opts.max_shrink = value("--max-shrink")?
                    .parse()
                    .map_err(|e| format!("--max-shrink: {e}"))?
            }
            "--json" => cli.json = Some(value("--json")?),
            "--repro-dir" => cli.repro_dir = value("--repro-dir")?,
            "--broken-purge" => cli.opts.broken_purge = true,
            "--overlay" => cli.opts.overlay = true,
            "--broken-relay" => {
                cli.opts.overlay = true;
                cli.opts.broken_relay = true;
            }
            "--replay" => cli.replay = Some(value("--replay")?),
            "--help" => return Err(HELP.to_string()),
            other => return Err(format!("unknown argument {other:?}\n\n{HELP}")),
        }
    }
    if cli.opts.runs == 0 {
        return Err("--runs must be at least 1".to_string());
    }
    Ok(cli)
}

fn replay(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return 2;
        }
    };
    let spec = match parse_repro(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return 2;
        }
    };
    let overlay = match &spec.overlay {
        Some(ov) => format!(
            " overlay={}/{}{}",
            ov.mode.label(),
            ov.degree,
            if ov.drop_decisions {
                " (broken-relay variant)"
            } else {
                ""
            }
        ),
        None => String::new(),
    };
    println!(
        "replaying {path}: seed {} n={} msgs={}{}{}",
        spec.seed,
        spec.n,
        spec.msgs,
        if spec.broken_purge {
            " (broken-purge variant)"
        } else {
            ""
        },
        overlay
    );
    let result = run_spec(&spec);
    if result.violated() {
        for v in &result.violations {
            match v.round {
                Some(r) => println!("  VIOLATION [{}] at round {r}: {}", v.kind, v.detail),
                None => println!("  VIOLATION [{}]: {}", v.kind, v.detail),
            }
        }
        println!("repro still reproduces ({} rounds)", result.rounds);
        1
    } else {
        println!(
            "repro no longer reproduces ({} rounds, clean)",
            result.rounds
        );
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(if msg == HELP { 0 } else { 2 });
        }
    };

    if let Some(path) = &cli.replay {
        std::process::exit(replay(path));
    }

    println!(
        "checker: {} run(s), n∈{:?}, base seed {}, {} job(s){}",
        cli.opts.runs,
        cli.opts.ns,
        cli.opts.base_seed,
        cli.opts.jobs,
        if cli.opts.broken_purge {
            ", BROKEN-PURGE VARIANT"
        } else if cli.opts.broken_relay {
            ", BROKEN-RELAY VARIANT"
        } else if cli.opts.overlay {
            ", overlay dissemination"
        } else {
            ""
        },
    );
    let outcome = explore(&cli.opts);

    let mut repro_path = None;
    if let Some(cx) = &outcome.counterexample {
        println!(
            "\ncounterexample at run {} (seed {}), shrunk in {} attempt(s):",
            cx.run_index, cx.original.seed, cx.shrink_attempts
        );
        for v in &cx.violations {
            match v.round {
                Some(r) => println!("  [{}] at round {r}: {}", v.kind, v.detail),
                None => println!("  [{}]: {}", v.kind, v.detail),
            }
        }
        let path = format!(
            "{}/counterexample-seed{}-run{}.json",
            cli.repro_dir.trim_end_matches('/'),
            cx.shrunk.seed,
            cx.run_index
        );
        let doc = repro_doc(&cx.shrunk, &cx.violations);
        match std::fs::write(&path, doc.render_pretty()) {
            Ok(()) => {
                println!("repro written to {path} (replay with --replay {path})");
                repro_path = Some(path);
            }
            Err(e) => eprintln!("failed to write repro {path}: {e}"),
        }
    }

    println!(
        "\nchecker: {} run(s) executed, {} violating, {:.2}s wall-clock",
        outcome.executed, outcome.violating_runs, outcome.wall_secs
    );
    if let Some(path) = &cli.json {
        let doc = summary_doc(&cli.opts, &outcome, repro_path.as_deref());
        match std::fs::write(path, doc.render_pretty()) {
            Ok(()) => println!("summary written to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    std::process::exit(if outcome.violating_runs > 0 { 1 } else { 0 });
}
