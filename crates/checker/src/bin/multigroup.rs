//! Multi-group soak driver (`urcgc-multigroup/1`).
//!
//! Runs thousands of shared-nothing URCGC groups through the `Node`
//! façade, sharded over the sweep job pool, and emits one JSON document
//! with aggregate throughput, delivery-latency percentiles, per-idle-group
//! heap bytes (measured with a counting global allocator), and the oracle
//! verdicts — every group checked with the cluster oracles, the whole run
//! with the genuineness oracle (zero frames at non-destination groups).
//!
//! Run:   `cargo run --release -p urcgc-check --bin multigroup -- --json MG.json`
//! Smoke: `... --bin multigroup -- --profile smoke --jobs 3 --json mg.json`
//! (256 groups; the CI gate.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, Ordering};

use urcgc_check::multigroup::{run_multigroup, MultigroupSpec};
use urcgc_types::{GroupId, ProcessId, ProtocolConfig};

/// Live-heap accounting for the idle-group residency measurement: `alloc`
/// adds, `dealloc` subtracts, so a before/after delta is the net bytes a
/// structure keeps alive.
struct CountingAlloc;

static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        LIVE_BYTES.fetch_add(layout.size() as i64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as i64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        LIVE_BYTES.fetch_add(new_size as i64 - layout.size() as i64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const HELP: &str = "\
multigroup — thousands of shared-nothing urcgc groups behind one Node API

USAGE:
  multigroup [OPTIONS]

OPTIONS:
  --profile P   soak (default: 1000 groups) | wide (10000 groups)
                | smoke (256 groups; the CI gate)
  --groups N    override the group count
  --jobs J      shards = worker threads on the sweep pool (default 1);
                group->shard assignment is id % J, so the workload and
                every per-group verdict are independent of J
  --seed S      base seed (default 0xC0FFEE)
  --json PATH   write the urcgc-multigroup/1 document to PATH
  --help        print this help
";

struct Profile {
    name: &'static str,
    groups: usize,
    msgs_per_group: u64,
    max_rounds: u64,
}

const SOAK: Profile = Profile {
    name: "soak",
    groups: 1000,
    msgs_per_group: 4,
    max_rounds: 4_000,
};

const WIDE: Profile = Profile {
    name: "wide",
    groups: 10_000,
    msgs_per_group: 2,
    max_rounds: 4_000,
};

const SMOKE: Profile = Profile {
    name: "smoke",
    groups: 256,
    msgs_per_group: 3,
    max_rounds: 2_000,
};

struct Opts {
    profile: &'static Profile,
    groups: Option<usize>,
    jobs: usize,
    seed: u64,
    json: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        profile: &SOAK,
        groups: None,
        jobs: 1,
        seed: 0x00C0_FFEE,
        json: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--profile" => {
                opts.profile = match it.next().map(String::as_str) {
                    Some("soak") => &SOAK,
                    Some("wide") => &WIDE,
                    Some("smoke") => &SMOKE,
                    other => {
                        return Err(format!("--profile expects soak|wide|smoke, got {other:?}"))
                    }
                }
            }
            "--groups" => {
                opts.groups = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&g| g >= 1)
                        .ok_or_else(|| "--groups expects a positive integer".to_string())?,
                )
            }
            "--jobs" => {
                opts.jobs = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&j| j >= 1)
                    .ok_or_else(|| "--jobs expects a positive integer".to_string())?
            }
            "--seed" => {
                let s = it.next().ok_or("--seed expects a value")?;
                opts.seed = s
                    .trim_start_matches("0x")
                    .parse()
                    .or_else(|_| u64::from_str_radix(s.trim_start_matches("0x"), 16))
                    .map_err(|e| format!("bad seed {s:?}: {e}"))?;
            }
            "--json" => {
                opts.json = Some(
                    it.next()
                        .ok_or_else(|| "--json expects a path".to_string())?
                        .clone(),
                )
            }
            "--help" => {
                print!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

/// Net heap bytes one idle group costs per member: build a probe node,
/// join `sample` groups without ever submitting, and divide the live-byte
/// delta by the group count.
fn measure_idle_group_bytes(members: usize, sample: usize) -> f64 {
    let cfg = ProtocolConfig::new(members);
    let before = LIVE_BYTES.load(Ordering::Relaxed);
    let mut node = urcgc::Node::new(ProcessId(0));
    for g in 0..sample as u32 {
        node.join(GroupId(g), cfg.clone()).expect("probe group");
    }
    let after = LIVE_BYTES.load(Ordering::Relaxed);
    let delta = (after - before).max(0) as f64 / sample as f64;
    drop(node);
    delta
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{HELP}");
            std::process::exit(2);
        }
    };
    let spec = MultigroupSpec {
        groups: opts.groups.unwrap_or(opts.profile.groups),
        msgs_per_group: opts.profile.msgs_per_group,
        max_rounds: opts.profile.max_rounds,
        shards: opts.jobs,
        seed: opts.seed,
        ..MultigroupSpec::default()
    };
    println!(
        "multigroup [{}]: {} groups x {} members, {} msgs/active group, \
         {} shard(s), seed {:#x}",
        opts.profile.name, spec.groups, spec.members, spec.msgs_per_group, spec.shards, spec.seed
    );

    let idle_bytes = measure_idle_group_bytes(spec.members, 512);
    let mut report = run_multigroup(&spec);
    report.idle_group_bytes = Some(idle_bytes);

    println!(
        "  {} active / {} idle groups, {} rounds, {} submissions, {} deliveries",
        report.active_groups,
        report.idle_groups,
        report.rounds,
        report.submissions,
        report.deliveries
    );
    println!(
        "  aggregate {:.0} msgs/s, latency p50 {} / p99 {} / max {} rounds",
        report.agg_msgs_per_sec,
        report.latency_p50_rounds,
        report.latency_p99_rounds,
        report.latency_max_rounds
    );
    println!(
        "  idle group residency {:.0} B/group/member; genuineness: \
         {} misrouted, {} foreign frames",
        idle_bytes, report.misrouted, report.foreign_frames
    );
    for (group, v) in &report.violations {
        match group {
            Some(g) => eprintln!("  VIOLATION [group {g}] {}: {}", v.kind.label(), v.detail),
            None => eprintln!("  VIOLATION [run] {}: {}", v.kind.label(), v.detail),
        }
    }

    if let Some(path) = &opts.json {
        let doc = report.to_json().render_pretty();
        if let Err(e) = std::fs::write(path, &doc) {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(2);
        }
        println!("  wrote {path}");
    }
    if report.ok() {
        println!("  all per-group oracles green");
    } else {
        eprintln!("  FAILED: {} violation(s)", report.violations.len());
        std::process::exit(1);
    }
}
