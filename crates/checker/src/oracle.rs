//! Typed property oracles over [`GroupHarness`] probe output.
//!
//! Each oracle encodes one guarantee the paper states (Sections 3–5) in a
//! form that is *sound* for the implementation — it can only fire on
//! behavior the protocol actually forbids:
//!
//! * **Uniform Atomicity** (Definition 3.2): at quiescence, every
//!   generated message was processed by all surviving processes or by
//!   none of them. Checked from the report's partial-processing count.
//! * **Uniform Ordering** (Definition 3.3): every local processing log is
//!   consistent with the published dependency relation — a message never
//!   appears before one of its declared causes, and one origin's messages
//!   appear in sequence order.
//! * **Stability-safety**: no process purges a history entry that some
//!   process alive in its view has not yet processed. Sound mid-run: a
//!   full-group decision's stable vector is the minimum over exactly the
//!   alive-in-view contributors, contributions are monotone lower bounds
//!   on the contributors' frontiers, and views only shrink.
//! * **Frontier agreement**: at quiescence all survivors hold identical
//!   `last_processed` vectors.
//! * **Termination**: the run reaches quiescence within the (generous)
//!   round budget.
//! * **Membership** (loss-free specs only): a process leaves the group
//!   only when it actually crashed — the paper's exit rules all hinge on
//!   lost messages, so in a run that loses none, every non-crashed
//!   process must still be `Active` at the end.

use std::collections::HashMap;
use std::fmt;

use urcgc::sim::{GroupHarness, GroupReport, UrcgcNode};
use urcgc_types::ProcessId;

/// Which property a violation breaches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OracleKind {
    /// Uniform Atomicity: a message processed by a strict subset of the
    /// survivors at quiescence.
    Atomicity,
    /// Uniform Ordering: a processing log contradicts the dependency
    /// relation.
    Ordering,
    /// A history entry purged before it was stable.
    StabilitySafety,
    /// The run hit its round budget without quiescing.
    Stall,
    /// Survivors ended with different processed frontiers.
    Divergence,
    /// A process left the group in a run where nothing was lost: the
    /// paper's leave rule (Section 5) ejects a member only when messages
    /// were actually lost or the member actually failed.
    Membership,
    /// Genuineness (multi-group operation): a frame took a protocol step
    /// at a group other than its destination group — either an engine
    /// accepted a frame enveloped for a different group, or a frame was
    /// routed to a node that does not host its destination group at all.
    Genuineness,
}

impl OracleKind {
    /// Stable machine-readable label (`urcgc-repro/1` / `urcgc-check/1`).
    pub fn label(self) -> &'static str {
        match self {
            OracleKind::Atomicity => "atomicity",
            OracleKind::Ordering => "ordering",
            OracleKind::StabilitySafety => "stability_safety",
            OracleKind::Stall => "stall",
            OracleKind::Divergence => "divergence",
            OracleKind::Membership => "membership",
            OracleKind::Genuineness => "genuineness",
        }
    }
}

impl fmt::Display for OracleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One oracle violation.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// The property breached.
    pub kind: OracleKind,
    /// Round at which the breach was observed (mid-run oracles only).
    pub round: Option<u64>,
    /// Human-readable specifics.
    pub detail: String,
}

impl Violation {
    fn at(kind: OracleKind, round: u64, detail: String) -> Violation {
        Violation {
            kind,
            round: Some(round),
            detail,
        }
    }

    fn terminal(kind: OracleKind, detail: String) -> Violation {
        Violation {
            kind,
            round: None,
            detail,
        }
    }
}

/// Mid-run stability-safety check: for every active, non-net-crashed
/// holder `i` and every peer `j` that is active, not net-crashed, and
/// alive in `i`'s view, `i` must not have purged origin `q`'s history past
/// `j`'s processed frontier for any `q`. Call once per round (O(n³), n is
/// small).
pub fn check_stability(h: &GroupHarness, round: u64) -> Option<Violation> {
    let nodes = h.net().nodes();
    for holder in nodes {
        let hid = holder.engine().me();
        if h.net().is_crashed(hid) || !holder.engine().status().is_active() {
            continue;
        }
        for peer in nodes {
            let pid = peer.engine().me();
            if h.net().is_crashed(pid)
                || !peer.engine().status().is_active()
                || !holder.engine().view().is_alive(pid)
            {
                continue;
            }
            for q in 0..nodes.len() {
                let q = ProcessId::from_index(q);
                let purged = holder.engine().history_purged_to(q);
                let processed = peer.engine().last_processed(q);
                if purged > processed {
                    return Some(Violation::at(
                        OracleKind::StabilitySafety,
                        round,
                        format!(
                            "p{} purged origin p{}'s history to seq {purged} while p{} \
                             (alive in its view) has only processed seq {processed}",
                            hid.0, q.0, pid.0
                        ),
                    ));
                }
            }
        }
    }
    None
}

/// Uniform-Ordering check over every node's full processing log (crashed
/// nodes too — their logs are valid prefixes and must already be
/// consistent). Returns the first inconsistency.
pub fn check_ordering(nodes: &[UrcgcNode]) -> Option<Violation> {
    for node in nodes {
        let me = node.engine().me();
        let log = node.delivery_log();
        let position: HashMap<_, _> = log.iter().enumerate().map(|(i, &m)| (m, i)).collect();
        let mut last_seq: HashMap<ProcessId, u64> = HashMap::new();
        for (idx, &mid) in log.iter().enumerate() {
            let prev = last_seq.insert(mid.origin, mid.seq).unwrap_or(0);
            if mid.seq <= prev {
                return Some(Violation::terminal(
                    OracleKind::Ordering,
                    format!(
                        "p{} processed p{}#{} after p{}#{}: an origin's sequence ran backwards",
                        me.0, mid.origin.0, mid.seq, mid.origin.0, prev
                    ),
                ));
            }
            for &dep in node.deps_of(mid).unwrap_or(&[]) {
                match position.get(&dep) {
                    Some(&dep_idx) if dep_idx < idx => {}
                    Some(_) => {
                        return Some(Violation::terminal(
                            OracleKind::Ordering,
                            format!(
                                "p{} processed p{}#{} before its declared cause p{}#{}",
                                me.0, mid.origin.0, mid.seq, dep.origin.0, dep.seq
                            ),
                        ));
                    }
                    None => {
                        return Some(Violation::terminal(
                            OracleKind::Ordering,
                            format!(
                                "p{} processed p{}#{} without ever processing its declared \
                                 cause p{}#{}",
                                me.0, mid.origin.0, mid.seq, dep.origin.0, dep.seq
                            ),
                        ));
                    }
                }
            }
        }
    }
    None
}

/// Membership check, sound only for *loss-free* specs (no omissions, no
/// cuts, no schedule drops — see `CheckSpec::is_loss_free`): every process
/// the fault plan did not crash must still be `Active` at the end of the
/// run. With nothing lost, the paper's exit rules (missed-`K`-decisions
/// leave, declared-crashed suicide, exhausted recovery) can only fire on a
/// process that really failed — any other ejection is a protocol bug.
/// Crash-induced relay gaps are covered by the `K` sizing (PROTOCOL.md §8).
pub fn check_membership(h: &GroupHarness) -> Option<Violation> {
    for node in h.net().nodes() {
        let id = node.engine().me();
        if h.net().is_crashed(id) {
            continue;
        }
        let status = node.engine().status();
        if !status.is_active() {
            let reason = node
                .engine()
                .status_reason()
                .map(|r| r.to_string())
                .unwrap_or_else(|| "unknown".to_string());
            return Some(Violation::terminal(
                OracleKind::Membership,
                format!(
                    "p{} was ejected ({status:?}: {reason}) although it never crashed and \
                     the run lost no messages",
                    id.0
                ),
            ));
        }
    }
    None
}

/// End-of-run oracles over the final [`GroupReport`]: termination, and —
/// only meaningful once quiesced — Uniform Atomicity and frontier
/// agreement.
pub fn check_final(report: &GroupReport) -> Vec<Violation> {
    let mut violations = Vec::new();
    if !report.quiesced {
        violations.push(Violation::terminal(
            OracleKind::Stall,
            format!(
                "no quiescence after {} rounds ({} of {} messages fully processed)",
                report.rounds, report.fully_processed, report.generated_total
            ),
        ));
        return violations;
    }
    if report.partially_processed > 0 {
        violations.push(Violation::terminal(
            OracleKind::Atomicity,
            format!(
                "{} message(s) processed by a strict subset of the survivors at quiescence",
                report.partially_processed
            ),
        ));
    }
    if !report.frontiers_agree() {
        violations.push(Violation::terminal(
            OracleKind::Divergence,
            "survivors ended with different last_processed vectors".to_string(),
        ));
    }
    violations
}
