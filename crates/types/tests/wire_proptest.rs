//! Property tests for the wire codec: roundtrip fidelity, exact length
//! accounting, and robustness against arbitrary byte soup.

use bytes::Bytes;
use proptest::prelude::*;
use urcgc_types::{
    decode_pdu, encode_pdu, wire::FRAME_TRAILER_LEN, DataMsg, Decision, MaxProcessed, Mid, Pdu,
    ProcessId, RecoveryBatch, RecoveryBatchRq, RecoveryReply, RecoveryRq, RecoveryRun,
    RecoveryWant, RequestMsg, Round, Subrun, WireEncode,
};

fn arb_pid() -> impl Strategy<Value = ProcessId> {
    (0u16..64).prop_map(ProcessId)
}

fn arb_mid() -> impl Strategy<Value = Mid> {
    (arb_pid(), 1u64..10_000).prop_map(|(origin, seq)| Mid { origin, seq })
}

fn arb_data() -> impl Strategy<Value = DataMsg> {
    (
        arb_mid(),
        prop::collection::vec(arb_mid(), 0..8),
        0u64..1_000,
        prop::collection::vec(any::<u8>(), 0..128),
    )
        .prop_map(|(mid, deps, round, payload)| DataMsg {
            mid,
            deps,
            round: Round(round),
            payload: Bytes::from(payload),
        })
}

fn arb_decision() -> impl Strategy<Value = Decision> {
    (1usize..32).prop_flat_map(|n| {
        (
            0u64..1_000,
            arb_pid(),
            any::<bool>(),
            prop::collection::vec(0u64..10_000, n),
            prop::collection::vec(0u32..10, n),
            prop::collection::vec(any::<bool>(), n),
            prop::collection::vec((arb_pid(), 0u64..10_000), n),
            (
                prop::collection::vec(0u64..10_000, n),
                prop::collection::vec(any::<bool>(), n),
            ),
        )
            .prop_map(
                |(subrun, coordinator, full_group, stable, attempts, state, maxp, (minw, cov))| {
                    Decision {
                        subrun: Subrun(subrun),
                        coordinator,
                        full_group,
                        stable,
                        attempts,
                        process_state: state,
                        max_processed: maxp
                            .into_iter()
                            .map(|(holder, seq)| MaxProcessed { holder, seq })
                            .collect(),
                        min_waiting: minw,
                        covered: cov,
                    }
                },
            )
    })
}

fn arb_pdu() -> impl Strategy<Value = Pdu> {
    prop_oneof![
        arb_data().prop_map(Pdu::data),
        (
            arb_pid(),
            0u64..1_000,
            prop::collection::vec(0u64..10_000, 1..32),
            prop::collection::vec(0u64..10_000, 1..32),
            (arb_decision(), any::<bool>())
        )
            .prop_map(
                |(sender, subrun, lp, w, (d, fwd))| Pdu::Request(RequestMsg {
                    sender,
                    subrun: Subrun(subrun),
                    last_processed: lp,
                    waiting: w,
                    prev_decision: d,
                    forwarded: fwd,
                })
            ),
        arb_decision().prop_map(Pdu::Decision),
        (arb_pid(), arb_pid(), 0u64..100, 0u64..100).prop_map(
            |(requester, origin, after_seq, delta)| Pdu::RecoveryRq(RecoveryRq {
                requester,
                origin,
                after_seq,
                upto_seq: after_seq + delta,
            })
        ),
        (
            arb_pid(),
            arb_pid(),
            prop::collection::vec(arb_data(), 0..6)
        )
            .prop_map(
                |(responder, origin, messages)| Pdu::RecoveryReply(RecoveryReply {
                    responder,
                    origin,
                    messages: messages.into_iter().map(std::sync::Arc::new).collect(),
                })
            ),
        (
            arb_pid(),
            prop::collection::vec((arb_pid(), 0u64..100, 0u64..100), 0..8)
        )
            .prop_map(|(requester, wants)| Pdu::RecoveryBatchRq(RecoveryBatchRq {
                requester,
                wants: wants
                    .into_iter()
                    .map(|(origin, after_seq, delta)| RecoveryWant {
                        origin,
                        after_seq,
                        upto_seq: after_seq + delta,
                    })
                    .collect(),
            })),
        (
            arb_pid(),
            prop::collection::vec((arb_pid(), prop::collection::vec(arb_data(), 0..4)), 0..6)
        )
            .prop_map(|(responder, runs)| Pdu::RecoveryBatch(RecoveryBatch {
                responder,
                runs: runs
                    .into_iter()
                    .map(|(origin, messages)| RecoveryRun {
                        origin,
                        messages: messages.into_iter().map(std::sync::Arc::new).collect(),
                    })
                    .collect(),
            })),
    ]
}

proptest! {
    #[test]
    fn pdu_roundtrips(pdu in arb_pdu()) {
        let frame = encode_pdu(&pdu);
        prop_assert_eq!(frame.len(), pdu.encoded_len() + FRAME_TRAILER_LEN);
        let back = decode_pdu(&frame).unwrap();
        prop_assert_eq!(back, pdu);
    }

    #[test]
    fn decoder_never_panics_on_garbage(raw in prop::collection::vec(any::<u8>(), 0..256)) {
        // Whatever the bytes, the decoder must return (Ok or Err), not panic
        // or allocate unboundedly.
        let _ = decode_pdu(&Bytes::from(raw));
    }

    #[test]
    fn single_bit_corruption_never_decodes(pdu in arb_pdu(), byte in any::<prop::sample::Index>(), bit in 0u8..8) {
        let frame = encode_pdu(&pdu);
        let mut raw = frame.to_vec();
        let i = byte.index(raw.len());
        raw[i] ^= 1 << bit;
        prop_assert!(decode_pdu(&bytes::Bytes::from(raw)).is_err());
    }

    #[test]
    fn decoder_rejects_every_truncation(pdu in arb_pdu()) {
        let frame = encode_pdu(&pdu);
        if frame.len() > 1 {
            let cut = frame.len() / 2;
            let mut part = frame;
            part.truncate(cut);
            prop_assert!(decode_pdu(&part).is_err());
        }
    }
}
