//! Deterministic binary wire codec.
//!
//! Fixed-width little-endian primitives, `u32` length prefixes with sanity
//! bounds, one tag byte per enum. The format is intentionally boring: the
//! experiment harness (Table 1) measures the encoded size of every PDU, so
//! the codec must be deterministic and must never pad.
//!
//! Every implementation guarantees `encoded_len() == bytes written by
//! encode()` and `decode(encode(x)) == x`; both invariants are enforced by
//! property tests.

use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::decision::{Decision, MaxProcessed};
use crate::error::WireError;
use crate::id::{Mid, ProcessId, Round, Subrun};
use crate::pdu::{
    DataMsg, Pdu, RecoveryBatch, RecoveryBatchRq, RecoveryReply, RecoveryRq, RecoveryRun,
    RecoveryWant, RequestMsg,
};

/// Sanity bound on decoded vector lengths (group-sized vectors and
/// dependency lists are tiny; recovery replies are bounded by history size).
pub const MAX_VEC_LEN: u64 = 1 << 20;
/// Sanity bound on decoded payload sizes.
pub const MAX_PAYLOAD_LEN: u64 = 1 << 24;

/// Types that can serialize themselves into a buffer.
pub trait WireEncode {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);
    /// Exact number of bytes [`WireEncode::encode`] will append.
    fn encoded_len(&self) -> usize;
}

/// Types that can deserialize themselves from a buffer.
pub trait WireDecode: Sized {
    /// Consumes the encoding of `Self` from the front of `buf`.
    fn decode(buf: &mut Bytes) -> Result<Self, WireError>;
}

/// Bytes the frame trailer adds on top of [`WireEncode::encoded_len`].
pub const FRAME_TRAILER_LEN: usize = 4;

/// FNV-1a over the frame body — the integrity trailer.
///
/// Under the paper's **general omission** failure model a packet is either
/// delivered intact or lost; real datagram stacks enforce this with
/// checksums. Without one, a single bit flip surviving into a decoded PDU
/// can *forge protocol state* — e.g. inflate a request's `last_processed`
/// entry so the whole group chases a phantom recovery target until every
/// member exhausts its `R` budget. The trailer turns corruption back into
/// the omission the model expects.
fn frame_checksum(body: &[u8]) -> u32 {
    crate::fnv::fnv1a_32(body)
}

/// Appends the framed encoding of `pdu` (body + checksum trailer) to `buf`.
///
/// The `encoded_len` contract is a **hard** assertion, release builds
/// included: fragmentation and pre-sizing derive datagram shapes from frame
/// lengths, so a stale `encoded_len` impl must abort the send rather than
/// silently emit a mis-framed PDU.
pub fn encode_pdu_into(pdu: &Pdu, buf: &mut BytesMut) {
    let start = buf.len();
    pdu.encode(buf);
    assert_eq!(
        buf.len() - start,
        pdu.encoded_len(),
        "encoded_len out of sync with encode(): framing would corrupt"
    );
    let sum = frame_checksum(&buf[start..]);
    buf.put_u32_le(sum);
}

/// Encodes a PDU into a freshly allocated frame (body + checksum trailer).
///
/// One-shot convenience; fan-out paths should prefer [`FrameCache`], which
/// amortizes the buffer across frames.
pub fn encode_pdu(pdu: &Pdu) -> Bytes {
    let mut buf = BytesMut::with_capacity(pdu.encoded_len() + FRAME_TRAILER_LEN);
    encode_pdu_into(pdu, &mut buf);
    buf.freeze()
}

/// Reusable encode arena: encode once, refcount-share per destination.
///
/// The naive send path pays at least two allocations per frame (buffer
/// growth plus the freeze into an `Arc<[u8]>`) — and the pre-PR fan-out
/// paid that *per destination*. A `FrameCache` keeps one warm `BytesMut`
/// across calls: encoding writes into retained capacity (zero growth
/// allocations at steady state) and the returned [`Bytes`] is a single
/// shared allocation that callers `clone()` per destination for the cost
/// of a refcount bump. Net steady-state cost: exactly one allocation per
/// *frame*, independent of fan-out.
#[derive(Debug, Default)]
pub struct FrameCache {
    buf: BytesMut,
}

impl FrameCache {
    /// Creates an empty cache; the arena warms up on first use.
    pub fn new() -> FrameCache {
        FrameCache {
            buf: BytesMut::new(),
        }
    }

    /// Encodes `pdu` into one frame (body + checksum trailer). Clone the
    /// returned `Bytes` per destination — clones share the allocation.
    pub fn encode(&mut self, pdu: &Pdu) -> Bytes {
        self.buf.clear();
        self.buf.reserve(pdu.encoded_len() + FRAME_TRAILER_LEN);
        encode_pdu_into(pdu, &mut self.buf);
        Bytes::copy_from_slice(&self.buf)
    }

    /// Encodes an arbitrary frame layout through the warm buffer: `fill`
    /// writes the frame body, the cache copies it out as one shared
    /// allocation. For non-PDU framings (e.g. the client/server codec)
    /// that want the same arena reuse.
    pub fn encode_with(&mut self, fill: impl FnOnce(&mut BytesMut)) -> Bytes {
        self.buf.clear();
        fill(&mut self.buf);
        Bytes::copy_from_slice(&self.buf)
    }

    /// Bytes of capacity currently retained by the arena.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }
}

/// Decodes a PDU from a frame, verifying the checksum trailer and requiring
/// the body to be fully consumed.
pub fn decode_pdu(frame: &Bytes) -> Result<Pdu, WireError> {
    if frame.len() < FRAME_TRAILER_LEN {
        return Err(WireError::UnexpectedEof {
            context: "frame trailer",
        });
    }
    let body_len = frame.len() - FRAME_TRAILER_LEN;
    let carried = u32::from_le_bytes(frame[body_len..].try_into().expect("4 bytes"));
    let actual = frame_checksum(&frame[..body_len]);
    if carried != actual {
        return Err(WireError::ChecksumMismatch {
            expected: carried,
            actual,
        });
    }
    let mut buf = frame.slice(..body_len);
    let pdu = Pdu::decode(&mut buf)?;
    if buf.has_remaining() {
        return Err(WireError::LengthOverflow {
            context: "trailing bytes after Pdu",
            declared: buf.remaining() as u64,
            max: 0,
        });
    }
    Ok(pdu)
}

fn need(buf: &Bytes, n: usize, context: &'static str) -> Result<(), WireError> {
    if buf.remaining() < n {
        Err(WireError::UnexpectedEof { context })
    } else {
        Ok(())
    }
}

macro_rules! impl_wire_uint {
    ($ty:ty, $put:ident, $get:ident, $ctx:literal) => {
        impl WireEncode for $ty {
            fn encode(&self, buf: &mut BytesMut) {
                buf.$put(*self);
            }
            fn encoded_len(&self) -> usize {
                core::mem::size_of::<$ty>()
            }
        }
        impl WireDecode for $ty {
            fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
                need(buf, core::mem::size_of::<$ty>(), $ctx)?;
                Ok(buf.$get())
            }
        }
    };
}

impl_wire_uint!(u8, put_u8, get_u8, "u8");
impl_wire_uint!(u16, put_u16_le, get_u16_le, "u16");
impl_wire_uint!(u32, put_u32_le, get_u32_le, "u32");
impl_wire_uint!(u64, put_u64_le, get_u64_le, "u64");

impl WireEncode for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self as u8);
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl WireDecode for bool {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(false),
            1 => Ok(true),
            value => Err(WireError::BadBool { value }),
        }
    }
}

impl WireEncode for ProcessId {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        2
    }
}

impl WireDecode for ProcessId {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(ProcessId(u16::decode(buf)?))
    }
}

impl WireEncode for Mid {
    fn encode(&self, buf: &mut BytesMut) {
        self.origin.encode(buf);
        self.seq.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        2 + 8
    }
}

impl WireDecode for Mid {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(Mid {
            origin: ProcessId::decode(buf)?,
            seq: u64::decode(buf)?,
        })
    }
}

impl WireEncode for Round {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl WireDecode for Round {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(Round(u64::decode(buf)?))
    }
}

impl WireEncode for Subrun {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl WireDecode for Subrun {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(Subrun(u64::decode(buf)?))
    }
}

impl<T: WireEncode> WireEncode for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u32).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
    fn encoded_len(&self) -> usize {
        4 + self.iter().map(WireEncode::encoded_len).sum::<usize>()
    }
}

impl<T: WireDecode> WireDecode for Vec<T> {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let len = u32::decode(buf)? as u64;
        if len > MAX_VEC_LEN {
            return Err(WireError::LengthOverflow {
                context: "Vec",
                declared: len,
                max: MAX_VEC_LEN,
            });
        }
        let mut out = Vec::with_capacity(len as usize);
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<T: WireEncode> WireEncode for Arc<T> {
    fn encode(&self, buf: &mut BytesMut) {
        (**self).encode(buf);
    }
    fn encoded_len(&self) -> usize {
        (**self).encoded_len()
    }
}

impl<T: WireDecode> WireDecode for Arc<T> {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(Arc::new(T::decode(buf)?))
    }
}

impl WireEncode for Bytes {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u32).encode(buf);
        buf.put_slice(self);
    }
    fn encoded_len(&self) -> usize {
        4 + self.len()
    }
}

impl WireDecode for Bytes {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let len = u32::decode(buf)? as u64;
        if len > MAX_PAYLOAD_LEN {
            return Err(WireError::LengthOverflow {
                context: "Bytes",
                declared: len,
                max: MAX_PAYLOAD_LEN,
            });
        }
        need(buf, len as usize, "Bytes")?;
        Ok(buf.split_to(len as usize))
    }
}

impl WireEncode for MaxProcessed {
    fn encode(&self, buf: &mut BytesMut) {
        self.holder.encode(buf);
        self.seq.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        2 + 8
    }
}

impl WireDecode for MaxProcessed {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(MaxProcessed {
            holder: ProcessId::decode(buf)?,
            seq: u64::decode(buf)?,
        })
    }
}

impl WireEncode for Decision {
    fn encode(&self, buf: &mut BytesMut) {
        self.subrun.encode(buf);
        self.coordinator.encode(buf);
        self.full_group.encode(buf);
        self.stable.encode(buf);
        self.attempts.encode(buf);
        self.process_state.encode(buf);
        self.max_processed.encode(buf);
        self.min_waiting.encode(buf);
        self.covered.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.subrun.encoded_len()
            + self.coordinator.encoded_len()
            + self.full_group.encoded_len()
            + self.stable.encoded_len()
            + self.attempts.encoded_len()
            + self.process_state.encoded_len()
            + self.max_processed.encoded_len()
            + self.min_waiting.encoded_len()
            + self.covered.encoded_len()
    }
}

impl WireDecode for Decision {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(Decision {
            subrun: Subrun::decode(buf)?,
            coordinator: ProcessId::decode(buf)?,
            full_group: bool::decode(buf)?,
            stable: Vec::decode(buf)?,
            attempts: Vec::decode(buf)?,
            process_state: Vec::decode(buf)?,
            max_processed: Vec::decode(buf)?,
            min_waiting: Vec::decode(buf)?,
            covered: Vec::decode(buf)?,
        })
    }
}

impl WireEncode for DataMsg {
    fn encode(&self, buf: &mut BytesMut) {
        self.mid.encode(buf);
        self.deps.encode(buf);
        self.round.encode(buf);
        self.payload.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.mid.encoded_len()
            + self.deps.encoded_len()
            + self.round.encoded_len()
            + self.payload.encoded_len()
    }
}

impl WireDecode for DataMsg {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(DataMsg {
            mid: Mid::decode(buf)?,
            deps: Vec::decode(buf)?,
            round: Round::decode(buf)?,
            payload: Bytes::decode(buf)?,
        })
    }
}

impl WireEncode for RequestMsg {
    fn encode(&self, buf: &mut BytesMut) {
        self.sender.encode(buf);
        self.subrun.encode(buf);
        self.last_processed.encode(buf);
        self.waiting.encode(buf);
        self.prev_decision.encode(buf);
        self.forwarded.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.sender.encoded_len()
            + self.subrun.encoded_len()
            + self.last_processed.encoded_len()
            + self.waiting.encoded_len()
            + self.prev_decision.encoded_len()
            + self.forwarded.encoded_len()
    }
}

impl WireDecode for RequestMsg {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(RequestMsg {
            sender: ProcessId::decode(buf)?,
            subrun: Subrun::decode(buf)?,
            last_processed: Vec::decode(buf)?,
            waiting: Vec::decode(buf)?,
            prev_decision: Decision::decode(buf)?,
            forwarded: bool::decode(buf)?,
        })
    }
}

impl WireEncode for RecoveryRq {
    fn encode(&self, buf: &mut BytesMut) {
        self.requester.encode(buf);
        self.origin.encode(buf);
        self.after_seq.encode(buf);
        self.upto_seq.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        2 + 2 + 8 + 8
    }
}

impl WireDecode for RecoveryRq {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(RecoveryRq {
            requester: ProcessId::decode(buf)?,
            origin: ProcessId::decode(buf)?,
            after_seq: u64::decode(buf)?,
            upto_seq: u64::decode(buf)?,
        })
    }
}

impl WireEncode for RecoveryReply {
    fn encode(&self, buf: &mut BytesMut) {
        self.responder.encode(buf);
        self.origin.encode(buf);
        self.messages.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        2 + 2 + self.messages.encoded_len()
    }
}

impl WireDecode for RecoveryReply {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(RecoveryReply {
            responder: ProcessId::decode(buf)?,
            origin: ProcessId::decode(buf)?,
            messages: Vec::decode(buf)?,
        })
    }
}

impl WireEncode for RecoveryWant {
    fn encode(&self, buf: &mut BytesMut) {
        self.origin.encode(buf);
        self.after_seq.encode(buf);
        self.upto_seq.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        2 + 8 + 8
    }
}

impl WireDecode for RecoveryWant {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(RecoveryWant {
            origin: ProcessId::decode(buf)?,
            after_seq: u64::decode(buf)?,
            upto_seq: u64::decode(buf)?,
        })
    }
}

impl WireEncode for RecoveryBatchRq {
    fn encode(&self, buf: &mut BytesMut) {
        self.requester.encode(buf);
        self.wants.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        2 + self.wants.encoded_len()
    }
}

impl WireDecode for RecoveryBatchRq {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(RecoveryBatchRq {
            requester: ProcessId::decode(buf)?,
            wants: Vec::decode(buf)?,
        })
    }
}

impl WireEncode for RecoveryRun {
    fn encode(&self, buf: &mut BytesMut) {
        self.origin.encode(buf);
        self.messages.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        2 + self.messages.encoded_len()
    }
}

impl WireDecode for RecoveryRun {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(RecoveryRun {
            origin: ProcessId::decode(buf)?,
            messages: Vec::decode(buf)?,
        })
    }
}

impl WireEncode for RecoveryBatch {
    fn encode(&self, buf: &mut BytesMut) {
        self.responder.encode(buf);
        self.runs.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        2 + self.runs.encoded_len()
    }
}

impl WireDecode for RecoveryBatch {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(RecoveryBatch {
            responder: ProcessId::decode(buf)?,
            runs: Vec::decode(buf)?,
        })
    }
}

const TAG_DATA: u8 = 1;
const TAG_REQUEST: u8 = 2;
const TAG_DECISION: u8 = 3;
const TAG_RECOVERY_RQ: u8 = 4;
const TAG_RECOVERY_REPLY: u8 = 5;
const TAG_RECOVERY_BATCH_RQ: u8 = 6;
const TAG_RECOVERY_BATCH: u8 = 7;

/// Peeks the PDU kind of an encoded frame from its leading tag byte
/// without decoding (or checksum-verifying) the body. Relay layers use
/// this to classify frames they carry opaquely; `None` means the tag is
/// not a PDU tag.
pub fn frame_kind(frame: &[u8]) -> Option<crate::pdu::PduKind> {
    use crate::pdu::PduKind;
    match frame.first()? {
        &TAG_DATA => Some(PduKind::Data),
        &TAG_REQUEST => Some(PduKind::Request),
        &TAG_DECISION => Some(PduKind::Decision),
        &TAG_RECOVERY_RQ | &TAG_RECOVERY_BATCH_RQ => Some(PduKind::RecoveryRq),
        &TAG_RECOVERY_REPLY | &TAG_RECOVERY_BATCH => Some(PduKind::RecoveryReply),
        _ => None,
    }
}

impl WireEncode for Pdu {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Pdu::Data(m) => {
                buf.put_u8(TAG_DATA);
                m.encode(buf);
            }
            Pdu::Request(m) => {
                buf.put_u8(TAG_REQUEST);
                m.encode(buf);
            }
            Pdu::Decision(m) => {
                buf.put_u8(TAG_DECISION);
                m.encode(buf);
            }
            Pdu::RecoveryRq(m) => {
                buf.put_u8(TAG_RECOVERY_RQ);
                m.encode(buf);
            }
            Pdu::RecoveryReply(m) => {
                buf.put_u8(TAG_RECOVERY_REPLY);
                m.encode(buf);
            }
            Pdu::RecoveryBatchRq(m) => {
                buf.put_u8(TAG_RECOVERY_BATCH_RQ);
                m.encode(buf);
            }
            Pdu::RecoveryBatch(m) => {
                buf.put_u8(TAG_RECOVERY_BATCH);
                m.encode(buf);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        1 + match self {
            Pdu::Data(m) => m.encoded_len(),
            Pdu::Request(m) => m.encoded_len(),
            Pdu::Decision(m) => m.encoded_len(),
            Pdu::RecoveryRq(m) => m.encoded_len(),
            Pdu::RecoveryReply(m) => m.encoded_len(),
            Pdu::RecoveryBatchRq(m) => m.encoded_len(),
            Pdu::RecoveryBatch(m) => m.encoded_len(),
        }
    }
}

impl WireDecode for Pdu {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            TAG_DATA => Ok(Pdu::Data(Arc::decode(buf)?)),
            TAG_REQUEST => Ok(Pdu::Request(RequestMsg::decode(buf)?)),
            TAG_DECISION => Ok(Pdu::Decision(Decision::decode(buf)?)),
            TAG_RECOVERY_RQ => Ok(Pdu::RecoveryRq(RecoveryRq::decode(buf)?)),
            TAG_RECOVERY_REPLY => Ok(Pdu::RecoveryReply(RecoveryReply::decode(buf)?)),
            TAG_RECOVERY_BATCH_RQ => Ok(Pdu::RecoveryBatchRq(RecoveryBatchRq::decode(buf)?)),
            TAG_RECOVERY_BATCH => Ok(Pdu::RecoveryBatch(RecoveryBatch::decode(buf)?)),
            tag => Err(WireError::BadTag {
                context: "Pdu",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::NO_SEQ;

    fn roundtrip(pdu: &Pdu) {
        let frame = encode_pdu(pdu);
        assert_eq!(frame.len(), pdu.encoded_len() + FRAME_TRAILER_LEN);
        let back = decode_pdu(&frame).expect("decode");
        assert_eq!(&back, pdu);
    }

    /// Builds a frame with a valid checksum from raw body bytes (for tests
    /// probing the decoder past the integrity check).
    fn seal(body: &[u8]) -> Bytes {
        let mut buf = BytesMut::from(body);
        let sum = super::frame_checksum(body);
        buf.put_u32_le(sum);
        buf.freeze()
    }

    fn sample_decision(n: usize) -> Decision {
        let mut d = Decision::genesis(n);
        d.subrun = Subrun(7);
        d.coordinator = ProcessId(1);
        d.full_group = false;
        d.stable[0] = 3;
        d.attempts[1] = 2;
        d.process_state[1] = false;
        d.max_processed[0] = MaxProcessed {
            holder: ProcessId(2),
            seq: 9,
        };
        d.min_waiting[2] = 5;
        d
    }

    #[test]
    fn data_roundtrip() {
        roundtrip(&Pdu::data(DataMsg {
            mid: Mid::new(ProcessId(3), 12),
            deps: vec![Mid::new(ProcessId(0), 1), Mid::new(ProcessId(2), 4)],
            round: Round(8),
            payload: Bytes::from_static(b"causal payload"),
        }));
    }

    #[test]
    fn empty_payload_roundtrip() {
        roundtrip(&Pdu::data(DataMsg {
            mid: Mid::new(ProcessId(0), 1),
            deps: vec![],
            round: Round(0),
            payload: Bytes::new(),
        }));
    }

    #[test]
    fn request_roundtrip() {
        roundtrip(&Pdu::Request(RequestMsg {
            sender: ProcessId(2),
            subrun: Subrun(5),
            last_processed: vec![1, 0, 7],
            waiting: vec![NO_SEQ, 4, NO_SEQ],
            prev_decision: sample_decision(3),
            forwarded: true,
        }));
    }

    #[test]
    fn decision_roundtrip() {
        roundtrip(&Pdu::Decision(sample_decision(5)));
    }

    #[test]
    fn recovery_roundtrip() {
        roundtrip(&Pdu::RecoveryRq(RecoveryRq {
            requester: ProcessId(4),
            origin: ProcessId(0),
            after_seq: 2,
            upto_seq: 9,
        }));
        roundtrip(&Pdu::RecoveryReply(RecoveryReply {
            responder: ProcessId(1),
            origin: ProcessId(0),
            messages: vec![Arc::new(DataMsg {
                mid: Mid::new(ProcessId(0), 3),
                deps: vec![Mid::new(ProcessId(0), 2)],
                round: Round(6),
                payload: Bytes::from_static(b"x"),
            })],
        }));
    }

    #[test]
    fn batched_recovery_roundtrip() {
        roundtrip(&Pdu::RecoveryBatchRq(RecoveryBatchRq {
            requester: ProcessId(4),
            wants: vec![
                RecoveryWant {
                    origin: ProcessId(0),
                    after_seq: 2,
                    upto_seq: 9,
                },
                RecoveryWant {
                    origin: ProcessId(2),
                    after_seq: NO_SEQ,
                    upto_seq: 3,
                },
            ],
        }));
        roundtrip(&Pdu::RecoveryBatch(RecoveryBatch {
            responder: ProcessId(1),
            runs: vec![
                RecoveryRun {
                    origin: ProcessId(0),
                    messages: vec![Arc::new(DataMsg {
                        mid: Mid::new(ProcessId(0), 3),
                        deps: vec![Mid::new(ProcessId(0), 2)],
                        round: Round(6),
                        payload: Bytes::from_static(b"x"),
                    })],
                },
                RecoveryRun {
                    origin: ProcessId(2),
                    messages: vec![],
                },
            ],
        }));
        // Degenerate but legal: empty batches.
        roundtrip(&Pdu::RecoveryBatchRq(RecoveryBatchRq {
            requester: ProcessId(0),
            wants: vec![],
        }));
        roundtrip(&Pdu::RecoveryBatch(RecoveryBatch {
            responder: ProcessId(0),
            runs: vec![],
        }));
    }

    #[test]
    fn batched_frame_is_smaller_than_the_per_origin_frames_it_replaces() {
        // The point of batching: one tag + requester amortized over every
        // origin, instead of a full RecoveryRq frame per origin.
        let wants: Vec<RecoveryWant> = (0..40)
            .map(|q| RecoveryWant {
                origin: ProcessId(q),
                after_seq: 1,
                upto_seq: 5,
            })
            .collect();
        let batched = Pdu::RecoveryBatchRq(RecoveryBatchRq {
            requester: ProcessId(0),
            wants: wants.clone(),
        })
        .encoded_len()
            + FRAME_TRAILER_LEN;
        let unbatched: usize = wants
            .iter()
            .map(|w| {
                Pdu::RecoveryRq(RecoveryRq {
                    requester: ProcessId(0),
                    origin: w.origin,
                    after_seq: w.after_seq,
                    upto_seq: w.upto_seq,
                })
                .encoded_len()
                    + FRAME_TRAILER_LEN
            })
            .sum();
        assert!(batched < unbatched, "{batched} vs {unbatched}");
    }

    #[test]
    fn bad_tag_is_rejected() {
        let frame = seal(&[0xFF]);
        assert!(matches!(
            decode_pdu(&frame),
            Err(WireError::BadTag { tag: 0xFF, .. })
        ));
    }

    fn sample_batch_rq() -> Pdu {
        Pdu::RecoveryBatchRq(RecoveryBatchRq {
            requester: ProcessId(4),
            wants: vec![
                RecoveryWant {
                    origin: ProcessId(0),
                    after_seq: 2,
                    upto_seq: 9,
                },
                RecoveryWant {
                    origin: ProcessId(2),
                    after_seq: NO_SEQ,
                    upto_seq: 3,
                },
            ],
        })
    }

    fn sample_batch() -> Pdu {
        Pdu::RecoveryBatch(RecoveryBatch {
            responder: ProcessId(1),
            runs: vec![RecoveryRun {
                origin: ProcessId(0),
                messages: vec![Arc::new(DataMsg {
                    mid: Mid::new(ProcessId(0), 3),
                    deps: vec![Mid::new(ProcessId(0), 2)],
                    round: Round(6),
                    payload: Bytes::from_static(b"recovered"),
                })],
            }],
        })
    }

    #[test]
    fn corrupted_frame_fails_the_checksum() {
        // Sweep every byte of every shape we put on the wire by default —
        // including the batched recovery tags (6/7), which are the common
        // case now that `batched_recovery` defaults on.
        for pdu in [
            Pdu::Decision(sample_decision(4)),
            sample_batch_rq(),
            sample_batch(),
        ] {
            let frame = encode_pdu(&pdu);
            for i in 0..frame.len() {
                let mut raw = frame.to_vec();
                raw[i] ^= 0x04;
                assert!(
                    matches!(
                        decode_pdu(&Bytes::from(raw)),
                        Err(WireError::ChecksumMismatch { .. })
                    ),
                    "flip at byte {i} slipped through"
                );
            }
        }
    }

    #[test]
    fn frame_cache_matches_one_shot_encoding() {
        let mut cache = FrameCache::new();
        for pdu in [
            Pdu::Decision(sample_decision(4)),
            sample_batch_rq(),
            sample_batch(),
            Pdu::data(DataMsg {
                mid: Mid::new(ProcessId(3), 12),
                deps: vec![Mid::new(ProcessId(0), 1)],
                round: Round(8),
                payload: Bytes::from_static(b"causal payload"),
            }),
        ] {
            let cached = cache.encode(&pdu);
            assert_eq!(cached, encode_pdu(&pdu), "cache changed the framing");
            assert_eq!(decode_pdu(&cached).expect("decode"), pdu);
        }
    }

    #[test]
    fn frame_cache_clones_share_one_allocation() {
        let mut cache = FrameCache::new();
        let frame = cache.encode(&Pdu::Decision(sample_decision(8)));
        let fanout: Vec<Bytes> = (0..100).map(|_| frame.clone()).collect();
        let base = frame.as_ptr();
        for copy in &fanout {
            assert_eq!(copy.as_ptr(), base, "clone re-allocated the frame");
        }
    }

    #[test]
    fn frame_cache_retains_capacity_across_frames() {
        let mut cache = FrameCache::new();
        let big = cache.encode(&Pdu::Decision(sample_decision(64)));
        let warm = cache.capacity();
        assert!(warm >= big.len());
        // Smaller frames reuse the warm arena instead of growing it.
        cache.encode(&Pdu::Decision(sample_decision(4)));
        cache.encode(&sample_batch_rq());
        assert_eq!(cache.capacity(), warm, "steady-state encode grew the arena");
    }

    #[test]
    fn truncated_frame_is_rejected() {
        let full = encode_pdu(&Pdu::Decision(sample_decision(4)));
        for cut in 0..full.len() {
            let mut part = full.clone();
            part.truncate(cut);
            assert!(decode_pdu(&part).is_err(), "truncation at {cut} accepted");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut body = BytesMut::new();
        Pdu::RecoveryRq(RecoveryRq {
            requester: ProcessId(0),
            origin: ProcessId(1),
            after_seq: 0,
            upto_seq: 1,
        })
        .encode(&mut body);
        body.put_u8(0xAB);
        assert!(matches!(
            decode_pdu(&seal(&body)),
            Err(WireError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        // Vec length claiming 2^31 entries must be caught by the bound, not
        // by an allocation attempt (sealed so the check under test is the
        // length bound, not the checksum).
        let mut body = BytesMut::new();
        body.put_u8(super::TAG_RECOVERY_REPLY);
        body.put_u16_le(0); // responder
        body.put_u16_le(0); // origin
        body.put_u32_le(1 << 31); // messages length
        assert!(matches!(
            decode_pdu(&seal(&body)),
            Err(WireError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn bad_bool_is_rejected() {
        let mut good = BytesMut::new();
        Pdu::Decision(sample_decision(3)).encode(&mut good);
        let mut raw = good.to_vec();
        // full_group is the byte right after tag(1) + subrun(8) + coord(2).
        // Re-seal so the structural check (not the checksum) is under test.
        raw[11] = 7;
        assert!(matches!(
            decode_pdu(&seal(&raw)),
            Err(WireError::BadBool { value: 7 })
        ));
    }

    #[test]
    fn decision_size_scales_linearly_in_n() {
        // Table 1 reports urcgc control sizes linear in n; the codec must
        // preserve that shape: fixed header + per-process cost.
        let s5 = Pdu::Decision(Decision::genesis(5)).encoded_len();
        let s10 = Pdu::Decision(Decision::genesis(10)).encoded_len();
        let s20 = Pdu::Decision(Decision::genesis(20)).encoded_len();
        assert_eq!(s10 - s5, (s20 - s10) / 2);
        let per_process = (s10 - s5) / 5;
        // stable 8 + attempts 4 + state 1 + max_processed 10 + min_waiting 8
        // + covered 1
        assert_eq!(per_process, 32);
    }

    #[test]
    fn urcgc_control_fits_ip_datagram_for_n15() {
        // Section 6: "a message that urcgc generates for a group of 15
        // processes fits into a single IP datagram packet, by considering
        // its minimum size of 576 bytes".
        let d = Pdu::Decision(Decision::genesis(15));
        assert!(d.encoded_len() <= 576, "decision = {}", d.encoded_len());
        let rq = Pdu::Request(RequestMsg {
            sender: ProcessId(0),
            subrun: Subrun(0),
            last_processed: vec![0; 15],
            waiting: vec![0; 15],
            prev_decision: Decision::genesis(15),
            forwarded: false,
        });
        assert!(rq.encoded_len() <= 1024, "request = {}", rq.encoded_len());
    }
}
