//! Process, group, message, round, and subrun identifiers.

use core::fmt;

/// Sequence-number sentinel meaning "no message yet" — mids number from 1.
pub const NO_SEQ: u64 = 0;

/// Identifier of one URCGC group among the many a node may host.
///
/// The paper treats the group as implicit — one process set, one group.
/// Scaling past that means every frame, submission, and delivery must say
/// *which* group it belongs to: `GroupId` is that key. It is dense only by
/// convention (harnesses number groups `0..g`), but nothing requires it —
/// unlike [`ProcessId`] it never doubles as a vector index, so the full
/// `u32` space is usable as an opaque name.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(pub u32);

impl GroupId {
    /// Deterministic group→shard assignment: groups spread round-robin over
    /// `shards` shared-nothing shards. Every layer that partitions groups
    /// (the bench job pool, future routing tables) must use this one rule so
    /// a group's home shard never depends on scheduling.
    #[inline]
    pub fn shard(self, shards: usize) -> usize {
        debug_assert!(shards > 0, "cannot shard over zero shards");
        (self.0 as usize) % shards
    }
}

impl fmt::Debug for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Identifier of a process in the group `G = {p_1, …, p_n}`.
///
/// Processes are densely numbered `0..n` (the paper uses `1..=n`; we index
/// from zero so a `ProcessId` doubles as an index into the per-process
/// vectors carried by requests and decisions).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub u16);

impl ProcessId {
    /// The index of this process into per-process vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `ProcessId` from a vector index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in `u16` — group cardinalities in the
    /// paper top out at 40, so this would indicate a harness bug.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        ProcessId(u16::try_from(index).expect("group cardinality exceeds u16"))
    }

    /// The identity of the rotating coordinator for `subrun` in a group of
    /// cardinality `n` (assumption 3 of Section 4: all active processes
    /// cyclically become coordinator for one subrun).
    #[inline]
    pub fn coordinator_for(subrun: Subrun, n: usize) -> Self {
        debug_assert!(n > 0, "empty group has no coordinator");
        ProcessId::from_index((subrun.0 as usize) % n)
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Unique message identifier: originating process plus a per-origin sequence
/// number starting at 1 (`seq == 0` never names a real message; see
/// [`NO_SEQ`]).
///
/// The paper's *intermediate interpretation* of causality (Section 3) lets
/// each process root a single totally-ordered sequence, so `(origin, seq)`
/// both uniquely identifies a message and orders it within its origin's
/// sequence. The general interpretation (Definition 3.1) still uses the same
/// identifier — ordering then comes from the explicit dependency lists.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Mid {
    /// The process that generated the message.
    pub origin: ProcessId,
    /// Position within the origin's generation order, starting at 1.
    pub seq: u64,
}

impl Mid {
    /// Convenience constructor.
    #[inline]
    pub fn new(origin: ProcessId, seq: u64) -> Self {
        Mid { origin, seq }
    }

    /// The mid immediately preceding this one in the origin's own sequence,
    /// or `None` for the first message of the sequence.
    #[inline]
    pub fn predecessor(self) -> Option<Mid> {
        (self.seq > 1).then(|| Mid::new(self.origin, self.seq - 1))
    }
}

impl fmt::Debug for Mid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.origin, self.seq)
    }
}

impl fmt::Display for Mid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.origin, self.seq)
    }
}

/// A communication round (assumption 1 of Section 4). Two rounds make a
/// subrun; with the paper's timing assumption one subrun spans one network
/// round-trip delay, so one round is half an rtd.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Round(pub u64);

impl Round {
    /// The subrun this round belongs to.
    #[inline]
    pub fn subrun(self) -> Subrun {
        Subrun(self.0 / 2)
    }

    /// Whether this is the first round of its subrun (request phase).
    #[inline]
    pub fn is_request_phase(self) -> bool {
        self.0.is_multiple_of(2)
    }

    /// The next round.
    #[inline]
    pub fn next(self) -> Round {
        Round(self.0 + 1)
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A subrun: the two-round unit within which one rotating coordinator
/// collects requests and broadcasts a decision (assumption 2 of Section 4).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Subrun(pub u64);

impl Subrun {
    /// The first (request-collection) round of this subrun.
    #[inline]
    pub fn request_round(self) -> Round {
        Round(self.0 * 2)
    }

    /// The second (decision-broadcast) round of this subrun.
    #[inline]
    pub fn decision_round(self) -> Round {
        Round(self.0 * 2 + 1)
    }

    /// The next subrun.
    #[inline]
    pub fn next(self) -> Subrun {
        Subrun(self.0 + 1)
    }
}

impl fmt::Display for Subrun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinator_rotates_cyclically() {
        let n = 5;
        for s in 0..20u64 {
            let c = ProcessId::coordinator_for(Subrun(s), n);
            assert_eq!(c.index(), (s as usize) % n);
        }
    }

    #[test]
    fn coordinator_single_process_group() {
        for s in 0..4u64 {
            assert_eq!(ProcessId::coordinator_for(Subrun(s), 1), ProcessId(0));
        }
    }

    #[test]
    fn mid_predecessor_chain_terminates_at_root() {
        let mid = Mid::new(ProcessId(3), 3);
        let p1 = mid.predecessor().unwrap();
        assert_eq!(p1, Mid::new(ProcessId(3), 2));
        let p2 = p1.predecessor().unwrap();
        assert_eq!(p2, Mid::new(ProcessId(3), 1));
        assert_eq!(p2.predecessor(), None);
    }

    #[test]
    fn round_subrun_mapping() {
        assert_eq!(Round(0).subrun(), Subrun(0));
        assert_eq!(Round(1).subrun(), Subrun(0));
        assert_eq!(Round(2).subrun(), Subrun(1));
        assert!(Round(0).is_request_phase());
        assert!(!Round(1).is_request_phase());
        assert_eq!(Subrun(3).request_round(), Round(6));
        assert_eq!(Subrun(3).decision_round(), Round(7));
        assert_eq!(Round(6).next(), Round(7));
        assert_eq!(Subrun(3).next(), Subrun(4));
    }

    #[test]
    fn ids_format_compactly() {
        assert_eq!(format!("{}", Mid::new(ProcessId(2), 7)), "p2#7");
        assert_eq!(format!("{:?}", Mid::new(ProcessId(2), 7)), "p2#7");
        assert_eq!(format!("{}", Round(4)), "r4");
        assert_eq!(format!("{}", Subrun(2)), "s2");
        assert_eq!(format!("{}", GroupId(9)), "g9");
        assert_eq!(format!("{:?}", GroupId(9)), "g9");
    }

    #[test]
    fn group_shard_assignment_is_round_robin() {
        for shards in 1..7usize {
            for g in 0..40u32 {
                assert_eq!(GroupId(g).shard(shards), (g as usize) % shards);
            }
        }
    }

    #[test]
    fn mid_ordering_is_origin_major() {
        let a = Mid::new(ProcessId(0), 9);
        let b = Mid::new(ProcessId(1), 1);
        assert!(a < b);
        assert!(Mid::new(ProcessId(1), 1) < Mid::new(ProcessId(1), 2));
    }
}
