//! The one FNV-1a implementation in the workspace.
//!
//! Frame trailers, relay-header checksums, cross-member order digests, and
//! the golden-document digests all use FNV-1a — it is tiny, allocation-free,
//! and deterministic across platforms, which is all an *integrity* (not
//! adversarial) checksum needs under the paper's general-omission failure
//! model. Before this module each site hand-rolled its own copy of the
//! constants; they now all share these two hashers so a transcription slip
//! can never fork the wire format from the oracles.
//!
//! Both widths use the standard parameters:
//!
//! | width | offset basis          | prime             |
//! |-------|-----------------------|-------------------|
//! | 32    | `0x811C9DC5`          | `0x01000193`      |
//! | 64    | `0xcbf29ce484222325`  | `0x100000001b3`   |

/// 32-bit FNV-1a offset basis.
pub const FNV32_OFFSET: u32 = 0x811C_9DC5;
/// 32-bit FNV-1a prime.
pub const FNV32_PRIME: u32 = 0x0100_0193;
/// 64-bit FNV-1a offset basis.
pub const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
pub const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One-shot 32-bit FNV-1a over `bytes` (frame trailers, header checksums).
pub fn fnv1a_32(bytes: &[u8]) -> u32 {
    let mut h = Fnv32::new();
    h.update(bytes);
    h.finish()
}

/// One-shot 64-bit FNV-1a over `bytes` (document digests).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// Streaming 32-bit FNV-1a hasher.
#[derive(Clone, Copy, Debug)]
pub struct Fnv32(u32);

impl Fnv32 {
    /// A hasher at the offset basis.
    pub fn new() -> Fnv32 {
        Fnv32(FNV32_OFFSET)
    }

    /// Feeds `bytes` into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u32::from(b)).wrapping_mul(FNV32_PRIME);
        }
    }

    /// The current hash value (the hasher remains usable).
    pub fn finish(&self) -> u32 {
        self.0
    }
}

impl Default for Fnv32 {
    fn default() -> Fnv32 {
        Fnv32::new()
    }
}

/// Streaming 64-bit FNV-1a hasher.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A hasher at the offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(FNV64_OFFSET)
    }

    /// Feeds `bytes` into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV64_PRIME);
        }
    }

    /// The current hash value (the hasher remains usable).
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Published FNV-1a test vectors (draft-eastlake-fnv): the empty string
    // hashes to the offset basis, "a" and "foobar" to the values below.
    #[test]
    fn matches_published_vectors() {
        assert_eq!(fnv1a_32(b""), FNV32_OFFSET);
        assert_eq!(fnv1a_64(b""), FNV64_OFFSET);
        assert_eq!(fnv1a_32(b"a"), 0xe40c_292c);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_32(b"foobar"), 0xbf9c_f968);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"split across several update calls";
        let mut h32 = Fnv32::new();
        let mut h64 = Fnv64::new();
        for chunk in data.chunks(7) {
            h32.update(chunk);
            h64.update(chunk);
        }
        assert_eq!(h32.finish(), fnv1a_32(data));
        assert_eq!(h64.finish(), fnv1a_64(data));
    }
}
