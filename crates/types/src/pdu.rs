//! Protocol data units exchanged by urcgc entities.
//!
//! Four PDU families exist (Sections 4–5): application **data** broadcasts,
//! per-subrun **requests** from members to the rotating coordinator,
//! coordinator **decision** broadcasts, and point-to-point **recovery**
//! request/reply pairs served from the history buffer.

use std::sync::Arc;

use bytes::Bytes;

use crate::decision::Decision;
use crate::id::{Mid, ProcessId, Round, Subrun};

/// An application message as it travels on the wire: its unique [`Mid`], the
/// explicit list of mids it causally depends on (Definition 3.1 — the `list`
/// field), the round it was generated in, and the opaque payload.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DataMsg {
    /// Unique identifier of this message.
    pub mid: Mid,
    /// Direct causal predecessors published by the sender. Under the
    /// intermediate interpretation this holds at most one mid per origin.
    pub deps: Vec<Mid>,
    /// Round in which the sender generated the message (used by the
    /// experiment harness to measure end-to-end delay in round units).
    pub round: Round,
    /// Application payload.
    pub payload: Bytes,
}

/// The request a member sends to the current coordinator in the first round
/// of every subrun.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RequestMsg {
    /// Requesting process.
    pub sender: ProcessId,
    /// Subrun this request belongs to.
    pub subrun: Subrun,
    /// `last_processed[j]`: highest sequence number of origin `p_j` this
    /// process has processed (length `n`).
    pub last_processed: Vec<u64>,
    /// `waiting[j]`: oldest sequence number of origin `p_j` sitting in this
    /// process's waiting list ([`crate::id::NO_SEQ`] if none; length `n`).
    pub waiting: Vec<u64>,
    /// The most recent decision this process received — how decisions
    /// reliably circulate from coordinator `c−1` to coordinator `c`.
    pub prev_decision: Decision,
    /// Whether this request has already been forwarded once by an
    /// ex-coordinator (straggler absorption; prevents forwarding loops).
    pub forwarded: bool,
}

/// Point-to-point recovery request: "send me origin `origin`'s messages with
/// sequence numbers in `(after_seq, upto_seq]` from your history".
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RecoveryRq {
    /// The lagging process asking for messages.
    pub requester: ProcessId,
    /// Sequence origin to recover.
    pub origin: ProcessId,
    /// Recover messages with `seq > after_seq` …
    pub after_seq: u64,
    /// … up to and including `upto_seq`.
    pub upto_seq: u64,
}

/// Reply to a [`RecoveryRq`]: the recovered messages, in sequence order.
/// May carry fewer messages than asked for if the responder's history has
/// already been cleaned past `after_seq` or it never processed that far.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RecoveryReply {
    /// The process serving the recovery.
    pub responder: ProcessId,
    /// Origin the messages belong to.
    pub origin: ProcessId,
    /// Recovered messages in increasing `seq` order. Shared with the
    /// responder's history buffer — building a reply never deep-copies
    /// message bodies.
    pub messages: Vec<Arc<DataMsg>>,
}

/// One origin's worth of a batched recovery ask: the `(after, upto]` window
/// a [`RecoveryBatchRq`] wants for that origin.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RecoveryWant {
    /// Sequence origin to recover.
    pub origin: ProcessId,
    /// Recover messages with `seq > after_seq` …
    pub after_seq: u64,
    /// … up to and including `upto_seq`.
    pub upto_seq: u64,
}

/// Batched recovery request: every per-origin window a lagging process wants
/// from one holder, coalesced into a single PDU
/// (`ProtocolConfig::batched_recovery`). Semantically equivalent to one
/// [`RecoveryRq`] per element of `wants`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RecoveryBatchRq {
    /// The lagging process asking for messages.
    pub requester: ProcessId,
    /// Per-origin recovery windows, in increasing origin order.
    pub wants: Vec<RecoveryWant>,
}

/// One origin's worth of a batched recovery answer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RecoveryRun {
    /// Origin the messages belong to.
    pub origin: ProcessId,
    /// Recovered messages in increasing `seq` order, shared with the
    /// responder's history buffer (never deep-copied).
    pub messages: Vec<Arc<DataMsg>>,
}

/// Reply to a [`RecoveryBatchRq`]: one run of recovered messages per
/// requested origin, all in a single frame. Semantically equivalent to one
/// [`RecoveryReply`] per element of `runs`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RecoveryBatch {
    /// The process serving the recovery.
    pub responder: ProcessId,
    /// Per-origin recovered runs, in increasing origin order.
    pub runs: Vec<RecoveryRun>,
}

/// Every PDU the urcgc protocol puts on the wire.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Pdu {
    /// Application data broadcast. The message body is reference-counted so
    /// one submit can fan out to every destination, the history buffer, and
    /// the local delivery queue without deep-copying `deps`/payload.
    Data(Arc<DataMsg>),
    /// Member → coordinator subrun request.
    Request(RequestMsg),
    /// Coordinator → group decision broadcast.
    Decision(Decision),
    /// Lagging process → most-updated process recovery ask.
    RecoveryRq(RecoveryRq),
    /// Recovery answer served from history.
    RecoveryReply(RecoveryReply),
    /// Coalesced recovery ask (batched framing; counts as
    /// [`PduKind::RecoveryRq`] traffic).
    RecoveryBatchRq(RecoveryBatchRq),
    /// Coalesced recovery answer (batched framing; counts as
    /// [`PduKind::RecoveryReply`] traffic).
    RecoveryBatch(RecoveryBatch),
}

impl Pdu {
    /// Wraps a freshly built [`DataMsg`] for the wire.
    pub fn data(msg: DataMsg) -> Pdu {
        Pdu::Data(Arc::new(msg))
    }

    /// Short tag for traffic accounting (stable across runs; used as a map
    /// key by the simulator's traffic meter).
    pub fn kind(&self) -> PduKind {
        match self {
            Pdu::Data(_) => PduKind::Data,
            Pdu::Request(_) => PduKind::Request,
            Pdu::Decision(_) => PduKind::Decision,
            Pdu::RecoveryRq(_) | Pdu::RecoveryBatchRq(_) => PduKind::RecoveryRq,
            Pdu::RecoveryReply(_) | Pdu::RecoveryBatch(_) => PduKind::RecoveryReply,
        }
    }

    /// Whether this PDU is protocol control traffic (everything except
    /// application data) — the quantity Table 1 accounts.
    pub fn is_control(&self) -> bool {
        !matches!(self, Pdu::Data(_))
    }
}

/// Discriminant-only view of [`Pdu`] for metrics keys.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum PduKind {
    /// Application data broadcast.
    Data,
    /// Member → coordinator request.
    Request,
    /// Coordinator decision broadcast.
    Decision,
    /// Recovery request.
    RecoveryRq,
    /// Recovery reply.
    RecoveryReply,
}

impl PduKind {
    /// All kinds, for exhaustive reporting.
    pub const ALL: [PduKind; 5] = [
        PduKind::Data,
        PduKind::Request,
        PduKind::Decision,
        PduKind::RecoveryRq,
        PduKind::RecoveryReply,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            PduKind::Data => "data",
            PduKind::Request => "request",
            PduKind::Decision => "decision",
            PduKind::RecoveryRq => "recovery-rq",
            PduKind::RecoveryReply => "recovery-reply",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::NO_SEQ;

    fn sample_data() -> DataMsg {
        DataMsg {
            mid: Mid::new(ProcessId(1), 2),
            deps: vec![Mid::new(ProcessId(0), 1)],
            round: Round(4),
            payload: Bytes::from_static(b"hello"),
        }
    }

    #[test]
    fn kind_matches_variant() {
        assert_eq!(Pdu::data(sample_data()).kind(), PduKind::Data);
        let rq = RecoveryRq {
            requester: ProcessId(0),
            origin: ProcessId(1),
            after_seq: NO_SEQ,
            upto_seq: 3,
        };
        assert_eq!(Pdu::RecoveryRq(rq).kind(), PduKind::RecoveryRq);
    }

    #[test]
    fn control_classification_excludes_data() {
        assert!(!Pdu::data(sample_data()).is_control());
        assert!(Pdu::Decision(Decision::genesis(2)).is_control());
    }

    #[test]
    fn all_kinds_have_unique_labels() {
        let labels: std::collections::HashSet<_> = PduKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), PduKind::ALL.len());
    }

    #[test]
    fn batched_recovery_pdus_account_as_their_unbatched_kinds() {
        let rq = Pdu::RecoveryBatchRq(RecoveryBatchRq {
            requester: ProcessId(0),
            wants: vec![RecoveryWant {
                origin: ProcessId(1),
                after_seq: NO_SEQ,
                upto_seq: 3,
            }],
        });
        assert_eq!(rq.kind(), PduKind::RecoveryRq);
        assert!(rq.is_control());
        let reply = Pdu::RecoveryBatch(RecoveryBatch {
            responder: ProcessId(1),
            runs: vec![RecoveryRun {
                origin: ProcessId(1),
                messages: vec![Arc::new(sample_data())],
            }],
        });
        assert_eq!(reply.kind(), PduKind::RecoveryReply);
        assert!(reply.is_control());
    }
}
